// Tests for the graph substrate: CSR representation, generators, the six
// Graphalytics algorithms (serial golden results and parallel
// determinism), the PAD study, and Granula breakdowns.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/granula.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"
#include "atlarge/obs/observability.hpp"

namespace graph = atlarge::graph;
using atlarge::stats::Rng;
using graph::VertexId;

namespace {

// 0 -> 1 -> 2, 0 -> 2, isolated 3.
graph::Graph tiny() {
  return graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}});
}

// K4 minus the {2,3} edge: two triangles {0,1,2} and {0,1,3} sharing the
// 0-1 edge. Small enough that every kernel's result is derivable by hand.
graph::Graph diamond() {
  return graph::Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
}

graph::KernelOptions threads(std::uint32_t t) {
  graph::KernelOptions opts;
  opts.threads = t;
  return opts;
}

}  // namespace

TEST(Graph, FromEdgesBasics) {
  const auto g = tiny();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(Graph, SelfLoopsAndDuplicatesRemoved) {
  const auto g = graph::Graph::from_edges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(graph::Graph::from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(Graph, WeightsParallelEdges) {
  const auto g =
      graph::Graph::from_edges(2, {{0, 1}}, {2.5});
  EXPECT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.out_weight(0, 0), 2.5);
}

TEST(Graph, WeightArityMismatchRejected) {
  EXPECT_THROW(graph::Graph::from_edges(2, {{0, 1}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Graph, UnweightedDefaultsToUnitWeight) {
  const auto g = tiny();
  EXPECT_DOUBLE_EQ(g.out_weight(0, 0), 1.0);
}

TEST(Graph, EdgeListRoundTrips) {
  const auto g = tiny();
  const auto edges = g.edge_list();
  const auto g2 = graph::Graph::from_edges(4, edges);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(Graph, UndirectedAdjacencySymmetric) {
  const auto adj = tiny().undirected_adjacency();
  // 0-1 edge visible from both sides.
  EXPECT_NE(std::find(adj[0].begin(), adj[0].end(), 1u), adj[0].end());
  EXPECT_NE(std::find(adj[1].begin(), adj[1].end(), 0u), adj[1].end());
}

TEST(Generators, ErdosRenyiApproxDegree) {
  Rng rng(1);
  const auto g = graph::erdos_renyi(2'000, 8.0, rng);
  const double avg =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_NEAR(avg, 8.0, 0.5);  // slight dedup loss
}

TEST(Generators, PreferentialAttachmentSkewed) {
  Rng rng(2);
  const auto g = graph::preferential_attachment(3'000, 3, rng);
  std::vector<double> degrees;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    degrees.push_back(g.out_degree(v) + g.in_degree(v));
  std::sort(degrees.rbegin(), degrees.rend());
  const double total = std::accumulate(degrees.begin(), degrees.end(), 0.0);
  double top_share = 0.0;
  for (std::size_t i = 0; i < degrees.size() / 100; ++i)
    top_share += degrees[i];
  // Top 1% of vertices holds a disproportionate degree share.
  EXPECT_GT(top_share / total, 0.05);
}

TEST(Generators, GridShape) {
  const auto g = graph::grid_2d(10);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 2u * 9u * 10u);
}

// -------------------------------------------------------------- algorithms --

TEST(Bfs, DepthsOnTiny) {
  const auto result = graph::bfs(tiny(), 0);
  EXPECT_EQ(result.depth[0], 0u);
  EXPECT_EQ(result.depth[1], 1u);
  EXPECT_EQ(result.depth[2], 1u);
  EXPECT_EQ(result.depth[3], graph::kUnreachable);
}

TEST(Bfs, GridDiameter) {
  const auto g = graph::grid_2d(20);
  const auto result = graph::bfs(g, 0);
  // Directed grid edges point right/down: farthest corner at depth 38.
  EXPECT_EQ(result.depth[g.num_vertices() - 1], 38u);
}

TEST(Bfs, WorkProfileCountsEdges) {
  const auto result = graph::bfs(tiny(), 0);
  EXPECT_EQ(result.work.edges_traversed, 3u);
}

TEST(PageRank, SumsToOne) {
  Rng rng(3);
  const auto g = graph::erdos_renyi(500, 6.0, rng);
  const auto result = graph::pagerank(g, 25);
  const double total =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, HubRanksHigher) {
  // Star: everyone points at vertex 0.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 1; v < 50; ++v) edges.emplace_back(v, 0);
  const auto g = graph::Graph::from_edges(50, edges);
  const auto result = graph::pagerank(g, 30);
  for (VertexId v = 1; v < 50; ++v)
    EXPECT_GT(result.rank[0], result.rank[v]);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, vertex 1 dangles; rank must still sum to 1.
  const auto g = graph::Graph::from_edges(2, {{0, 1}});
  const auto result = graph::pagerank(g, 50);
  EXPECT_NEAR(result.rank[0] + result.rank[1], 1.0, 1e-9);
  EXPECT_GT(result.rank[1], result.rank[0]);
}

TEST(Wcc, CountsComponents) {
  const auto g = graph::Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto result = graph::wcc(g);
  EXPECT_EQ(result.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(Wcc, DirectionIgnored) {
  const auto g = graph::Graph::from_edges(3, {{2, 0}, {1, 0}});
  const auto result = graph::wcc(g);
  EXPECT_EQ(result.num_components, 1u);
}

TEST(Cdlp, CliquesGetOneLabel) {
  // Two disjoint triangles.
  const auto g = graph::Graph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto result = graph::cdlp(g, 10);
  EXPECT_EQ(result.label[0], result.label[1]);
  EXPECT_EQ(result.label[1], result.label[2]);
  EXPECT_EQ(result.label[3], result.label[4]);
  EXPECT_NE(result.label[0], result.label[3]);
  EXPECT_EQ(result.num_communities, 2u);
}

TEST(Lcc, TriangleIsOne) {
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto result = graph::lcc(g);
  for (double c : result.coefficient) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(result.mean, 1.0);
}

TEST(Lcc, PathHasZero) {
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto result = graph::lcc(g);
  EXPECT_DOUBLE_EQ(result.mean, 0.0);
}

TEST(Sssp, WeightedShortestPath) {
  // 0 -> 1 (5), 0 -> 2 (1), 2 -> 1 (1): best 0->1 is 2 via 2.
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {0, 2}, {2, 1}},
                                          {5.0, 1.0, 1.0});
  const auto result = graph::sssp(g, 0);
  EXPECT_DOUBLE_EQ(result.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(result.distance[2], 1.0);
}

TEST(Sssp, UnreachableIsInfinite) {
  const auto result = graph::sssp(tiny(), 0);
  EXPECT_TRUE(std::isinf(result.distance[3]));
}

TEST(Sssp, MatchesBfsOnUnitWeights) {
  Rng rng(4);
  const auto g = graph::erdos_renyi(300, 4.0, rng);
  const auto d = graph::sssp(g, 0);
  const auto b = graph::bfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (b.depth[v] == graph::kUnreachable) {
      EXPECT_TRUE(std::isinf(d.distance[v]));
    } else {
      EXPECT_DOUBLE_EQ(d.distance[v], static_cast<double>(b.depth[v]));
    }
  }
}

TEST(Algorithms, AllSixRunViaDispatch) {
  Rng rng(5);
  const auto g = graph::erdos_renyi(200, 4.0, rng);
  for (auto algo : graph::all_algorithms()) {
    const auto work = graph::run_algorithm(g, algo);
    EXPECT_GT(work.iterations, 0u) << graph::to_string(algo);
  }
}

// -------------------------------------------------------------------- PAD --

TEST(Pad, PlatformsHaveDistinctProfiles) {
  const auto platforms = graph::standard_platforms();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_GT(platforms[0].startup_s, platforms[2].startup_s);
}

TEST(Pad, CapacityWallDegradesRuntime) {
  graph::PlatformModel model;
  model.per_edge_ns = 10.0;
  model.capacity_edges = 100;
  model.degraded_factor = 10.0;
  graph::WorkProfile work;
  work.edges_traversed = 1'000;
  work.iterations = 1;
  const double small =
      graph::predict_runtime(model, graph::Algorithm::kBfs, work, 10, 50);
  const double large =
      graph::predict_runtime(model, graph::Algorithm::kBfs, work, 10, 500);
  EXPECT_NEAR(large / small, 10.0, 0.1);
}

TEST(Pad, InteractionLawHolds) {
  // The PAD law: with datasets spanning the platform capacity regimes
  // (via work-profile extrapolation), no single platform wins every
  // (algorithm, dataset) cell.
  Rng rng(6);
  const auto social = graph::preferential_attachment(8'000, 8, rng);
  const auto grid = graph::grid_2d(60);
  const std::vector<graph::NamedGraph> datasets = {
      {"social-S", &social, 1.0},
      {"social-L", &social, 2'000.0},
      {"social-XL", &social, 10'000.0},
      {"grid-L", &grid, 2'000.0}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.winners.size(), 24u);  // 6 algorithms x 4 datasets
  EXPECT_GT(study.distinct_winners, 1u);
}

TEST(Pad, SmallDatasetsFavorSingleNode) {
  // The complementary PAD prediction: in-memory-scale datasets sit in
  // the single-node platform's sweet spot, so it wins every cell.
  Rng rng(6);
  const auto social = graph::preferential_attachment(8'000, 8, rng);
  const std::vector<graph::NamedGraph> datasets = {{"small", &social, 1.0}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.distinct_winners, 1u);
  EXPECT_EQ(study.winners.front().second, "Native-1N");
}

TEST(Pad, ScaleExtrapolatesWork) {
  Rng rng(7);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  graph::PlatformModel linear;  // pure per-edge cost, no walls
  linear.name = "linear";
  linear.per_edge_ns = 10.0;
  const std::vector<graph::NamedGraph> base = {{"g", &g, 1.0}};
  const std::vector<graph::NamedGraph> scaled = {{"g", &g, 100.0}};
  const auto s1 = graph::run_pad_study(base, {linear});
  const auto s100 = graph::run_pad_study(scaled, {linear});
  for (std::size_t i = 0; i < s1.cells.size(); ++i) {
    EXPECT_NEAR(s100.cells[i].runtime_s / s1.cells[i].runtime_s, 100.0,
                1.0);
  }
}

TEST(Pad, CellsCoverFullCross) {
  Rng rng(7);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  const std::vector<graph::NamedGraph> datasets = {{"g", &g}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.cells.size(), 6u * 4u);
  for (const auto& cell : study.cells) EXPECT_GT(cell.runtime_s, 0.0);
}

// ---------------------------------------------------------------- granula --

TEST(Granula, ModeledBreakdownMatchesPrediction) {
  const auto platforms = graph::standard_platforms();
  graph::WorkProfile work;
  work.edges_traversed = 1'000'000;
  work.iterations = 20;
  const auto breakdown = graph::modeled_breakdown(
      platforms[0], graph::Algorithm::kPageRank, work, 10'000, 100'000);
  const double predicted = graph::predict_runtime(
      platforms[0], graph::Algorithm::kPageRank, work, 10'000, 100'000);
  EXPECT_NEAR(breakdown.total(), predicted, 1e-9);
  EXPECT_EQ(breakdown.phases.size(), 3u);
}

TEST(Granula, SharesSumToOne) {
  const auto platforms = graph::standard_platforms();
  graph::WorkProfile work;
  work.edges_traversed = 500'000;
  work.iterations = 10;
  const auto b = graph::modeled_breakdown(
      platforms[1], graph::Algorithm::kBfs, work, 5'000, 50'000);
  const double total =
      b.share("startup") + b.share("sync") + b.share("compute");
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Granula, MeasuredBreakdownPositive) {
  Rng rng(8);
  const auto g = graph::erdos_renyi(2'000, 8.0, rng);
  const auto b = graph::measured_breakdown(g.num_vertices(), g.edge_list(),
                                           graph::Algorithm::kPageRank);
  EXPECT_EQ(b.phases.size(), 2u);
  EXPECT_GT(b.total(), 0.0);
  EXPECT_GT(b.share("compute"), 0.0);
}

// Property: every algorithm's work profile grows with graph size.
class WorkGrowsWithSize
    : public ::testing::TestWithParam<graph::Algorithm> {};

TEST_P(WorkGrowsWithSize, MoreEdgesMoreWork) {
  Rng rng(9);
  const auto small = graph::erdos_renyi(200, 4.0, rng);
  const auto large = graph::erdos_renyi(2'000, 8.0, rng);
  const auto w_small = graph::run_algorithm(small, GetParam());
  const auto w_large = graph::run_algorithm(large, GetParam());
  EXPECT_GT(w_large.edges_traversed, w_small.edges_traversed);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, WorkGrowsWithSize,
    ::testing::ValuesIn(graph::all_algorithms()),
    [](const auto& info) { return graph::to_string(info.param); });

// ----------------------------------------------------------------- golden --
// Hand-derived results on the diamond graph (K4 minus the {2,3} edge).

TEST(Golden, BfsDepthsOnDiamond) {
  const auto r = graph::bfs(diamond(), 0);
  EXPECT_EQ(r.depth[0], 0u);
  EXPECT_EQ(r.depth[1], 1u);
  EXPECT_EQ(r.depth[2], 1u);
  EXPECT_EQ(r.depth[3], 1u);
}

TEST(Golden, WccSingleComponentOnDiamond) {
  const auto r = graph::wcc(diamond());
  EXPECT_EQ(r.num_components, 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(r.component[v], 0u);
}

TEST(Golden, CdlpConvergesToZeroOnDiamond) {
  // Round 1: v0 adopts 1 (smallest neighbor label), everyone else adopts
  // 0; round 2 onward: all 0.
  const auto r = graph::cdlp(diamond(), 10);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(r.label[v], 0u);
  EXPECT_EQ(r.num_communities, 1u);
}

TEST(Golden, LccCoefficientsOnDiamond) {
  // Triangles {0,1,2} and {0,1,3}: vertices 0/1 close 2 of their 3 pairs
  // (2/3), vertices 2/3 close their single pair (1).
  const auto r = graph::lcc(diamond());
  EXPECT_DOUBLE_EQ(r.coefficient[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.coefficient[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.coefficient[2], 1.0);
  EXPECT_DOUBLE_EQ(r.coefficient[3], 1.0);
  EXPECT_DOUBLE_EQ(r.mean, (2.0 / 3.0 + 2.0 / 3.0 + 1.0 + 1.0) / 4.0);
}

TEST(Golden, SsspUnitDistancesOnDiamond) {
  const auto r = graph::sssp(diamond(), 0);
  EXPECT_DOUBLE_EQ(r.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(r.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(r.distance[2], 1.0);
  EXPECT_DOUBLE_EQ(r.distance[3], 1.0);
}

TEST(Golden, PageRankTwoCycleIsExactlyHalf) {
  // A 2-cycle is rank-invariant: 0.5 stays 0.5 at every iteration, with
  // no rounding (0.15/2 + 0.85*0.5 == 0.5 exactly in binary).
  const auto g = graph::Graph::from_edges(2, {{0, 1}, {1, 0}});
  const auto r = graph::pagerank(g, 20);
  EXPECT_DOUBLE_EQ(r.rank[0], 0.5);
  EXPECT_DOUBLE_EQ(r.rank[1], 0.5);
}

TEST(Golden, PageRankMatchesNaiveReference) {
  Rng rng(12);
  const auto g = graph::erdos_renyi(400, 6.0, rng);
  const std::size_t n = g.num_vertices();
  const double d = 0.85;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n)), next(n);
  for (int it = 0; it < 15; ++it) {
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v)
      if (g.out_degree(v) == 0) dangling += rank[v];
    const double base = (1.0 - d) / static_cast<double>(n) +
                        d * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = g.out_degree(v);
      for (VertexId u : g.out(v))
        next[u] += d * rank[v] / static_cast<double>(deg);
    }
    rank.swap(next);
  }
  const auto r = graph::pagerank(g, 15, d);
  for (VertexId v = 0; v < n; ++v) EXPECT_NEAR(r.rank[v], rank[v], 1e-12);
}

// ------------------------------------------------------------ parallelism --
// Kernel results and work profiles must be byte-identical at any thread
// count (the determinism contract CI's TSan job also exercises).

namespace {

std::vector<graph::Graph> determinism_graphs() {
  std::vector<graph::Graph> graphs;
  Rng rng(21);
  graphs.push_back(graph::preferential_attachment(4'000, 6, rng));
  graphs.push_back(graph::grid_2d(50));
  return graphs;
}

void expect_same_work(const graph::WorkProfile& a,
                      const graph::WorkProfile& b) {
  EXPECT_EQ(a.edges_traversed, b.edges_traversed);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace

TEST(ParallelDeterminism, BfsIdenticalAcrossThreadCounts) {
  for (const auto& g : determinism_graphs()) {
    const auto base = graph::bfs(g, 0, threads(1));
    for (std::uint32_t t : {2u, 8u}) {
      const auto r = graph::bfs(g, 0, threads(t));
      EXPECT_TRUE(r.depth == base.depth);
      expect_same_work(r.work, base.work);
    }
  }
}

TEST(ParallelDeterminism, PageRankIdenticalAcrossThreadCounts) {
  for (const auto& g : determinism_graphs()) {
    const auto base = graph::pagerank(g, 12, 0.85, threads(1));
    for (std::uint32_t t : {2u, 8u}) {
      const auto r = graph::pagerank(g, 12, 0.85, threads(t));
      ASSERT_EQ(r.rank.size(), base.rank.size());
      EXPECT_EQ(std::memcmp(r.rank.data(), base.rank.data(),
                            base.rank.size() * sizeof(double)),
                0);
      expect_same_work(r.work, base.work);
    }
  }
}

TEST(ParallelDeterminism, WccIdenticalAcrossThreadCounts) {
  for (const auto& g : determinism_graphs()) {
    const auto base = graph::wcc(g, threads(1));
    for (std::uint32_t t : {2u, 8u}) {
      const auto r = graph::wcc(g, threads(t));
      EXPECT_TRUE(r.component == base.component);
      EXPECT_EQ(r.num_components, base.num_components);
      expect_same_work(r.work, base.work);
    }
  }
}

TEST(ParallelDeterminism, CdlpIdenticalAcrossThreadCounts) {
  for (const auto& g : determinism_graphs()) {
    const auto base = graph::cdlp(g, 8, threads(1));
    for (std::uint32_t t : {2u, 8u}) {
      const auto r = graph::cdlp(g, 8, threads(t));
      EXPECT_TRUE(r.label == base.label);
      EXPECT_EQ(r.num_communities, base.num_communities);
      expect_same_work(r.work, base.work);
    }
  }
}

TEST(ParallelDeterminism, LccIdenticalAcrossThreadCounts) {
  for (const auto& g : determinism_graphs()) {
    const auto base = graph::lcc(g, threads(1));
    for (std::uint32_t t : {2u, 8u}) {
      const auto r = graph::lcc(g, threads(t));
      ASSERT_EQ(r.coefficient.size(), base.coefficient.size());
      EXPECT_EQ(std::memcmp(r.coefficient.data(), base.coefficient.data(),
                            base.coefficient.size() * sizeof(double)),
                0);
      EXPECT_EQ(r.mean, base.mean);
      expect_same_work(r.work, base.work);
    }
  }
}

TEST(ParallelDeterminism, SsspIdenticalAcrossThreadCounts) {
  Rng rng(22);
  const auto base_graph = graph::preferential_attachment(2'000, 4, rng);
  const auto g = graph::with_random_weights(base_graph, 0.5, 2.0, rng);
  const auto base = graph::sssp(g, 0, threads(1));
  for (std::uint32_t t : {2u, 8u}) {
    const auto r = graph::sssp(g, 0, threads(t));
    EXPECT_EQ(std::memcmp(r.distance.data(), base.distance.data(),
                          base.distance.size() * sizeof(double)),
              0);
    expect_same_work(r.work, base.work);
  }
}

TEST(ParallelDeterminism, PadStudyThreadCountIndependent) {
  Rng rng(23);
  const auto social = graph::preferential_attachment(2'000, 6, rng);
  const std::vector<graph::NamedGraph> datasets = {{"social", &social, 1.0}};
  const auto platforms = graph::standard_platforms();
  const auto serial = graph::run_pad_study(datasets, platforms, 1);
  const auto parallel = graph::run_pad_study(datasets, platforms, 2);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i)
    EXPECT_EQ(serial.cells[i].runtime_s, parallel.cells[i].runtime_s);
  EXPECT_TRUE(serial.winners == parallel.winners);
}

// ----------------------------------------------------- undirected CSR view --

TEST(UndirectedCsr, NeighborsSortedDistinctAndSymmetric) {
  Rng rng(24);
  const auto g = graph::erdos_renyi(500, 6.0, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_EQ(nb.size(), g.und_degree(v));
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_EQ(std::adjacent_find(nb.begin(), nb.end()), nb.end());
    for (VertexId u : nb) {
      const auto back = g.neighbors(u);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v));
    }
  }
}

TEST(UndirectedCsr, MatchesAdjacencyCopy) {
  Rng rng(25);
  const auto g = graph::preferential_attachment(300, 4, rng);
  const auto adj = g.undirected_adjacency();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    ASSERT_EQ(adj[v].size(), nb.size());
    EXPECT_TRUE(std::equal(nb.begin(), nb.end(), adj[v].begin()));
  }
}

TEST(UndirectedCsr, MergesBothDirectionsOnce) {
  // 0->1 and 1->0 are one undirected neighbor relation.
  const auto g = graph::Graph::from_edges(2, {{0, 1}, {1, 0}});
  EXPECT_EQ(g.und_degree(0), 1u);
  EXPECT_EQ(g.und_degree(1), 1u);
}

// -------------------------------------------------------------- generators --

TEST(Generators, ErdosRenyiRealizesRequestedDensity) {
  // The generator redraws rejected pairs, so the kept-edge count matches
  // the request within 2% instead of silently undershooting.
  Rng rng(26);
  const auto g = graph::erdos_renyi(2'000, 8.0, rng);
  const double realized =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_NEAR(realized, 8.0, 0.16);
}

TEST(Generators, ErdosRenyiDenseRequestStillRealized) {
  // Heavy dedup pressure: 50 of 99 possible out-neighbors per vertex.
  Rng rng(27);
  const auto g = graph::erdos_renyi(100, 50.0, rng);
  const double realized =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_NEAR(realized, 50.0, 1.0);
}

TEST(Generators, ErdosRenyiOverfullRequestClampsToCompleteGraph) {
  Rng rng(28);
  const auto g = graph::erdos_renyi(10, 100.0, rng);
  EXPECT_EQ(g.num_edges(), 90u);  // n * (n - 1)
}

// ----------------------------------------------------------- observability --

TEST(Obs, KernelsEmitSpansAndCounters) {
  Rng rng(29);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  atlarge::obs::Observability plane;
  graph::KernelOptions opts;
  opts.obs = &plane;
  const auto r = graph::pagerank(g, 5, 0.85, opts);

  std::size_t iteration_spans = 0;
  for (const auto& rec : plane.tracer.records()) {
    if (rec.kind == atlarge::obs::SpanKind::kBegin &&
        std::strcmp(rec.name, "pr.iteration") == 0)
      ++iteration_spans;
  }
  EXPECT_EQ(iteration_spans, 5u);
  EXPECT_EQ(plane.metrics.counter("graph.edges_traversed").value(),
            r.work.edges_traversed);
  EXPECT_EQ(plane.metrics.counter("graph.iterations").value(),
            r.work.iterations);
}

TEST(Obs, BfsLevelsTracedPerIteration) {
  atlarge::obs::Observability plane;
  graph::KernelOptions opts;
  opts.obs = &plane;
  const auto r = graph::bfs(graph::grid_2d(8), 0, opts);
  std::size_t levels = 0;
  for (const auto& rec : plane.tracer.records()) {
    if (rec.kind == atlarge::obs::SpanKind::kBegin &&
        std::strcmp(rec.name, "bfs.level") == 0)
      ++levels;
  }
  EXPECT_EQ(levels, r.work.iterations);
}

TEST(Granula, MeasuredBreakdownWithPlaneIncludesKernelPhases) {
  Rng rng(30);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  atlarge::obs::Observability plane;
  graph::KernelOptions opts;
  opts.obs = &plane;
  const auto b = graph::measured_breakdown(g.num_vertices(), g.edge_list(),
                                           graph::Algorithm::kPageRank, opts);
  EXPECT_GT(b.share("compute"), 0.0);
  bool has_iteration_phase = false;
  for (const auto& p : b.phases)
    has_iteration_phase |= p.name == std::string("pr.iteration");
  EXPECT_TRUE(has_iteration_phase);
}

TEST(Granula, BreakdownFromTraceAggregatesSpansByName) {
  atlarge::obs::Tracer tracer(16);
  tracer.begin("load", "graph");
  tracer.end("load", "graph");
  tracer.begin("compute", "graph");
  tracer.instant("mark", "graph");  // instants contribute nothing
  tracer.end("compute", "graph");
  tracer.begin("compute", "graph");  // second occurrence accumulates
  tracer.end("compute", "graph");

  const auto b = graph::breakdown_from_trace(tracer, "test");
  EXPECT_EQ(b.label, "test");
  ASSERT_EQ(b.phases.size(), 2u);  // first-seen order, instants ignored
  EXPECT_EQ(b.phases[0].name, "load");
  EXPECT_EQ(b.phases[1].name, "compute");
  EXPECT_GE(b.phases[0].seconds, 0.0);
  EXPECT_GE(b.phases[1].seconds, 0.0);
  EXPECT_NEAR(b.share("load") + b.share("compute"), 1.0, 1e-9);
}
