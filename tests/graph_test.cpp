// Tests for the graph substrate: CSR representation, generators, the six
// Graphalytics algorithms, the PAD study, and Granula breakdowns.

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/granula.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"

namespace graph = atlarge::graph;
using atlarge::stats::Rng;
using graph::VertexId;

namespace {

// 0 -> 1 -> 2, 0 -> 2, isolated 3.
graph::Graph tiny() {
  return graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}});
}

}  // namespace

TEST(Graph, FromEdgesBasics) {
  const auto g = tiny();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(Graph, SelfLoopsAndDuplicatesRemoved) {
  const auto g = graph::Graph::from_edges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(graph::Graph::from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(Graph, WeightsParallelEdges) {
  const auto g =
      graph::Graph::from_edges(2, {{0, 1}}, {2.5});
  EXPECT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.out_weight(0, 0), 2.5);
}

TEST(Graph, WeightArityMismatchRejected) {
  EXPECT_THROW(graph::Graph::from_edges(2, {{0, 1}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Graph, UnweightedDefaultsToUnitWeight) {
  const auto g = tiny();
  EXPECT_DOUBLE_EQ(g.out_weight(0, 0), 1.0);
}

TEST(Graph, EdgeListRoundTrips) {
  const auto g = tiny();
  const auto edges = g.edge_list();
  const auto g2 = graph::Graph::from_edges(4, edges);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(Graph, UndirectedAdjacencySymmetric) {
  const auto adj = tiny().undirected_adjacency();
  // 0-1 edge visible from both sides.
  EXPECT_NE(std::find(adj[0].begin(), adj[0].end(), 1u), adj[0].end());
  EXPECT_NE(std::find(adj[1].begin(), adj[1].end(), 0u), adj[1].end());
}

TEST(Generators, ErdosRenyiApproxDegree) {
  Rng rng(1);
  const auto g = graph::erdos_renyi(2'000, 8.0, rng);
  const double avg =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_NEAR(avg, 8.0, 0.5);  // slight dedup loss
}

TEST(Generators, PreferentialAttachmentSkewed) {
  Rng rng(2);
  const auto g = graph::preferential_attachment(3'000, 3, rng);
  std::vector<double> degrees;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    degrees.push_back(g.out_degree(v) + g.in_degree(v));
  std::sort(degrees.rbegin(), degrees.rend());
  const double total = std::accumulate(degrees.begin(), degrees.end(), 0.0);
  double top_share = 0.0;
  for (std::size_t i = 0; i < degrees.size() / 100; ++i)
    top_share += degrees[i];
  // Top 1% of vertices holds a disproportionate degree share.
  EXPECT_GT(top_share / total, 0.05);
}

TEST(Generators, GridShape) {
  const auto g = graph::grid_2d(10);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 2u * 9u * 10u);
}

// -------------------------------------------------------------- algorithms --

TEST(Bfs, DepthsOnTiny) {
  const auto result = graph::bfs(tiny(), 0);
  EXPECT_EQ(result.depth[0], 0u);
  EXPECT_EQ(result.depth[1], 1u);
  EXPECT_EQ(result.depth[2], 1u);
  EXPECT_EQ(result.depth[3], graph::kUnreachable);
}

TEST(Bfs, GridDiameter) {
  const auto g = graph::grid_2d(20);
  const auto result = graph::bfs(g, 0);
  // Directed grid edges point right/down: farthest corner at depth 38.
  EXPECT_EQ(result.depth[g.num_vertices() - 1], 38u);
}

TEST(Bfs, WorkProfileCountsEdges) {
  const auto result = graph::bfs(tiny(), 0);
  EXPECT_EQ(result.work.edges_traversed, 3u);
}

TEST(PageRank, SumsToOne) {
  Rng rng(3);
  const auto g = graph::erdos_renyi(500, 6.0, rng);
  const auto result = graph::pagerank(g, 25);
  const double total =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, HubRanksHigher) {
  // Star: everyone points at vertex 0.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 1; v < 50; ++v) edges.emplace_back(v, 0);
  const auto g = graph::Graph::from_edges(50, edges);
  const auto result = graph::pagerank(g, 30);
  for (VertexId v = 1; v < 50; ++v)
    EXPECT_GT(result.rank[0], result.rank[v]);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, vertex 1 dangles; rank must still sum to 1.
  const auto g = graph::Graph::from_edges(2, {{0, 1}});
  const auto result = graph::pagerank(g, 50);
  EXPECT_NEAR(result.rank[0] + result.rank[1], 1.0, 1e-9);
  EXPECT_GT(result.rank[1], result.rank[0]);
}

TEST(Wcc, CountsComponents) {
  const auto g = graph::Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto result = graph::wcc(g);
  EXPECT_EQ(result.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(Wcc, DirectionIgnored) {
  const auto g = graph::Graph::from_edges(3, {{2, 0}, {1, 0}});
  const auto result = graph::wcc(g);
  EXPECT_EQ(result.num_components, 1u);
}

TEST(Cdlp, CliquesGetOneLabel) {
  // Two disjoint triangles.
  const auto g = graph::Graph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto result = graph::cdlp(g, 10);
  EXPECT_EQ(result.label[0], result.label[1]);
  EXPECT_EQ(result.label[1], result.label[2]);
  EXPECT_EQ(result.label[3], result.label[4]);
  EXPECT_NE(result.label[0], result.label[3]);
  EXPECT_EQ(result.num_communities, 2u);
}

TEST(Lcc, TriangleIsOne) {
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto result = graph::lcc(g);
  for (double c : result.coefficient) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(result.mean, 1.0);
}

TEST(Lcc, PathHasZero) {
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto result = graph::lcc(g);
  EXPECT_DOUBLE_EQ(result.mean, 0.0);
}

TEST(Sssp, WeightedShortestPath) {
  // 0 -> 1 (5), 0 -> 2 (1), 2 -> 1 (1): best 0->1 is 2 via 2.
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {0, 2}, {2, 1}},
                                          {5.0, 1.0, 1.0});
  const auto result = graph::sssp(g, 0);
  EXPECT_DOUBLE_EQ(result.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(result.distance[2], 1.0);
}

TEST(Sssp, UnreachableIsInfinite) {
  const auto result = graph::sssp(tiny(), 0);
  EXPECT_TRUE(std::isinf(result.distance[3]));
}

TEST(Sssp, MatchesBfsOnUnitWeights) {
  Rng rng(4);
  const auto g = graph::erdos_renyi(300, 4.0, rng);
  const auto d = graph::sssp(g, 0);
  const auto b = graph::bfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (b.depth[v] == graph::kUnreachable) {
      EXPECT_TRUE(std::isinf(d.distance[v]));
    } else {
      EXPECT_DOUBLE_EQ(d.distance[v], static_cast<double>(b.depth[v]));
    }
  }
}

TEST(Algorithms, AllSixRunViaDispatch) {
  Rng rng(5);
  const auto g = graph::erdos_renyi(200, 4.0, rng);
  for (auto algo : graph::all_algorithms()) {
    const auto work = graph::run_algorithm(g, algo);
    EXPECT_GT(work.iterations, 0u) << graph::to_string(algo);
  }
}

// -------------------------------------------------------------------- PAD --

TEST(Pad, PlatformsHaveDistinctProfiles) {
  const auto platforms = graph::standard_platforms();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_GT(platforms[0].startup_s, platforms[2].startup_s);
}

TEST(Pad, CapacityWallDegradesRuntime) {
  graph::PlatformModel model;
  model.per_edge_ns = 10.0;
  model.capacity_edges = 100;
  model.degraded_factor = 10.0;
  graph::WorkProfile work;
  work.edges_traversed = 1'000;
  work.iterations = 1;
  const double small =
      graph::predict_runtime(model, graph::Algorithm::kBfs, work, 10, 50);
  const double large =
      graph::predict_runtime(model, graph::Algorithm::kBfs, work, 10, 500);
  EXPECT_NEAR(large / small, 10.0, 0.1);
}

TEST(Pad, InteractionLawHolds) {
  // The PAD law: with datasets spanning the platform capacity regimes
  // (via work-profile extrapolation), no single platform wins every
  // (algorithm, dataset) cell.
  Rng rng(6);
  const auto social = graph::preferential_attachment(8'000, 8, rng);
  const auto grid = graph::grid_2d(60);
  const std::vector<graph::NamedGraph> datasets = {
      {"social-S", &social, 1.0},
      {"social-L", &social, 2'000.0},
      {"social-XL", &social, 10'000.0},
      {"grid-L", &grid, 2'000.0}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.winners.size(), 24u);  // 6 algorithms x 4 datasets
  EXPECT_GT(study.distinct_winners, 1u);
}

TEST(Pad, SmallDatasetsFavorSingleNode) {
  // The complementary PAD prediction: in-memory-scale datasets sit in
  // the single-node platform's sweet spot, so it wins every cell.
  Rng rng(6);
  const auto social = graph::preferential_attachment(8'000, 8, rng);
  const std::vector<graph::NamedGraph> datasets = {{"small", &social, 1.0}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.distinct_winners, 1u);
  EXPECT_EQ(study.winners.front().second, "Native-1N");
}

TEST(Pad, ScaleExtrapolatesWork) {
  Rng rng(7);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  graph::PlatformModel linear;  // pure per-edge cost, no walls
  linear.name = "linear";
  linear.per_edge_ns = 10.0;
  const std::vector<graph::NamedGraph> base = {{"g", &g, 1.0}};
  const std::vector<graph::NamedGraph> scaled = {{"g", &g, 100.0}};
  const auto s1 = graph::run_pad_study(base, {linear});
  const auto s100 = graph::run_pad_study(scaled, {linear});
  for (std::size_t i = 0; i < s1.cells.size(); ++i) {
    EXPECT_NEAR(s100.cells[i].runtime_s / s1.cells[i].runtime_s, 100.0,
                1.0);
  }
}

TEST(Pad, CellsCoverFullCross) {
  Rng rng(7);
  const auto g = graph::erdos_renyi(500, 4.0, rng);
  const std::vector<graph::NamedGraph> datasets = {{"g", &g}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  EXPECT_EQ(study.cells.size(), 6u * 4u);
  for (const auto& cell : study.cells) EXPECT_GT(cell.runtime_s, 0.0);
}

// ---------------------------------------------------------------- granula --

TEST(Granula, ModeledBreakdownMatchesPrediction) {
  const auto platforms = graph::standard_platforms();
  graph::WorkProfile work;
  work.edges_traversed = 1'000'000;
  work.iterations = 20;
  const auto breakdown = graph::modeled_breakdown(
      platforms[0], graph::Algorithm::kPageRank, work, 10'000, 100'000);
  const double predicted = graph::predict_runtime(
      platforms[0], graph::Algorithm::kPageRank, work, 10'000, 100'000);
  EXPECT_NEAR(breakdown.total(), predicted, 1e-9);
  EXPECT_EQ(breakdown.phases.size(), 3u);
}

TEST(Granula, SharesSumToOne) {
  const auto platforms = graph::standard_platforms();
  graph::WorkProfile work;
  work.edges_traversed = 500'000;
  work.iterations = 10;
  const auto b = graph::modeled_breakdown(
      platforms[1], graph::Algorithm::kBfs, work, 5'000, 50'000);
  const double total =
      b.share("startup") + b.share("sync") + b.share("compute");
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Granula, MeasuredBreakdownPositive) {
  Rng rng(8);
  const auto g = graph::erdos_renyi(2'000, 8.0, rng);
  const auto b = graph::measured_breakdown(g.num_vertices(), g.edge_list(),
                                           graph::Algorithm::kPageRank);
  EXPECT_EQ(b.phases.size(), 2u);
  EXPECT_GT(b.total(), 0.0);
  EXPECT_GT(b.share("compute"), 0.0);
}

// Property: every algorithm's work profile grows with graph size.
class WorkGrowsWithSize
    : public ::testing::TestWithParam<graph::Algorithm> {};

TEST_P(WorkGrowsWithSize, MoreEdgesMoreWork) {
  Rng rng(9);
  const auto small = graph::erdos_renyi(200, 4.0, rng);
  const auto large = graph::erdos_renyi(2'000, 8.0, rng);
  const auto w_small = graph::run_algorithm(small, GetParam());
  const auto w_large = graph::run_algorithm(large, GetParam());
  EXPECT_GT(w_large.edges_traversed, w_small.edges_traversed);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, WorkGrowsWithSize,
    ::testing::ValuesIn(graph::all_algorithms()),
    [](const auto& info) { return graph::to_string(info.param); });

TEST(Granula, BreakdownFromTraceAggregatesSpansByName) {
  atlarge::obs::Tracer tracer(16);
  tracer.begin("load", "graph");
  tracer.end("load", "graph");
  tracer.begin("compute", "graph");
  tracer.instant("mark", "graph");  // instants contribute nothing
  tracer.end("compute", "graph");
  tracer.begin("compute", "graph");  // second occurrence accumulates
  tracer.end("compute", "graph");

  const auto b = graph::breakdown_from_trace(tracer, "test");
  EXPECT_EQ(b.label, "test");
  ASSERT_EQ(b.phases.size(), 2u);  // first-seen order, instants ignored
  EXPECT_EQ(b.phases[0].name, "load");
  EXPECT_EQ(b.phases[1].name, "compute");
  EXPECT_GE(b.phases[0].seconds, 0.0);
  EXPECT_GE(b.phases[1].seconds, 0.0);
  EXPECT_NEAR(b.share("load") + b.share("compute"), 1.0, 1e-9);
}
