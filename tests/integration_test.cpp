// Cross-module integration tests: each scenario wires several AtLarge
// modules together the way the benches and examples do.

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "atlarge/atlarge.hpp"

using namespace atlarge;

TEST(Integration, WorkloadThroughSchedulerIntoTraceTable) {
  // Generate a workload, schedule it, archive per-job stats as a trace.
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kScientific;
  spec.jobs = 25;
  spec.seed = 1;
  const auto wl = workflow::generate(spec);
  const auto env = cluster::make_homogeneous_cluster("c", 4, 8);
  sched::SjfPolicy policy;
  const auto result = sched::simulate(env, wl, policy);

  trace::Table table({{"job", trace::FieldType::kInt},
                      {"slowdown", trace::FieldType::kReal},
                      {"user", trace::FieldType::kText}});
  for (const auto& j : result.jobs) {
    table.append({static_cast<std::int64_t>(j.id), j.slowdown(),
                  std::string("Sci")});
  }
  std::stringstream buffer;
  table.write_csv(buffer);
  const auto back = trace::Table::read_csv(
      buffer, {{"job", trace::FieldType::kInt},
               {"slowdown", trace::FieldType::kReal},
               {"user", trace::FieldType::kText}});
  EXPECT_EQ(back.rows(), result.jobs.size());
  const auto slowdowns = back.numeric_column("slowdown");
  for (double s : slowdowns) EXPECT_GE(s, 1.0);
}

TEST(Integration, PortfolioSelectionsFeedRankings) {
  // Rank the zoo policies on one workload using the autoscale ranking
  // machinery (metrics: mean slowdown, p95 slowdown, makespan).
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kBigData;
  spec.jobs = 30;
  spec.seed = 2;
  const auto wl = workflow::generate(spec);
  const auto env = cluster::make_homogeneous_cluster("c", 2, 8);
  std::vector<autoscale::SystemScores> systems;
  for (auto& p : sched::standard_policies()) {
    const auto r = sched::simulate(env, wl, *p);
    systems.push_back(autoscale::SystemScores{
        p->name(), {r.mean_slowdown, r.p95_slowdown, r.makespan}});
  }
  const auto pairwise = autoscale::rank_pairwise(systems);
  const auto fractional = autoscale::rank_fractional(systems);
  EXPECT_EQ(pairwise.size(), 7u);
  EXPECT_EQ(fractional.size(), 7u);
  // Both rankings agree on who is worst-or-best often enough that the
  // top pairwise scorer is in the top half fractionally.
  const auto& top = pairwise.front().name;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < fractional.size(); ++i) {
    if (fractional[i].name == top) pos = i;
  }
  EXPECT_LT(pos, 4u);
}

TEST(Integration, ElasticCostAccounting) {
  // Autoscaled run -> rentals -> cloud cost models.
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kIndustrial;
  spec.jobs = 20;
  spec.seed = 3;
  const auto wl = workflow::generate(spec);
  autoscale::ReactAutoscaler react;
  const auto result = autoscale::run_elastic(wl, react);
  for (const auto& model : cluster::standard_cost_models()) {
    const double cost = model.total_cost(result.makespan, result.rentals);
    EXPECT_GT(cost, 0.0) << model.name;
  }
  // Per-hour billing never cheaper than per-second for the same rentals.
  const auto models = cluster::standard_cost_models();
  EXPECT_GE(models[1].total_cost(result.makespan, result.rentals),
            models[0].total_cost(result.makespan, result.rentals));
}

TEST(Integration, P2PEcosystemArchivedAsFairDatasets) {
  p2p::EcosystemConfig config;
  config.titles = 10;
  config.total_peers = 500.0;
  config.horizon = 15'000.0;
  config.swarm.content_mb = 50.0;
  const auto eco = p2p::simulate_ecosystem(config);

  trace::Archive archive("p2p-trace-archive");
  for (std::size_t i = 0; i < eco.swarms.size(); ++i) {
    trace::DatasetEntry entry;
    entry.id = "swarm-" + std::to_string(i);
    entry.domain = trace::Domain::kP2P;
    entry.collector = "BTWorld-sim";
    entry.records = eco.swarms[i].result.series.size();
    entry.fair = {true, true, true, true, true, true};
    EXPECT_TRUE(archive.add(std::move(entry)));
  }
  EXPECT_EQ(archive.size(), eco.swarms.size());
  EXPECT_DOUBLE_EQ(archive.mean_fair_score(), 1.0);
}

TEST(Integration, BdcDrivesDesignSpaceExploration) {
  // The BDC's design/implement stages run real design-space exploration —
  // the framework orchestrating the substrate, as in the paper's process.
  design::DesignProblem problem(10, 3, 2, 0.7, 5);
  design::BdcConfig config;
  config.satisficing_quality = 0.7;
  config.max_iterations = 20;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kHighAndLowLevelDesign,
         [&](design::BdcContext& ctx) {
           design::ExplorationConfig ec;
           ec.evaluation_budget = 400;
           ec.seed = ctx.rng();
           const auto trace = design::explore_free(problem, ec);
           if (trace.best_quality > ctx.best_quality)
             ctx.best_quality = trace.best_quality;
           ctx.designs_found += trace.satisficing_designs;
           ctx.space_explored += trace.evaluations_used;
         });
  const auto report = bdc.run();
  EXPECT_TRUE(report.success());
  EXPECT_GE(report.best_quality, 0.7);
}

TEST(Integration, RefArchValidatesSimulatedServerlessStack) {
  // The serverless simulator's conceptual stack maps onto Figure 9.
  const auto ra = cluster::paper_reference_architecture();
  const auto report = ra.validate(cluster::serverless_ecosystem());
  EXPECT_TRUE(report.executable);

  // And the platform itself runs.
  const auto registry = serverless::uniform_registry(2, 0.1, 1.0);
  stats::Rng rng(4);
  const auto invocations =
      serverless::bursty_invocations(2, 0.2, 500.0, 100.0, 5, rng);
  const auto result = serverless::run_platform(registry, invocations, {});
  EXPECT_EQ(result.invocations.size(), invocations.size());
}

TEST(Integration, GraphWorkProfilesPriceConsistently) {
  stats::Rng rng(5);
  const auto g = graph::preferential_attachment(2'000, 3, rng);
  const auto platforms = graph::standard_platforms();
  for (auto algo : graph::all_algorithms()) {
    const auto work = graph::run_algorithm(g, algo);
    for (const auto& p : platforms) {
      const double t = graph::predict_runtime(p, algo, work,
                                              g.num_vertices(),
                                              g.num_edges());
      const auto breakdown = graph::modeled_breakdown(
          p, algo, work, g.num_vertices(), g.num_edges());
      EXPECT_NEAR(breakdown.total(), t, 1e-9);
    }
  }
}

TEST(Integration, MmogPopulationDrivesElasticSimulator) {
  // Convert an MMOG population series into a gaming workload and run it
  // through the autoscaled cloud — two substrates composed.
  mmog::PopulationConfig pop_config;
  pop_config.days = 0.5;
  pop_config.step = 600.0;
  pop_config.base_players = 200.0;
  const auto series = mmog::generate_population(pop_config);

  workflow::Workload wl;
  wl.name = "mmog-ticks";
  std::uint64_t id = 0;
  for (const auto& point : series.points) {
    workflow::Job job;
    job.id = id++;
    job.submit_time = point.time;
    job.user = "game";
    workflow::Task t;
    t.runtime = std::max(1.0, point.players / 100.0);
    job.tasks.push_back(std::move(t));
    wl.jobs.push_back(std::move(job));
  }
  autoscale::PlanAutoscaler plan;
  autoscale::ElasticConfig config;
  config.interval = 300.0;
  const auto result = autoscale::run_elastic(wl, plan, config);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_GT(result.metrics.avg_demand, 0.0);
}

namespace {

// A small chaos campaign over the serverless adapter: one design point
// swept along faults.rate only, so aggregates isolate the fault effect.
exp::CampaignSpec chaos_campaign_spec() {
  exp::CampaignSpec spec;
  spec.name = "chaos-sweep";
  spec.domain = "serverless";
  spec.mode = exp::CampaignMode::kGrid;
  spec.repeats = 3;
  spec.seed = 7;
  spec.scale = 0.2;
  spec.dims = {{"keep_alive", {"600"}},
               {"prewarmed", {"0"}},
               {"max_instances", {"128"}},
               {"faults.rate", {"0", "8", "40"}},
               {"workload.scenario", {"synthetic"}}};
  return spec;
}

// Mean success_rate at the design point whose faults.rate label is `rate`.
double success_rate_at(const exp::CampaignAggregate& aggregate,
                       const std::string& rate) {
  std::size_t rate_dim = aggregate.param_names.size();
  for (std::size_t d = 0; d < aggregate.param_names.size(); ++d)
    if (aggregate.param_names[d] == "faults.rate") rate_dim = d;
  EXPECT_LT(rate_dim, aggregate.param_names.size());
  for (const auto& point : aggregate.ranked) {
    if (point.labels[rate_dim] != rate) continue;
    for (const auto& [name, value] : point.mean_metrics)
      if (name == "success_rate") return value;
  }
  ADD_FAILURE() << "no aggregate point with faults.rate=" << rate;
  return -1.0;
}

}  // namespace

TEST(Integration, FaultSweepDegradesServerlessSuccessMonotonically) {
  // The acceptance property of the faults.* dimension: plans at a higher
  // rate are supersets of lower-rate plans at the same design point, so
  // the mean success-rate aggregate degrades monotonically along the
  // sweep, with the rate-0 baseline at exactly 1.0.
  const auto adapter = exp::make_adapter("serverless");
  exp::ResultStore store;
  const auto outcome =
      exp::run_campaign(chaos_campaign_spec(), *adapter, store, {});
  ASSERT_TRUE(outcome.complete);
  ASSERT_EQ(outcome.aggregate.points, 3u);
  const double clean = success_rate_at(outcome.aggregate, "0");
  const double light = success_rate_at(outcome.aggregate, "8");
  const double heavy = success_rate_at(outcome.aggregate, "40");
  EXPECT_DOUBLE_EQ(clean, 1.0);
  EXPECT_GE(clean, light);
  EXPECT_GE(light, heavy);
  EXPECT_LT(heavy, 1.0);
}

TEST(Integration, FaultSweepIsThreadCountInvariant) {
  // Fixed seed => byte-identical aggregates at 1, 2, and 8 threads: fault
  // plans are built per-trial from the trial descriptor, never shared.
  const auto adapter = exp::make_adapter("serverless");
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exp::ResultStore store;
    exp::RunnerConfig config;
    config.threads = threads;
    const auto outcome =
        exp::run_campaign(chaos_campaign_spec(), *adapter, store, config);
    const auto json = exp::aggregate_json(outcome.aggregate);
    if (reference.empty())
      reference = json;
    else
      EXPECT_EQ(json, reference) << threads << " threads diverged";
  }
}

TEST(Integration, FaultSweepSurvivesKillAndResume) {
  // Interrupt the chaos campaign mid-run (the executed-trials cap is how
  // CI simulates a kill), then resume against the same store: the final
  // aggregate is byte-identical to an uninterrupted run.
  const auto adapter = exp::make_adapter("serverless");
  exp::ResultStore uninterrupted;
  const auto reference = exp::run_campaign(chaos_campaign_spec(), *adapter,
                                           uninterrupted, {});

  exp::ResultStore store;
  exp::RunnerConfig interrupted;
  interrupted.max_executed = 4;  // of 9 trials
  const auto first =
      exp::run_campaign(chaos_campaign_spec(), *adapter, store, interrupted);
  EXPECT_FALSE(first.complete);
  const auto resumed =
      exp::run_campaign(chaos_campaign_spec(), *adapter, store, {});
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.stats.memoized, 4u);
  EXPECT_EQ(exp::aggregate_json(resumed.aggregate),
            exp::aggregate_json(reference.aggregate));
}

TEST(Integration, FaultInjectionMirrorsIntoObservabilityPlane) {
  // fault -> serverless -> obs, composed: every injection and recovery
  // the platform reports is visible as obs counters, and the metrics
  // JSON carries the fault series alongside the FaaS telemetry.
  const auto registry = serverless::uniform_registry(2, 0.2, 1.0);
  stats::Rng rng(8);
  const auto invocations =
      serverless::bursty_invocations(2, 0.1, 2'000.0, 500.0, 8, rng);
  fault::FaultSpec fspec;
  fspec.rate = 20.0;
  fspec.horizon = 2'000.0;
  fspec.seed = 3;
  fspec.targets = 2;
  fspec.kinds = {fault::FaultKind::kMessageLoss,
                 fault::FaultKind::kColdStartFailure};
  const auto plan = fault::FaultPlan::generate(fspec);

  obs::Observability plane;
  serverless::PlatformConfig config;
  config.obs = &plane;
  config.faults = &plan;
  config.retry.max_attempts = 2;
  config.retry.timeout = 10.0;
  const auto result = serverless::run_platform(registry, invocations, config);

  EXPECT_EQ(result.faults_injected, plan.size());
  const auto& counters = plane.metrics.counters();
  ASSERT_TRUE(counters.contains("fault.injected"));
  EXPECT_EQ(counters.at("fault.injected").value(), result.faults_injected);
  if (result.faults_recovered > 0) {
    ASSERT_TRUE(counters.contains("fault.recovered"));
    EXPECT_EQ(counters.at("fault.recovered").value(),
              result.faults_recovered);
  }
  if (result.failed_invocations > 0)
    EXPECT_EQ(counters.at("faas.failed").value(), result.failed_invocations);
  EXPECT_NE(plane.metrics.json().find("fault.injected"), std::string::npos);
}

TEST(Integration, SamplerObservesSchedulerLoad) {
  // The sim kernel's Sampler plays the DevOps monitoring role over a toy
  // system built directly on the kernel.
  sim::Simulation s;
  sim::Resource cores(s, 4);
  for (int i = 0; i < 12; ++i) {
    s.schedule_at(static_cast<double>(i), [&cores, &s] {
      cores.acquire(1, [&cores, &s] {
        s.schedule_after(3.0, [&cores] { cores.release(1); });
      });
    });
  }
  sim::Sampler sampler(s, 0.0, 20.0, 1.0,
                       [&] { return cores.utilization(); });
  s.run();
  const auto values = sampler.values();
  ASSERT_FALSE(values.empty());
  const double peak = *std::max_element(values.begin(), values.end());
  EXPECT_GT(peak, 0.5);
}
