// Tests for the datacenter model, cost models, and the Figure 9 reference
// architecture.

#include <gtest/gtest.h>

#include "atlarge/cluster/cost.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/cluster/refarch.hpp"

namespace cluster = atlarge::cluster;

TEST(Machine, HomogeneousClusterTotals) {
  const auto env = cluster::make_homogeneous_cluster("cl", 8, 4);
  EXPECT_EQ(env.type, cluster::EnvironmentType::kOwnCluster);
  EXPECT_EQ(env.total_machines(), 8u);
  EXPECT_EQ(env.total_cores(), 32u);
}

TEST(Machine, AllMachinesFlattensWithIds) {
  const auto env = cluster::make_multi_cluster("mcd", 3, 2, 4);
  const auto machines = env.all_machines();
  ASSERT_EQ(machines.size(), 6u);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    EXPECT_EQ(machines[i].id, i);
    EXPECT_EQ(machines[i].cluster, i / 2);
  }
}

TEST(Machine, GridIsHeterogeneousAcrossSites) {
  const auto env = cluster::make_grid("grid", 3, 4, 2);
  ASSERT_EQ(env.clusters.size(), 3u);
  EXPECT_NE(env.clusters[0].machines[0].speed,
            env.clusters[1].machines[0].speed);
}

TEST(Machine, CloudHasProvisioningDelay) {
  const auto env = cluster::make_cloud("cd", 100, 8, 120.0);
  EXPECT_EQ(env.type, cluster::EnvironmentType::kPublicCloud);
  EXPECT_DOUBLE_EQ(env.provisioning_delay, 120.0);
}

TEST(Machine, GeoDistributedHasLatency) {
  const auto env = cluster::make_geo_distributed("gdc", 4, 2, 8, 0.08);
  EXPECT_EQ(env.type, cluster::EnvironmentType::kGeoDistributed);
  EXPECT_DOUBLE_EQ(env.inter_cluster_latency, 0.08);
  EXPECT_EQ(env.clusters.size(), 4u);
}

TEST(Machine, EnvironmentTypeNames) {
  EXPECT_EQ(cluster::to_string(cluster::EnvironmentType::kOwnCluster), "CL");
  EXPECT_EQ(cluster::to_string(cluster::EnvironmentType::kGrid), "G");
  EXPECT_EQ(cluster::to_string(cluster::EnvironmentType::kPublicCloud), "CD");
  EXPECT_EQ(cluster::to_string(cluster::EnvironmentType::kMultiCluster),
            "MCD");
  EXPECT_EQ(cluster::to_string(cluster::EnvironmentType::kGeoDistributed),
            "GDC");
}

// ------------------------------------------------------------------- cost --

TEST(Cost, PerSecondBillsExactly) {
  cluster::CostModel model{"s", cluster::Billing::kPerSecond, 2.0, 1.0, 0};
  EXPECT_DOUBLE_EQ(model.on_demand_cost(1'800.0), 1.0);  // half hour at $2/h
}

TEST(Cost, PerHourRoundsUp) {
  cluster::CostModel model{"h", cluster::Billing::kPerHour, 2.0, 1.0, 0};
  EXPECT_DOUBLE_EQ(model.on_demand_cost(1.0), 2.0);       // 1s -> 1h
  EXPECT_DOUBLE_EQ(model.on_demand_cost(3'600.0), 2.0);   // exactly 1h
  EXPECT_DOUBLE_EQ(model.on_demand_cost(3'601.0), 4.0);   // just over
}

TEST(Cost, ZeroDurationIsFree) {
  cluster::CostModel model{"h", cluster::Billing::kPerHour, 2.0, 1.0, 0};
  EXPECT_DOUBLE_EQ(model.on_demand_cost(0.0), 0.0);
}

TEST(Cost, ReservedFloorAlwaysPaid) {
  cluster::CostModel model{"r", cluster::Billing::kPerHour, 1.0, 0.5, 4};
  // 4 reserved machines at $0.5/h over 2h, no on-demand use.
  EXPECT_DOUBLE_EQ(model.total_cost(7'200.0, {}), 4.0);
}

TEST(Cost, HybridAddsOnDemand) {
  cluster::CostModel model{"r", cluster::Billing::kPerHour, 1.0, 0.5, 2};
  const double cost = model.total_cost(3'600.0, {3'600.0, 1'800.0});
  // Reserved: 2 * 0.5 * 1h = 1.0; on-demand: 1h + ceil(0.5h) = 2h at $1.
  EXPECT_DOUBLE_EQ(cost, 3.0);
}

TEST(Cost, StandardModelsShapes) {
  const auto models = cluster::standard_cost_models();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].billing, cluster::Billing::kPerSecond);
  EXPECT_EQ(models[1].billing, cluster::Billing::kPerHour);
  EXPECT_GT(models[2].reserved_machines, 0.0);
}

// ---------------------------------------------------------------- refarch --

TEST(RefArch, PaperArchitectureNonEmptyLayers) {
  const auto ra = cluster::paper_reference_architecture();
  EXPECT_GT(ra.size(), 20u);
  for (auto layer :
       {cluster::Layer::kInfrastructure, cluster::Layer::kOperationsService,
        cluster::Layer::kResources, cluster::Layer::kBackEnd,
        cluster::Layer::kFrontEnd, cluster::Layer::kDevOps}) {
    EXPECT_FALSE(ra.in_layer(layer).empty()) << cluster::to_string(layer);
  }
}

TEST(RefArch, DuplicateRegistrationRejected) {
  cluster::ReferenceArchitecture ra;
  EXPECT_TRUE(ra.register_component(
      {"X", cluster::Layer::kInfrastructure, ""}));
  EXPECT_FALSE(ra.register_component({"X", cluster::Layer::kBackEnd, ""}));
  EXPECT_EQ(ra.size(), 1u);
}

TEST(RefArch, FindReturnsLayer) {
  const auto ra = cluster::paper_reference_architecture();
  const auto hadoop = ra.find("Hadoop");
  ASSERT_TRUE(hadoop.has_value());
  EXPECT_EQ(hadoop->layer, cluster::Layer::kBackEnd);
  EXPECT_EQ(hadoop->sublayer, "execution-engine");
  EXPECT_FALSE(ra.find("Nonexistent").has_value());
}

TEST(RefArch, MapReduceMappingIsExecutable) {
  const auto ra = cluster::paper_reference_architecture();
  const auto report = ra.validate(cluster::mapreduce_ecosystem());
  EXPECT_TRUE(report.all_components_known);
  EXPECT_TRUE(report.executable);
  // Covers at least 5 distinct layers (Figure 9's highlighted stack).
  EXPECT_GE(report.covered.size(), 5u);
}

TEST(RefArch, ServerlessMappingIsExecutable) {
  const auto ra = cluster::paper_reference_architecture();
  const auto report = ra.validate(cluster::serverless_ecosystem());
  EXPECT_TRUE(report.all_components_known);
  EXPECT_TRUE(report.executable);
}

TEST(RefArch, IncompleteMappingNotExecutable) {
  const auto ra = cluster::paper_reference_architecture();
  cluster::EcosystemMapping mapping{"frontend-only", {"Pig", "Hive"}};
  const auto report = ra.validate(mapping);
  EXPECT_TRUE(report.all_components_known);
  EXPECT_FALSE(report.executable);
}

TEST(RefArch, UnknownComponentsReported) {
  const auto ra = cluster::paper_reference_architecture();
  cluster::EcosystemMapping mapping{"bad", {"Hadoop", "NotAThing"}};
  const auto report = ra.validate(mapping);
  EXPECT_FALSE(report.all_components_known);
  ASSERT_EQ(report.unknown.size(), 1u);
  EXPECT_EQ(report.unknown[0], "NotAThing");
}

TEST(RefArch, LegacyLayersAreFour) {
  EXPECT_EQ(cluster::legacy_bigdata_layers().size(), 4u);
}

TEST(RefArch, LayerNames) {
  EXPECT_EQ(cluster::to_string(cluster::Layer::kDevOps), "devops");
  EXPECT_EQ(cluster::to_string(cluster::Layer::kFrontEnd), "front-end");
}
