// Unit tests for the atlarge::fault plane: kind tokens, plan generation
// (determinism, validation, the subset-across-rates property), manual plan
// editing, the exact serialize/deserialize round trip, retry backoff math,
// and the kernel Injector (counters, obs mirroring, event ordering).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "atlarge/fault/fault.hpp"
#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/simulation.hpp"

namespace {

using namespace atlarge;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;

const std::vector<FaultKind> kAllKinds = {
    FaultKind::kMachineCrash,     FaultKind::kMessageLoss,
    FaultKind::kMessageDelay,     FaultKind::kColdStartFailure,
    FaultKind::kChurnSpike,       FaultKind::kSlowdown,
};

TEST(FaultKind, StringRoundTripsAllKinds) {
  for (FaultKind kind : kAllKinds) {
    const std::string token = fault::to_string(kind);
    EXPECT_FALSE(token.empty());
    FaultKind parsed = FaultKind::kChurnSpike;
    ASSERT_TRUE(fault::fault_kind_from_string(token, parsed)) << token;
    EXPECT_EQ(parsed, kind);
  }
}

TEST(FaultKind, FromStringRejectsUnknownTokens) {
  FaultKind parsed = FaultKind::kMachineCrash;
  EXPECT_FALSE(fault::fault_kind_from_string("disk_fire", parsed));
  EXPECT_FALSE(fault::fault_kind_from_string("", parsed));
  EXPECT_FALSE(fault::fault_kind_from_string("Machine_Crash", parsed));
}

TEST(FaultKind, SpanNamesArePrefixedAndDistinct) {
  std::vector<std::string> names;
  for (FaultKind kind : kAllKinds) {
    const std::string name = fault::span_name(kind);
    EXPECT_EQ(name.rfind("fault.", 0), 0u) << name;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

FaultSpec base_spec(double rate, std::uint64_t seed = 42) {
  FaultSpec spec;
  spec.rate = rate;
  spec.horizon = 2'000.0;
  spec.seed = seed;
  spec.targets = 8;
  return spec;
}

TEST(FaultPlanGenerate, EventCountMatchesRate) {
  EXPECT_EQ(FaultPlan::generate(base_spec(0.0)).size(), 0u);
  EXPECT_EQ(FaultPlan::generate(base_spec(10.0)).size(), 20u);
  EXPECT_EQ(FaultPlan::generate(base_spec(0.5)).size(), 1u);
}

TEST(FaultPlanGenerate, IsDeterministic) {
  const FaultPlan a = FaultPlan::generate(base_spec(25.0));
  const FaultPlan b = FaultPlan::generate(base_spec(25.0));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.seed(), 42u);
}

TEST(FaultPlanGenerate, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::generate(base_spec(25.0, 1));
  const FaultPlan b = FaultPlan::generate(base_spec(25.0, 2));
  EXPECT_NE(a, b);
}

TEST(FaultPlanGenerate, EventsAreSortedAndInRange) {
  FaultSpec spec = base_spec(50.0);
  spec.kinds = {FaultKind::kMessageLoss, FaultKind::kSlowdown};
  const FaultPlan plan = FaultPlan::generate(spec);
  ASSERT_EQ(plan.size(), 100u);
  double last = 0.0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.time, last);
    last = e.time;
    EXPECT_LT(e.time, spec.horizon);
    EXPECT_LT(e.target, spec.targets);
    EXPECT_GT(e.duration, 0.0);
    EXPECT_GE(e.magnitude, 0.01);
    EXPECT_LE(e.magnitude, 1.0);
    EXPECT_TRUE(e.kind == FaultKind::kMessageLoss ||
                e.kind == FaultKind::kSlowdown);
  }
}

TEST(FaultPlanGenerate, LowerRateIsSubsetOfHigherRate) {
  // Each event is a pure function of (seed, index), so the rate only
  // controls how many indices are materialized: a lower-rate plan's events
  // all appear in the higher-rate plan generated from the same seed.
  const FaultPlan small = FaultPlan::generate(base_spec(5.0));
  const FaultPlan big = FaultPlan::generate(base_spec(40.0));
  ASSERT_LT(small.size(), big.size());
  for (const FaultEvent& e : small.events()) {
    EXPECT_NE(std::find(big.events().begin(), big.events().end(), e),
              big.events().end());
  }
}

TEST(FaultPlanGenerate, ValidatesSpec) {
  FaultSpec bad_horizon = base_spec(1.0);
  bad_horizon.horizon = 0.0;
  EXPECT_THROW(FaultPlan::generate(bad_horizon), std::invalid_argument);
  FaultSpec bad_rate = base_spec(-1.0);
  EXPECT_THROW(FaultPlan::generate(bad_rate), std::invalid_argument);
  FaultSpec bad_targets = base_spec(1.0);
  bad_targets.targets = 0;
  EXPECT_THROW(FaultPlan::generate(bad_targets), std::invalid_argument);
}

TEST(FaultPlan, AddKeepsEventsSorted) {
  FaultPlan plan;
  plan.add({30.0, FaultKind::kMachineCrash, 0, 5.0, 0.5});
  plan.add({10.0, FaultKind::kMessageLoss, 1, 5.0, 0.5});
  plan.add({20.0, FaultKind::kSlowdown, 2, 5.0, 0.5});
  plan.add({20.0, FaultKind::kChurnSpike, 3, 5.0, 0.5});  // tie: after
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.events()[0].time, 10.0);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kSlowdown);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kChurnSpike);
  EXPECT_EQ(plan.events()[3].time, 30.0);
}

TEST(FaultPlan, EventsBetweenIsHalfOpen) {
  FaultPlan plan;
  plan.add({10.0, FaultKind::kMachineCrash, 0, 1.0, 0.5});
  plan.add({20.0, FaultKind::kMachineCrash, 1, 1.0, 0.5});
  plan.add({30.0, FaultKind::kMachineCrash, 2, 1.0, 0.5});
  const auto window = plan.events_between(10.0, 30.0);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].target, 0u);
  EXPECT_EQ(window[1].target, 1u);
  EXPECT_TRUE(plan.events_between(31.0, 40.0).empty());
}

TEST(FaultPlanSerde, RoundTripIsExact) {
  FaultSpec spec = base_spec(30.0, 7);
  const FaultPlan plan = FaultPlan::generate(spec);
  const FaultPlan back = FaultPlan::deserialize(plan.serialize());
  EXPECT_EQ(plan, back);
  EXPECT_EQ(back.seed(), 7u);
}

TEST(FaultPlanSerde, RoundTripsAwkwardDoubles) {
  FaultPlan plan;
  plan.add({0.1 + 0.2, FaultKind::kSlowdown, 3, 1.0 / 3.0, 0.1});
  const FaultPlan back = FaultPlan::deserialize(plan.serialize());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.events()[0].time, 0.1 + 0.2);  // bitwise, not approximate
  EXPECT_EQ(back.events()[0].duration, 1.0 / 3.0);
}

TEST(FaultPlanSerde, EmptyPlanRoundTrips) {
  const FaultPlan plan;
  const FaultPlan back = FaultPlan::deserialize(plan.serialize());
  EXPECT_EQ(plan, back);
  EXPECT_TRUE(back.empty());
}

TEST(FaultPlanSerde, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::deserialize(""), std::invalid_argument);
  EXPECT_THROW(FaultPlan::deserialize("faultplan v2\nseed 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::deserialize("faultplan v1\nseed 1\nevent 1 disk_fire 0 1 0.5\n"),
      std::invalid_argument);
  // Out-of-order event times are rejected.
  EXPECT_THROW(FaultPlan::deserialize("faultplan v1\nseed 1\n"
                                      "event 5 machine_crash 0 1 0.5\n"
                                      "event 1 machine_crash 0 1 0.5\n"),
               std::invalid_argument);
}

TEST(FaultPlanSerde, ErrorsNameTheOffendingLine) {
  try {
    FaultPlan::deserialize("faultplan v1\nseed 1\nevent nonsense\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(RetryPolicy, DefaultsAreNoOp) {
  const fault::RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 1u);
  EXPECT_EQ(policy.timeout, 0.0);
}

TEST(RetryPolicy, BackoffIsExponentialAndCapped) {
  fault::RetryPolicy policy;
  policy.backoff_base = 0.5;
  policy.backoff_factor = 2.0;
  policy.backoff_cap = 3.0;
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(4), 3.0);   // capped
  EXPECT_DOUBLE_EQ(policy.backoff_delay(20), 3.0);  // stays capped
}

TEST(Injector, DeliversHandledEventsInPlanOrder) {
  FaultPlan plan;
  plan.add({5.0, FaultKind::kMachineCrash, 1, 2.0, 0.5});
  plan.add({15.0, FaultKind::kMachineCrash, 2, 2.0, 0.5});

  sim::Simulation sim;
  fault::Injector injector(plan);
  std::vector<std::uint32_t> seen;
  injector.on_kind(FaultKind::kMachineCrash,
                   [&](const FaultEvent& e) { seen.push_back(e.target); });
  sim.set_fault_hook(&injector);
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.ignored(), 0u);
}

TEST(Injector, CountsUnhandledKindsAsIgnored) {
  FaultPlan plan;
  plan.add({1.0, FaultKind::kChurnSpike, 0, 1.0, 0.5});
  plan.add({2.0, FaultKind::kMachineCrash, 0, 1.0, 0.5});

  sim::Simulation sim;
  fault::Injector injector(plan);
  injector.on_kind(FaultKind::kMachineCrash, [](const FaultEvent&) {});
  sim.set_fault_hook(&injector);
  sim.run();
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.ignored(), 1u);
}

TEST(Injector, FiresBeforeDomainEventsAtEqualTime) {
  // The fault hook attaches (and schedules its injections) before domains
  // schedule their arrivals, so at equal timestamps the injection wins the
  // sequence-number tiebreak — windows opened by a fault are already
  // visible to a domain event at the same instant.
  FaultPlan plan;
  plan.add({5.0, FaultKind::kMessageLoss, 0, 1.0, 0.5});

  sim::Simulation sim;
  fault::Injector injector(plan);
  std::vector<std::string> order;
  injector.on_kind(FaultKind::kMessageLoss,
                   [&](const FaultEvent&) { order.push_back("fault"); });
  sim.set_fault_hook(&injector);
  sim.schedule_at(5.0, [&] { order.push_back("domain"); });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"fault", "domain"}));
}

TEST(Injector, MirrorsCountersAndSpansIntoObs) {
  FaultPlan plan;
  plan.add({1.0, FaultKind::kMessageLoss, 0, 1.0, 0.5});
  plan.add({2.0, FaultKind::kMessageLoss, 0, 1.0, 0.5});
  plan.add({3.0, FaultKind::kSlowdown, 0, 1.0, 0.5});

  obs::Observability plane;
  sim::Simulation sim;
  fault::Injector injector(plan, &plane);
  injector.on_kind(FaultKind::kMessageLoss, [](const FaultEvent&) {});
  injector.on_kind(FaultKind::kSlowdown, [](const FaultEvent&) {});
  sim.set_fault_hook(&injector);
  sim.run();
  injector.recovered(plan.events()[0], sim.now());

  EXPECT_EQ(plane.metrics.counter("fault.injected").value(), 3u);
  EXPECT_EQ(plane.metrics.counter("fault.injected.message_loss").value(), 2u);
  EXPECT_EQ(plane.metrics.counter("fault.injected.slowdown").value(), 1u);
  EXPECT_EQ(plane.metrics.counter("fault.recovered").value(), 1u);
  EXPECT_EQ(injector.recovered_count(), 1u);
  EXPECT_GE(plane.tracer.size(), 4u);  // three injections + one recovery
}

TEST(Injector, DetachedHookIsInert) {
  sim::Simulation sim;
  sim.set_fault_hook(nullptr);
  EXPECT_EQ(sim.fault_hook(), nullptr);
  sim.schedule_at(1.0, [] {});
  EXPECT_EQ(sim.run(), 1u);
}

}  // namespace
