// Tests for the P2P swarm/ecosystem simulators, monitors, flashcrowd
// detection, and 2fast (paper Section 6.1).

#include <string_view>

#include <gtest/gtest.h>

#include "atlarge/obs/observability.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/p2p/ecosystem.hpp"
#include "atlarge/p2p/flashcrowd.hpp"
#include "atlarge/p2p/monitor.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/p2p/twofast.hpp"

namespace p2p = atlarge::p2p;
using atlarge::stats::Rng;

namespace {

p2p::SwarmConfig small_swarm() {
  p2p::SwarmConfig config;
  config.content_mb = 100.0;
  config.seed_upload_mbps = 8.0;
  config.peer_upload_mbps = 1.0;
  config.peer_download_mbps = 8.0;
  config.epoch = 5.0;
  config.seed = 1;
  return config;
}

}  // namespace

TEST(Swarm, PeersEventuallyFinish) {
  Rng rng(1);
  const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
  const auto result = p2p::simulate_swarm(small_swarm(), arrivals, 100'000.0);
  EXPECT_EQ(result.peers.size(), arrivals.size());
  EXPECT_GT(result.finished, arrivals.size() * 9 / 10);
  EXPECT_GT(result.mean_download_time, 0.0);
}

TEST(Swarm, CompletionAfterArrival) {
  Rng rng(2);
  const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
  const auto result = p2p::simulate_swarm(small_swarm(), arrivals, 50'000.0);
  for (const auto& p : result.peers) {
    if (p.finished) {
      EXPECT_GT(p.completion, p.arrival);
    }
  }
}

TEST(Swarm, MoreSeedCapacityIsFaster) {
  Rng rng(3);
  const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
  auto slow = small_swarm();
  slow.seed_upload_mbps = 2.0;
  auto fast = small_swarm();
  fast.seed_upload_mbps = 32.0;
  const auto r_slow = p2p::simulate_swarm(slow, arrivals, 100'000.0);
  const auto r_fast = p2p::simulate_swarm(fast, arrivals, 100'000.0);
  EXPECT_LT(r_fast.mean_download_time, r_slow.mean_download_time);
}

TEST(Swarm, AsymmetryMakesSwarmUploadBound) {
  // With ADSL asymmetry the per-leecher rate stays far below the download
  // capacity (the study [62] finding).
  Rng rng(4);
  const auto arrivals = p2p::poisson_arrivals(0.2, 3'000.0, rng);
  auto config = small_swarm();
  config.peer_upload_mbps = 1.0;
  config.peer_download_mbps = 8.0;
  const auto result = p2p::simulate_swarm(config, arrivals, 50'000.0);
  double busy_rate_sum = 0.0;
  std::size_t busy_epochs = 0;
  for (const auto& s : result.series) {
    if (s.leechers >= 5) {
      busy_rate_sum += s.per_leecher_mbps;
      ++busy_epochs;
    }
  }
  ASSERT_GT(busy_epochs, 0u);
  EXPECT_LT(busy_rate_sum / static_cast<double>(busy_epochs),
            config.peer_download_mbps * 0.6);
}

TEST(Swarm, SymmetricPeersSaturateDownload) {
  Rng rng(4);
  std::vector<double> arrivals = {0.0, 1.0, 2.0};
  auto config = small_swarm();
  config.peer_upload_mbps = 8.0;  // symmetric
  config.seed_upload_mbps = 24.0;
  const auto result = p2p::simulate_swarm(config, arrivals, 50'000.0);
  EXPECT_EQ(result.finished, 3u);
}

TEST(Swarm, AbortRateProducesAborts) {
  Rng rng(5);
  const auto arrivals = p2p::poisson_arrivals(0.1, 3'000.0, rng);
  auto config = small_swarm();
  config.abort_rate = 0.002;
  const auto result = p2p::simulate_swarm(config, arrivals, 50'000.0);
  EXPECT_GT(result.aborted, 0u);
  EXPECT_EQ(result.finished + result.aborted, result.peers.size());
}

TEST(Swarm, DeterministicForSeed) {
  Rng rng(6);
  const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
  const auto a = p2p::simulate_swarm(small_swarm(), arrivals, 50'000.0);
  const auto b = p2p::simulate_swarm(small_swarm(), arrivals, 50'000.0);
  EXPECT_DOUBLE_EQ(a.mean_download_time, b.mean_download_time);
  EXPECT_EQ(a.finished, b.finished);
}

TEST(Swarm, FlashcrowdArrivalsSorted) {
  Rng rng(7);
  const auto arrivals =
      p2p::flashcrowd_arrivals(0.01, 20'000.0, 300, 5'000.0, 10.0, rng);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  EXPECT_GT(arrivals.size(), 200u);
}

// ------------------------------------------------------------- flashcrowd --

TEST(Flashcrowd, DetectsInjectedSurge) {
  Rng rng(8);
  const auto arrivals =
      p2p::flashcrowd_arrivals(0.01, 40'000.0, 500, 10'000.0, 5.0, rng);
  auto config = small_swarm();
  config.content_mb = 200.0;
  const auto result = p2p::simulate_swarm(config, arrivals, 40'000.0);
  const auto episodes =
      p2p::detect_flashcrowds(result.series, p2p::FlashcrowdConfig{});
  ASSERT_FALSE(episodes.empty());
  // The detected episode covers the injection time.
  bool covers = false;
  for (const auto& ep : episodes) {
    if (ep.start <= 13'000.0 && ep.end >= 10'500.0) covers = true;
  }
  EXPECT_TRUE(covers);
  EXPECT_GT(episodes.front().magnitude(), 2.0);
}

TEST(Flashcrowd, QuietSwarmHasNoEpisodes) {
  Rng rng(9);
  const auto arrivals = p2p::poisson_arrivals(0.01, 40'000.0, rng);
  const auto result = p2p::simulate_swarm(small_swarm(), arrivals, 40'000.0);
  const auto episodes =
      p2p::detect_flashcrowds(result.series, p2p::FlashcrowdConfig{});
  EXPECT_TRUE(episodes.empty());
}

TEST(Flashcrowd, RatesSagInsideEpisode) {
  // The negative phenomenon of [66]: per-peer rates drop during the
  // flashcrowd.
  Rng rng(10);
  const auto arrivals =
      p2p::flashcrowd_arrivals(0.02, 40'000.0, 800, 10'000.0, 4.0, rng);
  auto config = small_swarm();
  config.content_mb = 300.0;
  const auto result = p2p::simulate_swarm(config, arrivals, 40'000.0);
  const auto episodes =
      p2p::detect_flashcrowds(result.series, p2p::FlashcrowdConfig{});
  ASSERT_FALSE(episodes.empty());
  const auto [inside, outside] =
      p2p::rate_inside_outside(result.series, episodes);
  EXPECT_LT(inside, outside);
}

TEST(Flashcrowd, ShortBlipsFiltered) {
  std::vector<p2p::SwarmSample> series;
  for (int i = 0; i < 100; ++i)
    series.push_back({static_cast<double>(i), 1,
                      static_cast<std::uint32_t>(i == 50 ? 500 : 5), 1.0});
  p2p::FlashcrowdConfig config;
  config.min_duration = 3;
  EXPECT_TRUE(p2p::detect_flashcrowds(series, config).empty());
}

// ---------------------------------------------------------------- twofast --

TEST(TwoFast, GroupOfOneEqualsSolo) {
  Rng rng(11);
  const auto arrivals = p2p::poisson_arrivals(0.05, 5'000.0, rng);
  const auto config = small_swarm();
  const auto result = p2p::simulate_swarm(config, arrivals, 60'000.0);
  const auto outcome =
      p2p::evaluate_two_fast(config, result.series, 1'000.0, 1);
  EXPECT_DOUBLE_EQ(outcome.speedup, 1.0);
}

TEST(TwoFast, CollaborationSpeedsUpAsymmetricDownloads) {
  Rng rng(12);
  const auto arrivals = p2p::poisson_arrivals(0.1, 10'000.0, rng);
  const auto config = small_swarm();  // asymmetric: up 1, down 8
  const auto result = p2p::simulate_swarm(config, arrivals, 60'000.0);
  const auto outcome =
      p2p::evaluate_two_fast(config, result.series, 1'000.0, 4);
  EXPECT_GT(outcome.speedup, 1.5);
  EXPECT_LT(outcome.collector_download_time, outcome.solo_download_time);
}

TEST(TwoFast, SpeedupCappedByDownloadPipe) {
  Rng rng(13);
  const auto arrivals = p2p::poisson_arrivals(0.1, 10'000.0, rng);
  const auto config = small_swarm();
  const auto result = p2p::simulate_swarm(config, arrivals, 60'000.0);
  const auto big =
      p2p::evaluate_two_fast(config, result.series, 1'000.0, 1'000);
  // No matter the group size, the collector can't beat its pipe: speedup
  // bounded by download/fair-share ratio.
  EXPECT_LE(big.speedup,
            config.peer_download_mbps / 0.1);  // generous bound
  EXPECT_GT(big.speedup, 1.0);
}

// -------------------------------------------------------------- ecosystem --

TEST(Ecosystem, BuildsCatalogAndSwarms) {
  p2p::EcosystemConfig config;
  config.titles = 12;
  config.total_peers = 600.0;
  config.horizon = 20'000.0;
  config.swarm = small_swarm();
  const auto eco = p2p::simulate_ecosystem(config);
  EXPECT_EQ(eco.catalog.size(), 12u);
  EXPECT_GE(eco.swarms.size(), 12u);  // aliased titles add swarms
  for (const auto& s : eco.swarms) {
    EXPECT_FALSE(s.trackers.empty());
    EXPECT_EQ(s.trackers.front(), 0u);  // anchored on the honest tracker
  }
}

TEST(Ecosystem, ZipfPopularityHeadHeavy) {
  p2p::EcosystemConfig config;
  config.titles = 20;
  config.total_peers = 1'000.0;
  config.swarm = small_swarm();
  const auto eco = p2p::simulate_ecosystem(config);
  EXPECT_GT(eco.catalog[0].popularity, eco.catalog[10].popularity);
}

TEST(Ecosystem, TruePeersNonNegative) {
  p2p::EcosystemConfig config;
  config.titles = 8;
  config.total_peers = 400.0;
  config.horizon = 10'000.0;
  config.swarm = small_swarm();
  const auto eco = p2p::simulate_ecosystem(config);
  for (double t = 0.0; t < config.horizon; t += 1'000.0)
    EXPECT_GE(eco.true_peers_at(t), 0.0);
  EXPECT_GT(eco.giant_swarm_peak(), 0u);
}

// ---------------------------------------------------------------- monitor --

namespace {

p2p::EcosystemConfig monitored_config() {
  p2p::EcosystemConfig config;
  config.titles = 15;
  config.total_peers = 1'500.0;
  config.horizon = 20'000.0;
  config.trackers = 6;
  config.spam_tracker_fraction = 0.5;
  config.spam_inflation = 3.0;
  config.swarm = small_swarm();
  config.seed = 3;
  return config;
}

}  // namespace

TEST(Monitor, FullCoverageDedupNoSpamIsUnbiased) {
  auto config = monitored_config();
  config.spam_tracker_fraction = 0.0;
  const auto eco = p2p::simulate_ecosystem(config);
  p2p::MonitorConfig monitor;
  monitor.tracker_coverage = 1.0;
  monitor.deduplicate = true;
  const auto report = p2p::scrape(eco, config, monitor);
  EXPECT_NEAR(report.mean_abs_bias, 0.0, 1e-9);
}

TEST(Monitor, DuplicationInflatesWithoutDedup) {
  auto config = monitored_config();
  config.spam_tracker_fraction = 0.0;
  const auto eco = p2p::simulate_ecosystem(config);
  p2p::MonitorConfig naive;
  naive.tracker_coverage = 1.0;
  naive.deduplicate = false;
  const auto report = p2p::scrape(eco, config, naive);
  EXPECT_GT(report.mean_bias, 0.0);  // over-counts multi-tracker swarms
}

TEST(Monitor, SpamTrackersInflateEvenWithDedup) {
  const auto config = monitored_config();
  const auto eco = p2p::simulate_ecosystem(config);
  p2p::MonitorConfig monitor;
  monitor.tracker_coverage = 1.0;
  monitor.deduplicate = true;
  const auto report = p2p::scrape(eco, config, monitor);
  EXPECT_GT(report.mean_bias, 0.0);
}

TEST(Monitor, LowCoverageLosesNothingAnchoredOnTracker0) {
  // All swarms announce on tracker 0, so even minimal coverage sees every
  // swarm at least once (the design of BTWorld's anchor scraping).
  auto config = monitored_config();
  config.spam_tracker_fraction = 0.0;
  const auto eco = p2p::simulate_ecosystem(config);
  p2p::MonitorConfig monitor;
  monitor.tracker_coverage = 0.0;
  monitor.deduplicate = true;
  const auto report = p2p::scrape(eco, config, monitor);
  EXPECT_EQ(report.scraped_trackers.size(), 1u);
  EXPECT_NEAR(report.mean_abs_bias, 0.0, 1e-9);
}

TEST(Monitor, SamplesCarryTruth) {
  const auto config = monitored_config();
  const auto eco = p2p::simulate_ecosystem(config);
  p2p::MonitorConfig monitor;
  const auto report = p2p::scrape(eco, config, monitor);
  ASSERT_FALSE(report.samples.empty());
  for (const auto& s : report.samples) {
    EXPECT_GE(s.observed_peers, 0.0);
    EXPECT_GE(s.true_peers, 0.0);
  }
}

TEST(Observability, SwarmEmitsCensusAndDownloadTelemetry) {
  atlarge::obs::Observability plane;
  auto config = small_swarm();
  config.abort_rate = 1e-4;
  config.obs = &plane;
  Rng rng(17);
  const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
  const auto result = p2p::simulate_swarm(config, arrivals, 50'000.0);

  const auto& counters = plane.metrics.counters();
  EXPECT_EQ(counters.at("p2p.finished").value(), result.finished);
  EXPECT_EQ(counters.at("p2p.aborted").value(), result.aborted);
  EXPECT_EQ(plane.metrics.histograms().at("p2p.download_time").count(),
            result.finished);

  bool saw_swarm = false;
  for (const auto& rec : plane.tracer.records())
    if (std::string_view(rec.name) == "p2p.swarm") saw_swarm = true;
  EXPECT_TRUE(saw_swarm);

  // Observation must not perturb the simulation.
  auto bare = config;
  bare.obs = nullptr;
  const auto unobserved = p2p::simulate_swarm(bare, arrivals, 50'000.0);
  EXPECT_EQ(unobserved.finished, result.finished);
  EXPECT_DOUBLE_EQ(unobserved.mean_download_time, result.mean_download_time);
}

// ----------------------------------------------------- fault injection --

TEST(Faults, ChurnSpikeEvictsNewestLeechers) {
  const std::vector<double> arrivals = {0.0, 10.0, 20.0};
  atlarge::fault::FaultPlan plan;
  plan.add({50.0, atlarge::fault::FaultKind::kChurnSpike, 0, 0.0, 0.5});
  auto config = small_swarm();
  config.faults = &plan;
  const auto result = p2p::simulate_swarm(config, arrivals, 100'000.0);
  // floor(0.5 x 3 leechers) = 1 victim, evicted newest-first at the epoch
  // boundary that reaches the event time.
  EXPECT_EQ(result.churned, 1u);
  ASSERT_EQ(result.peers.size(), 3u);
  EXPECT_FALSE(result.peers[2].finished);
  EXPECT_DOUBLE_EQ(result.peers[2].departure, 50.0);
  EXPECT_TRUE(result.peers[0].finished);
  EXPECT_TRUE(result.peers[1].finished);
  EXPECT_EQ(result.finished, 2u);
}

TEST(Faults, FullMagnitudeSpikeDrainsTheSwarm) {
  const std::vector<double> arrivals = {0.0, 5.0, 10.0};
  atlarge::fault::FaultPlan plan;
  plan.add({30.0, atlarge::fault::FaultKind::kChurnSpike, 0, 0.0, 1.0});
  auto config = small_swarm();
  config.faults = &plan;
  const auto result = p2p::simulate_swarm(config, arrivals, 100'000.0);
  EXPECT_EQ(result.churned, 3u);
  EXPECT_EQ(result.finished, 0u);
  for (const auto& peer : result.peers) EXPECT_FALSE(peer.finished);
}

TEST(Faults, NonChurnKindsAreIgnoredBySwarm) {
  const std::vector<double> arrivals = {0.0, 10.0, 20.0};
  atlarge::fault::FaultPlan plan;
  plan.add({30.0, atlarge::fault::FaultKind::kMachineCrash, 0, 10.0, 0.5});
  plan.add({40.0, atlarge::fault::FaultKind::kSlowdown, 0, 10.0, 0.5});
  auto config = small_swarm();
  const auto clean = p2p::simulate_swarm(config, arrivals, 100'000.0);
  config.faults = &plan;
  const auto faulted = p2p::simulate_swarm(config, arrivals, 100'000.0);
  EXPECT_EQ(faulted.churned, 0u);
  EXPECT_EQ(faulted.finished, clean.finished);
  EXPECT_EQ(faulted.mean_download_time, clean.mean_download_time);
  EXPECT_EQ(faulted.peak_swarm_size, clean.peak_swarm_size);
}
