// Continuous-telemetry plane tests: the percentile Digest, the TimeSeries
// recorder, the kernel sampling hook, the SLO burn-rate monitor, and the
// causal FlightRecorder — plus the determinism property the whole plane
// promises: every telemetry artifact is a pure function of sim-time state,
// byte-identical across queue backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/obs/flight.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/obs/slo.hpp"
#include "atlarge/obs/timeseries.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/generators.hpp"

namespace {

using namespace atlarge;

// ----------------------------------------------------------------- digest --

TEST(Digest, EmptyDigestIsInert) {
  obs::Digest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.quantile(0.5), 0.0);
  EXPECT_EQ(d.min(), 0.0);
  EXPECT_EQ(d.max(), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.serialize(), "");
  obs::Digest round;
  EXPECT_TRUE(obs::Digest::deserialize("", round));
  EXPECT_EQ(round, d);
}

TEST(Digest, QuantilesWithinRelativeErrorBound) {
  stats::Rng rng(41);
  std::vector<double> values(20'000);
  obs::Digest d;
  for (auto& v : values) {
    v = rng.uniform(1e-3, 1e3);
    d.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = stats::quantile(values, q);
    const double approx = d.quantile(q);
    // Upper-edge estimate: never below the exact quantile, and at most one
    // sub-bucket (1/kSub relative) above it.
    EXPECT_GE(approx, exact * (1.0 - 1e-12)) << "q=" << q;
    EXPECT_LE(approx, exact * (1.0 + 1.0 / obs::Digest::kSub) + 1e-12)
        << "q=" << q;
  }
  // The extreme quantiles resolve to bucket upper edges clamped to the
  // observed range: q=0 can sit one sub-bucket above the true min.
  EXPECT_GE(d.quantile(0.0), d.min());
  EXPECT_LE(d.quantile(0.0), d.min() * (1.0 + 1.0 / obs::Digest::kSub));
  EXPECT_EQ(d.quantile(1.0), d.max());
}

TEST(Digest, MergeEqualsCombinedStream) {
  stats::Rng rng(42);
  obs::Digest a;
  obs::Digest b;
  obs::Digest combined;
  for (int i = 0; i < 5'000; ++i) {
    const double v = rng.uniform(1e-2, 1e4);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  obs::Digest merged = a;
  merged.merge(b);
  // Bucket state, counts, and extrema are exactly those of the combined
  // stream; the scalar sum can differ in the last bits because IEEE
  // addition rounds per insertion order.
  EXPECT_EQ(merged.buckets(), combined.buckets());
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
  EXPECT_NEAR(merged.sum(), combined.sum(), combined.sum() * 1e-12);
  // Merge is commutative bitwise: a+b and b+a round identically, so the
  // campaign aggregation's merge order cannot change the result.
  obs::Digest reversed = b;
  reversed.merge(a);
  EXPECT_EQ(reversed, merged);
  EXPECT_EQ(reversed.serialize(), merged.serialize());
}

TEST(Digest, BucketStateIsInsertionOrderInvariant) {
  stats::Rng rng(43);
  std::vector<double> values(2'000);
  for (auto& v : values) v = rng.uniform(1e-3, 1e3);
  obs::Digest forward;
  for (const double v : values) forward.add(v);
  obs::Digest shuffled;
  std::mt19937 shuffle_rng(7);
  std::shuffle(values.begin(), values.end(), shuffle_rng);
  for (const double v : values) shuffled.add(v);
  // Everything that feeds quantiles is order-invariant (the scalar sum
  // rounds per IEEE addition order, which is why determinism claims are
  // always about *fixed* evaluation orders, not arbitrary ones).
  EXPECT_EQ(forward.buckets(), shuffled.buckets());
  EXPECT_EQ(forward.count(), shuffled.count());
  EXPECT_EQ(forward.min(), shuffled.min());
  EXPECT_EQ(forward.max(), shuffled.max());
  for (const double q : {0.5, 0.95, 0.99, 0.999})
    EXPECT_EQ(forward.quantile(q), shuffled.quantile(q));
}

TEST(Digest, SerializeRoundTripsBitwise) {
  stats::Rng rng(44);
  obs::Digest d;
  for (int i = 0; i < 1'000; ++i) d.add(rng.uniform(1e-6, 1e9));
  d.add(0.0);
  d.add(-3.5);
  d.add(1e300);  // overflow bucket, still finite
  const std::string text = d.serialize();
  obs::Digest round;
  ASSERT_TRUE(obs::Digest::deserialize(text, round));
  EXPECT_EQ(round, d);
  EXPECT_EQ(round.serialize(), text);
}

TEST(Digest, DeserializeRejectsMalformedInput) {
  obs::Digest out;
  for (const char* bad :
       {"nonsense", "d2;1;1;1;1;1;", "d1;1;1", "d1;1;1;x;0;0;",
        "d1;1;1;1;0;0;9999999:1,", "d1;2;2;3;1;2;0:1"}) {
    EXPECT_FALSE(obs::Digest::deserialize(bad, out)) << bad;
    EXPECT_TRUE(out.empty()) << bad;
  }
}

TEST(Digest, NonFiniteAndNonPositiveValuesAreContained) {
  obs::Digest d;
  d.add(std::nan(""));
  d.add(std::numeric_limits<double>::infinity());
  d.add(0.0);
  d.add(-12.0);
  d.add(4.0);
  EXPECT_EQ(d.count(), 5u);
  // min/max/mean only see values with a usable magnitude.
  EXPECT_EQ(d.min(), -12.0);
  EXPECT_EQ(d.max(), 4.0);
  const std::string text = d.serialize();
  obs::Digest round;
  ASSERT_TRUE(obs::Digest::deserialize(text, round));
  EXPECT_EQ(round, d);
}

TEST(Digest, CountAboveIsConservativeAndEdgeExact) {
  obs::Digest d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  // Above the max: nothing. Below the min: everything.
  EXPECT_EQ(d.count_above(1e6), 0u);
  EXPECT_EQ(d.count_above(0.5), 100u);
  // Bucket resolution: the straddling bucket counts as above, so the
  // result can only overestimate the exact strictly-above count.
  for (const double x : {1.0, 10.0, 50.0, 99.0}) {
    const auto exact_above =
        static_cast<std::uint64_t>(100.0 - std::floor(x));
    EXPECT_GE(d.count_above(x), exact_above) << x;
  }
  // A power of two is both a bucket upper edge and the inclusive lower
  // edge of the next bucket (frexp convention), so count_above(64) counts
  // exactly the values >= 64: the 37 values {64, 65, ..., 100}.
  EXPECT_EQ(d.count_above(64.0), 37u);
}

// ------------------------------------------------------------- timeseries --

TEST(TimeSeries, RecordsTrackedInstrumentsPerSample) {
  obs::Registry registry;
  auto& requests = registry.counter("requests");
  auto& depth = registry.gauge("depth");
  obs::TimeSeries series(1.0, 16);
  series.track_counter("requests", requests);
  series.track_gauge("depth", depth);
  ASSERT_EQ(series.columns(), 2u);

  requests.add(3);
  depth.set(7.0);
  series.sample(1.0);
  requests.add(2);
  depth.set(4.0);
  series.sample(2.0);

  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.time_at(0), 1.0);
  EXPECT_EQ(series.value_at(0, 0), 3.0);
  EXPECT_EQ(series.value_at(0, 1), 7.0);
  EXPECT_EQ(series.time_at(1), 2.0);
  EXPECT_EQ(series.value_at(1, 0), 5.0);  // counters are cumulative
  EXPECT_EQ(series.value_at(1, 1), 4.0);
}

TEST(TimeSeries, ColumnSetFreezesAtFirstSample) {
  obs::Registry registry;
  obs::TimeSeries series(1.0, 8);
  series.track_counter("a", registry.counter("a"));
  series.sample(1.0);
  series.track_counter("late", registry.counter("late"));  // ignored
  series.sample(2.0);
  EXPECT_EQ(series.columns(), 1u);
  ASSERT_EQ(series.names().size(), 1u);
  EXPECT_EQ(series.names()[0], "a");
}

TEST(TimeSeries, RingWrapKeepsNewestRowsAndCountsDropped) {
  obs::Registry registry;
  auto& c = registry.counter("c");
  obs::TimeSeries series(1.0, 4);
  series.track_counter("c", c);
  for (int i = 1; i <= 10; ++i) {
    c.add(1);
    series.sample(static_cast<double>(i));
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.dropped(), 6u);
  EXPECT_EQ(series.time_at(0), 7.0);  // oldest retained row
  EXPECT_EQ(series.time_at(3), 10.0);
  EXPECT_EQ(series.value_at(3, 0), 10.0);
}

TEST(TimeSeries, CsvAndJsonExportsAreWellFormed) {
  obs::Registry registry;
  auto& c = registry.counter("events");
  obs::TimeSeries series(0.5, 8);
  series.track_counter("events", c);
  c.add(1);
  series.sample(0.5);
  c.add(1);
  series.sample(1.0);

  const std::string csv = series.csv();
  EXPECT_EQ(csv.find("time,events\n"), 0u);
  EXPECT_NE(csv.find("\n0.5,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\n1,2\n"), std::string::npos);

  const std::string json = series.json();
  EXPECT_NE(json.find("\"interval\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"time\",\"events\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"rows\":[[0.5,1],[1,2]]"), std::string::npos);
}

// ---------------------------------------------------- kernel sampling hook --

/// Records every boundary, plus the value of an external cursor at sample
/// time — the tool for proving boundaries fire before the events they
/// precede.
struct RecordingHook final : sim::SamplingHook {
  std::vector<double> boundaries;
  std::vector<int> cursor_at_sample;
  const int* cursor = nullptr;

  void on_sample(sim::Time now) override {
    boundaries.push_back(now);
    if (cursor != nullptr) cursor_at_sample.push_back(*cursor);
  }
};

TEST(SamplingHook, BoundariesFireBeforeEventsAtOrPastThem) {
  sim::Simulation s;
  RecordingHook hook;
  int fired = 0;
  hook.cursor = &fired;
  s.set_sampling_hook(&hook, 1.0);
  for (const double t : {0.25, 0.75, 1.0, 1.5, 2.25})
    s.schedule_at(t, [&fired] { ++fired; });
  s.run();
  // Boundary 1.0 fires before the event AT 1.0 (it observes only events
  // strictly earlier); boundary 2.0 before the 2.25 event.
  ASSERT_EQ(hook.boundaries, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(hook.cursor_at_sample, (std::vector<int>{2, 4}));
  EXPECT_EQ(fired, 5);
}

TEST(SamplingHook, RunUntilEmitsTrailingBoundaries) {
  sim::Simulation s;
  RecordingHook hook;
  s.set_sampling_hook(&hook, 2.0);
  s.schedule_at(3.0, [] {});
  s.run_until(10.0);
  // 2.0 before the event, then the idle tail 4,6,8,10 after the queue
  // drains, so a recorded series covers the whole horizon.
  EXPECT_EQ(hook.boundaries, (std::vector<double>{2.0, 4.0, 6.0, 8.0, 10.0}));
  EXPECT_EQ(s.now(), 10.0);
}

TEST(SamplingHook, AttachmentAlignsToAbsoluteGrid) {
  sim::Simulation s;
  s.schedule_at(2.7, [] {});
  s.run();
  ASSERT_EQ(s.now(), 2.7);
  RecordingHook hook;
  s.set_sampling_hook(&hook, 1.0);  // mid-run attach at t=2.7
  s.schedule_at(4.5, [] {});
  s.run();
  // First boundary is the next absolute multiple (3.0), not 2.7 + 1.0.
  EXPECT_EQ(hook.boundaries, (std::vector<double>{3.0, 4.0}));
}

TEST(SamplingHook, BoundaryStreamIdenticalAcrossQueueBackends) {
  const auto run = [](sim::QueueKind kind) {
    sim::Simulation s(kind);
    RecordingHook hook;
    int fired = 0;
    hook.cursor = &fired;
    s.set_sampling_hook(&hook, 0.5);
    stats::Rng rng(9);
    for (int i = 0; i < 500; ++i)
      s.schedule_at(rng.uniform(0.0, 40.0), [&fired] { ++fired; });
    s.run_until(50.0);
    return std::pair{hook.boundaries, hook.cursor_at_sample};
  };
  const auto heap = run(sim::QueueKind::kHeap);
  const auto calendar = run(sim::QueueKind::kCalendar);
  EXPECT_EQ(heap.first, calendar.first);
  EXPECT_EQ(heap.second, calendar.second);
  EXPECT_EQ(heap.first.size(), 100u);  // 0.5 .. 50.0
}

// ------------------------------------------------------------ slo monitor --

TEST(SloMonitor, ErrorRatioBurnMatchesHandComputation) {
  obs::Registry registry;
  auto& bad = registry.counter("bad");
  auto& total = registry.counter("total");
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.name = "avail";
  spec.kind = obs::SloKind::kErrorRatio;
  spec.objective = 0.9;  // budget 0.1
  spec.bad = &bad;
  spec.total = &total;
  spec.fast = {16.0, 4.0};
  spec.slow = {160.0, 1.0};
  monitor.add(spec);

  // 100 requests, 50 bad, in one evaluation: bad fraction 0.5, burn 5.
  total.add(100);
  bad.add(50);
  monitor.advance(1.0);
  EXPECT_DOUBLE_EQ(monitor.burn_fast(0), 5.0);
  EXPECT_DOUBLE_EQ(monitor.burn_slow(0), 5.0);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].time, 1.0);
  EXPECT_EQ(monitor.alerts()[0].name, "avail");
  EXPECT_TRUE(monitor.firing(0));
}

TEST(SloMonitor, AlertsOnlyOnRisingEdges) {
  obs::Registry registry;
  auto& bad = registry.counter("bad");
  auto& total = registry.counter("total");
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.kind = obs::SloKind::kErrorRatio;
  spec.objective = 0.9;
  spec.bad = &bad;
  spec.total = &total;
  spec.fast = {4.0, 4.0};
  spec.slow = {8.0, 2.0};
  monitor.add(spec);

  // Burn hard for several consecutive boundaries: one alert, not many.
  for (int i = 1; i <= 4; ++i) {
    total.add(10);
    bad.add(10);
    monitor.advance(static_cast<double>(i));
  }
  EXPECT_EQ(monitor.alerts().size(), 1u);
  EXPECT_TRUE(monitor.firing(0));

  // Quiet long enough for both windows to forget, then burn again: the
  // second rising edge appends a second alert.
  for (int i = 5; i <= 30; ++i) {
    total.add(10);  // healthy traffic
    monitor.advance(static_cast<double>(i));
  }
  EXPECT_FALSE(monitor.firing(0));
  total.add(10);
  bad.add(10);
  monitor.advance(31.0);
  total.add(10);
  bad.add(10);
  monitor.advance(32.0);
  EXPECT_EQ(monitor.alerts().size(), 2u);
}

TEST(SloMonitor, SlowWindowSuppressesShortBlips) {
  obs::Registry registry;
  auto& bad = registry.counter("bad");
  auto& total = registry.counter("total");
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.kind = obs::SloKind::kErrorRatio;
  spec.objective = 0.9;
  spec.bad = &bad;
  spec.total = &total;
  spec.fast = {4.0, 2.0};
  spec.slow = {64.0, 5.0};  // needs half the traffic bad over a minute
  monitor.add(spec);

  // Long healthy history, then one fully-bad boundary: the fast window
  // burns but the slow window dilutes the blip below threshold.
  for (int i = 1; i <= 60; ++i) {
    total.add(10);
    monitor.advance(static_cast<double>(i));
  }
  total.add(10);
  bad.add(10);
  monitor.advance(61.0);
  EXPECT_GE(monitor.burn_fast(0), 2.0);
  EXPECT_LT(monitor.burn_slow(0), 5.0);
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_FALSE(monitor.firing(0));
}

TEST(SloMonitor, LatencyAboveCountsDigestTail) {
  obs::Registry registry;
  auto& latency = registry.digest("latency");
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.kind = obs::SloKind::kLatencyAbove;
  spec.objective = 0.5;  // budget 0.5: burn = 2 * bad fraction
  spec.threshold = 8.0;  // a bucket upper edge: count_above is exact
  spec.digest = &latency;
  spec.fast = {8.0, 1.5};
  spec.slow = {16.0, 1.5};
  monitor.add(spec);

  for (int i = 0; i < 10; ++i) latency.add(1.0);   // fast
  for (int i = 0; i < 30; ++i) latency.add(100.0); // slow: 75% above
  monitor.advance(1.0);
  EXPECT_DOUBLE_EQ(monitor.burn_fast(0), 1.5);
  ASSERT_EQ(monitor.alerts().size(), 1u);
}

TEST(SloMonitor, GaugeAboveBudgetsTimeNotEvents) {
  obs::Registry registry;
  auto& depth = registry.gauge("depth");
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.kind = obs::SloKind::kGaugeAbove;
  spec.objective = 0.5;
  spec.threshold = 10.0;
  spec.gauge = &depth;
  spec.fast = {4.0, 1.9};
  spec.slow = {4.0, 1.9};
  monitor.add(spec);

  // One of two evaluations above the bound: bad fraction 0.5, burn 1.0.
  depth.set(5.0);
  monitor.advance(1.0);
  depth.set(50.0);
  monitor.advance(2.0);
  EXPECT_DOUBLE_EQ(monitor.burn_fast(0), 1.0);
  EXPECT_TRUE(monitor.alerts().empty());
  // Keep the gauge above the bound until the healthy first evaluation
  // ages out of the 4-second window: burn reaches 2.0 and alerts.
  monitor.advance(3.0);
  monitor.advance(4.0);
  monitor.advance(5.0);
  EXPECT_DOUBLE_EQ(monitor.burn_fast(0), 2.0);
  EXPECT_EQ(monitor.alerts().size(), 1u);
}

TEST(SloMonitor, RejectsMalformedSpecs) {
  obs::Registry registry;
  obs::SloMonitor monitor;
  obs::SloSpec spec;  // kErrorRatio with no counters wired
  EXPECT_THROW(monitor.add(spec), std::invalid_argument);
  spec.bad = &registry.counter("bad");
  spec.total = &registry.counter("total");
  spec.objective = 1.0;  // no budget left
  EXPECT_THROW(monitor.add(spec), std::invalid_argument);
  spec.objective = 0.99;
  spec.fast.span = 0.0;
  EXPECT_THROW(monitor.add(spec), std::invalid_argument);
  spec.fast.span = 60.0;
  EXPECT_EQ(monitor.add(spec), 0u);
  EXPECT_EQ(monitor.size(), 1u);
}

TEST(SloMonitor, JsonSnapshotShape) {
  obs::Registry registry;
  obs::SloMonitor monitor;
  obs::SloSpec spec;
  spec.name = "avail";
  spec.bad = &registry.counter("bad");
  spec.total = &registry.counter("total");
  monitor.add(spec);
  const std::string json = monitor.json();
  EXPECT_NE(json.find("\"slos\":[{\"name\":\"avail\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"error_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\":[]"), std::string::npos);
}

// -------------------------------------------------------- flight recorder --

TEST(FlightRecorder, PerEntityRingKeepsLastN) {
  obs::FlightRecorder flight(4);
  const std::size_t machine = flight.entity("machine/0");
  for (int i = 1; i <= 10; ++i)
    flight.record(machine, static_cast<double>(i), "tick",
                  static_cast<double>(i));
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.dropped(), 6u);
  EXPECT_EQ(flight.last_seq(machine), 10u);
  const std::string json = flight.chrome_json();
  // Only the last four records survive in the dump (ts is sim seconds in
  // trace microseconds; the trailing comma pins the full number).
  EXPECT_EQ(json.find("\"ts\":1000000,"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":6000000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":7000000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10000000,"), std::string::npos);
}

TEST(FlightRecorder, CausalChainsSpanEntities) {
  obs::FlightRecorder flight;
  const std::size_t machine = flight.entity("machine/0");
  const std::size_t job = flight.entity("job/7");
  const std::uint64_t crash = flight.record(machine, 10.0, "crash", 60.0);
  const std::uint64_t requeue =
      flight.record(job, 10.0, "requeue", 7.0, crash);
  EXPECT_GT(requeue, crash);
  EXPECT_EQ(flight.last_seq(job), requeue);
  const std::string json = flight.chrome_json();
  EXPECT_NE(json.find("\"name\":\"machine/0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job/7\""), std::string::npos);
  // The requeue's args carry the crash's seq as its cause.
  const std::string expect_cause =
      "\"cause\":" + std::to_string(crash);
  EXPECT_NE(json.find(expect_cause), std::string::npos);
}

TEST(FlightRecorder, EntityLookupIsIdempotent) {
  obs::FlightRecorder flight;
  EXPECT_EQ(flight.entity("a"), flight.entity("a"));
  EXPECT_NE(flight.entity("a"), flight.entity("b"));
  EXPECT_EQ(flight.entities(), 2u);
}

// -------------------------------------------- plane + domain determinism --

/// One faulted cluster-scheduling run with the full telemetry plane
/// attached; returns every telemetry artifact concatenated, for byte
/// comparison across configurations.
std::string sched_telemetry_fingerprint() {
  const auto env = cluster::make_homogeneous_cluster("tel", 4, 2);
  workflow::WorkloadSpec wspec;
  wspec.cls = workflow::WorkloadClass::kIndustrial;
  wspec.jobs = 15;
  wspec.horizon = 1'000.0;
  wspec.seed = 3;
  const auto workload = workflow::generate(wspec);

  fault::FaultSpec fspec;
  fspec.rate = 20.0;
  fspec.horizon = 1'000.0;
  fspec.seed = 5;
  fspec.targets = 4;
  fspec.mean_duration = 50.0;
  fspec.kinds = {fault::FaultKind::kMachineCrash};
  const auto plan = fault::FaultPlan::generate(fspec);

  obs::Observability plane(0);
  obs::TimeSeries series(10.0);
  series.track_counter("placed",
                       plane.metrics.counter("sched.tasks_placed"));
  series.track_gauge("queue", plane.metrics.gauge("sched.eligible_queue"));
  plane.attach_timeseries(&series);
  obs::SloMonitor slo;
  obs::SloSpec spec;
  spec.name = "wait";
  spec.kind = obs::SloKind::kLatencyAbove;
  spec.objective = 0.5;
  spec.threshold = 64.0;
  spec.digest = &plane.metrics.digest("sched.task_wait");
  spec.fast = {100.0, 1.2};
  spec.slow = {400.0, 1.1};
  slo.add(spec);
  plane.attach_slo(&slo);
  obs::FlightRecorder flight;
  plane.attach_flight(&flight);

  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.faults = &plan;
  options.obs = &plane;
  const auto r = sched::simulate(env, workload, policy, options);

  return series.csv() + "\n#\n" + slo.json() + "\n#\n" +
         flight.chrome_json() + "\n#\n" + r.wait_digest.serialize() +
         "\n#\n" + plane.metrics.json();
}

TEST(TelemetryDeterminism, ArtifactsByteIdenticalAcrossRunsAndBackends) {
  const std::string heap_a = sched_telemetry_fingerprint();
  const std::string heap_b = sched_telemetry_fingerprint();
  EXPECT_EQ(heap_a, heap_b) << "telemetry is not a pure function of inputs";
  sim::set_default_queue_kind(sim::QueueKind::kCalendar);
  const std::string calendar = sched_telemetry_fingerprint();
  sim::set_default_queue_kind(sim::QueueKind::kHeap);
  EXPECT_EQ(heap_a, calendar)
      << "telemetry differs between queue backends";
}

TEST(TelemetryDeterminism, DomainResultDigestsIndependentOfPlane) {
  // The additive digest/p999 fields in domain results are built in
  // finalize() from the exact per-job vectors, so they must be identical
  // whether or not an observability plane is attached.
  const auto run = [](obs::Observability* plane) {
    const auto env = cluster::make_homogeneous_cluster("tel", 4, 2);
    workflow::WorkloadSpec wspec;
    wspec.cls = workflow::WorkloadClass::kIndustrial;
    wspec.jobs = 12;
    wspec.horizon = 800.0;
    wspec.seed = 9;
    const auto workload = workflow::generate(wspec);
    sched::SjfPolicy policy;
    sched::SimOptions options;
    options.obs = plane;
    return sched::simulate(env, workload, policy, options);
  };
  obs::Observability plane(0);
  const auto bare = run(nullptr);
  const auto observed = run(&plane);
  EXPECT_EQ(bare.wait_digest.serialize(), observed.wait_digest.serialize());
  EXPECT_EQ(bare.slowdown_digest.serialize(),
            observed.slowdown_digest.serialize());
  EXPECT_EQ(bare.p999_slowdown, observed.p999_slowdown);
  // The plane's hot-path registry digest records every task placement
  // (finer granularity than the per-job result digest): one observation
  // per placed task, exactly.
  EXPECT_EQ(plane.metrics.digest("sched.task_wait").count(),
            plane.metrics.counter("sched.tasks_placed").value());
  EXPECT_GE(plane.metrics.digest("sched.task_wait").count(),
            observed.wait_digest.count());
}

TEST(TelemetryPlane, FirstAlertDumpsFlightRecorderOnce) {
  obs::Observability plane(0);
  obs::SloMonitor slo;
  obs::SloSpec spec;
  spec.name = "always-bad";
  spec.kind = obs::SloKind::kGaugeAbove;
  spec.objective = 0.0;  // budget 1.0
  spec.threshold = 0.5;
  spec.gauge = &plane.metrics.gauge("g");
  spec.fast = {10.0, 0.9};
  spec.slow = {10.0, 0.9};
  slo.add(spec);
  plane.attach_slo(&slo);
  obs::FlightRecorder flight;
  plane.attach_flight(&flight);
  const std::string dump_path =
      testing::TempDir() + "telemetry_alert_dump.json";
  plane.set_alert_dump_path(dump_path);

  plane.metrics.gauge("g").set(1.0);
  flight.record(flight.entity("svc"), 0.5, "degraded");
  EXPECT_FALSE(plane.alert_dumped());
  plane.sample_now(1.0);
  EXPECT_EQ(slo.alerts().size(), 1u);
  EXPECT_TRUE(plane.alert_dumped());
  std::FILE* f = std::fopen(dump_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(dump_path.c_str());
}

}  // namespace
