// Tests for the vicissitude phenomenon analysis (paper Section 2.5, [38]).

#include <gtest/gtest.h>

#include "atlarge/workflow/vicissitude.hpp"

namespace wf = atlarge::workflow;

namespace {

wf::PipelineConfig near_critical() {
  wf::PipelineConfig config;
  config.stages = 5;
  config.horizon = 20'000.0;
  config.input_rate = 100.0;
  config.stage_capacity = 140.0;  // headroom lets backlogs drain
  config.capacity_noise = 0.35;  // stragglers/interference
  config.seed = 3;
  return config;
}

}  // namespace

TEST(Pipeline, ProducesOneSamplePerWindow) {
  auto config = near_critical();
  config.horizon = 1'000.0;
  config.window = 50.0;
  const auto samples = wf::simulate_pipeline(config);
  EXPECT_EQ(samples.size(), 20u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.utilization.size(), config.stages);
    for (double u : s.utilization) EXPECT_GE(u, 0.0);
  }
}

TEST(Pipeline, DeterministicForSeed) {
  const auto a = wf::simulate_pipeline(near_critical());
  const auto b = wf::simulate_pipeline(near_critical());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t s = 0; s < a[i].utilization.size(); ++s)
      EXPECT_DOUBLE_EQ(a[i].utilization[s], b[i].utilization[s]);
  }
}

TEST(Pipeline, OverProvisionedStaysUnsaturated) {
  auto config = near_critical();
  config.stage_capacity = 1'000.0;  // 10x headroom
  config.capacity_noise = 0.0;
  config.burst_factor = 1.0;
  const auto samples = wf::simulate_pipeline(config);
  for (const auto& s : samples) {
    for (double u : s.utilization) EXPECT_LT(u, 0.95);
  }
}

TEST(Vicissitude, DetectedInNearCriticalNoisyPipeline) {
  // The [38] phenomenon: with fluctuating capacities near the critical
  // load, bottlenecks appear "seemingly at random in various parts of
  // the system".
  const auto samples = wf::simulate_pipeline(near_critical());
  const auto report = wf::analyze_vicissitude(samples);
  EXPECT_TRUE(report.vicissitude);
  EXPECT_GE(report.distinct_bottlenecks, 2u);
  EXPECT_GT(report.rotation_rate, 0.2);
}

TEST(Vicissitude, StaticBottleneckIsNotVicissitude) {
  // A classic fixed bottleneck: stage capacities are deterministic, so
  // the first stage saturates every window and never rotates.
  auto config = near_critical();
  config.capacity_noise = 0.0;
  config.stage_capacity = 90.0;  // below the input rate
  config.burst_factor = 1.0;
  config.burst_share = 0.0;
  const auto samples = wf::simulate_pipeline(config);
  const auto report = wf::analyze_vicissitude(samples);
  EXPECT_GT(report.saturated_windows, 0u);
  EXPECT_EQ(report.distinct_bottlenecks, 1u);
  EXPECT_DOUBLE_EQ(report.rotation_rate, 0.0);
  EXPECT_FALSE(report.vicissitude);
}

TEST(Vicissitude, UnsaturatedPipelineReportsNothing) {
  auto config = near_critical();
  config.stage_capacity = 1'000.0;
  config.capacity_noise = 0.0;
  config.burst_factor = 1.0;
  const auto samples = wf::simulate_pipeline(config);
  const auto report = wf::analyze_vicissitude(samples);
  EXPECT_EQ(report.saturated_windows, 0u);
  EXPECT_FALSE(report.vicissitude);
}

TEST(Vicissitude, EmptySeriesHandled) {
  const auto report = wf::analyze_vicissitude({});
  EXPECT_FALSE(report.vicissitude);
  EXPECT_EQ(report.saturated_windows, 0u);
}

TEST(Vicissitude, BottleneckWindowsSumToSaturated) {
  const auto samples = wf::simulate_pipeline(near_critical());
  const auto report = wf::analyze_vicissitude(samples);
  std::size_t total = 0;
  for (std::size_t c : report.bottleneck_windows) total += c;
  EXPECT_EQ(total, report.saturated_windows);
}
