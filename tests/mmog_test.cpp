// Tests for MMOG workloads, provisioning, interest management, and
// analytics (paper Section 6.2).

#include <algorithm>

#include <gtest/gtest.h>

#include "atlarge/mmog/analytics.hpp"
#include "atlarge/mmog/interest.hpp"
#include "atlarge/mmog/provisioning.hpp"
#include "atlarge/mmog/workload.hpp"

namespace mmog = atlarge::mmog;

namespace {

mmog::PopulationConfig week_config(mmog::Genre genre = mmog::Genre::kMmorpg) {
  mmog::PopulationConfig config;
  config.genre = genre;
  config.base_players = 10'000.0;
  config.days = 7.0;
  config.step = 600.0;
  config.seed = 1;
  return config;
}

}  // namespace

TEST(Population, SeriesCoversHorizon) {
  const auto series = mmog::generate_population(week_config());
  ASSERT_FALSE(series.points.empty());
  EXPECT_DOUBLE_EQ(series.points.front().time, 0.0);
  EXPECT_GT(series.points.back().time, 6.9 * 86'400.0);
}

TEST(Population, PlayersNonNegative) {
  const auto series = mmog::generate_population(week_config());
  for (const auto& p : series.points) EXPECT_GE(p.players, 0.0);
}

TEST(Population, DiurnalSwingVisible) {
  auto config = week_config();
  config.noise = 0.0;
  const auto series = mmog::generate_population(config);
  EXPECT_GT(series.peak_to_mean(), 1.3);
}

TEST(Population, ContentUpdateCreatesSurge) {
  auto base = week_config();
  base.noise = 0.0;
  auto with_update = base;
  with_update.update_times = {3.0 * 86'400.0};
  const auto quiet = mmog::generate_population(base);
  const auto surged = mmog::generate_population(with_update);
  EXPECT_GT(surged.peak(), quiet.peak() * 1.3);
}

TEST(Population, MobaNoisierThanMmorpg) {
  auto mmorpg_cfg = week_config(mmog::Genre::kMmorpg);
  auto moba_cfg = week_config(mmog::Genre::kMoba);
  const auto mmorpg = mmog::generate_population(mmorpg_cfg);
  const auto moba = mmog::generate_population(moba_cfg);
  // Compare step-to-step relative variation.
  const auto roughness = [](const mmog::PopulationSeries& s) {
    double total = 0.0;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      total += std::abs(s.points[i].players - s.points[i - 1].players) /
               std::max(s.points[i - 1].players, 1.0);
    }
    return total / static_cast<double>(s.points.size());
  };
  EXPECT_GT(roughness(moba), roughness(mmorpg));
}

TEST(Population, GenreNames) {
  EXPECT_EQ(mmog::to_string(mmog::Genre::kMmorpg), "MMORPG");
  EXPECT_EQ(mmog::to_string(mmog::Genre::kMoba), "MOBA");
  EXPECT_EQ(mmog::to_string(mmog::Genre::kOnlineSocial), "OnlineSocial");
}

// ------------------------------------------------------------ provisioning --

TEST(Provisioning, StaticNeverViolatesSla) {
  const auto series = mmog::generate_population(week_config());
  mmog::ProvisioningConfig config;
  const auto result = mmog::provision_static(series, config);
  EXPECT_DOUBLE_EQ(result.sla_violation_share, 0.0);
  EXPECT_GT(result.avg_servers, 0.0);
}

TEST(Provisioning, DynamicUsesFewerServerHours) {
  // The headline result of the paper's MMOG provisioning work [71], [87].
  const auto series = mmog::generate_population(week_config());
  mmog::ProvisioningConfig config;
  config.predictor = mmog::Predictor::kLinearTrend;
  const auto dynamic = mmog::provision_dynamic(series, config);
  const auto fixed = mmog::provision_static(series, config);
  EXPECT_LT(dynamic.server_hours, fixed.server_hours * 0.85);
}

TEST(Provisioning, DynamicKeepsSlaViolationsModest) {
  const auto series = mmog::generate_population(week_config());
  mmog::ProvisioningConfig config;
  config.predictor = mmog::Predictor::kLinearTrend;
  config.headroom = 1.2;
  const auto result = mmog::provision_dynamic(series, config);
  EXPECT_LT(result.sla_violation_share, 0.15);
}

TEST(Provisioning, HeadroomReducesViolations) {
  const auto series = mmog::generate_population(week_config());
  mmog::ProvisioningConfig tight;
  tight.headroom = 1.0;
  mmog::ProvisioningConfig loose;
  loose.headroom = 1.5;
  const auto r_tight = mmog::provision_dynamic(series, tight);
  const auto r_loose = mmog::provision_dynamic(series, loose);
  EXPECT_LE(r_loose.sla_violation_share, r_tight.sla_violation_share);
  EXPECT_GT(r_loose.server_hours, r_tight.server_hours);
}

TEST(Provisioning, AllPredictorsRun) {
  const auto series = mmog::generate_population(week_config());
  for (auto p : {mmog::Predictor::kLastValue, mmog::Predictor::kMovingAverage,
                 mmog::Predictor::kExponential,
                 mmog::Predictor::kLinearTrend}) {
    mmog::ProvisioningConfig config;
    config.predictor = p;
    const auto result = mmog::provision_dynamic(series, config);
    EXPECT_GT(result.avg_servers, 0.0) << mmog::to_string(p);
    EXPECT_GE(result.peak_servers, result.avg_servers) << mmog::to_string(p);
  }
}

TEST(Provisioning, EmptySeriesYieldsZeroResult) {
  mmog::PopulationSeries empty;
  mmog::ProvisioningConfig config;
  const auto result = mmog::provision_dynamic(empty, config);
  EXPECT_DOUBLE_EQ(result.avg_servers, 0.0);
}

// ---------------------------------------------------------------- interest --

namespace {

mmog::WorldConfig clustered_world(std::size_t entities) {
  mmog::WorldConfig config;
  config.entities = entities;
  config.hotspots = 4;
  config.hotspot_fraction = 0.8;
  config.seed = 7;
  return config;
}

}  // namespace

TEST(Interest, WorldGeneratorPlacesEntitiesInBounds) {
  const auto world = mmog::generate_world(clustered_world(500));
  EXPECT_EQ(world.entities.size(), 500u);
  for (const auto& e : world.entities) {
    EXPECT_GE(e.x, 0.0);
    EXPECT_LE(e.x, world.config.size);
    EXPECT_GE(e.y, 0.0);
    EXPECT_LE(e.y, world.config.size);
  }
}

TEST(Interest, HotspotFractionRoughlyRespected) {
  const auto world = mmog::generate_world(clustered_world(2'000));
  std::size_t clustered = 0;
  for (const auto& e : world.entities) clustered += e.in_hotspot;
  EXPECT_NEAR(static_cast<double>(clustered) / 2'000.0, 0.8, 0.05);
}

TEST(Interest, FullReplicationPerfectlyBalanced) {
  const auto world = mmog::generate_world(clustered_world(500));
  const auto report = mmog::evaluate_interest_management(
      mmog::ImTechnique::kFullReplication, world, mmog::ImConfig{});
  EXPECT_NEAR(report.imbalance, 1.0, 1e-9);
}

TEST(Interest, ZoningImbalancedUnderClustering) {
  const auto world = mmog::generate_world(clustered_world(2'000));
  const auto report = mmog::evaluate_interest_management(
      mmog::ImTechnique::kZoning, world, mmog::ImConfig{});
  EXPECT_GT(report.imbalance, 1.5);
}

TEST(Interest, AosCheaperThanFullReplicationAtScale) {
  const auto world = mmog::generate_world(clustered_world(4'000));
  mmog::ImConfig config;
  const auto aos = mmog::evaluate_interest_management(
      mmog::ImTechnique::kAreaOfSimulation, world, config);
  const auto full = mmog::evaluate_interest_management(
      mmog::ImTechnique::kFullReplication, world, config);
  EXPECT_LT(aos.busiest_server_cost, full.busiest_server_cost);
}

TEST(Interest, AosScalesFurtherThanZoning) {
  // The RTSenv/AoS discovery: with hotspot-clustered entities, AoS
  // sustains more entities within the tick budget than zoning.
  const std::vector<std::size_t> candidates = {250,   500,   1'000, 2'000,
                                               4'000, 8'000, 16'000};
  mmog::ImConfig config;
  const auto zoning_max = mmog::max_sustainable_entities(
      mmog::ImTechnique::kZoning, clustered_world(0), config, candidates);
  const auto aos_max = mmog::max_sustainable_entities(
      mmog::ImTechnique::kAreaOfSimulation, clustered_world(0), config,
      candidates);
  EXPECT_GE(aos_max, zoning_max);
  EXPECT_GT(aos_max, 0u);
}

TEST(Interest, TechniqueNames) {
  EXPECT_EQ(mmog::to_string(mmog::ImTechnique::kZoning), "zoning");
  EXPECT_EQ(mmog::to_string(mmog::ImTechnique::kFullReplication),
            "full-replication");
  EXPECT_EQ(mmog::to_string(mmog::ImTechnique::kAreaOfSimulation),
            "area-of-simulation");
}

// --------------------------------------------------------------- analytics --

namespace {

mmog::MatchLogConfig log_config() {
  mmog::MatchLogConfig config;
  config.players = 300;
  config.matches = 2'000;
  config.communities = 6;
  config.in_community_prob = 0.85;
  config.seed = 5;
  return config;
}

}  // namespace

TEST(Analytics, MatchLogShape) {
  const auto log = mmog::generate_match_log(log_config());
  EXPECT_EQ(log.matches.size(), 2'000u);
  EXPECT_EQ(log.skill.size(), 300u);
  for (const auto& m : log.matches) {
    EXPECT_GE(m.players.size(), 2u);
    EXPECT_LE(m.players.size(), 5u);
    // No duplicate players inside a match.
    auto players = m.players;
    std::sort(players.begin(), players.end());
    EXPECT_EQ(std::unique(players.begin(), players.end()), players.end());
  }
}

TEST(Analytics, ImplicitGraphHasEdges) {
  const auto log = mmog::generate_match_log(log_config());
  const auto graph =
      mmog::SocialGraph::from_matches(log.config.players, log.matches);
  EXPECT_GT(graph.edges(), 100u);
  EXPECT_GT(graph.clustering_coefficient(), 0.0);
}

TEST(Analytics, CoPlayIncrementsWeight) {
  mmog::SocialGraph graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(graph.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(graph.edge_weight(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(graph.edge_weight(0, 2), 0.0);
}

TEST(Analytics, SelfAndOutOfRangeEdgesIgnored) {
  mmog::SocialGraph graph(2);
  graph.add_edge(0, 0);
  graph.add_edge(0, 99);
  EXPECT_EQ(graph.edges(), 0u);
}

TEST(Analytics, CommunityStructureRecovered) {
  // The implicit network's edge weight should concentrate inside latent
  // communities (the [74] finding).
  const auto log = mmog::generate_match_log(log_config());
  const auto graph =
      mmog::SocialGraph::from_matches(log.config.players, log.matches);
  EXPECT_GT(graph.community_cohesion(log.community), 0.6);
}

TEST(Analytics, ComponentSizesSumToPlayers) {
  const auto log = mmog::generate_match_log(log_config());
  const auto graph =
      mmog::SocialGraph::from_matches(log.config.players, log.matches);
  const auto sizes = graph.component_sizes();
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  EXPECT_EQ(total, log.config.players);
  // Descending order.
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LE(sizes[i], sizes[i - 1]);
}

TEST(Analytics, SkillMatchmakingFairerThanRandom) {
  const auto log = mmog::generate_match_log(log_config());
  const double random_gap = mmog::matchmaking_skill_gap(log, false, 2'000, 9);
  const double skill_gap = mmog::matchmaking_skill_gap(log, true, 2'000, 9);
  EXPECT_LT(skill_gap, random_gap * 0.5);
}

TEST(Analytics, ToxicityDetectionBeatsChance) {
  auto config = log_config();
  config.toxic_fraction = 0.1;
  const auto log = mmog::generate_match_log(config);
  const auto outcome = mmog::detect_toxicity(log, 0.4, 30, 11);
  EXPECT_GT(outcome.recall, 0.6);
  EXPECT_GT(outcome.precision, 0.5);
  EXPECT_GT(outcome.f1, 0.55);
}

TEST(Analytics, ToxicityThresholdTradesPrecisionRecall) {
  auto config = log_config();
  config.toxic_fraction = 0.1;
  const auto log = mmog::generate_match_log(config);
  const auto lenient = mmog::detect_toxicity(log, 0.3, 30, 11);
  const auto strict = mmog::detect_toxicity(log, 0.55, 30, 11);
  EXPECT_GE(lenient.recall, strict.recall);
  EXPECT_LE(lenient.precision, strict.precision + 1e-9);
}
