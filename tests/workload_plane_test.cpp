// Integration tests of the workload plane: seeded generators, the
// scenario catalog, trace-driven engine replay, and the acceptance
// contracts of the plane itself — a million-event trace streams through
// an engine under chunk-bounded reader memory, and replay summaries are
// byte-identical across campaign thread counts and kernel queue backends.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/exp/adapters.hpp"
#include "atlarge/exp/campaign.hpp"
#include "atlarge/exp/engine.hpp"
#include "atlarge/exp/runner.hpp"
#include "atlarge/exp/store.hpp"
#include "atlarge/obs/metrics.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/trace/atl.hpp"
#include "atlarge/trace/catalog.hpp"
#include "atlarge/trace/event.hpp"
#include "atlarge/trace/gen.hpp"
#include "golden_util.hpp"

namespace {

using namespace atlarge;
namespace catalog = atlarge::trace::catalog;
using atlarge::stats::Rng;

std::string temp_path(const std::string& name) {
  return golden::temp_path("workload_plane", name);
}

using golden::slurp;

// ------------------------------------------------------------ generators --

TEST(Generators, SameSeedSameEventsDifferentSeedDiverges) {
  const auto* scenario = catalog::find("feed-fanout");
  ASSERT_NE(scenario, nullptr);
  const auto a = catalog::events(*scenario, 7, 4'000);
  const auto b = catalog::events(*scenario, 7, 4'000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_us, b[i].t_us) << i;
    EXPECT_EQ(a[i].entity, b[i].entity) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].size, b[i].size) << i;
    EXPECT_EQ(a[i].region, b[i].region) << i;
  }
  const auto c = catalog::events(*scenario, 8, 4'000);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].t_us != c[i].t_us || a[i].entity != c[i].entity;
  EXPECT_TRUE(differs) << "seed 8 reproduced seed 7 exactly";
}

TEST(Generators, EventsAreTimeOrderedAndWellFormed) {
  for (const auto& scenario : catalog::scenarios()) {
    SCOPED_TRACE(scenario.name);
    const auto events =
        catalog::events(scenario, scenario.default_seed, 6'000);
    ASSERT_FALSE(events.empty());
    std::int64_t last = 0;
    for (const auto& e : events) {
      EXPECT_GE(e.t_us, last);
      last = e.t_us;
      EXPECT_GE(e.entity, 0);
      EXPECT_GE(e.kind, 0);
      EXPECT_LE(e.kind, 2);
      EXPECT_GE(e.size, 0);
      EXPECT_GE(e.region, 0);
      const auto regions =
          scenario.shape == catalog::Scenario::Shape::kFlashcrowd
              ? scenario.flashcrowd.mix.regions
              : scenario.diurnal.mix.regions;
      EXPECT_LT(e.region, static_cast<std::int64_t>(regions));
    }
  }
}

TEST(Generators, ZipfSamplerSkewsTowardLowRanks) {
  trace::gen::ZipfSampler zipf(100'000, 0.99);
  Rng rng(3);
  std::size_t top_decile = 0;
  const std::size_t draws = 20'000;
  for (std::size_t i = 0; i < draws; ++i) {
    const auto rank = zipf(rng);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 100'000);
    if (rank < 10'000) ++top_decile;
  }
  // Under s=0.99 the top 10% of ranks draw the large majority of mass;
  // uniform would give 10%.
  EXPECT_GT(top_decile, draws / 2);
}

TEST(Generators, SessionDurationsRespectTailCaps) {
  trace::gen::FlashcrowdSpec spec;
  spec.duration = 600.0;
  spec.base_rate = 5.0;
  spec.surge_rate = 0.0;
  spec.session.max_duration = 120.0;
  spec.session.max_requests = 8;
  std::vector<trace::Event> events;
  trace::gen::flashcrowd(spec, 5, [&](const trace::Event& e) {
    events.push_back(e);
  });
  std::size_t starts = 0;
  for (const auto& e : events) {
    if (e.kind == static_cast<std::int64_t>(trace::EventKind::kSessionStart)) {
      ++starts;
      EXPECT_LE(e.size, 120'000) << "duration cap (ms)";
    }
    if (e.kind == static_cast<std::int64_t>(trace::EventKind::kSessionEnd))
      EXPECT_LE(e.size, 8) << "request cap";
  }
  EXPECT_GT(starts, 100u);  // ~3000 expected sessions
}

// --------------------------------------------------------------- catalog --

TEST(Catalog, HasTheCaseStudyFamilies) {
  ASSERT_EQ(catalog::scenarios().size(), 5u);
  EXPECT_EQ(catalog::find("feed-fanout")->engine, "serverless");
  EXPECT_EQ(catalog::find("video-flashcrowd")->engine, "p2p");
  EXPECT_EQ(catalog::find("ecommerce-spike")->engine, "sched");
  EXPECT_EQ(catalog::find("gaming-diurnal")->engine, "autoscale");
  EXPECT_EQ(catalog::find("eco-faas-vs-reserved")->engine, "eco");
  EXPECT_EQ(catalog::find("nope"), nullptr);
}

TEST(Catalog, GoldenReplayStatistics) {
  // The scenario-catalog contract quoted in EXPERIMENTS.md: capped
  // replays with the default seed yield these summary statistics. Counts
  // are exact; engine doubles are pinned loosely so a legitimate engine
  // change moves them consciously, not silently.
  struct Golden {
    const char* name;
    std::uint64_t events, sessions, requests;
    const char* metric;
    double value, tol;
  };
  const Golden goldens[] = {
      {"feed-fanout", 20'000, 1'617, 17'858, "p50_latency", 0.020, 0.005},
      {"video-flashcrowd", 8'000, 2'266, 5'197, "median_download_time",
       4'830.0, 500.0},
      {"ecommerce-spike", 8'000, 612, 6'820, "tasks_completed", 612.0, 0.0},
      {"gaming-diurnal", 8'000, 645, 6'955, "deadline_total", 645.0, 0.0},
      {"eco-faas-vs-reserved", 8'000, 620, 6'994, "shared_p999_latency",
       0.82, 0.05},
  };
  for (const auto& g : goldens) {
    SCOPED_TRACE(g.name);
    const auto* scenario = catalog::find(g.name);
    ASSERT_NE(scenario, nullptr);
    catalog::ReplayOptions options;
    options.max_events = g.events;
    const auto summary =
        catalog::replay_generated(*scenario, scenario->default_seed, options);
    EXPECT_EQ(summary.events, g.events);
    EXPECT_EQ(summary.sessions, g.sessions);
    EXPECT_EQ(summary.requests, g.requests);
    bool found = false;
    for (const auto& [name, value] : summary.metrics) {
      if (name != g.metric) continue;
      found = true;
      EXPECT_NEAR(value, g.value, g.tol);
    }
    EXPECT_TRUE(found) << g.metric;
  }
}

TEST(Catalog, ReplaySummaryTextIsStableAcrossRuns) {
  const auto* scenario = catalog::find("ecommerce-spike");
  catalog::ReplayOptions options;
  options.max_events = 4'000;
  const auto a = catalog::replay_generated(*scenario, 11, options);
  const auto b = catalog::replay_generated(*scenario, 11, options);
  EXPECT_EQ(a.text(), b.text());
  EXPECT_NE(a.text().find("scenario=ecommerce-spike"), std::string::npos);
}

TEST(Catalog, ToWorkloadMapsSessionsToJobs) {
  const auto* scenario = catalog::find("ecommerce-spike");
  auto events = catalog::events(*scenario, 3, 2'000);
  trace::VectorEventStream stream(std::move(events));
  const auto workload = catalog::to_workload(stream, 50);
  EXPECT_EQ(workload.jobs.size(), 50u);
  for (const auto& job : workload.jobs) {
    ASSERT_EQ(job.tasks.size(), 1u);
    EXPECT_GE(job.tasks[0].runtime, 1.0);
    EXPECT_LE(job.tasks[0].runtime, 600.0);
    EXPECT_GE(job.tasks[0].cores, 1u);
    EXPECT_LE(job.tasks[0].cores, 4u);
    EXPECT_EQ(job.user.rfind("region-", 0), 0u);
  }
}

// ------------------------------------------------- acceptance: streaming --

TEST(Acceptance, MillionEventTraceStreamsWithChunkBoundedMemory) {
  // Acceptance test A: generate a 1M-event feed-fanout trace to .atl,
  // stream it through the serverless platform, and assert via the obs
  // gauge that reader-resident memory is bounded by the chunk size — not
  // the trace size. Also: heap vs calendar kernel queue backends must
  // produce byte-identical replay summaries.
  const auto* scenario = catalog::find("feed-fanout");
  ASSERT_NE(scenario, nullptr);
  const std::string path = temp_path("million.atl");
  trace::WriterOptions wo;
  wo.chunk_rows = 8'192;
  const std::uint64_t written =
      catalog::write_trace(*scenario, path, scenario->default_seed,
                           1'000'000, wo);
  ASSERT_EQ(written, 1'000'000u);
  const auto file_bytes = slurp(path).size();
  ASSERT_GT(file_bytes, 1'000'000u);  // sanity: multi-MB trace

  std::string first_text;
  for (const sim::QueueKind kind :
       {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
    const auto restore = sim::default_queue_kind();
    sim::set_default_queue_kind(kind);
    atlarge::obs::Registry registry;
    catalog::ReplayOptions options;
    options.obs = &registry;
    const auto summary = catalog::replay_file(*scenario, path, options);
    sim::set_default_queue_kind(restore);

    EXPECT_EQ(summary.events, 1'000'000u);
    // The bounded-memory contract, asserted through the obs plane: peak
    // resident decode state is a small multiple of the chunk row count
    // (5 int columns x 8 bytes decoded + the raw chunk buffer), orders of
    // magnitude below the file size.
    const double resident =
        registry.gauge("trace.reader_resident_bytes").value();
    EXPECT_GT(resident, 0.0);
    EXPECT_LT(resident, 64.0 * wo.chunk_rows);
    EXPECT_LT(resident, static_cast<double>(file_bytes) / 4.0);
    EXPECT_EQ(registry.counter("trace.reader_rows").value(), 1'000'000u);

    if (first_text.empty())
      first_text = summary.text();
    else
      EXPECT_EQ(summary.text(), first_text)
          << "queue backend changed replay statistics";
  }
  std::remove(path.c_str());
}

TEST(Acceptance, ScenarioCampaignIsByteIdenticalAcrossThreadCounts) {
  // Acceptance test B: a campaign sweeping the workload.scenario dimension
  // (synthetic AND trace-driven trials side by side) produces byte-identical
  // result stores and aggregates at 1, 2, and 8 runner threads.
  const auto spec = exp::parse_campaign_spec(
      "campaign wp\ndomain serverless\nmode grid\nrepeats 2\nseed 13\n"
      "scale 0.05\ndim keep_alive 0 300\ndim prewarmed 0\n"
      "dim max_instances 32\ndim faults.rate 0\n"
      "dim workload.scenario synthetic feed-fanout\n");
  const auto adapter = exp::make_adapter(spec.domain);
  std::string store_bytes, aggregate_bytes;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto path =
        temp_path("campaign_t" + std::to_string(threads) + ".jsonl");
    std::remove(path.c_str());
    exp::ResultStore store(path);
    exp::RunnerConfig config;
    config.threads = threads;
    const auto outcome = exp::run_campaign(spec, *adapter, store, config);
    EXPECT_TRUE(outcome.complete);
    const auto bytes = slurp(path);
    const auto json = exp::aggregate_json(outcome.aggregate);
    if (store_bytes.empty()) {
      store_bytes = bytes;
      aggregate_bytes = json;
    } else {
      EXPECT_EQ(bytes, store_bytes) << "threads=" << threads;
      EXPECT_EQ(json, aggregate_bytes) << "threads=" << threads;
    }
    std::remove(path.c_str());
  }
}

TEST(Acceptance, FileAndGeneratedReplaysAgree) {
  // write_trace -> replay_file must equal replay_generated event for
  // event: the .atl round trip is lossless for the event schema.
  const auto* scenario = catalog::find("gaming-diurnal");
  const std::string path = temp_path("agree.atl");
  catalog::write_trace(*scenario, path, 21, 10'000);
  catalog::ReplayOptions options;
  const auto from_file = catalog::replay_file(*scenario, path, options);
  options.max_events = 10'000;
  const auto generated = catalog::replay_generated(*scenario, 21, options);
  EXPECT_EQ(from_file.text(), generated.text());
  std::remove(path.c_str());
}

}  // namespace
