// Property tests for the kernel's two queue backends and the batched
// dispatch path. The contract under test: the 4-ary heap and the calendar
// queue pop the exact total-order minimum of the same packed 128-bit
// records, so the two backends produce BYTE-IDENTICAL event orderings on
// any schedule — ties at equal timestamps, cancelled tombstones, nested
// scheduling, and sparse far-future schedules included. Alongside it, the
// allocation-accounting contract: a reserve()-sized run touches the
// system allocator exactly zero times, observable both through
// Simulation::alloc_events() and the Observer::on_alloc_event mirror.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/rng.hpp"

namespace {

using atlarge::sim::EventHandle;
using atlarge::sim::QueueKind;
using atlarge::sim::Simulation;

std::string exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Restores the process-wide default queue kind on scope exit.
struct QueueKindGuard {
  QueueKind saved = atlarge::sim::default_queue_kind();
  explicit QueueKindGuard(QueueKind kind) {
    atlarge::sim::set_default_queue_kind(kind);
  }
  ~QueueKindGuard() { atlarge::sim::set_default_queue_kind(saved); }
};

constexpr QueueKind kBothKinds[] = {QueueKind::kHeap, QueueKind::kCalendar};

const char* kind_name(QueueKind kind) {
  return kind == QueueKind::kHeap ? "heap" : "calendar";
}

/// One randomized schedule, fully determined by (seed, n): an initial wave
/// with heavy timestamp ties, a slice of immediate cancellations, a slice
/// of in-run cancellations (tombstones reclaimed while the queue drains),
/// and nested scheduling — some actions spawn a child at the current
/// timestamp, some in the near future. Returns the exact firing log.
std::string run_script(QueueKind kind, std::uint64_t seed, std::size_t n) {
  Simulation sim(kind);
  atlarge::stats::Rng rng(seed);
  std::string log;
  std::vector<EventHandle> handles;
  handles.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Ten distinct timestamps across the wave: every batch is large.
    const double t = 0.5 * static_cast<double>(rng.uniform_int(0, 9));
    const double child_gap = rng.uniform() < 0.5 ? 0.0 : 0.25;
    const bool spawn_child = rng.uniform() < 0.3;
    handles.push_back(sim.schedule_at(t, [&log, &sim, i, spawn_child,
                                          child_gap] {
      log += std::to_string(i) + "@" + exact(sim.now()) + ";";
      if (spawn_child) {
        sim.schedule_after(child_gap, [&log, &sim, i] {
          log += "c" + std::to_string(i) + "@" + exact(sim.now()) + ";";
        });
      }
    }));
  }
  // Immediate cancellations: tombstones that sit in the queue from the
  // start.
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.15) handles[i].cancel();
  }
  // In-run cancellations: a canceller at t=0.75 (between the tied
  // timestamps) kills a random slice of still-pending events mid-drain.
  std::vector<std::size_t> victims;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.2) victims.push_back(i);
  }
  sim.schedule_at(0.75, [&handles, &victims, &log] {
    for (const std::size_t i : victims) {
      if (handles[i].cancel()) log += "x" + std::to_string(i) + ";";
    }
  });
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  return log;
}

TEST(SimQueueProperty, BackendsProduceByteIdenticalOrderings) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const std::size_t n : {17u, 200u, 1500u}) {
      const std::string heap_log = run_script(QueueKind::kHeap, seed, n);
      const std::string cal_log = run_script(QueueKind::kCalendar, seed, n);
      ASSERT_EQ(heap_log, cal_log)
          << "backends diverged at seed=" << seed << " n=" << n;
      ASSERT_FALSE(heap_log.empty());
    }
  }
}

TEST(SimQueueProperty, TiesFireInScheduleOrder) {
  for (const QueueKind kind : kBothKinds) {
    Simulation sim(kind);
    std::string log;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at(5.0, [&log, i] { log += std::to_string(i) + ";"; });
    }
    sim.run();
    std::string want;
    for (int i = 0; i < 100; ++i) want += std::to_string(i) + ";";
    EXPECT_EQ(log, want) << kind_name(kind);
  }
}

TEST(SimQueueProperty, SparseFarFutureSchedulesMatch) {
  // Times spanning twelve orders of magnitude force the calendar queue
  // through its direct-search fallback (a whole year of buckets empty) and
  // its resize paths; the ordering must still match the heap exactly.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto script = [seed](QueueKind kind) {
      Simulation sim(kind);
      atlarge::stats::Rng rng(seed);
      std::string log;
      for (std::size_t i = 0; i < 300; ++i) {
        const double magnitude =
            static_cast<double>(rng.uniform_int(0, 12));
        const double t = rng.uniform() * std::pow(10.0, magnitude);
        sim.schedule_at(t, [&log, &sim, i] {
          log += std::to_string(i) + "@" + exact(sim.now()) + ";";
        });
      }
      sim.run();
      return log;
    };
    EXPECT_EQ(script(QueueKind::kHeap), script(QueueKind::kCalendar))
        << "seed=" << seed;
  }
}

TEST(SimQueueProperty, GrowShrinkChurnMatchesHeap) {
  // Alternating large waves and near-empty drains walk the calendar
  // through grow and shrink resizes; orderings must stay identical.
  auto script = [](QueueKind kind) {
    Simulation sim(kind);
    atlarge::stats::Rng rng(99);
    std::string log;
    double base = 0.0;
    for (int wave = 0; wave < 4; ++wave) {
      const std::size_t count = wave % 2 == 0 ? 2000 : 30;
      for (std::size_t i = 0; i < count; ++i) {
        const double t = base + rng.uniform() * 50.0;
        sim.schedule_at(t, [&log, &sim, i] {
          log += std::to_string(i) + "@" + exact(sim.now()) + ";";
        });
      }
      sim.run();
      base += 100.0;
    }
    return log;
  };
  EXPECT_EQ(script(QueueKind::kHeap), script(QueueKind::kCalendar));
}

// ------------------------------------------------ batched dispatch edges --

TEST(SimQueueBatch, StopMidBatchPreservesRemainderAndOrder) {
  for (const QueueKind kind : kBothKinds) {
    Simulation sim(kind);
    std::string log;
    for (int i = 0; i < 6; ++i) {
      sim.schedule_at(1.0, [&log, &sim, i] {
        log += std::to_string(i) + ";";
        if (i == 2) sim.stop();
      });
    }
    EXPECT_EQ(sim.run(), 3u) << kind_name(kind);
    EXPECT_EQ(log, "0;1;2;") << kind_name(kind);
    EXPECT_EQ(sim.pending(), 3u) << kind_name(kind);
    // Resuming drains the rest of the interrupted batch in the original
    // order at the same timestamp.
    EXPECT_EQ(sim.run(), 3u) << kind_name(kind);
    EXPECT_EQ(log, "0;1;2;3;4;5;") << kind_name(kind);
    EXPECT_EQ(sim.now(), 1.0) << kind_name(kind);
  }
}

TEST(SimQueueBatch, CancelInsideBatchPreventsLaterEqualTimeFire) {
  for (const QueueKind kind : kBothKinds) {
    Simulation sim(kind);
    std::string log;
    EventHandle last;
    sim.schedule_at(1.0, [&log, &last] {
      log += "a;";
      EXPECT_TRUE(last.cancel());
    });
    sim.schedule_at(1.0, [&log] { log += "b;"; });
    last = sim.schedule_at(1.0, [&log] { log += "victim;"; });
    sim.run();
    EXPECT_EQ(log, "a;b;") << kind_name(kind);
    EXPECT_EQ(sim.pending(), 0u) << kind_name(kind);
  }
}

TEST(SimQueueBatch, SameTimeChildFiresAtSameTimestampAfterBatch) {
  for (const QueueKind kind : kBothKinds) {
    Simulation sim(kind);
    std::string log;
    sim.schedule_at(2.0, [&log, &sim] {
      log += "parent;";
      sim.schedule_at(2.0, [&log, &sim] {
        log += "child@" + exact(sim.now()) + ";";
      });
    });
    sim.schedule_at(2.0, [&log] { log += "sibling;"; });
    sim.run();
    // The child carries a larger sequence number: it fires after every
    // event of the original batch, still at t=2.
    EXPECT_EQ(log, "parent;sibling;child@2;") << kind_name(kind);
  }
}

// --------------------------------------------------- allocation tracking --

/// Self-rescheduling ticker: the steady-state shape domain simulators
/// settle into (constant pending population, constant churn).
struct Ticker {
  Simulation* sim;
  std::uint64_t* remaining;
  double period;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    sim->schedule_after(period, *this);
  }
};

TEST(SimQueueAlloc, ReservedHeapSteadyStateIsAllocationFree) {
  // The heap backend is exactly zero-alloc from the first event: reserve()
  // pre-sizes every structure the run can touch.
  Simulation sim(QueueKind::kHeap);
  sim.reserve(512);
  std::uint64_t remaining = 5000;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(0.01 * static_cast<double>(i),
                    Ticker{&sim, &remaining, 1.0 + 0.001 * i});
  }
  sim.run();
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sim.alloc_events(), 0u)
      << "a pre-sized steady-state heap run touched the system allocator";
}

TEST(SimQueueAlloc, ReservedCalendarReachesZeroAllocSteadyState) {
  // The calendar backend cannot know at reserve() time which buckets the
  // schedule will cluster on (that depends on event spacing vs bucket
  // width), so bucket capacities adapt during a first rotation of the
  // table — after that warm-up, the steady state is allocation-free.
  Simulation sim(QueueKind::kCalendar);
  sim.reserve(512);
  std::uint64_t remaining = 5000;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(0.01 * static_cast<double>(i),
                    Ticker{&sim, &remaining, 1.0 + 0.001 * i});
  }
  sim.run_until(2600.0);
  const std::uint64_t warmup_allocs = sim.alloc_events();
  sim.run();
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sim.alloc_events(), warmup_allocs)
      << "calendar backend still allocating after warm-up";
}

TEST(SimQueueAlloc, ObserverMirrorsAllocEvents) {
  struct CountingObserver final : atlarge::sim::Observer {
    std::uint64_t allocs = 0;
    void on_alloc_event() override { ++allocs; }
  };
  for (const QueueKind kind : kBothKinds) {
    Simulation sim(kind);
    CountingObserver obs;
    sim.set_observer(&obs);
    // No reserve: growth must be visible through both channels, in sync.
    for (int i = 0; i < 2000; ++i) {
      sim.schedule_at(static_cast<double>(i % 50), [] {});
    }
    sim.run();
    EXPECT_GT(sim.alloc_events(), 0u) << kind_name(kind);
    EXPECT_EQ(sim.alloc_events(), obs.allocs) << kind_name(kind);
  }
}

TEST(SimQueueAlloc, OversizePayloadsAllocateOnlyWhenUnreserved) {
  // A payload above the inline block takes an arena size-class block;
  // reserve()'s payload_bytes argument pre-funds those chunks too.
  struct Big {
    double data[20];  // 160 bytes: size class 256
  };
  Simulation sim;
  sim.reserve(64, 64 * sizeof(Big) * 2);
  for (int i = 0; i < 32; ++i) {
    Big big{};
    big.data[0] = static_cast<double>(i);
    sim.schedule_at(1.0, [big] {
      volatile double sink = big.data[0];
      (void)sink;
    });
  }
  sim.run();
  EXPECT_EQ(sim.alloc_events(), 0u);
}

TEST(SimQueueAlloc, DefaultQueueKindControlsNewSimulations) {
  EXPECT_EQ(Simulation().queue_kind(), QueueKind::kHeap);
  {
    QueueKindGuard guard(QueueKind::kCalendar);
    EXPECT_EQ(Simulation().queue_kind(), QueueKind::kCalendar);
    // An explicit constructor argument overrides the process default.
    EXPECT_EQ(Simulation(QueueKind::kHeap).queue_kind(), QueueKind::kHeap);
  }
  EXPECT_EQ(Simulation().queue_kind(), QueueKind::kHeap);
}

}  // namespace
