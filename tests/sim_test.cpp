// Tests for the discrete-event simulation kernel.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/sim/resource.hpp"
#include "atlarge/sim/sampler.hpp"
#include "atlarge/sim/simulation.hpp"

namespace sim = atlarge::sim;

TEST(Simulation, StartsAtZero) {
  sim::Simulation s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulation, EventsFireInTimeOrder) {
  sim::Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  sim::Simulation s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(1.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ClockAdvancesToEventTime) {
  sim::Simulation s;
  double seen = -1.0;
  s.schedule_at(42.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
  EXPECT_DOUBLE_EQ(s.now(), 42.5);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  sim::Simulation s;
  double second = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_after(5.0, [&] { second = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(second, 15.0);
}

TEST(Simulation, SchedulingInPastClampsToNow) {
  sim::Simulation s;
  double seen = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_at(5.0, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  sim::Simulation s;
  double seen = -1.0;
  s.schedule_at(3.0, [&] {
    s.schedule_after(-2.0, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(2.0001, [&] { ++fired; });
  const auto executed = s.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulation, RunUntilThenContinue) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(3.0);
  EXPECT_EQ(fired, 1);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  sim::Simulation s;
  int fired = 0;
  auto handle = s.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // second cancel is a no-op
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, HandleNotPendingAfterFire) {
  sim::Simulation s;
  auto handle = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, DefaultHandleIsInert) {
  sim::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, StopInterruptsRun) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  // A later run resumes.
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepExecutesExactlyOne) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  sim::Simulation s;
  std::vector<double> times;
  s.schedule_at(1.0, [&] {
    times.push_back(s.now());
    s.schedule_after(1.0, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulation, PendingIsExactLiveCount) {
  sim::Simulation s;
  EXPECT_EQ(s.pending(), 0u);
  auto h1 = s.schedule_at(1.0, [] {});
  auto h2 = s.schedule_at(2.0, [] {});
  auto h3 = s.schedule_at(3.0, [] {});
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_TRUE(h2.cancel());
  EXPECT_EQ(s.pending(), 2u);  // cancelled tombstones are not counted
  EXPECT_TRUE(s.step());
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  (void)h1;
  (void)h3;
}

TEST(Simulation, RunUntilIgnoresCancelledFrontTombstone) {
  // A cancelled event at the queue front must not let run_until execute a
  // live event beyond the boundary.
  sim::Simulation s;
  int fired = 0;
  auto early = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  EXPECT_TRUE(early.cancel());
  EXPECT_EQ(s.run_until(3.0), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelledHandleCannotResurrectReusedSlot) {
  sim::Simulation s;
  int first = 0;
  int second = 0;
  auto stale = s.schedule_at(1.0, [&] { ++first; });
  EXPECT_TRUE(stale.cancel());
  s.run();  // pops the tombstone and recycles its slot
  auto fresh = s.schedule_at(2.0, [&] { ++second; });
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());  // must not kill the event reusing the slot
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Simulation, FiredHandleCannotCancelReusedSlot) {
  sim::Simulation s;
  int second = 0;
  auto stale = s.schedule_at(1.0, [] {});
  s.run();  // fires; the slot returns to the pool
  auto fresh = s.schedule_at(2.0, [&] { ++second; });
  EXPECT_FALSE(stale.cancel());
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulation, SlotReusableWhileItsActionExecutes) {
  // step() recycles the firing event's slot before invoking its action, so
  // an event scheduled from inside the action may land in the same slot;
  // the running event's handle must not observe or cancel it.
  sim::Simulation s;
  sim::EventHandle outer;
  int inner_fired = 0;
  outer = s.schedule_at(1.0, [&] {
    auto inner = s.schedule_after(1.0, [&] { ++inner_fired; });
    EXPECT_FALSE(outer.pending());
    EXPECT_FALSE(outer.cancel());
    EXPECT_TRUE(inner.pending());
  });
  s.run();
  EXPECT_EQ(inner_fired, 1);
}

TEST(Simulation, CancellationStress) {
  // Schedule/cancel interleaving at scale: every event must either fire or
  // be cancelled exactly once, pending() must stay exact throughout, and
  // recycled slots must never resurrect stale handles.
  sim::Simulation s;
  std::size_t fired = 0;
  std::size_t cancelled = 0;
  std::size_t scheduled = 0;
  std::vector<sim::EventHandle> handles;
  std::uint64_t lcg = 12345;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  for (int round = 0; round < 50'000; ++round) {
    const auto op = next() % 8;
    if (op < 5 || handles.empty()) {
      handles.push_back(s.schedule_after(
          static_cast<double>(next() % 97), [&fired] { ++fired; }));
      ++scheduled;
    } else if (op < 7) {
      if (handles[next() % handles.size()].cancel()) ++cancelled;
    } else {
      s.run_until(s.now() + static_cast<double>(next() % 13));
    }
    ASSERT_EQ(s.pending(), scheduled - fired - cancelled);
  }
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(fired + cancelled, scheduled);
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());  // late cancels never double-count
  }
  EXPECT_EQ(fired + cancelled, scheduled);
}

TEST(Simulation, ManyEventsDeterministicCount) {
  sim::Simulation s;
  std::size_t fired = 0;
  for (int i = 0; i < 10'000; ++i)
    s.schedule_at(static_cast<double>(i % 100), [&] { ++fired; });
  EXPECT_EQ(s.run(), 10'000u);
  EXPECT_EQ(fired, 10'000u);
}

// --------------------------------------------------------------- Resource --

TEST(Resource, GrantsImmediatelyWhenFree) {
  sim::Simulation s;
  sim::Resource r(s, 4);
  bool granted = false;
  r.acquire(2, [&] { granted = true; });
  s.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(r.in_use(), 2u);
  EXPECT_EQ(r.available(), 2u);
}

TEST(Resource, QueuesWhenFull) {
  sim::Simulation s;
  sim::Resource r(s, 2);
  std::vector<int> order;
  r.acquire(2, [&] { order.push_back(1); });
  r.acquire(1, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(r.queue_length(), 1u);
  r.release(2);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Resource, FifoNoOvertaking) {
  sim::Simulation s;
  sim::Resource r(s, 3);
  std::vector<int> order;
  r.acquire(3, [&] { order.push_back(1); });
  r.acquire(3, [&] { order.push_back(2); });  // blocks
  r.acquire(1, [&] { order.push_back(3); });  // would fit, must wait
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  r.release(3);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  r.release(3);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Resource, UtilizationTracksUse) {
  sim::Simulation s;
  sim::Resource r(s, 10);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
  r.acquire(5, [] {});
  s.run();
  EXPECT_DOUBLE_EQ(r.utilization(), 0.5);
  r.release(5);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
}

TEST(Resource, GrantsAreDeferredNotInline) {
  sim::Simulation s;
  sim::Resource r(s, 1);
  bool granted_inline = false;
  bool flag = false;
  r.acquire(1, [&] { flag = true; });
  granted_inline = flag;  // before running the event loop
  s.run();
  EXPECT_FALSE(granted_inline);
  EXPECT_TRUE(flag);
}

// ---------------------------------------------------------------- Sampler --

TEST(Sampler, SamplesAtPeriod) {
  sim::Simulation s;
  double signal = 0.0;
  sim::Sampler sampler(s, 0.0, 10.0, 2.0, [&] { return signal; });
  s.schedule_at(5.0, [&] { signal = 7.0; });
  s.run();
  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 6u);  // t = 0, 2, 4, 6, 8, 10
  EXPECT_DOUBLE_EQ(samples[0].value, 0.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 0.0);   // t=4, before change
  EXPECT_DOUBLE_EQ(samples[3].value, 7.0);   // t=6, after change
}

TEST(Sampler, ValuesMatchesSamples) {
  sim::Simulation s;
  int tick = 0;
  sim::Sampler sampler(s, 0.0, 4.0, 1.0,
                       [&] { return static_cast<double>(tick++); });
  s.run();
  const auto values = sampler.values();
  EXPECT_EQ(values, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(Sampler, StartOffsetRespected) {
  sim::Simulation s;
  sim::Sampler sampler(s, 5.0, 9.0, 2.0, [] { return 1.0; });
  s.run();
  ASSERT_EQ(sampler.samples().size(), 3u);  // 5, 7, 9
  EXPECT_DOUBLE_EQ(sampler.samples().front().time, 5.0);
  EXPECT_DOUBLE_EQ(sampler.samples().back().time, 9.0);
}

// Determinism property: identical runs produce identical event orders.
class SimDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(SimDeterminism, IdenticalTraces) {
  const auto run_once = [&] {
    sim::Simulation s;
    std::vector<double> trace;
    for (int i = 0; i < 50; ++i) {
      const double t = static_cast<double>((i * 7919 + GetParam()) % 97);
      s.schedule_at(t, [&trace, &s] { trace.push_back(s.now()); });
    }
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism, ::testing::Values(0, 1, 2, 3));
