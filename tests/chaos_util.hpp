#pragma once
// Property-test harness for the fault plane. A chaos scenario is a closure
// that runs one domain simulation under an optional fault plan and folds
// the results it cares about into a fingerprint string (exact decimal
// renderings, no rounding). The harness then pins the two contracts every
// domain must honour:
//
//  * Null safety: a null plan and an empty plan produce byte-identical
//    fingerprints — the fault plane is invisible until a non-empty plan is
//    supplied, so pre-fault behaviour is regression-locked.
//  * Replay determinism: running under a plan, re-running under the same
//    plan, and running under deserialize(serialize(plan)) all produce
//    byte-identical fingerprints — applying a plan is purely
//    deterministic; all randomness lives in FaultPlan::generate.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/digest.hpp"

namespace atlarge::chaos {

/// Runs one simulation; `plan` may be null (no faults). Returns a
/// fingerprint: every metric the scenario cares about, rendered exactly.
using Scenario = std::function<std::string(const fault::FaultPlan*)>;

/// Renders a double with full round-trip precision for fingerprints.
inline std::string exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Order-invariant digest fingerprint for sharded-run scenarios: count,
/// extrema, and an FNV hash over the nonzero bucket array. The scalar
/// sum is deliberately excluded — it rounds per IEEE addition order, and
/// tied-timestamp events may fold into a digest in different orders on
/// different shard layouts while the recorded multiset is identical.
inline std::string digest_fingerprint(const obs::Digest& digest) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto& buckets = digest.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    hash = (hash ^ i) * 1099511628211ULL;
    hash = (hash ^ buckets[i]) * 1099511628211ULL;
  }
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "n=%llu min=%.17g max=%.17g h=%llx",
                static_cast<unsigned long long>(digest.count()), digest.min(),
                digest.max(), static_cast<unsigned long long>(hash));
  return buffer;
}

/// Null plan and empty plan are byte-identical (and equal to a second
/// null-plan run, catching hidden global state).
inline void expect_null_plan_identity(const Scenario& scenario) {
  const std::string without = scenario(nullptr);
  const fault::FaultPlan empty;
  EXPECT_EQ(without, scenario(&empty))
      << "an empty fault plan changed the simulation";
  EXPECT_EQ(without, scenario(nullptr)) << "null-plan run is not idempotent";
}

/// A faulted run replays byte-identically, both from the plan object and
/// from its serialized text form.
inline void expect_replay_identity(const Scenario& scenario,
                                   const fault::FaultPlan& plan) {
  const std::string first = scenario(&plan);
  EXPECT_EQ(first, scenario(&plan)) << "faulted run is not deterministic";
  const fault::FaultPlan replayed =
      fault::FaultPlan::deserialize(plan.serialize());
  ASSERT_EQ(plan, replayed) << "serialize/deserialize is not a round trip";
  EXPECT_EQ(first, scenario(&replayed))
      << "replay from serialized plan diverged";
}

/// Full property check: null identity + replay identity for `plan`.
inline void check_scenario(const Scenario& scenario,
                           const fault::FaultPlan& plan) {
  expect_null_plan_identity(scenario);
  expect_replay_identity(scenario, plan);
}

}  // namespace atlarge::chaos
