// Tests for the ATLARGE design framework: design spaces, exploration
// processes, the BDC, catalogs, the review model, and bibliometrics.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "atlarge/design/bdc.hpp"
#include "atlarge/design/bibliometrics.hpp"
#include "atlarge/design/catalog.hpp"
#include "atlarge/design/design_space.hpp"
#include "atlarge/design/exploration.hpp"
#include "atlarge/design/review.hpp"

namespace design = atlarge::design;
using atlarge::stats::Rng;

namespace {

design::DesignProblem rugged_problem(std::uint64_t seed = 1) {
  return design::DesignProblem(/*dims=*/12, /*options=*/4, /*k=*/3,
                               /*threshold=*/0.7, seed);
}

}  // namespace

// ------------------------------------------------------------ design space --

TEST(DesignSpace, QualityInUnitInterval) {
  const auto problem = rugged_problem();
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double q = problem.quality(problem.random_point(rng));
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(DesignSpace, QualityDeterministic) {
  const auto problem = rugged_problem();
  Rng rng(3);
  const auto point = problem.random_point(rng);
  EXPECT_DOUBLE_EQ(problem.quality(point), problem.quality(point));
}

TEST(DesignSpace, SameSeedSameLandscape) {
  const auto a = rugged_problem(9);
  const auto b = rugged_problem(9);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto point = a.random_point(rng);
    EXPECT_DOUBLE_EQ(a.quality(point), b.quality(point));
  }
}

TEST(DesignSpace, ArityMismatchRejected) {
  const auto problem = rugged_problem();
  EXPECT_THROW(problem.quality({0, 1}), std::invalid_argument);
}

TEST(DesignSpace, OptionOutOfRangeRejected) {
  const auto problem = rugged_problem();
  design::DesignPoint point(problem.dimensions(), 0);
  point[0] = 99;
  EXPECT_THROW(problem.quality(point), std::invalid_argument);
}

TEST(DesignSpace, BadConstructionRejected) {
  EXPECT_THROW(design::DesignProblem(0, 2, 1, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(design::DesignProblem(5, 1, 1, 0.5, 1), std::invalid_argument);
}

TEST(DesignSpace, SpaceSizeIsProduct) {
  const auto problem = rugged_problem();
  EXPECT_DOUBLE_EQ(problem.space_size(), std::pow(4.0, 12.0));
}

TEST(DesignSpace, EvolvePartiallyPreservesLandscape) {
  const auto problem = rugged_problem(11);
  const auto evolved = problem.evolve(/*churn=*/0.3, 99);
  Rng rng(5);
  std::size_t same = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto point = problem.random_point(rng);
    if (std::abs(problem.quality(point) - evolved.quality(point)) < 1e-12)
      ++same;
  }
  // Some points keep their quality (carried dimensions), some change.
  EXPECT_LT(same, static_cast<std::size_t>(trials));
  const auto identical = problem.evolve(0.0, 99);
  const auto point = problem.random_point(rng);
  EXPECT_DOUBLE_EQ(problem.quality(point), identical.quality(point));
}

// ------------------------------------------------------------- exploration --

TEST(Exploration, FreeFindsSatisficingDesign) {
  const auto problem = rugged_problem();
  design::ExplorationConfig config;
  config.evaluation_budget = 8'000;
  const auto trace = design::explore_free(problem, config);
  EXPECT_TRUE(trace.success());
  EXPECT_GE(trace.best_quality, problem.satisficing_threshold());
  EXPECT_LE(trace.evaluations_used, config.evaluation_budget + 1);
}

TEST(Exploration, TraceAttemptsMonotoneInQuality) {
  const auto problem = rugged_problem();
  const auto trace = design::explore_free(problem, {});
  for (std::size_t i = 1; i < trace.attempts.size(); ++i)
    EXPECT_GE(trace.attempts[i].quality, trace.attempts[i - 1].quality);
}

TEST(Exploration, FixWhatNeverMovesPinnedDims) {
  const auto problem = rugged_problem();
  // Pinning half the dimensions shrinks the effective space; the process
  // still runs and reports evaluations.
  std::vector<std::size_t> fixed = {0, 2, 4, 6, 8, 10};
  design::DesignPoint values = {1, 1, 1, 1, 1, 1};
  const auto trace =
      design::explore_fix_what(problem, fixed, values, {});
  EXPECT_GT(trace.evaluations_used, 0u);
}

TEST(Exploration, FixWhatValidatesArguments) {
  const auto problem = rugged_problem();
  EXPECT_THROW(design::explore_fix_what(problem, {0, 1}, {0}, {}),
               std::invalid_argument);
  EXPECT_THROW(design::explore_fix_what(problem, {99}, {0}, {}),
               std::invalid_argument);
}

TEST(Exploration, FixHowValidatesArguments) {
  const auto problem = rugged_problem();
  EXPECT_THROW(design::explore_fix_how(problem, {2, 2}, {}),
               std::invalid_argument);
  std::vector<std::uint32_t> bad(problem.dimensions(), 9);
  EXPECT_THROW(design::explore_fix_how(problem, bad, {}),
               std::invalid_argument);
}

TEST(Exploration, FixHowRestrictsOptions) {
  const auto problem = rugged_problem();
  std::vector<std::uint32_t> allowed(problem.dimensions(), 2);
  const auto trace = design::explore_fix_how(problem, allowed, {});
  EXPECT_GT(trace.evaluations_used, 0u);
  EXPECT_LE(trace.best_quality, 1.0);
}

TEST(Exploration, CoEvolvingEvolvesWhenStuck) {
  // A near-impossible threshold forces stalls and problem evolutions.
  design::DesignProblem problem(10, 3, 2, 0.999, 21);
  design::ExplorationConfig config;
  config.evaluation_budget = 6'000;
  config.stall_limit = 300;
  const auto trace = design::explore_co_evolving(problem, config);
  EXPECT_GT(trace.problem_evolutions, 0u);
}

TEST(Exploration, CoEvolvingBeatsFreeOnHardProblems) {
  // The Figure 7 narrative: when the problem is too hard, evolving it
  // yields satisficing designs free exploration cannot reach.
  std::size_t co_wins = 0;
  std::size_t free_wins = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    design::DesignProblem problem(14, 4, 6, 0.82, seed);
    design::ExplorationConfig config;
    config.evaluation_budget = 6'000;
    config.stall_limit = 500;
    config.seed = seed;
    co_wins += design::explore_co_evolving(problem, config).success();
    free_wins += design::explore_free(problem, config).success();
  }
  EXPECT_GE(co_wins, free_wins);
  EXPECT_GT(co_wins, 0u);
}

TEST(Exploration, DeterministicForSeed) {
  const auto problem = rugged_problem();
  design::ExplorationConfig config;
  config.seed = 77;
  const auto a = design::explore_free(problem, config);
  const auto b = design::explore_free(problem, config);
  EXPECT_DOUBLE_EQ(a.best_quality, b.best_quality);
  EXPECT_EQ(a.evaluations_used, b.evaluations_used);
  EXPECT_EQ(a.satisficing_designs, b.satisficing_designs);
  EXPECT_EQ(a.best_point, b.best_point);
}

TEST(Exploration, BestPointAchievesBestQuality) {
  // The trace exposes the incumbent design directly: re-evaluating it
  // must reproduce best_quality exactly, with no attempts re-scan.
  const auto problem = rugged_problem();
  for (const auto& trace :
       {design::explore_free(problem, {}),
        design::explore_co_evolving(problem, {})}) {
    ASSERT_EQ(trace.best_point.size(), problem.dimensions());
    if (trace.process != "co-evolving") {  // co-evolving evolves the problem
      EXPECT_DOUBLE_EQ(problem.quality(trace.best_point),
                       trace.best_quality);
    }
    for (std::size_t d = 0; d < trace.best_point.size(); ++d)
      EXPECT_LT(trace.best_point[d], problem.options(d));
  }
}

TEST(Exploration, DefaultBudgetIsDocumentedConstant) {
  const design::ExplorationConfig config;
  EXPECT_EQ(config.evaluation_budget,
            design::ExplorationConfig::kDefaultEvaluationBudget);
  EXPECT_EQ(design::ExplorationConfig::kDefaultEvaluationBudget, 5'000u);
}

TEST(Exploration, LandscapeEngineSearchesArbitraryQuality) {
  // The generic engine (what the exp campaign binds simulators to):
  // a 3x3 landscape whose quality peaks at (2, 2).
  design::Landscape space;
  space.options = {3, 3};
  space.quality = [](const design::DesignPoint& p) {
    return static_cast<double>(p[0] + p[1]) / 4.0;
  };
  design::ExplorationConfig config;
  config.evaluation_budget = 200;
  config.restart_period = 20;
  const auto trace = design::explore_free(space, config);
  EXPECT_DOUBLE_EQ(trace.best_quality, 1.0);
  EXPECT_EQ(trace.best_point, (design::DesignPoint{2, 2}));
  // Default satisficing threshold (2.0) is unreachable on [0, 1]:
  // exploration runs to budget exhaustion and reports no success.
  EXPECT_FALSE(trace.success());
  EXPECT_LE(trace.evaluations_used, config.evaluation_budget + 1);
}

// -------------------------------------------------------------------- BDC --

TEST(Bdc, StopsOnSatisficing) {
  design::BdcConfig config;
  config.satisficing_quality = 0.5;
  config.designs_target = 1;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kHighAndLowLevelDesign, [](design::BdcContext& ctx) {
    ctx.best_quality = 0.6;
    ctx.designs_found = 1;
  });
  const auto report = bdc.run();
  EXPECT_EQ(report.stopped_by, design::StoppingCriterion::kSatisficing);
  EXPECT_EQ(report.iterations, 1u);
  EXPECT_TRUE(report.success());
}

TEST(Bdc, StopsOnResourceExhaustion) {
  design::BdcConfig config;
  config.max_iterations = 5;
  design::BasicDesignCycle bdc(config);  // no handlers, no progress
  const auto report = bdc.run();
  EXPECT_EQ(report.stopped_by,
            design::StoppingCriterion::kResourcesExhausted);
  EXPECT_EQ(report.iterations, 5u);
  EXPECT_FALSE(report.success());
}

TEST(Bdc, PortfolioCriterionForSmallTargets) {
  design::BdcConfig config;
  config.designs_target = 3;
  config.satisficing_quality = 0.5;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kHighAndLowLevelDesign, [](design::BdcContext& ctx) {
    ctx.best_quality = 0.9;
    ++ctx.designs_found;
  });
  const auto report = bdc.run();
  EXPECT_EQ(report.stopped_by, design::StoppingCriterion::kPortfolio);
  EXPECT_EQ(report.designs_found, 3u);
}

TEST(Bdc, SystematicCriterionForLargeTargets) {
  design::BdcConfig config;
  config.designs_target = 10;
  config.satisficing_quality = 0.1;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kHighAndLowLevelDesign, [](design::BdcContext& ctx) {
    ctx.best_quality = 0.9;
    ctx.designs_found += 5;
  });
  const auto report = bdc.run();
  EXPECT_EQ(report.stopped_by, design::StoppingCriterion::kSystematicDesign);
}

TEST(Bdc, SpaceExhaustionCriterion) {
  design::BdcConfig config;
  config.max_iterations = 100;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kExperimentalAnalysis, [](design::BdcContext& ctx) {
    ctx.space_explored += 10;
  });
  design::BdcContext ctx;
  ctx.space_size = 30;
  const auto report = bdc.run(std::move(ctx));
  EXPECT_EQ(report.stopped_by, design::StoppingCriterion::kSpaceExhaustion);
  EXPECT_EQ(report.iterations, 3u);
}

TEST(Bdc, StagesWithoutHandlersAreSkipped) {
  design::BdcConfig config;
  config.max_iterations = 1;
  design::BasicDesignCycle bdc(config);
  bdc.on(design::Stage::kImplement, [](design::BdcContext&) {});
  const auto report = bdc.run();
  ASSERT_EQ(report.visits.size(), design::kStageCount);
  for (const auto& v : report.visits) {
    if (v.stage == design::Stage::kImplement) {
      EXPECT_FALSE(v.skipped);
    } else {
      EXPECT_TRUE(v.skipped);
    }
  }
}

TEST(Bdc, SkipPredicateTailorsIterations) {
  design::BdcConfig config;
  config.max_iterations = 3;
  design::BasicDesignCycle bdc(config);
  int executions = 0;
  bdc.on(design::Stage::kDisseminate,
         [&](design::BdcContext&) { ++executions; });
  // Skip dissemination until the final iteration.
  bdc.skip_when(design::Stage::kDisseminate,
                [](const design::BdcContext& ctx) {
                  return ctx.iteration < 3;
                });
  (void)bdc.run();
  EXPECT_EQ(executions, 1);
}

TEST(Bdc, HierarchicalNestedCycle) {
  // Stage 5 (implementation) expands into its own BDC — the Overall
  // Process of Figure 8.
  design::BdcConfig outer_config;
  outer_config.satisficing_quality = 0.5;
  design::BasicDesignCycle outer(outer_config);
  outer.on(design::Stage::kImplement, [](design::BdcContext& ctx) {
    design::BdcConfig inner_config;
    inner_config.satisficing_quality = 0.5;
    design::BasicDesignCycle inner(inner_config);
    inner.on(design::Stage::kHighAndLowLevelDesign,
             [](design::BdcContext& inner_ctx) {
               inner_ctx.best_quality = 0.8;
               inner_ctx.designs_found = 1;
             });
    const auto inner_report = inner.run();
    ctx.best_quality = inner_report.best_quality;
    ctx.designs_found += inner_report.designs_found;
    ctx.artifacts.push_back("prototype");
  });
  const auto report = outer.run();
  EXPECT_EQ(report.stopped_by, design::StoppingCriterion::kSatisficing);
  ASSERT_EQ(report.artifacts.size(), 1u);
  EXPECT_EQ(report.artifacts[0], "prototype");
}

TEST(Bdc, StageAndCriterionNames) {
  EXPECT_EQ(design::to_string(design::Stage::kImplement), "implement");
  EXPECT_EQ(design::to_string(design::StoppingCriterion::kSatisficing),
            "satisficing");
  EXPECT_EQ(design::all_stages().size(), design::kStageCount);
}

// ---------------------------------------------------------------- catalogs --

TEST(Catalog, EightPrinciplesInPaperOrder) {
  const auto& ps = design::principles();
  ASSERT_EQ(ps.size(), 8u);
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_EQ(ps[i].index, i + 1);
  EXPECT_EQ(ps[0].category, design::PrincipleCategory::kHighest);
  EXPECT_EQ(ps[4].category, design::PrincipleCategory::kPeopleware);
}

TEST(Catalog, TenChallengesCrossLinked) {
  const auto& cs = design::challenges();
  ASSERT_EQ(cs.size(), 10u);
  for (const auto& c : cs) {
    EXPECT_FALSE(c.principles.empty());
    for (auto p : c.principles) {
      EXPECT_GE(p, 1u);
      EXPECT_LE(p, 8u);
    }
  }
}

TEST(Catalog, ChallengesForPrincipleMatchesTable3) {
  // Table 3: C1-C3 derive from P1.
  const auto linked = design::challenges_for_principle(1);
  ASSERT_EQ(linked.size(), 3u);
  EXPECT_EQ(linked[0].index, 1u);
  EXPECT_EQ(linked[2].index, 3u);
  // P7 links C8, C9, C10.
  EXPECT_EQ(design::challenges_for_principle(7).size(), 3u);
}

TEST(Catalog, PaperProblemCatalogClassified) {
  const auto catalog = design::paper_problem_catalog();
  EXPECT_GE(catalog.size(), 8u);
  EXPECT_FALSE(
      catalog.by_archetype(design::ProblemArchetype::kMorphology).empty());
  EXPECT_FALSE(
      catalog.by_archetype(design::ProblemArchetype::kLegacy).empty());
  EXPECT_FALSE(
      catalog.by_archetype(design::ProblemArchetype::kUnexploredNiche)
          .empty());
}

TEST(Catalog, CreativityAssessmentQuantizes) {
  EXPECT_EQ(design::assess_creativity(1.0, 1.0),
            design::CreativityLevel::kTrivial);
  EXPECT_EQ(design::assess_creativity(2.0, 2.0),
            design::CreativityLevel::kNormal);
  EXPECT_EQ(design::assess_creativity(3.0, 3.0),
            design::CreativityLevel::kNovel);
  EXPECT_EQ(design::assess_creativity(4.0, 4.0),
            design::CreativityLevel::kFundamental);
  // The clustering effect: mid scores all map to the same level.
  EXPECT_EQ(design::assess_creativity(2.3, 2.4),
            design::assess_creativity(2.0, 2.1));
}

// ------------------------------------------------------------------ review --

TEST(Review, GeneratesRequestedArticles) {
  design::ReviewModelConfig config;
  config.articles = 200;
  const auto reviews = design::generate_reviews(config);
  EXPECT_EQ(reviews.size(), 200u);
  for (const auto& r : reviews) {
    EXPECT_GE(r.merit, 1.0);
    EXPECT_LE(r.merit, 4.0);
    EXPECT_GE(r.quality, 1.0);
    EXPECT_LE(r.quality, 4.0);
  }
}

TEST(Review, AcceptanceRateHonored) {
  design::ReviewModelConfig config;
  config.articles = 500;
  config.accept_rate = 0.2;
  const auto reviews = design::generate_reviews(config);
  std::size_t accepted = 0;
  for (const auto& r : reviews) accepted += r.accepted;
  EXPECT_EQ(accepted, 100u);
}

TEST(Review, DesignArticlesSlightlyBetter) {
  // Finding (1) of Figure 3.
  design::ReviewModelConfig config;
  config.articles = 4'000;
  const auto reviews = design::generate_reviews(config);
  double design_sum = 0.0;
  std::size_t design_n = 0;
  double other_sum = 0.0;
  std::size_t other_n = 0;
  for (const auto& r : reviews) {
    if (r.is_design) {
      design_sum += r.merit;
      ++design_n;
    } else {
      other_sum += r.merit;
      ++other_n;
    }
  }
  EXPECT_GT(design_sum / design_n, other_sum / other_n);
}

TEST(Review, ManyDesignArticlesBelowThree) {
  // Finding (2) of Figure 3.
  design::ReviewModelConfig config;
  config.articles = 2'000;
  const auto reviews = design::generate_reviews(config);
  std::size_t design_total = 0;
  std::size_t below = 0;
  for (const auto& r : reviews) {
    if (!r.is_design) continue;
    ++design_total;
    if (r.merit < 3.0) ++below;
  }
  EXPECT_GT(static_cast<double>(below) / design_total, 0.3);
}

TEST(Review, TopicScoresHigh) {
  // Finding (3): CfP focuses authors.
  design::ReviewModelConfig config;
  config.articles = 1'000;
  const auto reviews = design::generate_reviews(config);
  double topic_sum = 0.0;
  for (const auto& r : reviews) topic_sum += r.topic;
  EXPECT_GT(topic_sum / reviews.size(), 3.0);
}

TEST(Review, ViolinGroupHasSixCategories) {
  design::ReviewModelConfig config;
  config.articles = 300;
  const auto reviews = design::generate_reviews(config);
  const auto group =
      design::violins_by_category(reviews, design::ReviewAspect::kMerit);
  EXPECT_EQ(group.labels.size(), 6u);
  EXPECT_EQ(group.violins.size(), 6u);
}

TEST(Review, AcceptedScoreHigherThanRejected) {
  design::ReviewModelConfig config;
  config.articles = 1'000;
  const auto reviews = design::generate_reviews(config);
  const auto group =
      design::violins_by_category(reviews, design::ReviewAspect::kMerit);
  // labels: design+accepted (2) vs design+rejected (3).
  EXPECT_GT(group.violins[2].stats.mean, group.violins[3].stats.mean);
}

// ------------------------------------------------------------ bibliometrics --

TEST(Bibliometrics, LogisticTrendMonotone) {
  design::KeywordTrend trend;
  trend.floor = 0.05;
  trend.ceil = 0.4;
  trend.rate = 0.3;
  trend.midpoint_year = 2005;
  EXPECT_LT(trend.probability(1985), trend.probability(2005));
  EXPECT_LT(trend.probability(2005), trend.probability(2018));
  EXPECT_GT(trend.probability(1980), 0.0);
  EXPECT_LT(trend.probability(2030), 0.4);
}

TEST(Bibliometrics, CorpusRespectsVenueStartYears) {
  const auto corpus = design::generate_corpus(design::paper_corpus_config());
  for (const auto& a : corpus.articles) {
    EXPECT_GE(a.year, corpus.config.venues[a.venue].first_year);
    EXPECT_LE(a.year, corpus.config.to_year);
  }
}

TEST(Bibliometrics, DesignPresenceRisesPost2000) {
  const auto corpus = design::generate_corpus(design::paper_corpus_config());
  // keyword 0 is "design"; venue 0 is ICDCS.
  const double early = design::keyword_presence(corpus, 0, 0, 1981, 1995);
  const double late = design::keyword_presence(corpus, 0, 0, 2005, 2018);
  EXPECT_GT(late, early * 1.5);
}

TEST(Bibliometrics, BlockCountsCensoredForLateVenues) {
  const auto corpus = design::generate_corpus(design::paper_corpus_config());
  const auto blocks = design::design_articles_per_block(corpus);
  // NSDI (venue 4) started 2004: the 1980-1999 blocks are all zero.
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(blocks.counts[4][b], 0u);
  // ICDCS (venue 0): recent blocks exceed early blocks.
  const auto& icdcs = blocks.counts[0];
  EXPECT_GT(icdcs[icdcs.size() - 2], icdcs[0]);
}

TEST(Bibliometrics, MissingDesignKeywordRejected) {
  design::CorpusConfig config;
  config.venues = {{"V", 1980, 10, 0.0}};
  config.keywords = {{"performance", 0.1, 0.2, 0.1, 2000}};
  const auto corpus = design::generate_corpus(config);
  EXPECT_THROW(design::design_articles_per_block(corpus),
               std::invalid_argument);
}

TEST(Bibliometrics, TooManyKeywordsRejected) {
  design::CorpusConfig config;
  config.venues = {{"V", 1980, 1, 0.0}};
  config.keywords.resize(40);
  EXPECT_THROW(design::generate_corpus(config), std::invalid_argument);
}

// Property: every exploration process respects its evaluation budget.
class BudgetRespected : public ::testing::TestWithParam<int> {};

TEST_P(BudgetRespected, Holds) {
  const auto problem = rugged_problem(31);
  design::ExplorationConfig config;
  config.evaluation_budget = 500 + 100 * GetParam();
  design::ExplorationTrace trace;
  switch (GetParam() % 3) {
    case 0: trace = design::explore_free(problem, config); break;
    case 1: {
      std::vector<std::uint32_t> allowed(problem.dimensions(), 3);
      trace = design::explore_fix_how(problem, allowed, config);
      break;
    }
    default: trace = design::explore_co_evolving(problem, config); break;
  }
  EXPECT_LE(trace.evaluations_used, config.evaluation_budget + 1);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetRespected, ::testing::Range(0, 9));
