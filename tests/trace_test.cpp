// Tests for trace tables, FAIR archive catalogs, and the .atl binary
// columnar trace format (round-trips, truncation vs corruption, bounded
// reader residency).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "atlarge/trace/archive.hpp"
#include "atlarge/trace/atl.hpp"
#include "atlarge/trace/record.hpp"

namespace trace = atlarge::trace;

namespace {

std::vector<trace::Column> job_schema() {
  return {{"job_id", trace::FieldType::kInt},
          {"runtime", trace::FieldType::kReal},
          {"user", trace::FieldType::kText}};
}

}  // namespace

TEST(Table, RequiresNonEmptySchema) {
  EXPECT_THROW(trace::Table({}), std::invalid_argument);
}

TEST(Table, AppendAndRead) {
  trace::Table t(job_schema());
  t.append({std::int64_t{1}, 2.5, std::string("alice")});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 1);
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(0)[1]), 2.5);
  EXPECT_EQ(std::get<std::string>(t.row(0)[2]), "alice");
}

TEST(Table, AppendRejectsArityMismatch) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.append({std::int64_t{1}, 2.5}), std::invalid_argument);
}

TEST(Table, AppendRejectsTypeMismatch) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.append({2.5, std::int64_t{1}, std::string("x")}),
               std::invalid_argument);
}

TEST(Table, ColumnIndexLookup) {
  trace::Table t(job_schema());
  EXPECT_EQ(t.column_index("runtime"), 1u);
  EXPECT_EQ(t.column_index("nope"), trace::Table::npos);
}

TEST(Table, NumericColumnWidensInts) {
  trace::Table t(job_schema());
  t.append({std::int64_t{4}, 1.0, std::string("a")});
  t.append({std::int64_t{9}, 2.0, std::string("b")});
  const auto col = t.numeric_column("job_id");
  EXPECT_EQ(col, (std::vector<double>{4.0, 9.0}));
}

TEST(Table, NumericColumnRejectsText) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.numeric_column("user"), std::invalid_argument);
  EXPECT_THROW(t.numeric_column("missing"), std::invalid_argument);
}

TEST(Table, CsvRoundTrip) {
  trace::Table t(job_schema());
  t.append({std::int64_t{1}, 3.14159, std::string("plain")});
  t.append({std::int64_t{2}, -0.5, std::string("with,comma")});
  t.append({std::int64_t{3}, 1e-10, std::string("with\"quote")});
  std::stringstream buffer;
  t.write_csv(buffer);
  const auto back = trace::Table::read_csv(buffer, job_schema());
  ASSERT_EQ(back.rows(), 3u);
  EXPECT_EQ(std::get<std::string>(back.row(1)[2]), "with,comma");
  EXPECT_EQ(std::get<std::string>(back.row(2)[2]), "with\"quote");
  EXPECT_DOUBLE_EQ(std::get<double>(back.row(0)[1]), 3.14159);
  EXPECT_DOUBLE_EQ(std::get<double>(back.row(2)[1]), 1e-10);
}

TEST(Table, ReadCsvRejectsHeaderMismatch) {
  std::stringstream buffer("a,b\n1,2\n");
  EXPECT_THROW(trace::Table::read_csv(buffer, job_schema()),
               std::runtime_error);
}

TEST(Table, ReadCsvRejectsBadCells) {
  std::stringstream buffer("job_id,runtime,user\nnot_an_int,1.0,x\n");
  EXPECT_THROW(trace::Table::read_csv(buffer, job_schema()),
               std::runtime_error);
}

TEST(Table, ReadCsvSkipsBlankLines) {
  std::stringstream buffer("job_id,runtime,user\n1,1.0,x\n\n2,2.0,y\n");
  const auto t = trace::Table::read_csv(buffer, job_schema());
  EXPECT_EQ(t.rows(), 2u);
}

// ---------------------------------------------------------------- Archive --

TEST(Fair, ScoreCountsSatisfiedCriteria) {
  trace::FairAssessment fair;
  EXPECT_DOUBLE_EQ(fair.score(), 0.0);
  fair.findable_identifier = true;
  fair.findable_metadata = true;
  fair.accessible_protocol = true;
  EXPECT_DOUBLE_EQ(fair.score(), 0.5);
  fair.interoperable_format = true;
  fair.reusable_license = true;
  fair.reusable_provenance = true;
  EXPECT_DOUBLE_EQ(fair.score(), 1.0);
}

TEST(Archive, AddRejectsDuplicateIds) {
  trace::Archive archive("p2p-trace-archive");
  EXPECT_TRUE(archive.add({.id = "d1", .title = "one"}));
  EXPECT_FALSE(archive.add({.id = "d1", .title = "dup"}));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, FindById) {
  trace::Archive archive("gta");
  archive.add({.id = "g1", .title = "runescape traces"});
  const auto found = archive.find("g1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->title, "runescape traces");
  EXPECT_FALSE(archive.find("missing").has_value());
}

TEST(Archive, FilterByDomain) {
  trace::Archive archive("a");
  archive.add({.id = "1", .domain = trace::Domain::kP2P});
  archive.add({.id = "2", .domain = trace::Domain::kGaming});
  archive.add({.id = "3", .domain = trace::Domain::kP2P});
  EXPECT_EQ(archive.by_domain(trace::Domain::kP2P).size(), 2u);
  EXPECT_EQ(archive.by_domain(trace::Domain::kServerless).size(), 0u);
}

TEST(Archive, FilterByKeyword) {
  trace::Archive archive("a");
  trace::DatasetEntry e;
  e.id = "1";
  e.keywords = {"bittorrent", "flashcrowd"};
  archive.add(e);
  EXPECT_EQ(archive.by_keyword("flashcrowd").size(), 1u);
  EXPECT_EQ(archive.by_keyword("mmog").size(), 0u);
}

TEST(Archive, MeanFairScore) {
  trace::Archive archive("a");
  trace::DatasetEntry good;
  good.id = "good";
  good.fair = {true, true, true, true, true, true};
  trace::DatasetEntry poor;
  poor.id = "poor";
  archive.add(good);
  archive.add(poor);
  EXPECT_DOUBLE_EQ(archive.mean_fair_score(), 0.5);
}

TEST(Archive, EmptyMeanIsZero) {
  trace::Archive archive("a");
  EXPECT_DOUBLE_EQ(archive.mean_fair_score(), 0.0);
}

TEST(Domain, ToStringCoversAll) {
  EXPECT_EQ(trace::to_string(trace::Domain::kP2P), "p2p");
  EXPECT_EQ(trace::to_string(trace::Domain::kGaming), "gaming");
  EXPECT_EQ(trace::to_string(trace::Domain::kDatacenter), "datacenter");
  EXPECT_EQ(trace::to_string(trace::Domain::kServerless), "serverless");
  EXPECT_EQ(trace::to_string(trace::Domain::kGraph), "graph");
  EXPECT_EQ(trace::to_string(trace::Domain::kWorkflow), "workflow");
  EXPECT_EQ(trace::to_string(trace::Domain::kOther), "other");
}

// ------------------------------------------------------- CSV robustness --

TEST(Table, ReadCsvStripsWindowsLineEndings) {
  // CRLF fixture: a trace exported on Windows must parse identically to
  // its LF twin — including the last cell of each row, which otherwise
  // grows a trailing '\r'.
  std::stringstream buffer(
      "job_id,runtime,user\r\n1,1.5,alice\r\n2,2.5,bob\r\n");
  const auto t = trace::Table::read_csv(buffer, job_schema());
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(std::get<std::string>(t.row(0)[2]), "alice");
  EXPECT_EQ(std::get<std::string>(t.row(1)[2]), "bob");
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(1)[1]), 2.5);
}

TEST(Table, ReadCsvStripsCrOnBlankAndHeaderLines) {
  std::stringstream buffer("job_id,runtime,user\r\n\r\n3,0.25,carol\r\n");
  const auto t = trace::Table::read_csv(buffer, job_schema());
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 3);
}

TEST(Table, CsvRealRoundTripIsExact) {
  // write_csv emits shortest-round-trip reals via std::to_chars and
  // read_csv parses with std::from_chars: locale-independent and exact
  // for every finite double, including the nasty corners.
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -1e308,
      1e308,
      5e-324,                                     // min subnormal
      2.2250738585072014e-308,                    // min normal
      0.1,
      -123456789.123456789,
      6.02214076e23,
  };
  trace::Table t({{"x", trace::FieldType::kReal}});
  for (const double v : values) t.append({v});
  std::stringstream buffer;
  t.write_csv(buffer);
  const auto back =
      trace::Table::read_csv(buffer, {{"x", trace::FieldType::kReal}});
  ASSERT_EQ(back.rows(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double got = std::get<double>(back.row(i)[0]);
    // Bit-exact, not just value-equal: -0.0 must survive.
    std::uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &values[i], sizeof want_bits);
    std::memcpy(&got_bits, &got, sizeof got_bits);
    EXPECT_EQ(got_bits, want_bits) << "row " << i << " value " << values[i];
  }
}

// ------------------------------------------------------------ .atl format --

namespace {

std::string atl_temp_path(const char* tag) {
  return ::testing::TempDir() + "trace_test_" + tag + ".atl";
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(Atl, ZigzagRoundTripsExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(trace::zigzag_decode(trace::zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the property delta coding needs).
  EXPECT_EQ(trace::zigzag_encode(0), 0u);
  EXPECT_EQ(trace::zigzag_encode(-1), 1u);
  EXPECT_EQ(trace::zigzag_encode(1), 2u);
}

TEST(Atl, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(trace::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(trace::crc32(s, 0), 0u);
}

TEST(Atl, VarintEncodesLeb128) {
  std::vector<std::uint8_t> out;
  trace::put_varint(out, 0);
  trace::put_varint(out, 127);
  trace::put_varint(out, 128);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0x00, 0x7F, 0x80, 0x01}));
}

TEST(Atl, TableRoundTripsAllTypes) {
  const std::string path = atl_temp_path("roundtrip");
  trace::Table t(job_schema());
  t.append({std::int64_t{42}, 3.14159, std::string("alice")});
  t.append({std::int64_t{-7}, -0.0, std::string("")});
  t.append({std::numeric_limits<std::int64_t>::max(), 1e308,
            std::string("utf8 \xC3\xA9\xC3\xA8")});
  t.append({std::numeric_limits<std::int64_t>::min(), 5e-324,
            std::string("comma,quote\"newline\n")});
  trace::write_atl(t, path);
  const auto back = trace::read_atl(path);
  ASSERT_EQ(back.rows(), t.rows());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_EQ(back.row(r), t.row(r)) << "row " << r;
  }
  std::remove(path.c_str());
}

TEST(Atl, PropertyRandomTablesRoundTrip) {
  // Property test: random typed tables of random shapes survive the
  // write->read cycle exactly, across chunk boundaries (chunk_rows = 7
  // forces many small chunks).
  std::mt19937_64 rng(20260809);
  for (int iter = 0; iter < 8; ++iter) {
    std::vector<trace::Column> schema;
    const std::size_t cols = 1 + rng() % 4;
    for (std::size_t c = 0; c < cols; ++c) {
      schema.push_back({"c" + std::to_string(c),
                        static_cast<trace::FieldType>(rng() % 3)});
    }
    trace::Table t(schema);
    const std::size_t rows = rng() % 40;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<trace::Field> row;
      for (const auto& col : schema) {
        switch (col.type) {
          case trace::FieldType::kInt:
            row.emplace_back(static_cast<std::int64_t>(rng()));
            break;
          case trace::FieldType::kReal: {
            // Random finite double from random bits.
            double d = 0.0;
            std::uint64_t bits;
            do {
              bits = rng();
              std::memcpy(&d, &bits, sizeof d);
            } while (!std::isfinite(d));
            row.emplace_back(d);
            break;
          }
          case trace::FieldType::kText:
            row.emplace_back(std::string(rng() % 17, 'a' + rng() % 26));
            break;
        }
      }
      t.append(row);
    }
    const std::string path = atl_temp_path("property");
    trace::WriterOptions options;
    options.chunk_rows = 7;
    trace::write_atl(t, path, options);
    const auto back = trace::read_atl(path);
    ASSERT_EQ(back.rows(), t.rows()) << "iter " << iter;
    for (std::size_t r = 0; r < t.rows(); ++r)
      EXPECT_EQ(back.row(r), t.row(r)) << "iter " << iter << " row " << r;
    std::remove(path.c_str());
  }
}

TEST(Atl, RejectsBadMagicAndVersion) {
  const std::string path = atl_temp_path("magic");
  spit_file(path, "NOTATRACEFILE....");
  EXPECT_THROW(trace::TraceReader reader(path), std::runtime_error);
  // Valid magic, unsupported version.
  std::string bytes(trace::kAtlMagic, sizeof trace::kAtlMagic);
  bytes += std::string("\x63\x00\x00\x00\x00\x00", 6);  // version 99, 0 cols
  spit_file(path, bytes);
  EXPECT_THROW(trace::TraceReader reader(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Atl, TruncatedFileThrowsByDefaultAndStopsCleanlyWhenAllowed) {
  const std::string path = atl_temp_path("truncated");
  trace::Table t(job_schema());
  for (int i = 0; i < 50; ++i)
    t.append({std::int64_t{i}, 0.5 * i, std::string("u") + std::to_string(i)});
  trace::WriterOptions options;
  options.chunk_rows = 10;  // 5 chunks
  trace::write_atl(t, path, options);

  // Cut the file mid-way through the last chunk: a crash tail.
  const std::string bytes = slurp_file(path);
  spit_file(path, bytes.substr(0, bytes.size() - 11));

  {
    trace::TraceReader reader(path);
    EXPECT_THROW(
        {
          while (reader.next_chunk()) {
          }
        },
        std::runtime_error);
  }
  {
    trace::ReaderOptions ro;
    ro.allow_partial_tail = true;
    trace::TraceReader reader(path, ro);
    std::size_t rows = 0;
    while (reader.next_chunk()) rows += reader.rows();
    EXPECT_EQ(rows, 40u);  // the 4 complete chunks
    EXPECT_TRUE(reader.truncated());
  }
  std::remove(path.c_str());
}

TEST(Atl, CorruptedChunkCrcThrowsEvenWithPartialTailAllowed) {
  const std::string path = atl_temp_path("crc");
  trace::Table t(job_schema());
  for (int i = 0; i < 30; ++i)
    t.append({std::int64_t{i}, 1.0 * i, std::string("x")});
  trace::WriterOptions options;
  options.chunk_rows = 10;
  trace::write_atl(t, path, options);

  // Flip one payload byte in the middle of the file: parseable but wrong.
  std::string bytes = slurp_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  spit_file(path, bytes);

  trace::ReaderOptions ro;
  ro.allow_partial_tail = true;  // corruption is NOT a crash tail
  trace::TraceReader reader(path, ro);
  EXPECT_THROW(
      {
        while (reader.next_chunk()) {
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(Atl, CleanTailPartialReadReportsNotTruncated) {
  // allow_partial_tail on an intact file must not change semantics.
  const std::string path = atl_temp_path("clean");
  trace::Table t(job_schema());
  for (int i = 0; i < 25; ++i)
    t.append({std::int64_t{i}, 2.0 * i, std::string("y")});
  trace::WriterOptions options;
  options.chunk_rows = 10;
  trace::write_atl(t, path, options);

  trace::ReaderOptions ro;
  ro.allow_partial_tail = true;
  trace::TraceReader reader(path, ro);
  std::size_t rows = 0;
  while (reader.next_chunk()) rows += reader.rows();
  EXPECT_EQ(rows, 25u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.chunks_read(), 3u);
  std::remove(path.c_str());
}

TEST(Atl, ReaderResidencyIsBoundedByChunkNotFile) {
  // Two files with identical content, one written as a single huge chunk
  // and one chunked small: the chunked reader's peak residency must track
  // the chunk size, not the file size.
  trace::Table t(job_schema());
  for (int i = 0; i < 4'000; ++i)
    t.append({std::int64_t{i}, 0.1 * i, std::string("user")});
  const std::string big_path = atl_temp_path("bigchunk");
  const std::string small_path = atl_temp_path("smallchunk");
  trace::write_atl(t, big_path, {.chunk_rows = 100'000});
  trace::write_atl(t, small_path, {.chunk_rows = 64});

  std::uint64_t peak_big = 0, peak_small = 0;
  for (const auto* p : {&big_path, &small_path}) {
    trace::TraceReader reader(*p);
    std::size_t rows = 0;
    while (reader.next_chunk()) rows += reader.rows();
    EXPECT_EQ(rows, 4'000u);
    (p == &big_path ? peak_big : peak_small) = reader.peak_resident_bytes();
  }
  EXPECT_LT(peak_small * 10, peak_big);
  std::remove(big_path.c_str());
  std::remove(small_path.c_str());
}

TEST(Atl, WriterCountsAndEmptyTableYieldZeroChunks) {
  const std::string path = atl_temp_path("counts");
  {
    trace::TraceWriter writer(path, job_schema());
    writer.finish();
    EXPECT_EQ(writer.rows_written(), 0u);
    EXPECT_EQ(writer.chunks_written(), 0u);
    EXPECT_GT(writer.bytes_written(), 0u);  // header
  }
  trace::TraceReader reader(path);
  EXPECT_FALSE(reader.next_chunk());
  EXPECT_EQ(reader.rows_read(), 0u);
  std::remove(path.c_str());
}
