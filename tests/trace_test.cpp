// Tests for trace tables and FAIR archive catalogs.

#include <sstream>

#include <gtest/gtest.h>

#include "atlarge/trace/archive.hpp"
#include "atlarge/trace/record.hpp"

namespace trace = atlarge::trace;

namespace {

std::vector<trace::Column> job_schema() {
  return {{"job_id", trace::FieldType::kInt},
          {"runtime", trace::FieldType::kReal},
          {"user", trace::FieldType::kText}};
}

}  // namespace

TEST(Table, RequiresNonEmptySchema) {
  EXPECT_THROW(trace::Table({}), std::invalid_argument);
}

TEST(Table, AppendAndRead) {
  trace::Table t(job_schema());
  t.append({std::int64_t{1}, 2.5, std::string("alice")});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 1);
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(0)[1]), 2.5);
  EXPECT_EQ(std::get<std::string>(t.row(0)[2]), "alice");
}

TEST(Table, AppendRejectsArityMismatch) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.append({std::int64_t{1}, 2.5}), std::invalid_argument);
}

TEST(Table, AppendRejectsTypeMismatch) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.append({2.5, std::int64_t{1}, std::string("x")}),
               std::invalid_argument);
}

TEST(Table, ColumnIndexLookup) {
  trace::Table t(job_schema());
  EXPECT_EQ(t.column_index("runtime"), 1u);
  EXPECT_EQ(t.column_index("nope"), trace::Table::npos);
}

TEST(Table, NumericColumnWidensInts) {
  trace::Table t(job_schema());
  t.append({std::int64_t{4}, 1.0, std::string("a")});
  t.append({std::int64_t{9}, 2.0, std::string("b")});
  const auto col = t.numeric_column("job_id");
  EXPECT_EQ(col, (std::vector<double>{4.0, 9.0}));
}

TEST(Table, NumericColumnRejectsText) {
  trace::Table t(job_schema());
  EXPECT_THROW(t.numeric_column("user"), std::invalid_argument);
  EXPECT_THROW(t.numeric_column("missing"), std::invalid_argument);
}

TEST(Table, CsvRoundTrip) {
  trace::Table t(job_schema());
  t.append({std::int64_t{1}, 3.14159, std::string("plain")});
  t.append({std::int64_t{2}, -0.5, std::string("with,comma")});
  t.append({std::int64_t{3}, 1e-10, std::string("with\"quote")});
  std::stringstream buffer;
  t.write_csv(buffer);
  const auto back = trace::Table::read_csv(buffer, job_schema());
  ASSERT_EQ(back.rows(), 3u);
  EXPECT_EQ(std::get<std::string>(back.row(1)[2]), "with,comma");
  EXPECT_EQ(std::get<std::string>(back.row(2)[2]), "with\"quote");
  EXPECT_DOUBLE_EQ(std::get<double>(back.row(0)[1]), 3.14159);
  EXPECT_DOUBLE_EQ(std::get<double>(back.row(2)[1]), 1e-10);
}

TEST(Table, ReadCsvRejectsHeaderMismatch) {
  std::stringstream buffer("a,b\n1,2\n");
  EXPECT_THROW(trace::Table::read_csv(buffer, job_schema()),
               std::runtime_error);
}

TEST(Table, ReadCsvRejectsBadCells) {
  std::stringstream buffer("job_id,runtime,user\nnot_an_int,1.0,x\n");
  EXPECT_THROW(trace::Table::read_csv(buffer, job_schema()),
               std::runtime_error);
}

TEST(Table, ReadCsvSkipsBlankLines) {
  std::stringstream buffer("job_id,runtime,user\n1,1.0,x\n\n2,2.0,y\n");
  const auto t = trace::Table::read_csv(buffer, job_schema());
  EXPECT_EQ(t.rows(), 2u);
}

// ---------------------------------------------------------------- Archive --

TEST(Fair, ScoreCountsSatisfiedCriteria) {
  trace::FairAssessment fair;
  EXPECT_DOUBLE_EQ(fair.score(), 0.0);
  fair.findable_identifier = true;
  fair.findable_metadata = true;
  fair.accessible_protocol = true;
  EXPECT_DOUBLE_EQ(fair.score(), 0.5);
  fair.interoperable_format = true;
  fair.reusable_license = true;
  fair.reusable_provenance = true;
  EXPECT_DOUBLE_EQ(fair.score(), 1.0);
}

TEST(Archive, AddRejectsDuplicateIds) {
  trace::Archive archive("p2p-trace-archive");
  EXPECT_TRUE(archive.add({.id = "d1", .title = "one"}));
  EXPECT_FALSE(archive.add({.id = "d1", .title = "dup"}));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, FindById) {
  trace::Archive archive("gta");
  archive.add({.id = "g1", .title = "runescape traces"});
  const auto found = archive.find("g1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->title, "runescape traces");
  EXPECT_FALSE(archive.find("missing").has_value());
}

TEST(Archive, FilterByDomain) {
  trace::Archive archive("a");
  archive.add({.id = "1", .domain = trace::Domain::kP2P});
  archive.add({.id = "2", .domain = trace::Domain::kGaming});
  archive.add({.id = "3", .domain = trace::Domain::kP2P});
  EXPECT_EQ(archive.by_domain(trace::Domain::kP2P).size(), 2u);
  EXPECT_EQ(archive.by_domain(trace::Domain::kServerless).size(), 0u);
}

TEST(Archive, FilterByKeyword) {
  trace::Archive archive("a");
  trace::DatasetEntry e;
  e.id = "1";
  e.keywords = {"bittorrent", "flashcrowd"};
  archive.add(e);
  EXPECT_EQ(archive.by_keyword("flashcrowd").size(), 1u);
  EXPECT_EQ(archive.by_keyword("mmog").size(), 0u);
}

TEST(Archive, MeanFairScore) {
  trace::Archive archive("a");
  trace::DatasetEntry good;
  good.id = "good";
  good.fair = {true, true, true, true, true, true};
  trace::DatasetEntry poor;
  poor.id = "poor";
  archive.add(good);
  archive.add(poor);
  EXPECT_DOUBLE_EQ(archive.mean_fair_score(), 0.5);
}

TEST(Archive, EmptyMeanIsZero) {
  trace::Archive archive("a");
  EXPECT_DOUBLE_EQ(archive.mean_fair_score(), 0.0);
}

TEST(Domain, ToStringCoversAll) {
  EXPECT_EQ(trace::to_string(trace::Domain::kP2P), "p2p");
  EXPECT_EQ(trace::to_string(trace::Domain::kGaming), "gaming");
  EXPECT_EQ(trace::to_string(trace::Domain::kDatacenter), "datacenter");
  EXPECT_EQ(trace::to_string(trace::Domain::kServerless), "serverless");
  EXPECT_EQ(trace::to_string(trace::Domain::kGraph), "graph");
  EXPECT_EQ(trace::to_string(trace::Domain::kWorkflow), "workflow");
  EXPECT_EQ(trace::to_string(trace::Domain::kOther), "other");
}
