// Tests for the portfolio scheduler (paper Section 6.6).

#include <gtest/gtest.h>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/generators.hpp"

namespace sched = atlarge::sched;
namespace wf = atlarge::workflow;
namespace cluster = atlarge::cluster;

namespace {

wf::Workload heavy_workload(std::uint64_t seed, std::size_t jobs = 40) {
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kScientific;
  spec.jobs = jobs;
  spec.horizon = 2'000.0;
  spec.seed = seed;
  return wf::generate(spec);
}

sched::PortfolioScheduler make_portfolio(const cluster::Environment& env,
                                         sched::PortfolioConfig config = {}) {
  return sched::PortfolioScheduler(sched::standard_policies(), env, config);
}

}  // namespace

TEST(Portfolio, RejectsEmptyPortfolio) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  EXPECT_THROW(sched::PortfolioScheduler({}, env), std::invalid_argument);
}

TEST(Portfolio, SelectsAPolicyOnFirstTick) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  auto portfolio = make_portfolio(env);
  const auto wl = heavy_workload(1);
  (void)sched::simulate(env, wl, portfolio);
  EXPECT_FALSE(portfolio.selections().empty());
}

TEST(Portfolio, CompletesAllJobs) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  auto portfolio = make_portfolio(env);
  const auto wl = heavy_workload(2);
  const auto result = sched::simulate(env, wl, portfolio);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
}

TEST(Portfolio, NotWorseThanWorstSinglePolicy) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto wl = heavy_workload(3);
  double worst = 0.0;
  for (auto& p : sched::standard_policies()) {
    const auto r = sched::simulate(env, wl, *p);
    worst = std::max(worst, r.mean_slowdown);
  }
  auto portfolio = make_portfolio(env);
  const auto r = sched::simulate(env, wl, portfolio);
  EXPECT_LE(r.mean_slowdown, worst * 1.05);
}

TEST(Portfolio, ZeroCostMeansNoOverhead) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  sched::PortfolioConfig config;
  config.cost_per_task_policy = 0.0;
  auto portfolio = make_portfolio(env, config);
  const auto result = sched::simulate(env, heavy_workload(4), portfolio);
  EXPECT_DOUBLE_EQ(result.decision_overhead, 0.0);
}

TEST(Portfolio, SimulationCostDelaysPlacements) {
  // The paper's [114] finding: charging for the what-if simulations makes
  // the online portfolio slower end-to-end.
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto wl = heavy_workload(5);
  sched::PortfolioConfig cheap;
  cheap.cost_per_task_policy = 0.0;
  sched::PortfolioConfig costly;
  costly.cost_per_task_policy = 0.5;  // seconds per policy x task
  auto p_cheap = make_portfolio(env, cheap);
  auto p_costly = make_portfolio(env, costly);
  const auto r_cheap = sched::simulate(env, wl, p_cheap);
  const auto r_costly = sched::simulate(env, wl, p_costly);
  EXPECT_GT(r_costly.decision_overhead, 0.0);
  EXPECT_GT(r_costly.makespan, r_cheap.makespan);
}

TEST(Portfolio, ActiveSetReducesOverhead) {
  // The paper's [115] fix: a limited active set cuts simulation cost.
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto wl = heavy_workload(6);
  sched::PortfolioConfig full;
  full.cost_per_task_policy = 0.05;
  sched::PortfolioConfig limited = full;
  limited.active_set = 2;
  auto p_full = make_portfolio(env, full);
  auto p_limited = make_portfolio(env, limited);
  const auto r_full = sched::simulate(env, wl, p_full);
  const auto r_limited = sched::simulate(env, wl, p_limited);
  EXPECT_LT(p_limited.total_overhead(), p_full.total_overhead());
  (void)r_full;
  (void)r_limited;
}

TEST(Portfolio, UtilityNoiseCausesDifferentSelections) {
  // The paper's [120] finding: unpredictable policy performance can make
  // the portfolio mis-select.
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto wl = heavy_workload(7, 60);
  sched::PortfolioConfig clean;
  sched::PortfolioConfig noisy;
  noisy.utility_noise = 3.0;
  noisy.seed = 1234;
  auto p_clean = make_portfolio(env, clean);
  auto p_noisy = make_portfolio(env, noisy);
  (void)sched::simulate(env, wl, p_clean);
  (void)sched::simulate(env, wl, p_noisy);
  EXPECT_NE(p_clean.selections(), p_noisy.selections());
}

TEST(Portfolio, CloneIsIndependentButEquivalent) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  auto portfolio = make_portfolio(env);
  auto clone = portfolio.clone();
  const auto wl = heavy_workload(8);
  const auto r1 = sched::simulate(env, wl, portfolio);
  const auto r2 = sched::simulate(env, wl, *clone);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
}

TEST(Portfolio, CurrentPolicyIsFromZoo) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  auto portfolio = make_portfolio(env);
  (void)sched::simulate(env, heavy_workload(9), portfolio);
  const auto current = portfolio.current_policy();
  bool known = false;
  for (const auto& p : sched::standard_policies())
    known |= p->name() == current;
  EXPECT_TRUE(known);
}

TEST(Portfolio, SelectionIntervalBoundsSelections) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  sched::PortfolioConfig config;
  config.selection_interval = 1e9;  // effectively once
  auto portfolio = make_portfolio(env, config);
  (void)sched::simulate(env, heavy_workload(10), portfolio);
  std::size_t total = 0;
  for (const auto& [name, count] : portfolio.selections()) total += count;
  EXPECT_EQ(total, 1u);
}

TEST(Portfolio, SerialAndParallelRunsAreBitwiseIdentical) {
  // Determinism is load-bearing (the paper's reproducibility stance): the
  // parallel what-if evaluation must select exactly what the serial order
  // selects, for any thread count. Noise is on so the per-candidate RNG
  // streams are exercised too.
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto wl = heavy_workload(11);
  sched::PortfolioConfig base;
  base.utility_noise = 0.5;
  base.seed = 99;
  base.eval_threads = 1;
  auto p_serial = make_portfolio(env, base);
  const auto r_serial = sched::simulate(env, wl, p_serial);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    sched::PortfolioConfig par = base;
    par.eval_threads = threads;
    auto p_par = make_portfolio(env, par);
    const auto r_par = sched::simulate(env, wl, p_par);
    EXPECT_EQ(p_serial.selections(), p_par.selections())
        << "eval_threads=" << threads;
    EXPECT_DOUBLE_EQ(r_serial.makespan, r_par.makespan);
    EXPECT_DOUBLE_EQ(r_serial.mean_slowdown, r_par.mean_slowdown);
    EXPECT_DOUBLE_EQ(r_serial.mean_wait, r_par.mean_wait);
  }
}

namespace {

std::vector<sched::TaskRef> synthetic_queue(std::size_t n) {
  std::vector<sched::TaskRef> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TaskRef ref;
    ref.job_id = i / 4;
    ref.task_id = static_cast<std::uint32_t>(i % 4);
    ref.runtime = static_cast<double>(1 + (i * 37) % 200);
    ref.cores = static_cast<std::uint32_t>(1 + i % 3);
    ref.user = "u" + std::to_string(i % 3);
    queue.push_back(std::move(ref));
  }
  return queue;
}

}  // namespace

TEST(Portfolio, ParallelTickPicksSamePolicyAsSerial) {
  // One decision round, same inputs, 1/2/8 evaluation threads: identical
  // winner and identical EWMA state (observable through a second round).
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  const auto queue = synthetic_queue(64);
  std::string serial_pick;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    sched::PortfolioConfig config;
    config.eval_threads = threads;
    config.utility_noise = 1.0;  // draws must not depend on thread count
    config.min_queue_to_select = 1;
    auto portfolio = make_portfolio(env, config);
    sched::SchedState state;
    state.now = 0.0;
    portfolio.tick(state, queue);
    if (threads == 1) {
      serial_pick = portfolio.current_policy();
    } else {
      EXPECT_EQ(portfolio.current_policy(), serial_pick)
          << "eval_threads=" << threads;
    }
  }
  EXPECT_FALSE(serial_pick.empty());
}

// Portfolio usefulness property across environments (the Table 9 claim):
// the portfolio lands within ~25% of the best single policy's mean
// slowdown on every environment type (the paper's "useful" threshold;
// the portfolio cannot beat the best policy it selects from).
class PortfolioUseful : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioUseful, CloseToBestSinglePolicy) {
  cluster::Environment env;
  switch (GetParam()) {
    case 0: env = cluster::make_homogeneous_cluster("cl", 2, 4); break;
    case 1: env = cluster::make_grid("g", 3, 1, 4); break;
    case 2: env = cluster::make_multi_cluster("mcd", 2, 2, 2); break;
    default: env = cluster::make_geo_distributed("gdc", 2, 2, 2, 0.05); break;
  }
  const auto wl = heavy_workload(100 + GetParam());
  double best = std::numeric_limits<double>::infinity();
  for (auto& p : sched::standard_policies()) {
    const auto r = sched::simulate(env, wl, *p);
    best = std::min(best, r.mean_slowdown);
  }
  auto portfolio = make_portfolio(env);
  const auto r = sched::simulate(env, wl, portfolio);
  EXPECT_LE(r.mean_slowdown, best * 1.25 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Environments, PortfolioUseful,
                         ::testing::Range(0, 4));
