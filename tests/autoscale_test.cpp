// Tests for autoscalers, the elastic simulator, elasticity metrics, and
// the ranking/grading methods (paper Section 6.7).

#include <string_view>

#include <gtest/gtest.h>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/autoscale/metrics.hpp"
#include "atlarge/autoscale/ranking.hpp"
#include "atlarge/workflow/generators.hpp"

namespace as = atlarge::autoscale;
namespace wf = atlarge::workflow;

namespace {

wf::Workload workflow_workload(std::uint64_t seed, std::size_t jobs = 30) {
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kIndustrial;  // small DAG workflows
  spec.jobs = jobs;
  spec.horizon = 3'000.0;
  spec.seed = seed;
  return wf::generate(spec);
}

}  // namespace

// ------------------------------------------------------------ autoscalers --

TEST(Autoscalers, MachinesForCoresRoundsUp) {
  EXPECT_EQ(as::machines_for_cores(0.0, 4), 0u);
  EXPECT_EQ(as::machines_for_cores(1.0, 4), 1u);
  EXPECT_EQ(as::machines_for_cores(4.0, 4), 1u);
  EXPECT_EQ(as::machines_for_cores(4.1, 4), 2u);
}

TEST(Autoscalers, ReactTracksDemandExactly) {
  as::ReactAutoscaler react;
  as::Observation obs;
  obs.cores_per_machine = 4;
  obs.demand_cores = 10.0;
  EXPECT_EQ(react.target_machines(obs), 3u);
  obs.demand_cores = 0.0;
  EXPECT_EQ(react.target_machines(obs), 0u);
}

TEST(Autoscalers, AdaptScalesUpEagerly) {
  as::AdaptAutoscaler adapt;
  as::Observation obs;
  obs.cores_per_machine = 1;
  obs.supply_machines = 2;
  obs.demand_cores = 10.0;
  EXPECT_EQ(adapt.target_machines(obs), 10u);
}

TEST(Autoscalers, AdaptScalesDownWithPatience) {
  as::AdaptAutoscaler adapt(/*down_patience=*/2, /*down_step=*/1);
  as::Observation obs;
  obs.cores_per_machine = 1;
  obs.supply_machines = 10;
  obs.demand_cores = 2.0;
  EXPECT_EQ(adapt.target_machines(obs), 10u);  // 1st over-observation
  EXPECT_EQ(adapt.target_machines(obs), 9u);   // patience reached, step 1
  obs.supply_machines = 9;                     // the scale-down took effect
  EXPECT_EQ(adapt.target_machines(obs), 9u);   // streak was reset
}

TEST(Autoscalers, HistProvisionsWindowPercentile) {
  as::HistAutoscaler hist(/*window=*/4, /*percentile=*/1.0);  // max
  as::Observation obs;
  obs.cores_per_machine = 1;
  for (double d : {2.0, 8.0, 3.0}) {
    obs.demand_cores = d;
    (void)hist.target_machines(obs);
  }
  obs.demand_cores = 1.0;
  EXPECT_EQ(hist.target_machines(obs), 8u);  // window max
}

TEST(Autoscalers, RegExtrapolatesTrend) {
  as::RegAutoscaler reg(/*window=*/4);
  as::Observation obs;
  obs.cores_per_machine = 1;
  for (int i = 0; i < 4; ++i) {
    obs.now = static_cast<double>(i);
    obs.demand_cores = static_cast<double>(2 * i);  // slope 2
    (void)reg.target_machines(obs);
  }
  obs.now = 4.0;
  obs.demand_cores = 8.0;
  // Next prediction ~ 2 * 5 = 10.
  EXPECT_GE(reg.target_machines(obs), 9u);
}

TEST(Autoscalers, ConPaasNeverBelowCurrentDemand) {
  as::ConPaasAutoscaler conpaas(4);
  as::Observation obs;
  obs.cores_per_machine = 1;
  for (double d : {1.0, 1.0, 1.0}) {
    obs.demand_cores = d;
    (void)conpaas.target_machines(obs);
  }
  obs.demand_cores = 20.0;
  EXPECT_GE(conpaas.target_machines(obs), 20u);
}

TEST(Autoscalers, PlanAddsLopSoon) {
  as::PlanAutoscaler plan;
  as::Observation obs;
  obs.cores_per_machine = 1;
  obs.demand_cores = 5.0;
  obs.lop_soon_cores = 3.0;
  EXPECT_EQ(plan.target_machines(obs), 8u);
}

TEST(Autoscalers, TokenDiscountsLopSoon) {
  as::TokenAutoscaler token(0.5);
  as::Observation obs;
  obs.cores_per_machine = 1;
  obs.demand_cores = 5.0;
  obs.lop_soon_cores = 4.0;
  EXPECT_EQ(token.target_machines(obs), 7u);
}

TEST(Autoscalers, ZooHasSevenDistinct) {
  const auto zoo = as::standard_autoscalers();
  ASSERT_EQ(zoo.size(), 7u);
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    for (std::size_t j = i + 1; j < zoo.size(); ++j) {
      EXPECT_NE(zoo[i]->name(), zoo[j]->name());
    }
  }
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, PerfectProvisioningIsAllZero) {
  std::vector<as::SupplyDemandPoint> series = {
      {0.0, 4.0, 4.0}, {10.0, 6.0, 6.0}, {20.0, 2.0, 2.0}};
  const auto m = as::compute_metrics(series, 30.0);
  EXPECT_DOUBLE_EQ(m.accuracy_over, 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy_under, 0.0);
  EXPECT_DOUBLE_EQ(m.timeshare_over, 0.0);
  EXPECT_DOUBLE_EQ(m.timeshare_under, 0.0);
}

TEST(Metrics, OverProvisioningMeasured) {
  std::vector<as::SupplyDemandPoint> series = {{0.0, 2.0, 6.0}};
  const auto m = as::compute_metrics(series, 10.0);
  EXPECT_DOUBLE_EQ(m.accuracy_over, 4.0);
  EXPECT_DOUBLE_EQ(m.timeshare_over, 1.0);
  EXPECT_DOUBLE_EQ(m.norm_accuracy_over, 2.0);
}

TEST(Metrics, UnderProvisioningMeasured) {
  std::vector<as::SupplyDemandPoint> series = {{0.0, 8.0, 2.0},
                                               {5.0, 8.0, 8.0}};
  const auto m = as::compute_metrics(series, 10.0);
  EXPECT_DOUBLE_EQ(m.accuracy_under, 3.0);  // 6 cores short for half time
  EXPECT_DOUBLE_EQ(m.timeshare_under, 0.5);
}

TEST(Metrics, InstabilityCountsOppositeMoves) {
  // Demand up, supply down at step 1; both up at step 2.
  std::vector<as::SupplyDemandPoint> series = {
      {0.0, 2.0, 4.0}, {1.0, 4.0, 2.0}, {2.0, 6.0, 4.0}};
  const auto m = as::compute_metrics(series, 3.0);
  EXPECT_DOUBLE_EQ(m.instability, 0.5);
}

TEST(Metrics, JitterCountsDirectionChanges) {
  std::vector<as::SupplyDemandPoint> series = {
      {0.0, 1.0, 1.0}, {900.0, 1.0, 3.0}, {1800.0, 1.0, 1.0},
      {2700.0, 1.0, 3.0}};
  const auto m = as::compute_metrics(series, 3'600.0);
  // up, down, up -> two direction changes in one hour.
  EXPECT_DOUBLE_EQ(m.jitter_per_hour, 2.0);
}

TEST(Metrics, EmptySeriesYieldsZeros) {
  const auto m = as::compute_metrics({}, 100.0);
  EXPECT_DOUBLE_EQ(m.avg_supply, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_demand, 0.0);
}

TEST(Metrics, NamesMatchValuesArity) {
  as::ElasticityMetrics m;
  EXPECT_EQ(as::ElasticityMetrics::names().size(), m.values().size());
}

// ------------------------------------------------------------ elastic sim --

TEST(ElasticSim, AllJobsComplete) {
  as::ReactAutoscaler react;
  const auto wl = workflow_workload(1);
  const auto result = as::run_elastic(wl, react);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_GT(result.makespan, 0.0);
}

TEST(ElasticSim, RejectsTooWideTasks) {
  wf::Workload wl;
  wf::Job job;
  job.tasks.push_back({1.0, 16, {}});
  wl.jobs.push_back(job);
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.cores_per_machine = 4;
  EXPECT_THROW(as::run_elastic(wl, react, config), std::invalid_argument);
}

TEST(ElasticSim, SeriesRecorded) {
  as::ReactAutoscaler react;
  const auto result = as::run_elastic(workflow_workload(2), react);
  EXPECT_GT(result.series.size(), 2u);
  for (const auto& p : result.series) {
    EXPECT_GE(p.supply, 0.0);
    EXPECT_GE(p.demand, 0.0);
  }
}

TEST(ElasticSim, RentalsCoverWork) {
  as::ReactAutoscaler react;
  const auto wl = workflow_workload(3);
  const auto result = as::run_elastic(wl, react);
  double rented_core_seconds = 0.0;
  as::ElasticConfig defaults;
  for (double r : result.rentals)
    rented_core_seconds += r * defaults.cores_per_machine;
  // Machines must be rented at least as long as the work they executed.
  EXPECT_GE(rented_core_seconds, wl.total_work() * 0.99);
}

TEST(ElasticSim, MinMachinesRespected) {
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.min_machines = 3;
  const auto result = as::run_elastic(workflow_workload(4), react, config);
  for (const auto& p : result.series) {
    EXPECT_GE(p.supply, 3.0 * config.cores_per_machine);
  }
}

TEST(ElasticSim, MaxMachinesRespected) {
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.max_machines = 2;
  const auto result = as::run_elastic(workflow_workload(5), react, config);
  for (const auto& p : result.series) {
    EXPECT_LE(p.supply, 2.0 * config.cores_per_machine + 1e-9);
  }
}

TEST(ElasticSim, DeadlineAccountingEnabled) {
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.sla_factor = 4.0;
  const auto result = as::run_elastic(workflow_workload(6), react, config);
  EXPECT_EQ(result.deadline_total, result.jobs.size());
  EXPECT_LE(result.deadline_violations, result.deadline_total);
}

TEST(ElasticSim, TightProvisioningDelayHurtsLess) {
  // Faster provisioning should not worsen mean slowdown.
  const auto wl = workflow_workload(7);
  as::ElasticConfig fast;
  fast.provisioning_delay = 5.0;
  as::ElasticConfig slow;
  slow.provisioning_delay = 600.0;
  as::ReactAutoscaler r1;
  as::ReactAutoscaler r2;
  const auto fast_result = as::run_elastic(wl, r1, fast);
  const auto slow_result = as::run_elastic(wl, r2, slow);
  EXPECT_LE(fast_result.mean_slowdown, slow_result.mean_slowdown * 1.01);
}

TEST(ElasticSim, DeterministicAcrossRuns) {
  const auto wl = workflow_workload(8);
  as::PlanAutoscaler p1;
  as::PlanAutoscaler p2;
  const auto a = as::run_elastic(wl, p1);
  const auto b = as::run_elastic(wl, p2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rentals.size(), b.rentals.size());
}

// ---------------------------------------------------------------- ranking --

TEST(Ranking, PairwiseClearWinner) {
  std::vector<as::SystemScores> systems = {
      {"good", {1.0, 1.0, 1.0}},
      {"mid", {2.0, 2.0, 2.0}},
      {"bad", {3.0, 3.0, 3.0}},
  };
  const auto ranked = as::rank_pairwise(systems);
  EXPECT_EQ(ranked[0].name, "good");
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
  EXPECT_EQ(ranked[2].name, "bad");
  EXPECT_DOUBLE_EQ(ranked[2].score, 0.0);
}

TEST(Ranking, FractionalBestHasZeroPenalty) {
  std::vector<as::SystemScores> systems = {
      {"best", {1.0, 2.0}},
      {"worse", {2.0, 4.0}},
  };
  const auto ranked = as::rank_fractional(systems);
  EXPECT_EQ(ranked[0].name, "best");
  EXPECT_DOUBLE_EQ(ranked[0].score, 0.0);
  EXPECT_DOUBLE_EQ(ranked[1].score, 1.0);  // 100% worse on each metric
}

TEST(Ranking, RaggedInputRejected) {
  std::vector<as::SystemScores> systems = {
      {"a", {1.0, 2.0}},
      {"b", {1.0}},
  };
  EXPECT_THROW(as::rank_pairwise(systems), std::invalid_argument);
  EXPECT_THROW(as::rank_fractional(systems), std::invalid_argument);
}

TEST(Ranking, GradeInZeroTen) {
  std::vector<as::SystemScores> systems = {
      {"a", {1.0, 3.0}},
      {"b", {2.0, 1.0}},
      {"c", {3.0, 2.0}},
  };
  for (const auto& g : as::grade(systems)) {
    EXPECT_GE(g.score, 0.0);
    EXPECT_LE(g.score, 10.0);
  }
}

TEST(Ranking, GradeTopIsParetoReasonable) {
  std::vector<as::SystemScores> systems = {
      {"dominator", {1.0, 1.0, 1.0}},
      {"other", {5.0, 5.0, 5.0}},
  };
  const auto graded = as::grade(systems);
  EXPECT_EQ(graded[0].name, "dominator");
  EXPECT_GT(graded[0].score, graded[1].score);
}

// Full-zoo property: every autoscaler completes the workload and yields
// bounded metrics.
class ZooCompletes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZooCompletes, WorkloadFinishesWithSaneMetrics) {
  auto zoo = as::standard_autoscalers();
  auto& scaler = *zoo[GetParam()];
  const auto wl = workflow_workload(50 + GetParam(), 20);
  const auto result = as::run_elastic(wl, scaler);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size()) << scaler.name();
  EXPECT_GE(result.metrics.timeshare_over, 0.0);
  EXPECT_LE(result.metrics.timeshare_over, 1.0);
  EXPECT_GE(result.metrics.timeshare_under, 0.0);
  EXPECT_LE(result.metrics.timeshare_under, 1.0);
  EXPECT_GE(result.metrics.instability, 0.0);
  EXPECT_LE(result.metrics.instability, 1.0);
  EXPECT_GE(result.metrics.accuracy_over, 0.0);
  EXPECT_GE(result.metrics.accuracy_under, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAutoscalers, ZooCompletes,
                         ::testing::Range<std::size_t>(0, 7));

TEST(Observability, ElasticRunEmitsAutoscaleTelemetry) {
  atlarge::obs::Observability plane;
  const auto wl = workflow_workload(9, 10);
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.obs = &plane;
  const auto result = as::run_elastic(wl, react, config);

  const auto& counters = plane.metrics.counters();
  EXPECT_EQ(counters.at("autoscale.ticks").value(), result.series.size());
  EXPECT_GE(counters.at("autoscale.machines_added").value(),
            counters.at("autoscale.machines_removed").value());
  // The last census gauges mirror the final supply/demand sample.
  EXPECT_DOUBLE_EQ(plane.metrics.gauges().at("autoscale.supply_cores").value(),
                   result.series.back().supply);

  bool saw_run = false;
  std::size_t ticks = 0;
  for (const auto& rec : plane.tracer.records()) {
    if (std::string_view(rec.name) == "autoscale.run") saw_run = true;
    if (std::string_view(rec.name) == "autoscale.tick" &&
        rec.kind == atlarge::obs::SpanKind::kBegin)
      ++ticks;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_EQ(ticks, result.series.size());

  // Observation must not perturb the simulation.
  as::ReactAutoscaler bare_react;
  const auto bare = as::run_elastic(wl, bare_react, {});
  EXPECT_DOUBLE_EQ(bare.makespan, result.makespan);
}

// ----------------------------------------------------- fault injection --

namespace {

wf::Workload one_long_task() {
  wf::Workload wl;
  wf::Job job;
  job.submit_time = 0.0;
  job.user = "u";
  job.tasks.push_back({100.0, 1, {}});
  wl.jobs.push_back(std::move(job));
  wl.normalize();
  return wl;
}

as::ElasticConfig tight_pool() {
  as::ElasticConfig config;
  config.cores_per_machine = 1;
  config.max_machines = 4;
  config.min_machines = 1;
  config.provisioning_delay = 10.0;
  config.interval = 5.0;
  return config;
}

}  // namespace

TEST(Faults, CrashReprovisionsAndRestartsTheTask) {
  const auto wl = one_long_task();
  atlarge::fault::FaultPlan plan;
  plan.add({20.0, atlarge::fault::FaultKind::kMachineCrash, 0, 60.0, 0.5});
  as::ReactAutoscaler react;
  auto config = tight_pool();
  config.faults = &plan;
  const auto result = as::run_elastic(wl, react, config);
  // The crash discards 20s of progress; the autoscaler provisions a
  // replacement (10s delay) and the task reruns from scratch, so the
  // makespan exceeds the fault-free 100s by at least the lost progress.
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_GT(result.makespan, 120.0);
  EXPECT_EQ(result.tasks_requeued, 1u);
  EXPECT_EQ(result.faults_injected, 1u);
  EXPECT_EQ(result.faults_recovered, 1u);  // restarted on a new machine
  // The crashed machine's rental was closed: at least two rentals total.
  EXPECT_GE(result.rentals.size(), 2u);
}

TEST(Faults, NullAndEmptyPlansKeepElasticRunByteIdentical) {
  const auto wl = one_long_task();
  const auto run = [&](const atlarge::fault::FaultPlan* faults) {
    as::ReactAutoscaler react;
    auto config = tight_pool();
    config.faults = faults;
    return as::run_elastic(wl, react, config);
  };
  const auto baseline = run(nullptr);
  const atlarge::fault::FaultPlan empty;
  const auto with_empty = run(&empty);
  EXPECT_EQ(baseline.makespan, with_empty.makespan);
  EXPECT_EQ(baseline.mean_slowdown, with_empty.mean_slowdown);
  EXPECT_EQ(baseline.rentals, with_empty.rentals);
  EXPECT_EQ(with_empty.faults_injected, 0u);
  EXPECT_EQ(with_empty.tasks_requeued, 0u);
  EXPECT_EQ(with_empty.faults_recovered, 0u);
}

TEST(Faults, RepeatedCrashesStillCompleteTheWorkload) {
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kIndustrial;
  spec.jobs = 10;
  spec.horizon = 500.0;
  spec.seed = 6;
  const auto wl = wf::generate(spec);
  atlarge::fault::FaultPlan plan;
  plan.add({50.0, atlarge::fault::FaultKind::kMachineCrash, 0, 30.0, 0.5});
  plan.add({120.0, atlarge::fault::FaultKind::kMachineCrash, 1, 30.0, 0.5});
  plan.add({300.0, atlarge::fault::FaultKind::kMachineCrash, 2, 30.0, 0.5});
  as::ReactAutoscaler react;
  as::ElasticConfig config;
  config.cores_per_machine = 4;
  config.max_machines = 8;
  config.faults = &plan;
  const auto result = as::run_elastic(wl, react, config);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_EQ(result.faults_injected, 3u);
  EXPECT_GE(result.faults_recovered, result.tasks_requeued == 0 ? 0u : 1u);
}
