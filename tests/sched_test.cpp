// Tests for the cluster scheduling simulator and the policy zoo.

#include <algorithm>
#include <map>
#include <string_view>

#include <gtest/gtest.h>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/generators.hpp"

namespace sched = atlarge::sched;
namespace wf = atlarge::workflow;
namespace cluster = atlarge::cluster;

namespace {

wf::Workload single_task_jobs(std::initializer_list<double> runtimes,
                              double submit = 0.0) {
  wf::Workload wl;
  for (double r : runtimes) {
    wf::Job job;
    job.submit_time = submit;
    job.user = "u";
    job.tasks.push_back({r, 1, {}});
    wl.jobs.push_back(std::move(job));
  }
  wl.normalize();
  return wl;
}

}  // namespace

TEST(Simulator, SingleTaskRunsToCompletion) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({10.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
  EXPECT_EQ(result.tasks_completed, 1u);
}

TEST(Simulator, SerialExecutionOnOneCore) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({5.0, 5.0, 5.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 15.0);
}

TEST(Simulator, ParallelExecutionUsesAllCores) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 3);
  auto wl = single_task_jobs({5.0, 5.0, 5.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_NEAR(result.utilization, 1.0, 1e-9);
}

TEST(Simulator, MachineSpeedScalesRuntime) {
  auto env = cluster::make_homogeneous_cluster("c", 1, 1, 2.0);  // 2x speed
  auto wl = single_task_jobs({10.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
}

TEST(Simulator, DependenciesRespected) {
  const auto env = cluster::make_homogeneous_cluster("c", 4, 4);
  wf::Workload wl;
  wf::Job job;
  job.submit_time = 0.0;
  job.tasks.push_back({3.0, 1, {}});
  job.tasks.push_back({2.0, 1, {0}});
  job.tasks.push_back({1.0, 1, {1}});
  wl.jobs.push_back(job);
  wl.normalize();
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);  // chain, despite free cores
}

TEST(Simulator, GeoDispatchLatencyApplied) {
  // Two DCs of 1x1; two equal jobs. One runs remotely and pays latency.
  auto env = cluster::make_geo_distributed("g", 2, 1, 1, 0.5);
  auto wl = single_task_jobs({10.0, 10.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  double max_finish = 0.0;
  for (const auto& j : result.jobs) max_finish = std::max(max_finish, j.finish);
  EXPECT_DOUBLE_EQ(max_finish, 10.5);
}

TEST(Simulator, RejectsImpossibleTask) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  wf::Workload wl;
  wf::Job job;
  job.tasks.push_back({1.0, 8, {}});  // wider than any machine
  wl.jobs.push_back(job);
  sched::FcfsPolicy policy;
  EXPECT_THROW(sched::simulate(env, wl, policy), std::invalid_argument);
}

TEST(Simulator, RejectsEmptyEnvironment) {
  cluster::Environment env;
  env.name = "empty";
  wf::Workload wl;
  sched::FcfsPolicy policy;
  EXPECT_THROW(sched::simulate(env, wl, policy), std::invalid_argument);
}

TEST(Simulator, WaitTimeAccounted) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({10.0, 10.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  // One job waits 10s, the other 0 -> mean 5.
  EXPECT_DOUBLE_EQ(result.mean_wait, 5.0);
}

TEST(Simulator, SlowdownBoundedBelowByOne) {
  const auto env = cluster::make_homogeneous_cluster("c", 4, 8);
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kScientific;
  spec.jobs = 30;
  spec.seed = 3;
  auto wl = wf::generate(spec);
  sched::SjfPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  for (const auto& j : result.jobs) EXPECT_GE(j.slowdown(), 1.0);
}

TEST(Simulator, TimeLimitExcludesUnfinished) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({10.0, 1'000.0});
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.time_limit = 100.0;
  const auto result = sched::simulate(env, wl, policy, options);
  EXPECT_EQ(result.jobs.size(), 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto env = cluster::make_multi_cluster("m", 2, 2, 4);
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kBigData;
  spec.jobs = 40;
  spec.seed = 11;
  const auto wl = wf::generate(spec);
  sched::RandomPolicy p1(5);
  sched::RandomPolicy p2(5);
  const auto a = sched::simulate(env, wl, p1);
  const auto b = sched::simulate(env, wl, p2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_slowdown, b.mean_slowdown);
}

TEST(Simulator, SjfBeatsLjfOnMeanSlowdownUnderLoad) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 2);
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kScientific;
  spec.jobs = 50;
  spec.horizon = 2'000.0;  // heavy load
  spec.seed = 5;
  const auto wl = wf::generate(spec);
  sched::SjfPolicy sjf;
  sched::LjfPolicy ljf;
  const auto a = sched::simulate(env, wl, sjf);
  const auto b = sched::simulate(env, wl, ljf);
  EXPECT_LT(a.mean_slowdown, b.mean_slowdown);
}

TEST(Simulator, BackfillingProtectsBlockedWideHead) {
  // 2-core machine. A long narrow task pins one core; a wide (2-core) job
  // becomes queue head but cannot fit; a stream of short narrow tasks
  // follows. Greedy FCFS starves the wide head (a narrow task grabs every
  // freed core); EASY's reservation stops backfills that would delay the
  // head, so the wide job runs as soon as the long task ends.
  const auto env = cluster::make_homogeneous_cluster("c", 1, 2);
  wf::Workload wl;
  wf::Job long_job;
  long_job.submit_time = 0.0;
  long_job.user = "long";
  long_job.tasks.push_back({100.0, 1, {}});
  wl.jobs.push_back(std::move(long_job));
  wf::Job wide;
  wide.submit_time = 1.0;
  wide.user = "wide";
  wide.tasks.push_back({10.0, 2, {}});
  wl.jobs.push_back(std::move(wide));
  for (int i = 0; i < 20; ++i) {
    wf::Job job;
    job.submit_time = 2.0;
    job.user = "narrow";
    job.tasks.push_back({5.0, 1, {}});
    wl.jobs.push_back(std::move(job));
  }
  wl.normalize();

  const auto wide_finish = [&](sched::Policy& policy) {
    const auto result = sched::simulate(env, wl, policy);
    for (const auto& j : result.jobs) {
      if (j.id == 1) return j.finish;
    }
    return -1.0;
  };
  sched::FcfsPolicy fcfs;
  sched::EasyBackfillingPolicy easy;
  const double fcfs_finish = wide_finish(fcfs);
  const double easy_finish = wide_finish(easy);
  EXPECT_LT(easy_finish, fcfs_finish);
  EXPECT_NEAR(easy_finish, 110.0, 1.0);  // starts right as the long task ends
}

TEST(Simulator, MachineBusySecondsSumsToWork) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 2);
  auto wl = single_task_jobs({3.0, 4.0, 5.0});
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, wl, policy);
  double busy = 0.0;
  for (double b : result.machine_busy_seconds) busy += b;
  EXPECT_DOUBLE_EQ(busy, 12.0);
}

// ---------------------------------------------------------------- policies --

TEST(Policies, ZooHasSevenDistinctNames) {
  const auto zoo = sched::standard_policies();
  ASSERT_EQ(zoo.size(), 7u);
  std::map<std::string, int> names;
  for (const auto& p : zoo) ++names[p->name()];
  EXPECT_EQ(names.size(), 7u);
}

TEST(Policies, OrderIsPermutation) {
  const auto zoo = sched::standard_policies();
  std::vector<sched::TaskRef> queue;
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched::TaskRef ref;
    ref.job_id = i;
    ref.task_id = 0;
    ref.runtime = static_cast<double>(10 - i);
    ref.cores = 1 + i % 3;
    ref.submit_time = static_cast<double>(i % 4);
    ref.user = i % 2 ? "a" : "b";
    queue.push_back(ref);
  }
  sched::SchedState state;
  for (const auto& p : zoo) {
    auto q = queue;
    p->order(q, state);
    ASSERT_EQ(q.size(), queue.size()) << p->name();
    auto ids = [](const std::vector<sched::TaskRef>& v) {
      std::vector<std::uint64_t> out;
      for (const auto& r : v) out.push_back(r.job_id);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(ids(q), ids(queue)) << p->name();
  }
}

TEST(Policies, SjfSortsByRuntime) {
  std::vector<sched::TaskRef> queue(3);
  queue[0].runtime = 5.0;
  queue[1].runtime = 1.0;
  queue[2].runtime = 3.0;
  sched::SjfPolicy policy;
  sched::SchedState state;
  policy.order(queue, state);
  EXPECT_DOUBLE_EQ(queue[0].runtime, 1.0);
  EXPECT_DOUBLE_EQ(queue[2].runtime, 5.0);
}

TEST(Policies, FairShareFavorsLeastServedUser) {
  std::vector<sched::TaskRef> queue(2);
  queue[0].user = "heavy";
  queue[0].job_id = 0;
  queue[1].user = "light";
  queue[1].job_id = 1;
  std::vector<std::pair<std::string, double>> usage = {{"heavy", 100.0},
                                                       {"light", 1.0}};
  sched::SchedState state;
  state.user_usage = &usage;
  sched::FairSharePolicy policy;
  policy.order(queue, state);
  EXPECT_EQ(queue[0].user, "light");
}

TEST(Policies, RandomIsSeedDeterministic) {
  std::vector<sched::TaskRef> queue(20);
  for (std::uint32_t i = 0; i < 20; ++i) queue[i].job_id = i;
  auto q1 = queue;
  auto q2 = queue;
  sched::RandomPolicy a(9);
  sched::RandomPolicy b(9);
  sched::SchedState state;
  a.order(q1, state);
  b.order(q2, state);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(q1[i].job_id, q2[i].job_id);
}

TEST(Policies, CloneProducesSameBehavior) {
  sched::RandomPolicy original(13);
  auto clone = original.clone();
  std::vector<sched::TaskRef> q1(10);
  std::vector<sched::TaskRef> q2(10);
  for (std::uint32_t i = 0; i < 10; ++i) q1[i].job_id = q2[i].job_id = i;
  sched::SchedState state;
  original.order(q1, state);
  clone->order(q2, state);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(q1[i].job_id, q2[i].job_id);
}

TEST(Policies, DefaultTickIsFree) {
  sched::FcfsPolicy policy;
  sched::SchedState state;
  std::vector<sched::TaskRef> queue(3);
  EXPECT_DOUBLE_EQ(policy.tick(state, queue), 0.0);
}

// Safety property across all policies: no machine oversubscription and
// dependencies respected, verified via simulator invariants (completion
// of all tasks with per-job finish >= critical path).
class PolicySafety : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolicySafety, AllJobsCompleteAndRespectBounds) {
  auto zoo = sched::standard_policies();
  auto& policy = *zoo[GetParam()];
  const auto env = cluster::make_multi_cluster("m", 2, 2, 8);
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kBigData;
  spec.jobs = 30;
  spec.seed = 17;
  const auto wl = wf::generate(spec);
  const auto result = sched::simulate(env, wl, policy);
  ASSERT_EQ(result.jobs.size(), wl.jobs.size()) << policy.name();
  for (const auto& j : result.jobs) {
    EXPECT_GE(j.start, j.submit) << policy.name();
    // finish - start can't beat the critical path.
    EXPECT_GE(j.finish - j.start, j.critical_path - 1e-6) << policy.name();
  }
  EXPECT_LE(result.utilization, 1.0 + 1e-9) << policy.name();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySafety,
                         ::testing::Range<std::size_t>(0, 7));

// ---------------------------------------------------------- observability --

TEST(Observability, SimulateEmitsKernelAndSchedulerTelemetry) {
  atlarge::obs::Observability plane;
  const auto env = cluster::make_homogeneous_cluster("c", 2, 4);
  wf::WorkloadSpec spec;
  spec.cls = wf::WorkloadClass::kScientific;
  spec.jobs = 10;
  spec.seed = 21;
  const auto wl = wf::generate(spec);
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.obs = &plane;
  const auto result = sched::simulate(env, wl, policy, options);

  const auto& counters = plane.metrics.counters();
  EXPECT_EQ(counters.at("sched.tasks_placed").value(),
            result.tasks_completed);
  EXPECT_GT(counters.at("sched.passes").value(), 0u);
  EXPECT_GT(counters.at("sim.events_fired").value(), 0u);
  // The engine pre-sizes its kernel for the workload's concurrent-event
  // ceiling, so the whole run never touches the system allocator.
  EXPECT_EQ(counters.at("sim.alloc_events").value(), 0.0);
  EXPECT_EQ(plane.metrics.histograms().at("sched.task_wait").count(),
            result.tasks_completed);

  // The trace mixes kernel-layer and scheduler-layer spans.
  bool saw_kernel = false;
  bool saw_sched = false;
  for (const auto& rec : plane.tracer.records()) {
    if (std::string_view(rec.category) == "kernel") saw_kernel = true;
    if (std::string_view(rec.category) == "sched") saw_sched = true;
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_sched);

  // Same run without the plane produces identical results: observation
  // must not perturb the simulation.
  sched::FcfsPolicy bare_policy;
  const auto bare = sched::simulate(env, wl, bare_policy);
  EXPECT_DOUBLE_EQ(bare.makespan, result.makespan);
  EXPECT_DOUBLE_EQ(bare.mean_slowdown, result.mean_slowdown);
}

// ----------------------------------------------------- fault injection --

TEST(Faults, CrashKillsAndRequeuesRunningTask) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({10.0});
  atlarge::fault::FaultPlan plan;
  plan.add({2.0, atlarge::fault::FaultKind::kMachineCrash, 0, 3.0, 0.5});
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.faults = &plan;
  const auto result = sched::simulate(env, wl, policy, options);
  // The task loses its 2s of progress, waits out the 3s outage, and
  // reruns from scratch on the restarted machine: 5.0 + 10.0 = 15.0.
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish, 15.0);
  EXPECT_DOUBLE_EQ(result.makespan, 15.0);
  EXPECT_EQ(result.tasks_requeued, 1u);
  EXPECT_EQ(result.faults_injected, 1u);
  EXPECT_EQ(result.faults_recovered, 1u);  // the machine restarted
  EXPECT_EQ(result.tasks_completed, 1u);
}

TEST(Faults, SlowdownStretchesPlacementsMadeDuringTheWindow) {
  const auto env = cluster::make_homogeneous_cluster("c", 1, 1);
  auto wl = single_task_jobs({10.0});
  atlarge::fault::FaultPlan plan;
  // Injections attach before arrivals, so at t=0 the machine is already
  // limping at half speed when the task is placed: 10 / 0.5 = 20.
  plan.add({0.0, atlarge::fault::FaultKind::kSlowdown, 0, 30.0, 0.5});
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.faults = &plan;
  const auto result = sched::simulate(env, wl, policy, options);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish, 20.0);
  EXPECT_EQ(result.faults_injected, 1u);
  EXPECT_EQ(result.tasks_requeued, 0u);  // slowdowns never kill tasks
}

TEST(Faults, NullAndEmptyPlansKeepBaselineByteIdentical) {
  const auto env = cluster::make_homogeneous_cluster("c", 2, 2);
  auto wl = single_task_jobs({5.0, 7.0, 3.0});
  const auto run = [&](const atlarge::fault::FaultPlan* faults) {
    sched::FcfsPolicy policy;
    sched::SimOptions options;
    options.faults = faults;
    return sched::simulate(env, wl, policy, options);
  };
  const auto baseline = run(nullptr);
  const atlarge::fault::FaultPlan empty;
  const auto with_empty = run(&empty);
  EXPECT_EQ(baseline.makespan, with_empty.makespan);
  EXPECT_EQ(baseline.mean_wait, with_empty.mean_wait);
  EXPECT_EQ(baseline.utilization, with_empty.utilization);
  EXPECT_EQ(baseline.machine_busy_seconds, with_empty.machine_busy_seconds);
  EXPECT_EQ(with_empty.faults_injected, 0u);
  EXPECT_EQ(with_empty.tasks_requeued, 0u);
}
