// Tests for the worker pool behind the portfolio scheduler's parallel
// what-if evaluation. The ThreadSanitizer CI job runs this binary to
// certify the pool's synchronization.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/sim/thread_pool.hpp"

namespace sim = atlarge::sim;

TEST(ThreadPool, SizeCountsTheCallingThread) {
  EXPECT_EQ(sim::ThreadPool(1).size(), 1u);
  EXPECT_EQ(sim::ThreadPool(4).size(), 4u);
  EXPECT_EQ(sim::ThreadPool(0).size(), 1u);  // clamped: caller always works
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  constexpr std::size_t kN = 1'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRunsInlineOnSizeOnePool) {
  sim::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  pool.parallel_for(64, [&](std::size_t) { ids.insert(caller); });
  // With no workers everything runs on the caller, so no synchronization
  // (and no data race on the un-mutexed set) is needed.
  EXPECT_EQ(ids.size(), 1u);
}

TEST(ThreadPool, ParallelForZeroIsANoop) {
  sim::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForWithFewerItemsThanThreads) {
  sim::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  sim::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, RepeatedParallelForRounds) {
  // Churn for the ThreadSanitizer job: many rounds over one pool, with
  // writes to distinct slots per round (the portfolio's usage pattern).
  sim::ThreadPool pool(4);
  std::vector<double> out(128, 0.0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] += 1.0; });
  }
  for (const double v : out) EXPECT_DOUBLE_EQ(v, 200.0);
}

TEST(ThreadPool, DestructionJoinsCleanly) {
  std::atomic<int> done{0};
  {
    sim::ThreadPool pool(4);
    pool.parallel_for(32, [&](std::size_t) { done.fetch_add(1); });
  }  // destructor joins workers
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, RunOnPinsJobsToOneWorkerThread) {
  sim::ThreadPool pool(4);
  ASSERT_EQ(pool.worker_count(), 3u);
  std::vector<std::vector<std::thread::id>> seen(pool.worker_count());
  for (int round = 0; round < 50; ++round) {
    for (std::size_t w = 0; w < pool.worker_count(); ++w) {
      // seen[w] is written only by worker w (that is the property under
      // test), so no synchronization beyond wait_idle is needed.
      pool.run_on(w, [&seen, w] { seen[w].push_back(std::this_thread::get_id()); });
    }
  }
  pool.wait_idle();
  std::set<std::thread::id> distinct;
  for (std::size_t w = 0; w < seen.size(); ++w) {
    ASSERT_EQ(seen[w].size(), 50u) << w;
    for (const auto& id : seen[w]) EXPECT_EQ(id, seen[w].front()) << w;
    EXPECT_NE(seen[w].front(), std::this_thread::get_id()) << w;
    distinct.insert(seen[w].front());
  }
  EXPECT_EQ(distinct.size(), seen.size());  // one thread per worker index
}

TEST(ThreadPool, RunOnIsFifoPerWorker) {
  sim::ThreadPool pool(2);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i)
    pool.run_on(0, [&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, RunOnRunsInlineWithoutWorkers) {
  sim::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.run_on(0, [&] { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

TEST(ThreadPool, RunOnReducesIndexModuloWorkerCount) {
  sim::ThreadPool pool(3);  // workers 0 and 1
  std::atomic<int> done{0};
  pool.run_on(7, [&] { done.fetch_add(1); });  // 7 % 2 == 1
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, RunOnMixesWithSubmitAndParallelFor) {
  sim::ThreadPool pool(4);
  std::atomic<int> pinned{0};
  std::atomic<int> shared{0};
  for (int i = 0; i < 64; ++i) {
    pool.run_on(static_cast<std::size_t>(i), [&] { pinned.fetch_add(1); });
    pool.submit([&] { shared.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(pinned.load(), 64);
  EXPECT_EQ(shared.load(), 64);
  pool.parallel_for(32, [&](std::size_t) { shared.fetch_add(1); });
  EXPECT_EQ(shared.load(), 96);
}
