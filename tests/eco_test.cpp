// Cross-domain conformance suite for the ecosystem composition layer
// (eco::Ecosystem). The contracts under test, per DESIGN.md section 13:
//
//  * a composed ecosystem is byte-identical across worker thread counts
//    (1/2/8) and across shard layouts, including under an active shared
//    fault plan — summary() is the canonical byte string;
//  * with identity bindings (abstract instance pool, unlimited zone
//    capacity, dedicated scheduling environment) every domain's composed
//    result exactly reproduces its standalone engine — the regression
//    anchor that pins composition overhead at zero semantic drift;
//  * a shared FaultPlan yields the same fault fingerprints composed as it
//    does standalone, and composed runs keep the chaos properties
//    (null-plan identity, replay identity);
//  * bound mode is semantically live: cluster backing creates real
//    capacity denials and provisioning latency, the autoscaler provisions
//    zone capacity, and fabric co-tenancy is visible to the scheduler.
//
// The ThreadSanitizer CI job runs this binary to certify the composed
// sharded runs.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/generators.hpp"
#include "chaos_util.hpp"
#include "golden_util.hpp"

namespace eco = atlarge::eco;
namespace fault = atlarge::fault;
namespace mmog = atlarge::mmog;
namespace sched = atlarge::sched;
namespace serverless = atlarge::serverless;
namespace workflow = atlarge::workflow;
namespace cluster = atlarge::cluster;
namespace chaos = atlarge::chaos;
namespace golden = atlarge::golden;

namespace {

/// All three domains enabled with identity bindings: the composed run
/// must reproduce each standalone engine byte-for-byte. The horizon
/// covers quiescence of the request-shaped domains (asserted below).
eco::EcosystemSpec identity_spec() {
  eco::EcosystemSpec spec;
  spec.horizon = 20'000.0;

  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kAbstract;
  spec.serverless.registry = {
      serverless::FunctionSpec{"thumb", 0.08, 1.2, 128.0},
      serverless::FunctionSpec{"api", 0.03, 0.8, 256.0},
  };
  atlarge::stats::Rng rng(11);
  spec.serverless.invocations =
      serverless::bursty_invocations(2, 1.5, 1'200.0, 300.0, 60, rng);
  spec.serverless.config.keep_alive = 120.0;
  spec.serverless.config.prewarmed = 1;
  spec.serverless.config.max_instances = 64;

  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kUnlimited;
  spec.mmog.config.zones = 6;
  spec.mmog.config.act_mean = 25.0;
  spec.mmog.config.migrate_prob = 0.1;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.session_mean = 900.0;
  spec.mmog.config.seed = 7;
  spec.mmog.arrivals = mmog::synthetic_zone_arrivals(300, 6, 1'500.0, 7);

  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kDedicated;
  workflow::WorkloadSpec ws;
  ws.jobs = 30;
  ws.horizon = 1'000.0;
  ws.seed = 5;
  spec.dags.workload = workflow::generate(ws);
  spec.dags.policy = "FCFS";
  spec.dags.machines = 16;
  spec.dags.cores_per_machine = 8;
  return spec;
}

/// Every binding bound to the shared fabric: serverless instances lease
/// fabric cores, zone capacity is autoscaled, DAGs schedule on the fabric.
eco::EcosystemSpec bound_spec() {
  eco::EcosystemSpec spec = identity_spec();
  spec.horizon = 3'000.0;
  spec.fabric.machines = 12;
  spec.fabric.cores_per_machine = 8;
  spec.fabric.provisioning_delay = 45.0;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 2;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 32;
  spec.mmog.report_interval = 30.0;
  spec.mmog.initial_machines = 1;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  return spec;
}

fault::FaultPlan shared_plan(double horizon, std::uint64_t seed) {
  fault::FaultSpec fs;
  fs.rate = 4.0;
  fs.horizon = horizon;
  fs.seed = seed;
  fs.targets = 12;
  fs.mean_duration = 90.0;
  return fault::FaultPlan::generate(fs);
}

// ---------------------------------------------------------------------
// Byte-identity across the threads x shard-layout matrix.

TEST(EcoConformance, ComposedByteIdenticalAcrossThreadsAndShardLayouts) {
  eco::EcosystemSpec spec = bound_spec();
  const fault::FaultPlan plan = shared_plan(spec.horizon, 13);
  spec.faults = &plan;

  spec.shards = 1;
  spec.threads = 1;
  const std::string expect = eco::run_ecosystem(spec).summary();
  ASSERT_NE(expect.find("zones.actions"), std::string::npos);

  const std::size_t layouts[][2] = {{1, 2}, {1, 8}, {2, 1},
                                    {2, 2}, {4, 2}, {8, 8}};
  for (const auto& layout : layouts) {
    spec.shards = layout[0];
    spec.threads = layout[1];
    EXPECT_EQ(expect, eco::run_ecosystem(spec).summary())
        << "shards=" << layout[0] << " threads=" << layout[1];
  }
}

TEST(EcoConformance, RepeatedRunsOfOneEcosystemAreIdentical) {
  const eco::Ecosystem system(bound_spec());
  EXPECT_EQ(system.run().summary(), system.run().summary());
}

// ---------------------------------------------------------------------
// Identity bindings == standalone engines (the regression anchor).

TEST(EcoConformance, IdentityBindingsReproduceStandaloneEngines) {
  eco::EcosystemSpec spec = identity_spec();
  spec.shards = 2;
  spec.threads = 2;
  const eco::EcosystemResult composed = eco::run_ecosystem(spec);
  // Quiescence guard: everything finished well inside the horizon, so
  // the composed cut-off cannot differ from the standalone full drains.
  ASSERT_LT(composed.dags.makespan, spec.horizon);

  const serverless::PlatformResult faas = serverless::run_platform(
      spec.serverless.registry, spec.serverless.invocations,
      spec.serverless.config);
  EXPECT_EQ(golden::faas_fingerprint(composed.faas),
            golden::faas_fingerprint(faas));

  const cluster::Environment env = cluster::make_homogeneous_cluster(
      "dedicated", spec.dags.machines, spec.dags.cores_per_machine);
  sched::FcfsPolicy policy;
  const sched::SchedResult dags =
      sched::simulate(env, spec.dags.workload, policy);
  EXPECT_EQ(golden::sched_fingerprint(composed.dags),
            golden::sched_fingerprint(dags));

  mmog::ZoneSimConfig zcfg = spec.mmog.config;
  zcfg.horizon = spec.horizon;
  const mmog::ZoneSimResult zones =
      mmog::simulate_zones(zcfg, spec.mmog.arrivals);
  EXPECT_EQ(golden::zone_fingerprint(composed.zones),
            golden::zone_fingerprint(zones));

  // Identity bindings keep the fabric dark.
  EXPECT_EQ(composed.fabric.faas_leases, 0u);
  EXPECT_EQ(composed.fabric.machine_leases, 0u);
  EXPECT_EQ(composed.fabric.autoscale_decisions, 0u);
  EXPECT_EQ(composed.faas.capacity_denials, 0u);
  EXPECT_EQ(composed.zones.queued_logins, 0u);
}

TEST(EcoConformance, SharedFaultPlanMatchesStandaloneFingerprints) {
  eco::EcosystemSpec spec = identity_spec();
  const fault::FaultPlan plan = shared_plan(spec.horizon, 21);
  spec.faults = &plan;
  const eco::EcosystemResult composed = eco::run_ecosystem(spec);
  ASSERT_LT(composed.dags.makespan, spec.horizon);

  serverless::PlatformConfig fcfg = spec.serverless.config;
  fcfg.faults = &plan;
  const serverless::PlatformResult faas = serverless::run_platform(
      spec.serverless.registry, spec.serverless.invocations, fcfg);
  EXPECT_EQ(golden::faas_fingerprint(composed.faas),
            golden::faas_fingerprint(faas));

  const cluster::Environment env = cluster::make_homogeneous_cluster(
      "dedicated", spec.dags.machines, spec.dags.cores_per_machine);
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.faults = &plan;
  const sched::SchedResult dags =
      sched::simulate(env, spec.dags.workload, policy, options);
  EXPECT_EQ(golden::sched_fingerprint(composed.dags),
            golden::sched_fingerprint(dags));

  mmog::ZoneSimConfig zcfg = spec.mmog.config;
  zcfg.horizon = spec.horizon;
  zcfg.faults = &plan;
  const mmog::ZoneSimResult zones =
      mmog::simulate_zones(zcfg, spec.mmog.arrivals);
  EXPECT_EQ(golden::zone_fingerprint(composed.zones),
            golden::zone_fingerprint(zones));
}

TEST(EcoConformance, ComposedRunsKeepTheChaosProperties) {
  eco::EcosystemSpec base = bound_spec();
  const chaos::Scenario scenario = [&base](const fault::FaultPlan* plan) {
    eco::EcosystemSpec spec = base;
    spec.faults = plan;
    return eco::run_ecosystem(spec).summary();
  };
  chaos::check_scenario(scenario, shared_plan(base.horizon, 29));
}

// ---------------------------------------------------------------------
// Bound-mode semantics: composition has real consequences.

TEST(EcoConformance, ClusterBackingCreatesContentionAndProvisioningLatency) {
  eco::EcosystemSpec spec;
  spec.horizon = 4'000.0;
  spec.fabric.machines = 2;
  spec.fabric.cores_per_machine = 2;
  spec.fabric.provisioning_delay = 40.0;
  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 1;
  spec.serverless.registry = {serverless::FunctionSpec{"slow", 50.0, 0.5}};
  spec.serverless.config.keep_alive = 30.0;
  for (std::size_t i = 0; i < 40; ++i)
    spec.serverless.invocations.push_back(
        serverless::Invocation{0, 1.0 + 0.25 * static_cast<double>(i)});

  const eco::EcosystemResult result = eco::run_ecosystem(spec);
  // 40 near-simultaneous 50 s requests against 4 cores: the substrate
  // must refuse instance leases, and refusals surface as failures.
  EXPECT_GT(result.fabric.faas_denials, 0u);
  EXPECT_EQ(result.faas.capacity_denials, result.fabric.faas_denials);
  EXPECT_GT(result.faas.failed_invocations, 0u);
  // Every machine starts powered down: the first cold start pays the
  // machine provisioning delay on top of the function's own cold start.
  ASSERT_FALSE(result.faas.invocations.empty());
  const auto& first = result.faas.invocations.front();
  EXPECT_GE(first.start - first.arrival, 40.0 + 0.5);
  EXPECT_LE(result.fabric.peak_cores_leased, 4u);
}

TEST(EcoConformance, AutoscalerProvisionsZoneCapacityOnDemand) {
  eco::EcosystemSpec spec;
  spec.horizon = 2'400.0;
  spec.fabric.machines = 8;
  spec.fabric.cores_per_machine = 4;
  spec.fabric.provisioning_delay = 45.0;
  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.config.zones = 4;
  spec.mmog.config.act_mean = 20.0;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.session_mean = 2'000.0;
  spec.mmog.config.seed = 3;
  spec.mmog.arrivals = mmog::synthetic_zone_arrivals(256, 4, 600.0, 3);
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 16;
  spec.mmog.initial_machines = 0;

  const eco::EcosystemResult result = eco::run_ecosystem(spec);
  // Zero initial machines: early logins must queue, the autoscaler must
  // react to the reported demand, and capacity grants must admit players.
  EXPECT_GT(result.zones.queued_logins, 0u);
  EXPECT_GT(result.fabric.machine_leases, 0u);
  EXPECT_GT(result.fabric.autoscale_decisions, 10u);
  EXPECT_GE(result.fabric.capacity_updates, 2u);
  EXPECT_GT(result.zones.residents, 0u);
  EXPECT_GT(result.fabric.peak_cores_leased, 0u);
}

TEST(EcoConformance, FabricCoTenancyIsVisibleToTheScheduler) {
  eco::EcosystemSpec spec;
  spec.horizon = 6'000.0;
  spec.fabric.machines = 4;
  spec.fabric.cores_per_machine = 4;
  spec.fabric.provisioning_delay = 10.0;
  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  workflow::WorkloadSpec ws;
  ws.jobs = 20;
  ws.horizon = 500.0;
  ws.seed = 9;
  spec.dags.workload = workflow::generate(ws);
  spec.dags.policy = "FCFS";

  const eco::EcosystemResult alone = eco::run_ecosystem(spec);

  // Add a serverless co-tenant that holds half the fabric's cores.
  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 2;
  spec.serverless.registry = {serverless::FunctionSpec{"hold", 200.0, 0.1}};
  for (std::size_t i = 0; i < 8; ++i)
    spec.serverless.invocations.push_back(
        serverless::Invocation{0, 0.5 + 0.1 * static_cast<double>(i)});
  const eco::EcosystemResult contended = eco::run_ecosystem(spec);

  EXPECT_GT(contended.fabric.faas_leases, 0u);
  EXPECT_GE(contended.dags.mean_wait, alone.dags.mean_wait);
  EXPECT_GT(contended.dags.mean_wait, alone.dags.mean_wait)
      << "co-tenant leases did not delay any placement";
}

// ---------------------------------------------------------------------
// Spec validation.

TEST(EcoConformance, RejectsUnknownBindingsAndBadCadence) {
  eco::EcosystemSpec spec = bound_spec();
  spec.mmog.autoscaler = "NoSuchScaler";
  EXPECT_THROW(eco::run_ecosystem(spec), std::invalid_argument);

  spec = bound_spec();
  spec.dags.policy = "NoSuchPolicy";
  EXPECT_THROW(eco::run_ecosystem(spec), std::invalid_argument);

  spec = bound_spec();
  spec.mmog.report_interval = spec.mmog.config.crossing_time;  // <= 2L
  EXPECT_THROW(eco::run_ecosystem(spec), std::invalid_argument);

  spec = bound_spec();
  spec.fabric.machines = 0;
  EXPECT_THROW(eco::run_ecosystem(spec), std::invalid_argument);
}

}  // namespace
