// Property tests for the sharded parallel DES (sim/sharded.hpp) and the
// two sharded engines (mmog::simulate_zones, p2p::simulate_swarm_network).
// The contracts under test, per DESIGN.md section 12:
//  * per-LP event orderings are byte-identical across thread counts for a
//    fixed shard count (conservative windows + sorted mailbox delivery);
//  * engine results are invariant across the whole shards x threads
//    matrix, including tie timestamps, zero lookahead, and active fault
//    plans (strict-past reads + order-independent aggregates);
//  * the fault plane keeps its chaos properties (null-plan identity,
//    replay identity) under sharding.
// The ThreadSanitizer CI job runs this binary to certify the window
// barrier and mailbox synchronization.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/fault/fault.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/p2p/swarmnet.hpp"
#include "atlarge/sim/sharded.hpp"
#include "chaos_util.hpp"
#include "golden_util.hpp"

namespace sim = atlarge::sim;
namespace mmog = atlarge::mmog;
namespace p2p = atlarge::p2p;
namespace fault = atlarge::fault;
namespace chaos = atlarge::chaos;

namespace {

/// Per-LP execution log: "time/tag" per event, written only by the lane
/// executing the LP.
using Logs = std::vector<std::vector<std::string>>;

std::string entry(double t, int tag) {
  return chaos::exact(t) + "/" + std::to_string(tag);
}

/// A two-LP ping-pong over the mailbox plus local chatter: LP 0 and LP 1
/// each run a local event chain and volley a message back and forth with
/// delay `lookahead`. Returns the per-LP logs.
Logs ping_pong(std::size_t threads, double lookahead, double horizon) {
  sim::ShardOptions options;
  options.shards = 2;
  options.threads = threads;
  options.lookahead = lookahead;
  sim::ShardedSimulation net(options);
  Logs logs(2);

  // Local chains: every 1.0s on LP 0, every 0.7s on LP 1. `tick` outlives
  // run_until, so events may capture it by reference.
  std::function<void(std::size_t)> tick = [&net, &logs, horizon,
                                           &tick](std::size_t lp) {
    const double step = lp == 0 ? 1.0 : 0.7;
    const double now = net.lp(lp).now();
    logs[lp].push_back(entry(now, 100 + static_cast<int>(lp)));
    if (now + step <= horizon)
      net.lp(lp).schedule_at(now + step, [&tick, lp] { tick(lp); });
  };
  for (std::size_t lp = 0; lp < 2; ++lp)
    net.lp(lp).schedule_at(0.0, [&tick, lp] { tick(lp); });

  // The volley: delay max(lookahead, 0.5) each way.
  const double delay = lookahead > 0.0 ? lookahead : 0.5;
  std::function<void(std::size_t, int)> volley = [&](std::size_t at_lp,
                                                     int hop) {
    const double now = net.lp(at_lp).now();
    logs[at_lp].push_back(entry(now, hop));
    if (now + delay > horizon) return;
    const std::size_t next = 1 - at_lp;
    net.send(at_lp, next, now + delay, static_cast<std::uint64_t>(hop),
             [&volley, next, hop] { volley(next, hop + 1); });
  };
  net.send(0, 0, 0.0, 0, [&volley] { volley(0, 0); });

  net.run_until(horizon);
  return logs;
}

TEST(ShardedSimulation, PerLpOrderingsAreIdenticalAcrossThreadCounts) {
  const Logs one = ping_pong(1, 2.0, 50.0);
  ASSERT_FALSE(one[0].empty());
  ASSERT_FALSE(one[1].empty());
  EXPECT_EQ(one, ping_pong(2, 2.0, 50.0));
  EXPECT_EQ(one, ping_pong(8, 2.0, 50.0));
}

TEST(ShardedSimulation, ZeroLookaheadSerializesButStaysCorrect) {
  const Logs one = ping_pong(1, 0.0, 20.0);
  EXPECT_EQ(one, ping_pong(2, 0.0, 20.0));
  EXPECT_EQ(one, ping_pong(8, 0.0, 20.0));
}

TEST(ShardedSimulation, MailboxDeliveryIsSortedByTimeKeySrcSeq) {
  sim::ShardOptions options;
  options.shards = 3;
  options.threads = 2;
  options.lookahead = 1.0;
  sim::ShardedSimulation net(options);
  std::vector<std::uint64_t> order;
  // Same timestamp, shuffled keys, from two different sources: delivery
  // (and hence kernel sequence order on LP 0) must follow the key.
  for (const std::uint64_t key : {7u, 3u, 9u, 1u})
    net.send(1, 0, 5.0, key, [&order, key] { order.push_back(key); });
  for (const std::uint64_t key : {8u, 2u})
    net.send(2, 0, 5.0, key, [&order, key] { order.push_back(key); });
  net.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 7, 8, 9}));
}

TEST(ShardedSimulation, TiedTimestampsAcrossLpsStayDeterministic) {
  auto run = [](std::size_t threads) {
    sim::ShardOptions options;
    options.shards = 4;
    options.threads = threads;
    options.lookahead = 1.0;
    sim::ShardedSimulation net(options);
    Logs logs(4);
    // Every LP has events at the same integer timestamps; each event
    // relays to the next LP at now + 1 with its own key.
    for (std::size_t lp = 0; lp < 4; ++lp) {
      for (int k = 0; k < 3; ++k) {
        net.send(lp, lp, 1.0, static_cast<std::uint64_t>(10 * lp + k),
                 [&net, &logs, lp, k] {
                   logs[lp].push_back(entry(net.lp(lp).now(), k));
                   net.send(lp, (lp + 1) % 4, net.lp(lp).now() + 1.0,
                            static_cast<std::uint64_t>(10 * lp + k),
                            [&logs, lp, k] {
                              logs[(lp + 1) % 4].push_back(
                                  entry(0.0, 1000 + 10 * static_cast<int>(lp) +
                                                 k));
                            });
                 });
      }
    }
    net.run_until(2.0);
    return logs;
  };
  const Logs one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(ShardedSimulation, RunUntilAdvancesEveryLpClockToTheHorizon) {
  sim::ShardOptions options;
  options.shards = 3;
  options.lookahead = 5.0;
  sim::ShardedSimulation net(options);
  net.lp(1).schedule_at(2.0, [] {});
  EXPECT_EQ(net.run_until(10.0), 1u);
  for (std::size_t lp = 0; lp < 3; ++lp)
    EXPECT_DOUBLE_EQ(net.lp(lp).now(), 10.0) << lp;
  EXPECT_GE(net.windows(), 1u);
}

TEST(ShardedSimulation, NextEventTimeReportsAndPurges) {
  sim::Simulation s;
  EXPECT_TRUE(std::isinf(s.next_event_time()));
  auto h = s.schedule_at(3.0, [] {});
  auto h2 = s.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(s.next_event_time(), 3.0);
  EXPECT_TRUE(h.cancel());
  EXPECT_DOUBLE_EQ(s.next_event_time(), 5.0);  // tombstone purged
  EXPECT_TRUE(h2.cancel());
  EXPECT_TRUE(std::isinf(s.next_event_time()));
}

TEST(ShardedSimulation, OwnerThreadBindingAllowsTheOwner) {
  sim::Simulation s;
  s.bind_owner_thread();  // this thread owns the LP
  auto h = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());  // same thread: allowed
  s.clear_owner_thread();
}

#ifndef NDEBUG
TEST(ShardedSimulationDeathTest, CrossThreadCancelAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulation s;
  auto h = s.schedule_at(1.0, [] {});
  s.bind_owner_thread();
  EXPECT_DEATH(
      {
        std::thread other([&h] { h.cancel(); });
        other.join();
      },
      "does not own its LP");
  s.clear_owner_thread();
}
#endif

// ---------------------------------------------------------------------
// Engine invariance across the shards x threads matrix.

// The shared golden_util fingerprint plus the message counter, which for
// standalone zone runs is a model invariant (spawns + migrations) even
// though it is a kernel diagnostic in composed runs.
std::string zone_fingerprint(const mmog::ZoneSimResult& r) {
  return atlarge::golden::zone_fingerprint(r) +
         " msg=" + std::to_string(r.messages);
}

mmog::ZoneSimConfig small_world() {
  mmog::ZoneSimConfig config;
  config.zones = 8;
  config.act_mean = 20.0;
  config.migrate_prob = 0.15;
  config.crossing_time = 5.0;
  config.session_mean = 600.0;
  config.horizon = 2'000.0;
  config.seed = 42;
  return config;
}

TEST(ZoneSim, InvariantAcrossShardAndThreadMatrix) {
  const auto config = small_world();
  const auto arrivals =
      mmog::synthetic_zone_arrivals(400, config.zones, 500.0, config.seed);
  mmog::ZoneSimConfig base = config;
  const std::string expect =
      zone_fingerprint(mmog::simulate_zones(base, arrivals));
  EXPECT_GT(mmog::simulate_zones(base, arrivals).migrations, 0u);
  for (const std::size_t shards : {2, 3, 8}) {
    for (const std::size_t threads : {1, 2, 8}) {
      mmog::ZoneSimConfig c = config;
      c.shard.shards = shards;
      c.shard.threads = threads;
      EXPECT_EQ(expect, zone_fingerprint(mmog::simulate_zones(c, arrivals)))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ZoneSim, ZeroCrossingTimeFallsBackToSerializedWindows) {
  auto config = small_world();
  config.crossing_time = 0.0;  // zero lookahead
  config.horizon = 400.0;
  const auto arrivals =
      mmog::synthetic_zone_arrivals(120, config.zones, 200.0, config.seed);
  const std::string expect =
      zone_fingerprint(mmog::simulate_zones(config, arrivals));
  for (const std::size_t shards : {2, 8}) {
    mmog::ZoneSimConfig c = config;
    c.shard.shards = shards;
    c.shard.threads = 2;
    EXPECT_EQ(expect, zone_fingerprint(mmog::simulate_zones(c, arrivals)))
        << shards;
  }
}

TEST(ZoneSim, TiedSpawnTimestampsStayInvariant) {
  auto config = small_world();
  config.horizon = 300.0;
  // Adversarial trace: many avatars entering at identical timestamps.
  std::vector<mmog::ZoneArrival> arrivals;
  for (std::uint64_t i = 0; i < 96; ++i) {
    mmog::ZoneArrival a;
    a.avatar = i;
    a.time = static_cast<double>(i % 4) * 25.0;  // 4 distinct times only
    a.zone = static_cast<std::uint32_t>(i % config.zones);
    arrivals.push_back(a);
  }
  const std::string expect =
      zone_fingerprint(mmog::simulate_zones(config, arrivals));
  for (const std::size_t shards : {2, 5, 8}) {
    mmog::ZoneSimConfig c = config;
    c.shard.shards = shards;
    c.shard.threads = 4;
    EXPECT_EQ(expect, zone_fingerprint(mmog::simulate_zones(c, arrivals)))
        << shards;
  }
}

TEST(ZoneSimChaos, FaultPlanPropertiesHoldWhenSharded) {
  const auto config = small_world();
  const auto arrivals =
      mmog::synthetic_zone_arrivals(300, config.zones, 500.0, config.seed);
  const chaos::Scenario scenario = [&](const fault::FaultPlan* plan) {
    mmog::ZoneSimConfig c = config;
    c.shard.shards = 4;
    c.shard.threads = 2;
    c.faults = plan;
    return zone_fingerprint(mmog::simulate_zones(c, arrivals));
  };
  fault::FaultSpec spec;
  spec.rate = 5.0;
  spec.horizon = config.horizon;
  spec.seed = 7;
  spec.targets = static_cast<std::uint32_t>(config.zones);
  spec.kinds = {fault::FaultKind::kChurnSpike};
  chaos::check_scenario(scenario, fault::FaultPlan::generate(spec));
}

TEST(ZoneSimChaos, FaultedRunsAreInvariantAcrossLayouts) {
  const auto config = small_world();
  const auto arrivals =
      mmog::synthetic_zone_arrivals(300, config.zones, 500.0, config.seed);
  fault::FaultSpec spec;
  spec.rate = 5.0;
  spec.horizon = config.horizon;
  spec.seed = 9;
  spec.targets = static_cast<std::uint32_t>(config.zones);
  spec.kinds = {fault::FaultKind::kChurnSpike};
  const auto plan = fault::FaultPlan::generate(spec);
  auto run = [&](std::size_t shards, std::size_t threads) {
    mmog::ZoneSimConfig c = config;
    c.shard.shards = shards;
    c.shard.threads = threads;
    c.faults = &plan;
    return zone_fingerprint(mmog::simulate_zones(c, arrivals));
  };
  const std::string expect = run(1, 1);
  EXPECT_EQ(expect, run(2, 2));
  EXPECT_EQ(expect, run(8, 8));
  mmog::ZoneSimConfig c = config;
  c.faults = &plan;
  EXPECT_GT(mmog::simulate_zones(c, arrivals).churned, 0u)
      << "plan produced no churn: the invariance check is vacuous";
}

std::string net_fingerprint(const p2p::SwarmNetResult& r) {
  std::string fp;
  fp += "f=" + std::to_string(r.finished);
  fp += " ab=" + std::to_string(r.aborted);
  fp += " c=" + std::to_string(r.churned);
  fp += " an=" + std::to_string(r.announcements);
  fp += " g=" + std::to_string(r.grants);
  fp += " rl=" + std::to_string(r.residual_leechers);
  fp += " rs=" + std::to_string(r.residual_seeds);
  fp += " us=" + std::to_string(r.download_seconds_x1e6);
  fp += " pk=";
  for (const auto v : r.peak_swarm) fp += std::to_string(v) + ",";
  // The header promises the full digest byte-identical across layouts
  // (per-swarm merge in swarm-id order), so pin serialize(), sum included.
  fp += " dig=" + r.download_digest.serialize();
  return fp;
}

p2p::SwarmNetConfig small_net() {
  p2p::SwarmNetConfig config;
  config.swarms = 6;
  config.content_mb = 50.0;
  config.epoch = 10.0;
  config.announce_interval = 60.0;
  config.abort_rate = 1e-4;
  config.horizon = 6'000.0;
  config.seed = 11;
  return config;
}

TEST(SwarmNet, InvariantAcrossShardAndThreadMatrix) {
  const auto config = small_net();
  const auto arrivals = p2p::flashcrowd_net_arrivals(
      500, config.swarms, config.horizon, 1'500.0, 0.5, config.seed);
  p2p::SwarmNetConfig base = config;
  const auto baseline = p2p::simulate_swarm_network(base, arrivals);
  EXPECT_GT(baseline.finished, 0u);
  EXPECT_GT(baseline.announcements, 0u);
  const std::string expect = net_fingerprint(baseline);
  for (const std::size_t shards : {2, 3, 6}) {
    for (const std::size_t threads : {1, 2, 8}) {
      p2p::SwarmNetConfig c = config;
      c.shard.shards = shards;
      c.shard.threads = threads;
      EXPECT_EQ(expect,
                net_fingerprint(p2p::simulate_swarm_network(c, arrivals)))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(SwarmNet, ArrivalsTiedToEpochBoundariesStayInvariant) {
  auto config = small_net();
  config.horizon = 3'000.0;
  // Adversarial: every arrival exactly on an epoch boundary, several per
  // timestamp — exercises the strict-past census rule.
  std::vector<p2p::PeerArrival> arrivals;
  for (std::uint64_t i = 0; i < 120; ++i) {
    p2p::PeerArrival a;
    a.peer = i;
    a.time = static_cast<double>((i % 10) + 1) * config.epoch;
    a.swarm = static_cast<std::uint32_t>(i % config.swarms);
    arrivals.push_back(a);
  }
  const std::string expect =
      net_fingerprint(p2p::simulate_swarm_network(config, arrivals));
  for (const std::size_t shards : {2, 6}) {
    p2p::SwarmNetConfig c = config;
    c.shard.shards = shards;
    c.shard.threads = 4;
    EXPECT_EQ(expect,
              net_fingerprint(p2p::simulate_swarm_network(c, arrivals)))
        << shards;
  }
}

TEST(SwarmNet, CrossSeedingGrantsFlowAndStayInvariant) {
  auto config = small_net();
  config.content_mb = 20.0;        // quiet swarms drain fast...
  config.seed_time_mean = 10'000;  // ...and their finished peers keep
                                   // seeding: donor rows (0 leechers,
                                   // >0 seeds) for the tracker to pool.
  const auto arrivals = p2p::flashcrowd_net_arrivals(
      300, config.swarms, config.horizon, 2'500.0, 0.6, config.seed);
  const auto baseline = p2p::simulate_swarm_network(config, arrivals);
  EXPECT_GT(baseline.grants, 0u) << "no grants issued: cross-seed untested";
  p2p::SwarmNetConfig c = config;
  c.shard.shards = 6;
  c.shard.threads = 8;
  EXPECT_EQ(net_fingerprint(baseline),
            net_fingerprint(p2p::simulate_swarm_network(c, arrivals)));
}

TEST(SwarmNetChaos, FaultPlanPropertiesHoldWhenSharded) {
  const auto config = small_net();
  const auto arrivals = p2p::flashcrowd_net_arrivals(
      400, config.swarms, config.horizon, 1'000.0, 0.4, config.seed);
  const chaos::Scenario scenario = [&](const fault::FaultPlan* plan) {
    p2p::SwarmNetConfig c = config;
    c.shard.shards = 3;
    c.shard.threads = 2;
    c.faults = plan;
    return net_fingerprint(p2p::simulate_swarm_network(c, arrivals));
  };
  fault::FaultSpec spec;
  spec.rate = 3.0;
  spec.horizon = config.horizon;
  spec.seed = 13;
  spec.targets = static_cast<std::uint32_t>(config.swarms);
  spec.kinds = {fault::FaultKind::kChurnSpike};
  const auto plan = fault::FaultPlan::generate(spec);
  chaos::check_scenario(scenario, plan);

  // And the faulted result is layout-invariant with real churn.
  auto run = [&](std::size_t shards, std::size_t threads) {
    p2p::SwarmNetConfig c = config;
    c.shard.shards = shards;
    c.shard.threads = threads;
    c.faults = &plan;
    return p2p::simulate_swarm_network(c, arrivals);
  };
  const auto one = run(1, 1);
  EXPECT_GT(one.churned, 0u) << "plan produced no churn: check is vacuous";
  EXPECT_EQ(net_fingerprint(one), net_fingerprint(run(6, 8)));
}

}  // namespace
