// Tests for atlarge::exp — the campaign engine. The load-bearing
// properties pinned here, in rough dependency order: spec parsing,
// space binding, deterministic trial enumeration and memo keys, the
// crash-safe JSONL store, the memoizing parallel runner (serial ==
// parallel, byte for byte), aggregation math, checkpoint/resume, and the
// four domain adapters' determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atlarge/exp/adapters.hpp"
#include "atlarge/exp/engine.hpp"
#include "atlarge/obs/observability.hpp"
#include "golden_util.hpp"

namespace {

using namespace atlarge;

// A cheap, exactly-predictable adapter: objective is a linear function of
// the parameter values, so aggregation math can be hand-checked and a
// "simulation" costs nanoseconds.
class LinearAdapter final : public exp::SimulatorAdapter {
 public:
  std::string domain() const override { return "linear"; }
  std::string objective() const override { return "cost"; }

  std::vector<exp::ParamSpec> params() const override {
    return {
        {"a", {1.0, 2.0, 3.0}, {}},
        {"b", {10.0, 20.0}, {}},
        {"mode", {0.0, 1.0}, {"off", "on"}},
    };
  }

  exp::TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                       double scale) const override {
    (void)seed;
    exp::TrialResult r;
    r.objective = v[0] + 0.1 * v[1] + 5.0 * v[2];
    r.metrics = {{"cost", r.objective}, {"scale_seen", scale}};
    return r;
  }
};

std::string temp_path(const std::string& leaf) {
  return atlarge::golden::temp_path("exp_test", leaf);
}

std::string slurp(const std::string& path) {
  return atlarge::golden::slurp(path);
}

exp::CampaignSpec linear_spec() {
  exp::CampaignSpec spec;
  spec.name = "linear";
  spec.domain = "linear";
  spec.mode = exp::CampaignMode::kGrid;
  spec.repeats = 2;
  spec.seed = 7;
  return spec;
}

// ------------------------------------------------------------ spec parse --

TEST(CampaignSpec, ParsesFullSpec) {
  const auto spec = exp::parse_campaign_spec(
      "# comment\n"
      "campaign my-sweep\n"
      "domain serverless\n"
      "mode random   # trailing comment\n"
      "repeats 3\n"
      "seed 42\n"
      "scale 0.5\n"
      "trials 16\n"
      "threads 4\n"
      "top 7\n"
      "dim keep_alive 0 300\n"
      "dim prewarmed 2\n");
  EXPECT_EQ(spec.name, "my-sweep");
  EXPECT_EQ(spec.domain, "serverless");
  EXPECT_EQ(spec.mode, exp::CampaignMode::kRandom);
  EXPECT_EQ(spec.repeats, 3u);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.scale, 0.5);
  EXPECT_EQ(spec.trials, 16u);
  EXPECT_EQ(spec.threads, 4u);
  EXPECT_EQ(spec.top_k, 7u);
  ASSERT_EQ(spec.dims.size(), 2u);
  EXPECT_EQ(spec.dims.at("keep_alive"),
            (std::vector<std::string>{"0", "300"}));
  EXPECT_EQ(spec.dims.at("prewarmed"), (std::vector<std::string>{"2"}));
}

TEST(CampaignSpec, DefaultsNameAndMode) {
  const auto spec = exp::parse_campaign_spec("domain p2p\n");
  EXPECT_EQ(spec.name, "p2p-campaign");
  EXPECT_EQ(spec.mode, exp::CampaignMode::kGrid);
  EXPECT_EQ(spec.repeats, 1u);
}

TEST(CampaignSpec, ErrorsCarryLineNumbers) {
  try {
    exp::parse_campaign_spec("domain p2p\nmode sideways\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(exp::parse_campaign_spec("mode grid\n"),
               std::invalid_argument);  // missing domain
  EXPECT_THROW(exp::parse_campaign_spec("domain p2p\nwibble 3\n"),
               std::invalid_argument);  // unknown keyword
}

// ----------------------------------------------------------- bound space --

TEST(BoundSpace, BindsAllParamsInAdapterOrder) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  // Spec lists dims out of adapter order; binding must follow the adapter.
  spec.dims = {{"mode", {"on"}}, {"a", {"3", "1"}}};
  const exp::BoundSpace space(adapter, spec);
  ASSERT_EQ(space.dimensions(), 3u);
  EXPECT_EQ(space.dims()[0].name, "a");
  EXPECT_EQ(space.dims()[1].name, "b");  // unrestricted: full options
  EXPECT_EQ(space.dims()[2].name, "mode");
  EXPECT_EQ(space.dims()[0].option_indices,
            (std::vector<std::uint32_t>{2, 0}));  // spec token order kept
  EXPECT_EQ(space.dims()[1].option_indices,
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(space.grid_size(), 2u * 2u * 1u);

  const auto values = space.values({1, 0, 0});
  EXPECT_DOUBLE_EQ(values[0], 1.0);   // bound option 1 of dim a == value 1
  EXPECT_DOUBLE_EQ(values[1], 10.0);
  EXPECT_DOUBLE_EQ(values[2], 1.0);   // "on"
  const auto labels = space.labels({1, 0, 0});
  EXPECT_EQ(labels[2], "on");
}

TEST(BoundSpace, RejectsUnknownDimsAndTokens) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.dims = {{"nope", {"1"}}};
  EXPECT_THROW(exp::BoundSpace(adapter, spec), std::invalid_argument);
  spec.dims = {{"a", {"7"}}};
  try {
    exp::BoundSpace space(adapter, spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message lists the valid options for the dimension.
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
  }
  spec.dims = {{"mode", {"sideways"}}};
  EXPECT_THROW(exp::BoundSpace(adapter, spec), std::invalid_argument);
}

TEST(BoundSpace, GridEnumerationLastDimensionFastest) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 1;
  const exp::BoundSpace space(adapter, spec);  // 3 x 2 x 2 = 12 points
  EXPECT_EQ(space.grid_size(), 12u);
  EXPECT_EQ(space.grid_point(0), (design::DesignPoint{0, 0, 0}));
  EXPECT_EQ(space.grid_point(1), (design::DesignPoint{0, 0, 1}));
  EXPECT_EQ(space.grid_point(2), (design::DesignPoint{0, 1, 0}));
  EXPECT_EQ(space.grid_point(11), (design::DesignPoint{2, 1, 1}));
}

TEST(BoundSpace, EnumerationPutsRepeatsInnermost) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 2;
  const exp::BoundSpace space(adapter, spec);
  const auto tasks = exp::enumerate_trials(spec, space);
  ASSERT_EQ(tasks.size(), 24u);
  EXPECT_EQ(tasks[0].point, tasks[1].point);
  EXPECT_EQ(tasks[0].repeat, 0u);
  EXPECT_EQ(tasks[1].repeat, 1u);
  EXPECT_NE(tasks[1].point, tasks[2].point);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(tasks[i].index, i);
}

// -------------------------------------------------------------- memo key --

TEST(MemoKey, StableAcrossNameModeAndThreads) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  const exp::BoundSpace space(adapter, spec);
  const auto base = exp::make_trial(spec, space, {1, 1, 0}, 1, 0);

  auto renamed = spec;
  renamed.name = "rebranded";
  renamed.mode = exp::CampaignMode::kRandom;
  renamed.threads = 8;
  renamed.top_k = 1;
  const auto same = exp::make_trial(renamed, space, {1, 1, 0}, 1, 5);
  EXPECT_EQ(base.key, same.key);
  EXPECT_EQ(base.seed, same.seed);
}

TEST(MemoKey, SensitiveToContent) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  const exp::BoundSpace space(adapter, spec);
  const auto base = exp::make_trial(spec, space, {1, 1, 0}, 0, 0);
  EXPECT_NE(exp::make_trial(spec, space, {1, 1, 1}, 0, 0).key, base.key);
  EXPECT_NE(exp::make_trial(spec, space, {1, 1, 0}, 1, 0).key, base.key);
  auto reseeded = spec;
  reseeded.seed = 8;
  EXPECT_NE(exp::make_trial(reseeded, space, {1, 1, 0}, 0, 0).key, base.key);
  auto rescaled = spec;
  rescaled.scale = 0.5;
  EXPECT_NE(exp::make_trial(rescaled, space, {1, 1, 0}, 0, 0).key, base.key);
}

TEST(MemoKey, KeyIsSixteenLowercaseHexChars) {
  LinearAdapter adapter;
  const auto spec = linear_spec();
  const exp::BoundSpace space(adapter, spec);
  const auto task = exp::make_trial(spec, space, {0, 0, 0}, 0, 0);
  ASSERT_EQ(task.key.size(), 16u);
  for (const char c : task.key)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

// ----------------------------------------------------------------- store --

TEST(ResultStore, MemoryOnlyLookupAndIdempotentAppend) {
  exp::ResultStore store;
  EXPECT_EQ(store.lookup("aaaa"), nullptr);
  exp::TrialRecord record;
  record.key = "aaaa";
  record.objective = 1.5;
  record.metrics = {{"m", 2.0}};
  store.append(record, {});
  record.objective = 99.0;  // second append with same key must not win
  store.append(record, {});
  ASSERT_NE(store.lookup("aaaa"), nullptr);
  EXPECT_DOUBLE_EQ(store.lookup("aaaa")->objective, 1.5);
  EXPECT_EQ(store.size(), 1u);
}

// %.12g round-trip, the runner's canonicalization: a value that survived
// it once is a fixed point of JSON rendering.
double canonical(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return std::strtod(buffer, nullptr);
}

TEST(ResultStore, JsonlRoundTripIsBitwiseForCanonicalValues) {
  const auto path = temp_path("roundtrip.jsonl");
  std::remove(path.c_str());
  exp::TrialRecord record;
  record.key = "0123456789abcdef";
  record.objective = canonical(1.0 / 3.0);
  record.metrics = {{"pi_ish", canonical(3.14159265358979)},
                    {"tiny", canonical(1e-300)},
                    {"neg", canonical(-42.5)}};
  {
    exp::ResultStore store(path);
    exp::TrialRowContext ctx;
    ctx.domain = "linear";
    ctx.repeat = 1;
    ctx.seed = 99;
    ctx.params = {{"a", "1"}, {"mode", "on"}};
    store.append(record, ctx);
  }
  exp::ResultStore reopened(path);
  EXPECT_EQ(reopened.recovered(), 1u);
  EXPECT_EQ(reopened.discarded_lines(), 0u);
  const auto* back = reopened.lookup(record.key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->objective, record.objective);  // bitwise
  ASSERT_EQ(back->metrics.size(), record.metrics.size());
  for (std::size_t i = 0; i < record.metrics.size(); ++i) {
    EXPECT_EQ(back->metrics[i].first, record.metrics[i].first);
    EXPECT_EQ(back->metrics[i].second, record.metrics[i].second);
  }
  std::remove(path.c_str());
}

TEST(ResultStore, RepairsTruncatedTail) {
  const auto path = temp_path("repair.jsonl");
  std::remove(path.c_str());
  {
    exp::ResultStore store(path);
    for (int i = 0; i < 3; ++i) {
      exp::TrialRecord record;
      record.key = "key_" + std::to_string(i);
      record.objective = i;
      record.metrics = {{"m", static_cast<double>(i)}};
      store.append(record, {});
    }
  }
  // Simulate a crash mid-append: chop the tail and add garbage.
  auto content = slurp(path);
  content.resize(content.size() - 10);
  content += "\n{\"not\":\"a trial";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  exp::ResultStore repaired(path);
  EXPECT_EQ(repaired.recovered(), 2u);
  EXPECT_GE(repaired.discarded_lines(), 1u);
  EXPECT_NE(repaired.lookup("key_0"), nullptr);
  EXPECT_NE(repaired.lookup("key_1"), nullptr);
  EXPECT_EQ(repaired.lookup("key_2"), nullptr);
  // The file itself was rewritten: every remaining line parses.
  std::ifstream in(path);
  std::string line;
  std::size_t valid = 0;
  while (std::getline(in, line)) {
    exp::TrialRecord record;
    EXPECT_TRUE(exp::parse_trial_line(line, record)) << line;
    ++valid;
  }
  EXPECT_EQ(valid, 2u);
  std::remove(path.c_str());
}

TEST(ResultStore, ParseLineRejectsMalformedInput) {
  exp::TrialRecord record;
  EXPECT_FALSE(exp::parse_trial_line("", record));
  EXPECT_FALSE(exp::parse_trial_line("not json", record));
  EXPECT_FALSE(exp::parse_trial_line("{\"key\":\"k\"}", record));  // no obj
  EXPECT_FALSE(exp::parse_trial_line(
      "{\"key\":\"k\",\"objective\":1,\"metrics\":{\"m\":1}} trailing",
      record));
  EXPECT_FALSE(exp::parse_trial_line(
      "{\"key\":1,\"objective\":1,\"metrics\":{}}", record));  // key type
  EXPECT_TRUE(exp::parse_trial_line(
      "{\"key\":\"k\",\"objective\":1.5,\"metrics\":{\"m\":2}}", record));
  EXPECT_EQ(record.key, "k");
  EXPECT_DOUBLE_EQ(record.objective, 1.5);
  ASSERT_EQ(record.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(record.metrics[0].second, 2.0);
}

// ---------------------------------------------------------------- runner --

TEST(TrialRunner, SerialAndParallelProduceIdenticalAggregates) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 2;
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exp::ResultStore store;
    exp::RunnerConfig config;
    config.threads = threads;
    const auto outcome = exp::run_campaign(spec, adapter, store, config);
    EXPECT_TRUE(outcome.complete);
    const auto json = exp::aggregate_json(outcome.aggregate);
    if (reference.empty())
      reference = json;
    else
      EXPECT_EQ(json, reference) << "threads=" << threads;
  }
}

TEST(TrialRunner, SecondRunIsFullyMemoized) {
  LinearAdapter adapter;
  const auto spec = linear_spec();
  exp::ResultStore store;
  obs::Observability plane;
  exp::RunnerConfig config;
  config.obs = &plane;
  const auto first = exp::run_campaign(spec, adapter, store, config);
  EXPECT_EQ(first.stats.executed, first.tasks.size());
  const auto second = exp::run_campaign(spec, adapter, store, config);
  EXPECT_EQ(second.stats.executed, 0u);
  EXPECT_EQ(second.stats.memoized, second.tasks.size());
  // The obs counters tell the same story (this is what CI asserts on).
  EXPECT_EQ(plane.metrics.counters().at("exp.trials_executed").value(),
            first.tasks.size());
  EXPECT_EQ(plane.metrics.counters().at("exp.trials_memoized").value(),
            second.tasks.size());
  EXPECT_EQ(exp::aggregate_json(first.aggregate),
            exp::aggregate_json(second.aggregate));
}

TEST(TrialRunner, CapInterruptsAndResumeCompletes) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 2;  // 12 points x 2 = 24 trials
  // Uninterrupted reference run.
  exp::ResultStore full_store;
  const auto reference =
      exp::run_campaign(spec, adapter, full_store, {});
  ASSERT_TRUE(reference.complete);

  exp::ResultStore store;
  exp::RunnerConfig capped;
  capped.max_executed = 5;
  const auto interrupted = exp::run_campaign(spec, adapter, store, capped);
  EXPECT_FALSE(interrupted.complete);
  EXPECT_FALSE(interrupted.aggregate.complete);
  EXPECT_EQ(interrupted.stats.executed, 5u);
  EXPECT_EQ(interrupted.stats.skipped, 24u - 5u);

  const auto resumed = exp::run_campaign(spec, adapter, store, {});
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.stats.memoized, 5u);
  EXPECT_EQ(resumed.stats.executed, 24u - 5u);
  EXPECT_EQ(exp::aggregate_json(resumed.aggregate),
            exp::aggregate_json(reference.aggregate));
}

TEST(TrialRunner, DuplicateKeysExecuteOnce) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 1;
  const exp::BoundSpace space(adapter, spec);
  std::vector<exp::TrialTask> tasks;
  tasks.push_back(exp::make_trial(spec, space, {0, 0, 0}, 0, 0));
  tasks.push_back(exp::make_trial(spec, space, {0, 0, 0}, 0, 1));
  exp::ResultStore store;
  exp::TrialRunner runner(adapter, store, {});
  const auto records = runner.run(tasks);
  ASSERT_EQ(records.size(), 2u);
  ASSERT_TRUE(records[0].has_value());
  ASSERT_TRUE(records[1].has_value());
  EXPECT_EQ(records[0]->key, records[1]->key);
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().memoized, 1u);
  EXPECT_EQ(store.size(), 1u);
}

// ----------------------------------------------------------- aggregation --

TEST(Aggregate, MeansAndMarginalsMatchHandComputation) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 1;
  spec.dims = {{"a", {"1", "3"}}, {"b", {"10"}}, {"mode", {"off", "on"}}};
  exp::ResultStore store;
  const auto outcome = exp::run_campaign(spec, adapter, store, {});
  const auto& agg = outcome.aggregate;
  // Objectives: a + 0.1*b + 5*mode over a in {1,3}, b = 10, mode in {0,1}:
  //   (1,10,off)=2, (1,10,on)=7, (3,10,off)=4, (3,10,on)=9.
  ASSERT_EQ(agg.points, 4u);
  ASSERT_EQ(agg.trials, 4u);
  EXPECT_TRUE(agg.complete);
  ASSERT_EQ(agg.ranked.size(), 4u);
  EXPECT_DOUBLE_EQ(agg.ranked[0].mean_objective, 2.0);  // best first
  EXPECT_DOUBLE_EQ(agg.ranked[1].mean_objective, 4.0);
  EXPECT_DOUBLE_EQ(agg.ranked[2].mean_objective, 7.0);
  EXPECT_DOUBLE_EQ(agg.ranked[3].mean_objective, 9.0);
  EXPECT_EQ(agg.ranked[0].labels[2], "off");
  ASSERT_EQ(agg.param_names,
            (std::vector<std::string>{"a", "b", "mode"}));

  // Marginals: a=1 -> mean(2,7)=4.5; a=3 -> mean(4,9)=6.5;
  //            mode=off -> mean(2,4)=3; mode=on -> mean(7,9)=8.
  double a1 = 0, a3 = 0, off = 0, on = 0;
  for (const auto& cell : agg.marginals) {
    if (cell.dim == "a" && cell.option == "1") a1 = cell.mean_objective;
    if (cell.dim == "a" && cell.option == "3") a3 = cell.mean_objective;
    if (cell.dim == "mode" && cell.option == "off")
      off = cell.mean_objective;
    if (cell.dim == "mode" && cell.option == "on") on = cell.mean_objective;
    // b is pinned to one option, so its single cell covers all 4 trials.
    EXPECT_EQ(cell.trials, cell.dim == "b" ? 4u : 2u);
  }
  EXPECT_DOUBLE_EQ(a1, 4.5);
  EXPECT_DOUBLE_EQ(a3, 6.5);
  EXPECT_DOUBLE_EQ(off, 3.0);
  EXPECT_DOUBLE_EQ(on, 8.0);
}

TEST(Aggregate, RepeatsCollapseWithBootstrapInterval) {
  // An adapter whose objective depends on the repeat-salted seed, so
  // repeats spread and the CI is non-degenerate.
  class NoisyAdapter final : public exp::SimulatorAdapter {
   public:
    std::string domain() const override { return "noisy"; }
    std::string objective() const override { return "cost"; }
    std::vector<exp::ParamSpec> params() const override {
      return {{"x", {1.0, 2.0}, {}}};
    }
    exp::TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                         double) const override {
      exp::TrialResult r;
      r.objective = v[0] + static_cast<double>(seed % 11) / 10.0;
      r.metrics = {{"cost", r.objective}};
      return r;
    }
  };
  NoisyAdapter adapter;
  exp::CampaignSpec spec;
  spec.name = "noisy";
  spec.domain = "noisy";
  spec.repeats = 8;
  exp::ResultStore store;
  const auto outcome = exp::run_campaign(spec, adapter, store, {});
  ASSERT_EQ(outcome.aggregate.points, 2u);
  ASSERT_EQ(outcome.aggregate.trials, 16u);
  for (const auto& point : outcome.aggregate.ranked) {
    EXPECT_EQ(point.repeats, 8u);
    EXPECT_LE(point.objective_ci.lo, point.mean_objective);
    EXPECT_GE(point.objective_ci.hi, point.mean_objective);
  }
}

// ----------------------------------------------------------- explore mode --

TEST(ExploreMode, DeterministicBudgetedAndFindsGridOptimum) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.mode = exp::CampaignMode::kExplore;
  spec.trials = 30;  // point-evaluation budget over a 12-point space
  spec.repeats = 1;
  exp::ResultStore store_a;
  const auto a = exp::run_campaign(spec, adapter, store_a, {});
  EXPECT_TRUE(a.complete);
  EXPECT_LE(a.stats.executed, 30u);
  EXPECT_FALSE(a.trace.best_point.empty());
  // Enough budget over a 12-point space to find the global optimum
  // (a=1, b=10, mode=off -> objective 2).
  ASSERT_FALSE(a.aggregate.ranked.empty());
  EXPECT_DOUBLE_EQ(a.aggregate.ranked[0].mean_objective, 2.0);
  EXPECT_DOUBLE_EQ(a.trace.best_quality, 1.0 / (1.0 + 2.0));

  exp::ResultStore store_b;
  exp::RunnerConfig parallel;
  parallel.threads = 4;
  const auto b = exp::run_campaign(spec, adapter, store_b, parallel);
  EXPECT_EQ(exp::aggregate_json(a.aggregate),
            exp::aggregate_json(b.aggregate));
}

TEST(ExploreMode, EnumerateTrialsRefusesExplore) {
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.mode = exp::CampaignMode::kExplore;
  const exp::BoundSpace space(adapter, spec);
  EXPECT_THROW(exp::enumerate_trials(spec, space), std::logic_error);
}

// -------------------------------------------------------- domain adapters --

TEST(Adapters, AllDomainsRunDeterministicTrials) {
  for (const auto& domain : exp::adapter_domains()) {
    SCOPED_TRACE(domain);
    const auto adapter = exp::make_adapter(domain);
    EXPECT_EQ(adapter->domain(), domain);
    const auto params = adapter->params();
    ASSERT_GE(params.size(), 3u) << "campaign space too small";
    std::vector<double> lo, hi;
    for (const auto& param : params) {
      ASSERT_FALSE(param.values.empty());
      if (param.categorical()) {
        ASSERT_EQ(param.labels.size(), param.values.size());
      }
      lo.push_back(param.values.front());
      hi.push_back(param.values.back());
    }
    const auto once = adapter->run(lo, 77, 0.05);
    const auto again = adapter->run(lo, 77, 0.05);
    EXPECT_EQ(once.objective, again.objective);
    ASSERT_EQ(once.metrics.size(), again.metrics.size());
    for (std::size_t i = 0; i < once.metrics.size(); ++i)
      EXPECT_EQ(once.metrics[i].second, again.metrics[i].second);
    EXPECT_TRUE(std::isfinite(once.objective));
    // Metric names/order must not depend on the values (column contract).
    const auto other = adapter->run(hi, 78, 0.05);
    ASSERT_EQ(other.metrics.size(), once.metrics.size());
    for (std::size_t i = 0; i < once.metrics.size(); ++i)
      EXPECT_EQ(other.metrics[i].first, once.metrics[i].first);
    // The declared objective appears among the metrics.
    bool found = false;
    for (const auto& [name, value] : once.metrics)
      if (name == adapter->objective()) {
        found = true;
        EXPECT_EQ(value, once.objective);
      }
    EXPECT_TRUE(found) << adapter->objective();
  }
  EXPECT_THROW(exp::make_adapter("fpga"), std::invalid_argument);
}

// ------------------------------------------------- end-to-end determinism --

TEST(CampaignEndToEnd, TwoDomainsByteIdenticalStoresAcrossThreads) {
  // The acceptance property: a campaign over >= 2 real domains yields
  // byte-identical JSONL stores and aggregates at 1 and 8 threads.
  const char* kSpecs[] = {
      "campaign sv\ndomain serverless\nmode grid\nrepeats 2\nseed 5\n"
      "scale 0.05\ndim keep_alive 0 300\ndim prewarmed 0 2\n"
      "dim max_instances 32\ndim workload.scenario synthetic\n",
      "campaign pp\ndomain p2p\nmode random\ntrials 4\nrepeats 2\n"
      "seed 3\nscale 0.02\ndim initial_seeds 1 4\n",
  };
  for (const char* text : kSpecs) {
    const auto spec = exp::parse_campaign_spec(text);
    SCOPED_TRACE(spec.domain);
    const auto adapter = exp::make_adapter(spec.domain);
    std::string store_bytes, aggregate_bytes;
    for (const std::size_t threads : {1u, 8u}) {
      const auto path = temp_path(spec.name + "_t" +
                                  std::to_string(threads) + ".jsonl");
      std::remove(path.c_str());
      exp::ResultStore store(path);
      exp::RunnerConfig config;
      config.threads = threads;
      const auto outcome = exp::run_campaign(spec, *adapter, store, config);
      EXPECT_TRUE(outcome.complete);
      const auto bytes = slurp(path);
      const auto json = exp::aggregate_json(outcome.aggregate);
      if (store_bytes.empty()) {
        store_bytes = bytes;
        aggregate_bytes = json;
      } else {
        EXPECT_EQ(bytes, store_bytes) << "threads=" << threads;
        EXPECT_EQ(json, aggregate_bytes) << "threads=" << threads;
      }
      std::remove(path.c_str());
    }
  }
}

TEST(CampaignEndToEnd, ResumeAfterTruncationMatchesUninterrupted) {
  const auto spec = exp::parse_campaign_spec(
      "campaign rz\ndomain serverless\nmode grid\nrepeats 2\nseed 5\n"
      "scale 0.05\ndim keep_alive 0 300\ndim prewarmed 0 2\n"
      "dim max_instances 32\ndim workload.scenario synthetic\n");
  const auto adapter = exp::make_adapter(spec.domain);

  exp::ResultStore reference_store;
  const auto reference =
      exp::run_campaign(spec, *adapter, reference_store, {});

  const auto path = temp_path("resume.jsonl");
  std::remove(path.c_str());
  {
    exp::ResultStore store(path);
    exp::RunnerConfig capped;
    capped.max_executed = 3;
    const auto first = exp::run_campaign(spec, *adapter, store, capped);
    EXPECT_FALSE(first.complete);
  }
  // Crash simulation: truncate mid-line.
  auto content = slurp(path);
  ASSERT_GT(content.size(), 25u);
  content.resize(content.size() - 25);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  exp::ResultStore store(path);
  EXPECT_EQ(store.recovered() + 1, 3u);  // one record lost to the crash
  EXPECT_GE(store.discarded_lines(), 1u);
  const auto resumed = exp::run_campaign(spec, *adapter, store, {});
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.stats.memoized, 2u);
  EXPECT_EQ(exp::aggregate_json(resumed.aggregate),
            exp::aggregate_json(reference.aggregate));
  std::remove(path.c_str());
}

TEST(CampaignEndToEnd, FaultRateSweepGradesTrialsAndMergesDigests) {
  // A faults.rate sweep is the telemetry plane's end-to-end contract:
  // every trial is graded against its adapter's SLO (slo_pass/slo_alerts
  // metrics), per-trial digests round-trip through the JSONL store, and
  // the aggregate reports a merged digest per design point.
  const auto spec = exp::parse_campaign_spec(
      "campaign slo-sweep\ndomain serverless\nmode grid\nrepeats 2\n"
      "seed 5\nscale 0.05\ndim keep_alive 300\ndim prewarmed 0\n"
      "dim max_instances 32\ndim faults.rate 0 40\n"
      "dim workload.scenario synthetic\n");
  const auto adapter = exp::make_adapter(spec.domain);
  const auto path = temp_path("slo_sweep.jsonl");
  std::remove(path.c_str());
  exp::ResultStore store(path);
  const auto outcome = exp::run_campaign(spec, *adapter, store, {});
  EXPECT_TRUE(outcome.complete);

  // Store level: every persisted record is graded and its digest parses.
  const auto content = slurp(path);
  std::size_t records = 0;
  std::uint64_t digest_total = 0;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    exp::TrialRecord record;
    ASSERT_TRUE(exp::parse_trial_line(line, record)) << line;
    ++records;
    double alerts = -1.0, pass = -1.0;
    for (const auto& [name, value] : record.metrics) {
      if (name == "slo_alerts") alerts = value;
      if (name == "slo_pass") pass = value;
    }
    ASSERT_GE(alerts, 0.0) << "trial without slo_alerts: " << line;
    EXPECT_EQ(pass, alerts == 0.0 ? 1.0 : 0.0)
        << "slo_pass must grade exactly on alert count";
    obs::Digest d;
    ASSERT_TRUE(obs::Digest::deserialize(record.digest, d)) << line;
    EXPECT_GT(d.count(), 0u) << "serverless trials must record latencies";
    digest_total += d.count();
  }
  EXPECT_EQ(records, 4u);  // 2 design points x 2 repeats

  // Aggregate level: a merged digest per point (counts add up across
  // repeats) and the mean SLO grade per design point; the fault-free
  // point must pass its SLO outright.
  const auto& agg = outcome.aggregate;
  std::size_t rate_idx = agg.param_names.size();
  for (std::size_t i = 0; i < agg.param_names.size(); ++i)
    if (agg.param_names[i] == "faults.rate") rate_idx = i;
  ASSERT_LT(rate_idx, agg.param_names.size());
  std::uint64_t merged_total = 0;
  for (const auto& point : agg.ranked) {
    merged_total += point.digest.count();
    double mean_pass = -1.0;
    for (const auto& [name, value] : point.mean_metrics)
      if (name == "slo_pass") mean_pass = value;
    ASSERT_GE(mean_pass, 0.0);
    if (point.values[rate_idx] == 0.0)
      EXPECT_EQ(mean_pass, 1.0) << "fault-free trials may not burn budget";
  }
  EXPECT_EQ(merged_total, digest_total);
  const auto json = exp::aggregate_json(outcome.aggregate);
  EXPECT_NE(json.find("\"digest\""), std::string::npos);
  EXPECT_NE(json.find("\"slo_pass\""), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- rendering --

TEST(Rendering, AggregateJsonAndTableCarryParamNames)
{
  LinearAdapter adapter;
  auto spec = linear_spec();
  spec.repeats = 1;
  exp::ResultStore store;
  const auto outcome = exp::run_campaign(spec, adapter, store, {});
  const auto json = exp::aggregate_json(outcome.aggregate);
  EXPECT_NE(json.find("\"mode\":\"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":"), std::string::npos);
  EXPECT_NE(json.find("\"marginals\""), std::string::npos);
  const auto table = exp::aggregate_table(outcome.aggregate, 3);
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("mode=off"), std::string::npos);
  EXPECT_NE(table.find("marginals"), std::string::npos);
}

// --------------------------------------------- store tail-repair edges --

TEST(ResultStore, EmptyFileRecoversCleanly) {
  const auto path = temp_path("empty.jsonl");
  std::remove(path.c_str());
  { std::ofstream out(path, std::ios::binary); }  // zero bytes
  exp::ResultStore store(path);
  EXPECT_EQ(store.recovered(), 0u);
  EXPECT_EQ(store.discarded_lines(), 0u);
  EXPECT_EQ(store.size(), 0u);
  // The store is still usable: an append lands and survives reopening.
  exp::TrialRecord record;
  record.key = "after_empty";
  record.objective = 4.0;
  store.append(record, {});
  exp::ResultStore reopened(path);
  EXPECT_EQ(reopened.recovered(), 1u);
  ASSERT_NE(reopened.lookup("after_empty"), nullptr);
  std::remove(path.c_str());
}

TEST(ResultStore, TornFinalLineWithoutNewlineIsDiscarded) {
  const auto path = temp_path("torn.jsonl");
  std::remove(path.c_str());
  {
    exp::ResultStore store(path);
    exp::TrialRecord record;
    record.key = "whole";
    record.objective = 1.0;
    store.append(record, {});
  }
  // A crash mid-write leaves a torn record with NO trailing newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"key\":\"torn\",\"objective\":2.0,\"metr";
  }
  exp::ResultStore repaired(path);
  EXPECT_EQ(repaired.recovered(), 1u);
  EXPECT_GE(repaired.discarded_lines(), 1u);
  EXPECT_NE(repaired.lookup("whole"), nullptr);
  EXPECT_EQ(repaired.lookup("torn"), nullptr);
  // Repair rewrote the file: a second reopen discards nothing.
  exp::ResultStore clean(path);
  EXPECT_EQ(clean.recovered(), 1u);
  EXPECT_EQ(clean.discarded_lines(), 0u);
  std::remove(path.c_str());
}

TEST(ResultStore, RepeatedResumeIsStable) {
  const auto path = temp_path("rere.jsonl");
  std::remove(path.c_str());
  for (int round = 0; round < 4; ++round) {
    exp::ResultStore store(path);
    EXPECT_EQ(store.recovered(), static_cast<std::size_t>(round));
    EXPECT_EQ(store.discarded_lines(), 0u);
    exp::TrialRecord record;
    record.key = "round_" + std::to_string(round);
    record.objective = round;
    store.append(record, {});
  }
  exp::ResultStore final_store(path);
  EXPECT_EQ(final_store.recovered(), 4u);
  for (int round = 0; round < 4; ++round)
    EXPECT_NE(final_store.lookup("round_" + std::to_string(round)), nullptr)
        << round;
  std::remove(path.c_str());
}

// -------------------------------------------------- the faults dimension --

TEST(Adapters, SimulationDomainsExposeFaultRateDimension) {
  for (const std::string domain : {"portfolio", "serverless", "autoscale",
                                   "p2p"}) {
    SCOPED_TRACE(domain);
    const auto adapter = exp::make_adapter(domain);
    bool found = false;
    for (const auto& param : adapter->params()) {
      if (param.name != "faults.rate") continue;
      found = true;
      ASSERT_FALSE(param.values.empty());
      // Option 0 is always the no-fault baseline, so committed campaign
      // specs can pin `dim faults.rate 0`.
      EXPECT_EQ(param.values.front(), 0.0);
    }
    EXPECT_TRUE(found);
  }
  // The graph adapter runs real kernels, not a simulation: no fault dim.
  for (const auto& param : exp::make_adapter("graph")->params())
    EXPECT_NE(param.name, "faults.rate");
}

TEST(Adapters, FaultRateDimensionBindsInCampaignSpecs) {
  // The committed campaign files pin `dim faults.rate 0`; the chaos sweep
  // binds all three options. Both must resolve against the adapter.
  const auto adapter = exp::make_adapter("serverless");
  exp::CampaignSpec pinned;
  pinned.domain = "serverless";
  pinned.dims = {{"faults.rate", {"0"}}};
  EXPECT_EQ(exp::BoundSpace(*adapter, pinned).grid_size() % 1u, 0u);
  exp::CampaignSpec swept;
  swept.domain = "serverless";
  swept.dims = {{"faults.rate", {"0", "8", "40"}}, {"keep_alive", {"600"}},
                {"prewarmed", {"0"}}, {"max_instances", {"128"}},
                {"workload.scenario", {"synthetic"}}};
  EXPECT_EQ(exp::BoundSpace(*adapter, swept).grid_size(), 3u);
}

TEST(Adapters, ServerlessFaultsDegradeSuccessRate) {
  const auto adapter = exp::make_adapter("serverless");
  const std::vector<double> clean = {300.0, 2.0, 128.0, 0.0, 0.0};
  const std::vector<double> faulted = {300.0, 2.0, 128.0, 40.0, 0.0};
  const auto metric = [](const exp::TrialResult& r, const std::string& name) {
    for (const auto& [key, value] : r.metrics)
      if (key == name) return value;
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };
  const auto base = adapter->run(clean, 55, 0.2);
  EXPECT_DOUBLE_EQ(metric(base, "success_rate"), 1.0);
  EXPECT_EQ(metric(base, "failed"), 0.0);
  EXPECT_EQ(metric(base, "faults_injected"), 0.0);
  const auto hit = adapter->run(faulted, 55, 0.2);
  EXPECT_GT(metric(hit, "faults_injected"), 0.0);
  EXPECT_LT(metric(hit, "success_rate"), 1.0);
  EXPECT_GT(metric(hit, "failed"), 0.0);
}

}  // namespace
