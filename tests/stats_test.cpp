// Unit and property tests for atlarge::stats.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "atlarge/stats/bootstrap.hpp"
#include "atlarge/stats/correlation.hpp"
#include "atlarge/stats/descriptive.hpp"
#include "atlarge/stats/distributions.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/stats/violin.hpp"

namespace stats = atlarge::stats;

// ------------------------------------------------------------------- Rng --

TEST(Rng, SameSeedSameStream) {
  stats::Rng a(123);
  stats::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  stats::Rng a(1);
  stats::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  stats::Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  stats::Rng rng(11);
  stats::Accumulator acc;
  for (int i = 0; i < 100'000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  stats::Rng rng(5);
  bool seen_lo = false;
  bool seen_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen_lo |= v == 3;
    seen_hi |= v == 7;
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  stats::Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliEdgeCases) {
  stats::Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, NormalMoments) {
  stats::Rng rng(17);
  stats::Accumulator acc;
  for (int i = 0; i < 100'000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  stats::Rng rng(23);
  stats::Accumulator acc;
  for (int i = 0; i < 100'000; ++i) acc.add(rng.exponential(0.25));
  EXPECT_NEAR(acc.mean(), 4.0, 0.1);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  stats::Rng a(9);
  stats::Rng b(9);
  stats::Rng fa = a.fork();
  stats::Rng fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa(), fb());
  // Parent streams stay aligned after forking.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

// --------------------------------------------------------- distributions --

TEST(Distributions, ZipfPmfSumsToOne) {
  stats::Zipf zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t r = 1; r <= 100; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Distributions, ZipfRankOneMostLikely) {
  stats::Zipf zipf(50, 1.0);
  EXPECT_GT(zipf.pmf(1), zipf.pmf(2));
  EXPECT_GT(zipf.pmf(2), zipf.pmf(10));
}

TEST(Distributions, ZipfSamplesInRange) {
  stats::Zipf zipf(20, 0.9);
  stats::Rng rng(3);
  for (int i = 0; i < 5'000; ++i) {
    const auto rank = zipf(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 20u);
  }
}

TEST(Distributions, ZipfRejectsBadArgs) {
  EXPECT_THROW(stats::Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(stats::Zipf(10, 0.0), std::invalid_argument);
}

TEST(Distributions, ParetoAboveScale) {
  stats::Pareto pareto(2.0, 1.5);
  stats::Rng rng(3);
  for (int i = 0; i < 5'000; ++i) EXPECT_GE(pareto(rng), 2.0);
}

TEST(Distributions, ParetoMean) {
  stats::Pareto pareto(1.0, 3.0);
  EXPECT_NEAR(pareto.mean(), 1.5, 1e-12);
  stats::Rng rng(3);
  stats::Accumulator acc;
  for (int i = 0; i < 200'000; ++i) acc.add(pareto(rng));
  EXPECT_NEAR(acc.mean(), 1.5, 0.02);
}

TEST(Distributions, BoundedParetoStaysInBounds) {
  stats::BoundedPareto bp(1.0, 100.0, 1.2);
  stats::Rng rng(3);
  for (int i = 0; i < 20'000; ++i) {
    const double x = bp(rng);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Distributions, WeibullPositive) {
  stats::Weibull weibull(10.0, 1.5);
  stats::Rng rng(3);
  for (int i = 0; i < 5'000; ++i) EXPECT_GT(weibull(rng), 0.0);
}

TEST(Distributions, LogNormalMeanMatchesFormula) {
  stats::LogNormal ln(1.0, 0.5);
  stats::Rng rng(3);
  stats::Accumulator acc;
  for (int i = 0; i < 200'000; ++i) acc.add(ln(rng));
  EXPECT_NEAR(acc.mean(), ln.mean(), ln.mean() * 0.02);
}

TEST(Distributions, DiscreteRespectsWeights) {
  stats::Discrete d({1.0, 0.0, 3.0});
  stats::Rng rng(3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[d(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Distributions, DiscreteRejectsBadWeights) {
  EXPECT_THROW(stats::Discrete({}), std::invalid_argument);
  EXPECT_THROW(stats::Discrete({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(stats::Discrete({0.0, 0.0}), std::invalid_argument);
}

// ------------------------------------------------------------ descriptive --

TEST(Descriptive, SummaryKnownValues) {
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  const auto s = stats::summarize(sample);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Descriptive, SummaryEmptyIsZero) {
  const auto s = stats::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> sample = {0, 10};
  EXPECT_DOUBLE_EQ(stats::quantile(sample, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(stats::quantile(sample, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(stats::quantile(sample, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::quantile(sample, 1.0), 10.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> sample = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(stats::quantile(sample, 0.5), 5.0);
}

TEST(Descriptive, AccumulatorMatchesBatch) {
  stats::Rng rng(31);
  std::vector<double> sample;
  stats::Accumulator acc;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    sample.push_back(x);
    acc.add(x);
  }
  const auto s = stats::summarize(sample);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(Descriptive, TimeWeightedAverage) {
  stats::TimeWeighted tw;
  tw.observe(0.0, 10.0);
  tw.observe(5.0, 20.0);  // 10 held for [0,5)
  // 20 held for [5,10) -> average = (50 + 100) / 10 = 15
  EXPECT_DOUBLE_EQ(tw.average(10.0), 15.0);
}

TEST(Descriptive, TimeWeightedSingleValue) {
  stats::TimeWeighted tw;
  tw.observe(2.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.average(12.0), 7.0);
}

// ------------------------------------------------------------ correlation --

TEST(Correlation, PearsonPerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
}

TEST(Correlation, PearsonPerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(x, y), -1.0, 1e-12);
}

TEST(Correlation, RanksHandleTies) {
  const std::vector<double> v = {10, 20, 20, 30};
  const auto r = stats::ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, SpearmanMonotonicNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone cubic
  EXPECT_NEAR(stats::spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, KendallKnownValue) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 3, 2};  // one discordant pair of three
  EXPECT_NEAR(stats::kendall(x, y), 1.0 / 3.0, 1e-12);
}

TEST(Correlation, DegenerateInputsReturnZero) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {2.0};
  EXPECT_EQ(stats::pearson(one, two), 0.0);
  const std::vector<double> empty;
  EXPECT_EQ(stats::spearman(empty, empty), 0.0);
  const std::vector<double> constant = {1, 1, 1};
  const std::vector<double> varying = {2, 3, 4};
  EXPECT_EQ(stats::kendall(constant, varying), 0.0);
}

// ----------------------------------------------------------------- violin --

TEST(Violin, KdeIntegratesToRoughlyOne) {
  stats::Rng rng(41);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(0.0, 1.0));
  const auto curve = stats::kde(sample, 256);
  ASSERT_GE(curve.grid.size(), 2u);
  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < curve.grid.size(); ++i) {
    integral += curve.density[i] * (curve.grid[i + 1] - curve.grid[i]);
  }
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Violin, WhiskersClippedToDataRange) {
  const std::vector<double> sample = {1, 2, 3, 4, 100};  // outlier
  const auto v = stats::violin(sample);
  EXPECT_GE(v.whisker_lo, v.stats.min);
  EXPECT_LE(v.whisker_hi, v.stats.max);
  EXPECT_LT(v.whisker_hi, 100.0);  // outlier beyond 1.5 IQR
}

TEST(Violin, BelowCountsStrictly) {
  const std::vector<double> sample = {1, 2, 3, 3, 4};
  const auto v = stats::violin(sample);
  EXPECT_EQ(v.below(3.0), 2u);
  EXPECT_EQ(v.below(5.0), 5u);
  EXPECT_EQ(v.below(0.5), 0u);
}

TEST(Violin, RenderTableContainsLabels) {
  stats::ViolinGroup group;
  group.title = "demo";
  group.labels = {"a", "b"};
  group.violins.push_back(stats::violin(std::vector<double>{1, 2, 3}));
  group.violins.push_back(stats::violin(std::vector<double>{4, 5, 6}));
  const auto table = stats::render_table(group, 3.0);
  EXPECT_NE(table.find("demo"), std::string::npos);
  EXPECT_NE(table.find("a"), std::string::npos);
}

// -------------------------------------------------------------- bootstrap --

TEST(Bootstrap, MeanCiCoversTruth) {
  stats::Rng rng(51);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) sample.push_back(rng.normal(7.0, 2.0));
  auto ci_rng = rng.fork();
  const auto ci = stats::bootstrap_mean_ci(sample, ci_rng, 500);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_TRUE(ci.contains(7.0));
}

TEST(Bootstrap, SingleElementDegenerates) {
  stats::Rng rng(5);
  const std::vector<double> sample = {3.0};
  const auto ci = stats::bootstrap_mean_ci(sample, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, CustomStatistic) {
  stats::Rng rng(5);
  const std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto ci = stats::bootstrap_ci(
      sample,
      [](std::span<const double> s) { return stats::quantile(s, 0.5); }, rng,
      300);
  EXPECT_GE(ci.point, 1.0);
  EXPECT_LE(ci.point, 9.0);
  EXPECT_LE(ci.lo, ci.hi);
}

// Property sweep: quantiles are monotone in q for arbitrary seeds.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, Holds) {
  stats::Rng rng(GetParam());
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(0.0, 5.0));
  double prev = stats::quantile(sample, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = stats::quantile(sample, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property sweep: summary invariants min <= q1 <= median <= q3 <= max.
class SummaryOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryOrdering, Holds) {
  stats::Rng rng(GetParam());
  std::vector<double> sample;
  const int n = 1 + static_cast<int>(GetParam() % 97);
  for (int i = 0; i < n; ++i) sample.push_back(rng.uniform(-100.0, 100.0));
  const auto s = stats::summarize(sample);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_GE(s.stddev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryOrdering,
                         ::testing::Range<std::uint64_t>(1, 21));
