// Tests for the Distributed Systems Memex and the design-provenance
// formalism (challenges C6/C8).

#include <gtest/gtest.h>

#include "atlarge/design/memex.hpp"

namespace design = atlarge::design;

namespace {

design::ProvenanceGraph chain_of(std::size_t revisions) {
  design::ProvenanceGraph graph;
  design::DecisionId prev = 0;
  for (std::size_t i = 0; i < revisions; ++i) {
    design::DecisionRecord r;
    r.title = "rev" + std::to_string(i);
    r.year = 2000 + static_cast<int>(i);
    r.author = "team";
    if (i > 0) r.supersedes = {prev};
    prev = graph.record(std::move(r));
  }
  return graph;
}

}  // namespace

TEST(Provenance, RecordAssignsSequentialIds) {
  design::ProvenanceGraph graph;
  EXPECT_EQ(graph.record({0, "a", "", {}, {}, 2020, "x"}), 0u);
  EXPECT_EQ(graph.record({0, "b", "", {}, {}, 2021, "x"}), 1u);
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_EQ(graph.get(1).title, "b");
}

TEST(Provenance, SupersedingUnknownDecisionRejected) {
  design::ProvenanceGraph graph;
  design::DecisionRecord r;
  r.title = "bad";
  r.supersedes = {42};
  EXPECT_THROW(graph.record(std::move(r)), std::invalid_argument);
}

TEST(Provenance, ActiveExcludesSuperseded) {
  auto graph = chain_of(3);
  const auto active = graph.active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(graph.get(active[0]).title, "rev2");
}

TEST(Provenance, ParallelDecisionsAllActive) {
  design::ProvenanceGraph graph;
  graph.record({0, "a", "", {}, {}, 2020, "x"});
  graph.record({0, "b", "", {}, {}, 2020, "y"});
  EXPECT_EQ(graph.active().size(), 2u);
}

TEST(Provenance, LineageOldestFirst) {
  auto graph = chain_of(4);
  const auto lineage = graph.lineage(3);
  ASSERT_EQ(lineage.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(lineage[i], i);
  EXPECT_EQ(graph.revision_depth(3), 4u);
  EXPECT_EQ(graph.revision_depth(0), 1u);
}

TEST(Provenance, LineageOfUnknownRejected) {
  design::ProvenanceGraph graph;
  EXPECT_THROW(graph.lineage(0), std::invalid_argument);
}

TEST(Provenance, LineageMergesBranches) {
  design::ProvenanceGraph graph;
  const auto a = graph.record({0, "a", "", {}, {}, 2019, "x"});
  const auto b = graph.record({0, "b", "", {}, {}, 2019, "x"});
  const auto merged = graph.record({0, "merge", "", {}, {a, b}, 2020, "x"});
  EXPECT_EQ(graph.lineage(merged).size(), 3u);
}

TEST(Provenance, ByAuthorFilters) {
  design::ProvenanceGraph graph;
  graph.record({0, "a", "", {}, {}, 2020, "alice"});
  graph.record({0, "b", "", {}, {}, 2020, "bob"});
  graph.record({0, "c", "", {}, {}, 2021, "alice"});
  EXPECT_EQ(graph.by_author("alice").size(), 2u);
  EXPECT_EQ(graph.by_author("nobody").size(), 0u);
}

TEST(Memex, AddRejectsDuplicateSystems) {
  design::Memex memex;
  EXPECT_TRUE(memex.add({"sys", {}, {}, 2000, 2010}));
  EXPECT_FALSE(memex.add({"sys", {}, {}, 2005, 2015}));
  EXPECT_EQ(memex.size(), 1u);
}

TEST(Memex, FindReturnsEntry) {
  design::Memex memex;
  design::MemexEntry entry;
  entry.system = "Tribler";
  entry.trace_dataset_ids = {"p2p-0001"};
  memex.add(std::move(entry));
  const auto* found = memex.find("Tribler");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->trace_dataset_ids.size(), 1u);
  EXPECT_EQ(memex.find("missing"), nullptr);
}

TEST(Memex, ActiveBetweenOverlapsInclusive) {
  design::Memex memex;
  memex.add({"early", {}, {}, 2000, 2005});
  memex.add({"late", {}, {}, 2010, 2015});
  EXPECT_EQ(memex.active_between(2004, 2011).size(), 2u);
  EXPECT_EQ(memex.active_between(2006, 2009).size(), 0u);
  EXPECT_EQ(memex.active_between(2005, 2005).size(), 1u);
}

TEST(Memex, PaperMemexPreservesHeritage) {
  const auto memex = design::paper_memex();
  EXPECT_EQ(memex.size(), 3u);
  EXPECT_GE(memex.decisions_preserved(), 6u);

  // The BTWorld decision supersedes MultiProbe — the lineage the paper
  // says must not be lost.
  const auto* p2p = memex.find("BTWorld/Tribler");
  ASSERT_NE(p2p, nullptr);
  const auto active = p2p->provenance.active();
  bool btworld_active = false;
  for (auto id : active) {
    if (p2p->provenance.get(id).title.find("BTWorld") != std::string::npos)
      btworld_active = true;
    // MultiProbe must not be active anymore.
    EXPECT_EQ(p2p->provenance.get(id).title.find("MultiProbe"),
              std::string::npos);
  }
  EXPECT_TRUE(btworld_active);
}

TEST(Memex, PaperMemexRationalesRecorded) {
  const auto memex = design::paper_memex();
  const auto* ps = memex.find("Portfolio-Scheduler");
  ASSERT_NE(ps, nullptr);
  for (design::DecisionId id = 0; id < ps->provenance.size(); ++id) {
    EXPECT_FALSE(ps->provenance.get(id).rationale.empty());
    EXPECT_FALSE(ps->provenance.get(id).alternatives.empty());
  }
}
