// Chaos property tests: every fault-aware domain honours the two fault
// plane contracts (null/empty plan == byte-identical baseline; faulted
// runs replay byte-identically, including from a serialized plan), and a
// non-trivial plan demonstrably perturbs each domain. See chaos_util.hpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/obs/slo.hpp"
#include "atlarge/obs/timeseries.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/serverless/workflow_engine.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/workflow/generators.hpp"
#include "chaos_util.hpp"

namespace {

using namespace atlarge;
using chaos::exact;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;

// ------------------------------------------------------------- serverless --

chaos::Scenario serverless_scenario(fault::RetryPolicy retry) {
  return [retry](const FaultPlan* plan) {
    const auto registry = serverless::uniform_registry(3, 0.2, 1.0);
    stats::Rng rng(5);
    const auto invocations =
        serverless::bursty_invocations(3, 0.05, 4'000.0, 1'000.0, 10, rng);
    serverless::PlatformConfig config;
    config.keep_alive = 300.0;
    config.faults = plan;
    config.retry = retry;
    const auto r = serverless::run_platform(registry, invocations, config);
    return exact(r.success_rate) + "|" + std::to_string(r.failed_invocations) +
           "|" + std::to_string(r.retries) + "|" + exact(r.cold_fraction) +
           "|" + exact(r.p50_latency) + "|" + exact(r.p99_latency) + "|" +
           exact(r.billed_instance_seconds) + "|" +
           std::to_string(r.faults_injected) + "|" +
           std::to_string(r.faults_recovered);
  };
}

FaultPlan serverless_plan() {
  FaultSpec spec;
  spec.rate = 25.0;
  spec.horizon = 4'000.0;
  spec.seed = 11;
  spec.targets = 3;
  spec.mean_duration = 60.0;
  spec.kinds = {FaultKind::kMessageLoss, FaultKind::kMessageDelay,
                FaultKind::kColdStartFailure};
  return FaultPlan::generate(spec);
}

TEST(ChaosServerless, NullAndReplayIdentity) {
  fault::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = 8.0;
  chaos::check_scenario(serverless_scenario(retry), serverless_plan());
}

TEST(ChaosServerless, FaultsDegradeAndRetriesRecover) {
  const FaultPlan plan = serverless_plan();
  fault::RetryPolicy no_retry;
  no_retry.timeout = 5.0;
  const auto fragile = serverless_scenario(no_retry);
  const std::string clean = fragile(nullptr);
  const std::string faulted = fragile(&plan);
  EXPECT_NE(clean, faulted) << "a 100-event plan left the platform untouched";

  // With retries the platform recovers some of the lost work: strictly
  // fewer failures than the single-attempt run on the same plan.
  const auto count_failed = [](const std::string& fp) {
    const auto a = fp.find('|') + 1;
    return std::stoul(fp.substr(a, fp.find('|', a) - a));
  };
  fault::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.timeout = 5.0;
  const std::string retried = serverless_scenario(retry)(&plan);
  EXPECT_GT(count_failed(fragile(&plan)), 0u);
  EXPECT_LT(count_failed(retried), count_failed(faulted));
}

// ------------------------------------------------------------------ sched --

chaos::Scenario sched_scenario() {
  return [](const FaultPlan* plan) {
    const auto env = cluster::make_homogeneous_cluster("chaos", 4, 2);
    workflow::WorkloadSpec wspec;
    wspec.cls = workflow::WorkloadClass::kIndustrial;
    wspec.jobs = 15;
    wspec.horizon = 1'000.0;
    wspec.seed = 3;
    const auto workload = workflow::generate(wspec);
    sched::FcfsPolicy policy;
    sched::SimOptions options;
    options.faults = plan;
    const auto r = sched::simulate(env, workload, policy, options);
    return exact(r.makespan) + "|" + exact(r.mean_wait) + "|" +
           exact(r.mean_slowdown) + "|" + exact(r.utilization) + "|" +
           std::to_string(r.tasks_completed) + "|" +
           std::to_string(r.faults_injected) + "|" +
           std::to_string(r.faults_recovered) + "|" +
           std::to_string(r.tasks_requeued);
  };
}

FaultPlan sched_plan() {
  FaultSpec spec;
  spec.rate = 20.0;
  spec.horizon = 1'000.0;
  spec.seed = 5;
  spec.targets = 4;
  spec.mean_duration = 50.0;
  spec.kinds = {FaultKind::kMachineCrash, FaultKind::kSlowdown};
  return FaultPlan::generate(spec);
}

TEST(ChaosSched, NullAndReplayIdentity) {
  chaos::check_scenario(sched_scenario(), sched_plan());
}

TEST(ChaosSched, CrashesPerturbTheSchedule) {
  const FaultPlan plan = sched_plan();
  const auto scenario = sched_scenario();
  EXPECT_NE(scenario(nullptr), scenario(&plan));
  const std::string faulted = scenario(&plan);
  const auto injected_field = [](const std::string& fp) {
    std::size_t pos = 0;
    for (int i = 0; i < 5; ++i) pos = fp.find('|', pos) + 1;
    return std::stoul(fp.substr(pos, fp.find('|', pos) - pos));
  };
  EXPECT_EQ(injected_field(faulted), plan.size());
}

// -------------------------------------------------------------- autoscale --

chaos::Scenario autoscale_scenario() {
  return [](const FaultPlan* plan) {
    workflow::WorkloadSpec wspec;
    wspec.cls = workflow::WorkloadClass::kIndustrial;
    wspec.jobs = 20;
    wspec.horizon = 2'000.0;
    wspec.seed = 4;
    const auto workload = workflow::generate(wspec);
    autoscale::ReactAutoscaler react;
    autoscale::ElasticConfig config;
    config.cores_per_machine = 4;
    config.max_machines = 16;
    config.provisioning_delay = 30.0;
    config.interval = 20.0;
    config.faults = plan;
    const auto r = autoscale::run_elastic(workload, react, config);
    double rental_seconds = 0.0;
    for (double rent : r.rentals) rental_seconds += rent;
    return exact(r.makespan) + "|" + exact(r.mean_slowdown) + "|" +
           std::to_string(r.deadline_violations) + "|" +
           std::to_string(r.rentals.size()) + "|" + exact(rental_seconds) +
           "|" + std::to_string(r.faults_injected) + "|" +
           std::to_string(r.faults_recovered) + "|" +
           std::to_string(r.tasks_requeued);
  };
}

FaultPlan autoscale_plan() {
  FaultSpec spec;
  spec.rate = 8.0;
  spec.horizon = 2'000.0;
  spec.seed = 13;
  spec.targets = 16;
  spec.mean_duration = 120.0;
  spec.kinds = {FaultKind::kMachineCrash};
  return FaultPlan::generate(spec);
}

TEST(ChaosAutoscale, NullAndReplayIdentity) {
  chaos::check_scenario(autoscale_scenario(), autoscale_plan());
}

TEST(ChaosAutoscale, CrashesChangeProvisioning) {
  const FaultPlan plan = autoscale_plan();
  const auto scenario = autoscale_scenario();
  EXPECT_NE(scenario(nullptr), scenario(&plan));
}

// -------------------------------------------------------------------- p2p --

chaos::Scenario p2p_scenario() {
  return [](const FaultPlan* plan) {
    stats::Rng rng(2);
    const auto arrivals = p2p::poisson_arrivals(0.05, 2'000.0, rng);
    p2p::SwarmConfig config;
    config.content_mb = 100.0;
    config.seed = 9;
    config.faults = plan;
    const auto r = p2p::simulate_swarm(config, arrivals, 6'000.0);
    return std::to_string(r.finished) + "|" + std::to_string(r.aborted) +
           "|" + std::to_string(r.churned) + "|" +
           std::to_string(r.peak_swarm_size) + "|" +
           exact(r.mean_download_time) + "|" +
           exact(r.median_download_time) + "|" +
           std::to_string(r.series.size());
  };
}

FaultPlan p2p_plan() {
  FaultSpec spec;
  spec.rate = 2.0;
  spec.horizon = 2'000.0;
  spec.seed = 21;
  spec.targets = 1;
  spec.mean_magnitude = 0.5;
  spec.kinds = {FaultKind::kChurnSpike};
  return FaultPlan::generate(spec);
}

TEST(ChaosP2p, NullAndReplayIdentity) {
  chaos::check_scenario(p2p_scenario(), p2p_plan());
}

TEST(ChaosP2p, ChurnSpikesEvictLeechers) {
  const FaultPlan plan = p2p_plan();
  const auto scenario = p2p_scenario();
  const std::string clean = scenario(nullptr);
  const std::string faulted = scenario(&plan);
  EXPECT_NE(clean, faulted);
  const auto churned_field = [](const std::string& fp) {
    std::size_t pos = fp.find('|') + 1;
    pos = fp.find('|', pos) + 1;
    return std::stoul(fp.substr(pos, fp.find('|', pos) - pos));
  };
  EXPECT_EQ(churned_field(clean), 0u);
  EXPECT_GT(churned_field(faulted), 0u);
}

// A single generated plan drives any domain: kinds a domain does not
// handle are ignored (counted, not crashed on), so cross-domain chaos
// campaigns can share one plan.
TEST(ChaosCrossDomain, MixedKindPlanIsSafeEverywhere) {
  FaultSpec spec;
  spec.rate = 10.0;
  spec.horizon = 1'000.0;
  spec.seed = 31;
  spec.targets = 8;  // kinds empty: draw from all six
  const FaultPlan plan = FaultPlan::generate(spec);
  ASSERT_EQ(plan.size(), 10u);
  EXPECT_NO_THROW(sched_scenario()(&plan));
  EXPECT_NO_THROW(autoscale_scenario()(&plan));
  EXPECT_NO_THROW(p2p_scenario()(&plan));
  fault::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.timeout = 10.0;
  EXPECT_NO_THROW(serverless_scenario(retry)(&plan));
}

// ------------------------------------------------------- calendar queue --

// The whole chaos contract must hold regardless of which queue backend the
// kernel runs on, and the backends themselves must agree: a domain run
// under the calendar queue produces the byte-identical fingerprint of the
// same run under the heap, faulted or not.
struct QueueKindGuard {
  sim::QueueKind saved = sim::default_queue_kind();
  explicit QueueKindGuard(sim::QueueKind kind) {
    sim::set_default_queue_kind(kind);
  }
  ~QueueKindGuard() { sim::set_default_queue_kind(saved); }
};

TEST(ChaosCalendarQueue, SchedMatchesHeapAndHonoursContracts) {
  const auto scenario = sched_scenario();
  const FaultPlan plan = sched_plan();
  const std::string heap_clean = scenario(nullptr);
  const std::string heap_faulted = scenario(&plan);
  QueueKindGuard guard(sim::QueueKind::kCalendar);
  chaos::check_scenario(scenario, plan);
  EXPECT_EQ(heap_clean, scenario(nullptr))
      << "calendar backend changed a clean sched run";
  EXPECT_EQ(heap_faulted, scenario(&plan))
      << "calendar backend changed a faulted sched run";
}

TEST(ChaosCalendarQueue, ServerlessMatchesHeapAndHonoursContracts) {
  fault::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = 8.0;
  const auto scenario = serverless_scenario(retry);
  const FaultPlan plan = serverless_plan();
  const std::string heap_clean = scenario(nullptr);
  const std::string heap_faulted = scenario(&plan);
  QueueKindGuard guard(sim::QueueKind::kCalendar);
  chaos::check_scenario(scenario, plan);
  EXPECT_EQ(heap_clean, scenario(nullptr))
      << "calendar backend changed a clean serverless run";
  EXPECT_EQ(heap_faulted, scenario(&plan))
      << "calendar backend changed a faulted serverless run";
}

TEST(ChaosCalendarQueue, AutoscaleMatchesHeap) {
  const auto scenario = autoscale_scenario();
  const FaultPlan plan = autoscale_plan();
  const std::string heap_clean = scenario(nullptr);
  const std::string heap_faulted = scenario(&plan);
  QueueKindGuard guard(sim::QueueKind::kCalendar);
  EXPECT_EQ(heap_clean, scenario(nullptr));
  EXPECT_EQ(heap_faulted, scenario(&plan));
}

// ---------------------------------------------------------- SLO detection --

// The telemetry plane must *detect* injected chaos, not merely survive it:
// a seeded cluster-wide outage at a known sim-time has to raise a
// burn-rate alert within a bounded sim-time window, while the same monitor
// stays silent on the clean run. The queue-depth threshold is calibrated
// from the clean run's own maximum rather than hard-coded, so the test
// tracks the workload generator instead of magic constants.

// The crash lands at the workload's backlog peak (arrivals stop at the
// 1000 s horizon; the 8-core cluster drains the queue until ~2500 s), so
// the outage requeues every running task on top of the deepest clean
// backlog — an immediate, sustained breach of the calibrated threshold.
constexpr double kCrashTime = 1'200.0;
constexpr double kOutage = 300.0;
constexpr double kSloSampling = 5.0;

FaultPlan outage_plan() {
  FaultPlan plan;
  for (std::uint32_t machine = 0; machine < 4; ++machine) {
    fault::FaultEvent ev;
    ev.time = kCrashTime;
    ev.kind = FaultKind::kMachineCrash;
    ev.target = machine;
    ev.duration = kOutage;
    plan.add(ev);
  }
  return plan;
}

struct SloRun {
  std::vector<obs::SloAlert> alerts;
  double max_queue = 0.0;
  std::string slo_json;
};

SloRun slo_run(const FaultPlan* plan, double threshold) {
  obs::Observability plane(0);
  obs::SloMonitor slo;
  obs::SloSpec spec;
  spec.name = "sched-queue";
  spec.kind = obs::SloKind::kGaugeAbove;
  spec.objective = 0.5;  // the queue may sit above threshold half the time
  spec.threshold = threshold;
  spec.gauge = &plane.metrics.gauge("sched.eligible_queue");
  spec.fast = {50.0, 1.5};   // >= 75% of the last 50 s saturated
  spec.slow = {200.0, 1.2};  // >= 60% of the last 200 s saturated
  slo.add(spec);
  plane.attach_slo(&slo);
  obs::TimeSeries series(kSloSampling, 8192);
  series.track_gauge("queue", plane.metrics.gauge("sched.eligible_queue"));
  plane.attach_timeseries(&series);
  plane.set_sampling_interval(kSloSampling);

  const auto env = cluster::make_homogeneous_cluster("chaos", 4, 2);
  workflow::WorkloadSpec wspec;
  wspec.cls = workflow::WorkloadClass::kIndustrial;
  wspec.jobs = 15;
  wspec.horizon = 1'000.0;
  wspec.seed = 3;
  const auto workload = workflow::generate(wspec);
  sched::FcfsPolicy policy;
  sched::SimOptions options;
  options.faults = plan;
  options.obs = &plane;
  (void)sched::simulate(env, workload, policy, options);

  SloRun out;
  out.alerts = slo.alerts();
  out.slo_json = slo.json();
  for (std::size_t row = 0; row < series.size(); ++row)
    out.max_queue = std::max(out.max_queue, series.value_at(row, 0));
  return out;
}

TEST(ChaosSlo, SeededOutageIsDetectedWithinBoundedSimTime) {
  // Calibrate: with an unreachable threshold the monitor never counts a
  // bad evaluation, and the series records the clean queue-depth ceiling.
  const SloRun probe = slo_run(nullptr, 1e18);
  ASSERT_TRUE(probe.alerts.empty());
  const double threshold = probe.max_queue + 1.0;

  // Clean run against the calibrated threshold: still silent.
  const SloRun clean = slo_run(nullptr, threshold);
  EXPECT_TRUE(clean.alerts.empty())
      << "burn-rate alert on a fault-free run: " << clean.slo_json;

  // Cluster-wide outage at kCrashTime: the queue backs up past any level
  // the clean run reached, and both windows must burn before the outage
  // ends — detection latency is bounded by the slow-window span plus one
  // sampling interval after the backlog first exceeds the threshold.
  const FaultPlan plan = outage_plan();
  const SloRun faulted = slo_run(&plan, threshold);
  ASSERT_FALSE(faulted.alerts.empty())
      << "outage never tripped the burn-rate monitor: " << faulted.slo_json;
  EXPECT_GT(faulted.max_queue, probe.max_queue);
  const obs::SloAlert& first = faulted.alerts.front();
  EXPECT_GT(first.time, kCrashTime);
  EXPECT_LE(first.time, kCrashTime + kOutage)
      << "alert raised only after the outage had already ended";
  EXPECT_GE(first.burn_fast, 1.5);
  EXPECT_GE(first.burn_slow, 1.2);
}

TEST(ChaosSlo, AlertStreamIsIdenticalAcrossQueueBackends) {
  const SloRun probe = slo_run(nullptr, 1e18);
  const double threshold = probe.max_queue + 1.0;
  const FaultPlan plan = outage_plan();
  const SloRun heap = slo_run(&plan, threshold);
  QueueKindGuard guard(sim::QueueKind::kCalendar);
  const SloRun calendar = slo_run(&plan, threshold);
  EXPECT_EQ(heap.slo_json, calendar.slo_json)
      << "alert times must be sampling boundaries, not backend artifacts";
  ASSERT_EQ(heap.alerts.size(), calendar.alerts.size());
  for (std::size_t i = 0; i < heap.alerts.size(); ++i)
    EXPECT_EQ(exact(heap.alerts[i].time), exact(calendar.alerts[i].time));
}

// ----------------------------------------------------------- ecosystem ----
//
// The eco composition layer binds every domain to one fabric, so a single
// kMachineCrash plan must ripple through all of them at once: serverless
// warm pools die with their host machine (cold starts and denials go up),
// the autoscaler finds fewer idle machines to lease (zone capacity arrives
// later, logins queue longer), and the shared-fabric scheduler requeues the
// tasks that were running on the lost machine.

eco::EcosystemSpec chaos_eco_spec() {
  eco::EcosystemSpec spec;
  spec.horizon = 2400.0;
  spec.fabric.machines = 8;
  spec.fabric.cores_per_machine = 4;
  spec.fabric.provisioning_delay = 45.0;

  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 1;
  spec.serverless.registry = {{"frontend", 0.1, 1.0, 128.0}};
  spec.serverless.config.keep_alive = 600.0;
  spec.serverless.config.prewarmed = 0;
  stats::Rng faas_rng(97);
  spec.serverless.invocations = serverless::bursty_invocations(
      1, 0.2, spec.horizon, 400.0, 12, faas_rng);

  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 16;
  spec.mmog.report_interval = 20.0;
  spec.mmog.initial_machines = 0;
  spec.mmog.config.zones = 4;
  spec.mmog.config.act_mean = 25.0;
  spec.mmog.config.migrate_prob = 0.1;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.session_mean = 6000.0;
  spec.mmog.config.seed = 7;
  spec.mmog.arrivals = mmog::synthetic_zone_arrivals(300, 4, 2200.0, 7);

  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  spec.dags.policy = "FCFS";
  workflow::WorkloadSpec jobs;
  jobs.cls = workflow::WorkloadClass::kSynthetic;
  jobs.jobs = 24;
  jobs.horizon = 2000.0;
  jobs.seed = 31;
  spec.dags.workload = workflow::generate(jobs);
  return spec;
}

std::string eco_fingerprint(const eco::EcosystemResult& r) {
  return r.summary() +
         "faas_dig=" + chaos::digest_fingerprint(r.faas.latency_digest) +
         "\nzone_dig=" + chaos::digest_fingerprint(r.zones.session_digest) +
         "\n";
}

chaos::Scenario eco_scenario() {
  return [](const FaultPlan* plan) {
    eco::EcosystemSpec spec = chaos_eco_spec();
    spec.faults = plan;
    return eco_fingerprint(eco::run_ecosystem(spec));
  };
}

FaultPlan eco_crash_plan() {
  FaultSpec fs;
  fs.horizon = 2200.0;
  fs.rate = 15.0;  // ~33 crashes: every fabric machine gets hit
  fs.targets = 8;
  fs.seed = 4242;
  fs.mean_duration = 150.0;
  fs.kinds = {FaultKind::kMachineCrash};
  return FaultPlan::generate(fs);
}

TEST(ChaosEcosystem, NullAndReplayIdentity) {
  chaos::check_scenario(eco_scenario(), eco_crash_plan());
}

TEST(ChaosEcosystem, MachineCrashPropagatesAcrossDomains) {
  const FaultPlan plan = eco_crash_plan();
  eco::EcosystemSpec spec = chaos_eco_spec();
  const eco::EcosystemResult calm = eco::run_ecosystem(spec);
  spec.faults = &plan;
  const eco::EcosystemResult hurt = eco::run_ecosystem(spec);

  // The plan actually landed on the shared fabric.
  ASSERT_GT(hurt.fabric.crashes, 0u);
  EXPECT_EQ(calm.fabric.crashes, 0u);

  // Serverless: losing the host machine kills the warm pool, so the same
  // invocation stream pays more cold starts (and fails while the machine is
  // down), which shows up in the latency distribution.
  EXPECT_GT(hurt.faas.cold_fraction, calm.faas.cold_fraction);
  EXPECT_GE(hurt.faas.failed_invocations, calm.faas.failed_invocations);
  EXPECT_NE(chaos::digest_fingerprint(hurt.faas.latency_digest),
            chaos::digest_fingerprint(calm.faas.latency_digest));

  // Autoscale: down machines cannot be leased, so zone capacity arrives on a
  // different trajectory and login admission shifts with it.
  EXPECT_NE(hurt.zones.queued_logins, calm.zones.queued_logins);
  EXPECT_NE(chaos::digest_fingerprint(hurt.zones.session_digest),
            chaos::digest_fingerprint(calm.zones.session_digest));

  // Scheduler: tasks running on the crashed machine are requeued.
  EXPECT_GT(hurt.dags.tasks_requeued, calm.dags.tasks_requeued);

  // The whole cascade is deterministic across shard/thread layouts.
  spec.shards = 3;
  spec.threads = 4;
  EXPECT_EQ(eco_fingerprint(hurt), eco_fingerprint(eco::run_ecosystem(spec)));
}

}  // namespace
