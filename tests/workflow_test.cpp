// Tests for jobs, DAG invariants, and workload generators.

#include <algorithm>

#include <gtest/gtest.h>

#include "atlarge/workflow/generators.hpp"
#include "atlarge/workflow/job.hpp"

namespace wf = atlarge::workflow;
using atlarge::stats::Rng;

namespace {

wf::Job diamond() {
  // 0 -> {1, 2} -> 3
  wf::Job job;
  job.tasks.resize(4);
  for (auto& t : job.tasks) t.runtime = 1.0;
  job.tasks[1].deps = {0};
  job.tasks[2].deps = {0};
  job.tasks[3].deps = {1, 2};
  return job;
}

}  // namespace

TEST(Job, TotalWorkSumsCoreSeconds) {
  wf::Job job;
  job.tasks.push_back({10.0, 2, {}});
  job.tasks.push_back({5.0, 4, {}});
  EXPECT_DOUBLE_EQ(job.total_work(), 40.0);
}

TEST(Job, BagOfTasksDetection) {
  wf::Job bag;
  bag.tasks.push_back({1.0, 1, {}});
  bag.tasks.push_back({1.0, 1, {}});
  EXPECT_TRUE(bag.is_bag_of_tasks());
  EXPECT_FALSE(diamond().is_bag_of_tasks());
}

TEST(Job, TopologicalOrderRespectsDeps) {
  const auto job = diamond();
  const auto order = job.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[0], position[2]);
  EXPECT_LT(position[1], position[3]);
  EXPECT_LT(position[2], position[3]);
}

TEST(Job, CycleDetected) {
  wf::Job job;
  job.tasks.resize(2);
  job.tasks[0].runtime = job.tasks[1].runtime = 1.0;
  job.tasks[0].deps = {1};
  job.tasks[1].deps = {0};
  EXPECT_THROW(job.topological_order(), std::invalid_argument);
}

TEST(Job, SelfDependencyDetected) {
  wf::Job job;
  job.tasks.resize(1);
  job.tasks[0].runtime = 1.0;
  job.tasks[0].deps = {0};
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(Job, OutOfRangeDepDetected) {
  wf::Job job;
  job.tasks.resize(1);
  job.tasks[0].runtime = 1.0;
  job.tasks[0].deps = {7};
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(Job, ValidateRejectsNonPositiveRuntime) {
  wf::Job job;
  job.tasks.push_back({0.0, 1, {}});
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(Job, ValidateRejectsZeroCores) {
  wf::Job job;
  job.tasks.push_back({1.0, 0, {}});
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(Job, CriticalPathDiamond) {
  auto job = diamond();
  job.tasks[1].runtime = 5.0;  // long branch
  EXPECT_DOUBLE_EQ(job.critical_path(), 1.0 + 5.0 + 1.0);
}

TEST(Job, CriticalPathChainIsSum) {
  Rng rng(1);
  const auto chain = wf::make_chain(10, 3.0, rng);
  double sum = 0.0;
  for (const auto& t : chain.tasks) sum += t.runtime;
  EXPECT_NEAR(chain.critical_path(), sum, 1e-9);
}

TEST(Job, CriticalPathEmptyJob) {
  wf::Job job;
  EXPECT_DOUBLE_EQ(job.critical_path(), 0.0);
}

TEST(Workload, NormalizeSortsAndReindexes) {
  wf::Workload wl;
  wf::Job late;
  late.submit_time = 10.0;
  wf::Job early;
  early.submit_time = 1.0;
  wl.jobs = {late, early};
  wl.normalize();
  EXPECT_DOUBLE_EQ(wl.jobs[0].submit_time, 1.0);
  EXPECT_EQ(wl.jobs[0].id, 0u);
  EXPECT_EQ(wl.jobs[1].id, 1u);
}

TEST(Workload, MakespanLowerBoundDominatedByWork) {
  wf::Workload wl;
  wf::Job job;
  job.submit_time = 0.0;
  for (int i = 0; i < 10; ++i) job.tasks.push_back({10.0, 1, {}});
  wl.jobs.push_back(job);
  // 100 core-seconds on 2 cores -> at least 50s.
  EXPECT_DOUBLE_EQ(wl.makespan_lower_bound(2), 50.0);
}

TEST(Workload, MakespanLowerBoundDominatedByCriticalPath) {
  wf::Workload wl;
  Rng rng(1);
  wf::Job chain = wf::make_chain(5, 10.0, rng);
  chain.submit_time = 0.0;
  wl.jobs.push_back(chain);
  // With many cores the critical path dominates.
  EXPECT_NEAR(wl.makespan_lower_bound(1'000), chain.critical_path(), 1e-9);
}

// ------------------------------------------------------------- generators --

TEST(Generators, BagShapeAndBounds) {
  Rng rng(2);
  const auto bag = wf::make_bag_of_tasks(50, 1.0, 100.0, 1.5, rng);
  EXPECT_EQ(bag.size(), 50u);
  EXPECT_TRUE(bag.is_bag_of_tasks());
  for (const auto& t : bag.tasks) {
    EXPECT_GE(t.runtime, 1.0 - 1e-9);
    EXPECT_LE(t.runtime, 100.0 + 1e-9);
  }
}

TEST(Generators, ForkJoinShape) {
  Rng rng(2);
  const auto fj = wf::make_fork_join(8, 10.0, rng);
  EXPECT_EQ(fj.size(), 10u);  // source + 8 + sink
  EXPECT_NO_THROW(fj.validate());
  // Sink depends on all middle tasks.
  EXPECT_EQ(fj.tasks.back().deps.size(), 8u);
}

TEST(Generators, RandomDagValid) {
  Rng rng(2);
  const auto dag = wf::make_random_dag(4, 6, 3, 10.0, rng);
  EXPECT_EQ(dag.size(), 24u);
  EXPECT_NO_THROW(dag.validate());
}

TEST(Generators, PoissonGapsPositive) {
  Rng rng(3);
  wf::PoissonArrivals arrivals(2.0);
  for (int i = 0; i < 1'000; ++i) EXPECT_GE(arrivals.next_gap(0.0, rng), 0.0);
}

TEST(Generators, FlashcrowdRaisesRateInWindow) {
  Rng rng(3);
  wf::FlashcrowdArrivals arrivals(1.0, 10.0, 100.0, 200.0);
  double inside = 0.0;
  double outside = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    inside += arrivals.next_gap(150.0, rng);
    outside += arrivals.next_gap(50.0, rng);
  }
  // Mean gap inside the surge should be ~10x smaller.
  EXPECT_NEAR(outside / inside, 10.0, 1.0);
}

TEST(Generators, DiurnalVariesWithPhase) {
  Rng rng(3);
  wf::DiurnalArrivals arrivals(1.0, 0.9, 86'400.0);
  double peak = 0.0;
  double trough = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    peak += arrivals.next_gap(86'400.0 / 4.0, rng);     // sin = 1
    trough += arrivals.next_gap(3.0 * 86'400.0 / 4.0, rng);  // sin = -1
  }
  EXPECT_GT(trough / peak, 3.0);
}

// Property sweep over every workload class.
class WorkloadClassProps
    : public ::testing::TestWithParam<wf::WorkloadClass> {};

TEST_P(WorkloadClassProps, GeneratesValidNormalizedWorkload) {
  wf::WorkloadSpec spec;
  spec.cls = GetParam();
  spec.jobs = 60;
  spec.horizon = 5'000.0;
  spec.seed = 42;
  const auto wl = wf::generate(spec);
  ASSERT_EQ(wl.jobs.size(), 60u);
  double prev = -1.0;
  for (const auto& job : wl.jobs) {
    EXPECT_GE(job.submit_time, prev);
    prev = job.submit_time;
    EXPECT_FALSE(job.tasks.empty());
    EXPECT_NO_THROW(job.validate());
    EXPECT_EQ(job.user, wf::to_string(spec.cls));
  }
  EXPECT_GT(wl.total_work(), 0.0);
}

TEST_P(WorkloadClassProps, DeterministicForSeed) {
  wf::WorkloadSpec spec;
  spec.cls = GetParam();
  spec.jobs = 20;
  spec.seed = 7;
  const auto a = wf::generate(spec);
  const auto b = wf::generate(spec);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].tasks.size(), b.jobs[i].tasks.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, WorkloadClassProps,
    ::testing::Values(wf::WorkloadClass::kSynthetic,
                      wf::WorkloadClass::kScientific,
                      wf::WorkloadClass::kGaming,
                      wf::WorkloadClass::kComputerEng,
                      wf::WorkloadClass::kBusinessCritical,
                      wf::WorkloadClass::kIndustrial,
                      wf::WorkloadClass::kBigData),
    [](const auto& info) { return wf::to_string(info.param); });
