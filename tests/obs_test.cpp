// Tests for the atlarge::obs instrumentation plane: the shared JSON
// writer, the metrics registry, the ring-buffer tracer with its Chrome
// exporter, and the kernel observer's counter/pending invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "atlarge/obs/json.hpp"
#include "atlarge/obs/metrics.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/obs/trace.hpp"
#include "atlarge/sim/simulation.hpp"

namespace {

using namespace atlarge;

// ------------------------------------------------------------ JsonWriter --

TEST(JsonWriter, NestedStructureAndCommas) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name").value("run");
  w.key("t").value(1.5);
  w.key("tags").begin_array().value("a").value("b").end_array();
  w.key("nested").begin_object().key("n").value(3).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"run","t":1.5,"tags":["a","b"],"nested":{"n":3}})");
}

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter w;
  w.value(std::string_view("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(2.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,2]");
}

TEST(JsonWriter, IntegerAndBoolValues) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ULL});
  w.value(std::int64_t{-7});
  w.value(true);
  w.null();
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,-7,true,null]");
}

TEST(JsonWriter, ValidUtf8PassesThroughByteForByte) {
  obs::JsonWriter w;
  // 2-byte (é), 3-byte (€), and 4-byte (😀) sequences stay raw UTF-8.
  w.value(std::string_view("h\xc3\xa9llo \xe2\x82\xac \xf0\x9f\x98\x80"));
  EXPECT_EQ(w.str(),
            "\"h\xc3\xa9llo \xe2\x82\xac \xf0\x9f\x98\x80\"");
}

TEST(JsonWriter, MalformedUtf8BecomesReplacementCharacter) {
  const auto quoted = [](std::string_view s) {
    obs::JsonWriter w;
    w.value(s);
    return w.str();
  };
  // Stray continuation byte and a lead byte truncated at end-of-string:
  // one replacement each.
  EXPECT_EQ(quoted("\x80"), "\"\\ufffd\"");
  EXPECT_EQ(quoted("\xc3"), "\"\\ufffd\"");
  // Overlong encoding of '/': the bogus lead byte is replaced, then the
  // orphaned continuation byte is replaced on its own.
  EXPECT_EQ(quoted("\xc0\xaf"), "\"\\ufffd\\ufffd\"");
  // UTF-16 surrogate (U+D800) and a value past U+10FFFF: rejected at the
  // lead byte, leaving each continuation byte to be replaced in turn.
  EXPECT_EQ(quoted("\xed\xa0\x80"), "\"\\ufffd\\ufffd\\ufffd\"");
  EXPECT_EQ(quoted("\xf4\x90\x80\x80"),
            "\"\\ufffd\\ufffd\\ufffd\\ufffd\"");
  // Malformed input never produces invalid-UTF-8 output bytes.
  for (const char c : quoted("a\xff\xfe z"))
    EXPECT_LT(static_cast<unsigned char>(c), 0x80u);
}

TEST(JsonWriter, AsciiOnlyEscapesEveryNonAsciiCodePoint) {
  obs::JsonWriter w;
  w.set_ascii_only(true);
  w.begin_array();
  w.value(std::string_view("h\xc3\xa9"));            // U+00E9, BMP
  w.value(std::string_view("\xe2\x82\xac"));         // U+20AC, BMP
  w.value(std::string_view("\xf0\x9f\x98\x80"));     // U+1F600, astral
  w.end_array();
  EXPECT_EQ(w.str(), "[\"h\\u00e9\",\"\\u20ac\",\"\\ud83d\\ude00\"]");
}

TEST(JsonWriter, ControlCharactersAreAlwaysEscaped) {
  obs::JsonWriter w;
  w.value(std::string_view("a\x01\x1f\x7f"));
  // C0 controls get \u escapes; DEL (0x7f) is legal raw in JSON strings.
  EXPECT_EQ(w.str(), "\"a\\u0001\\u001f\x7f\"");
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeBasics) {
  obs::Registry reg;
  auto& c = reg.counter("x.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("x.count"), &c);

  auto& g = reg.gauge("x.depth");
  g.set(3.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, ReferencesStayValidAcrossRegistrations) {
  obs::Registry reg;
  auto& first = reg.counter("a");
  // Register enough instruments to force internal growth if storage were
  // contiguous; node-based maps must keep `first` valid.
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)).add(1);
  first.add(1);
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(Metrics, HistogramMoments) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Metrics, HistogramQuantileIsBucketUpperBoundEstimate) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(1.0);
  h.observe(1000.0);
  // p50 lands in the bucket containing 1.0; the estimate is that bucket's
  // upper bound (within a factor of 2 of the true value), clamped to max.
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_GE(h.quantile(0.5), 0.5);
  // p100 is clamped to the observed max, never the bucket bound above it.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Metrics, HistogramExtremeValuesLandInEdgeBuckets) {
  obs::Histogram h;
  h.observe(0.0);     // below the smallest bound -> bucket 0
  h.observe(1e-30);   // far below 2^-20 -> bucket 0
  h.observe(1e300);   // far above the top bound -> last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Metrics, JsonSnapshotShape) {
  obs::Registry reg;
  reg.counter("runs").add(2);
  reg.gauge("depth").set(1.5);
  reg.histogram("lat").observe(0.25);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Metrics, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("sim.events_fired").add(3);
  reg.gauge("sim.queue_depth").set(2.0);
  auto& h = reg.histogram("sched.task_wait");
  h.observe(0.5);
  h.observe(100.0);
  const std::string prom = reg.prometheus();
  // Dots become underscores; TYPE lines present; cumulative buckets end
  // with +Inf == count.
  EXPECT_NE(prom.find("# TYPE sim_events_fired counter"), std::string::npos);
  EXPECT_NE(prom.find("sim_events_fired 3"), std::string::npos);
  EXPECT_NE(prom.find("sim_queue_depth 2"), std::string::npos);
  EXPECT_NE(prom.find("sched_task_wait_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("sched_task_wait_count 2"), std::string::npos);
}

TEST(Metrics, PrometheusExpositionConformance) {
  obs::Registry reg;
  reg.counter("sim.events_fired").add(3);
  reg.gauge("weird name!").set(1.0);  // sanitized to weird_name_
  reg.gauge("esc\\ape\nme").set(2.0);
  auto& h = reg.histogram("sched.task_wait");
  h.observe(0.5);
  h.observe(100.0);
  auto& d = reg.digest("faas.latency");
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  const std::string prom = reg.prometheus();

  // Name sanitization maps every illegal character to '_'.
  EXPECT_NE(prom.find("weird_name_ 1"), std::string::npos);
  // HELP text carries the original name with backslash/newline escaped
  // (quotes are legal in HELP per the exposition format).
  EXPECT_NE(prom.find("# HELP esc_ape_me atlarge metric esc\\\\ape\\nme\n"),
            std::string::npos);
  // Digests export as summaries: quantile-labelled samples + _sum/_count.
  EXPECT_NE(prom.find("# TYPE faas_latency summary"), std::string::npos);
  EXPECT_NE(prom.find("faas_latency{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(prom.find("faas_latency{quantile=\"0.999\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("faas_latency_sum 5050"), std::string::npos);
  EXPECT_NE(prom.find("faas_latency_count 100"), std::string::npos);

  // Structural conformance: every line is "# HELP ...", "# TYPE ...", or
  // "<name>[{labels}] <value>"; every sample's base name was declared by
  // a preceding # TYPE header; names stay within [a-zA-Z0-9_:].
  std::vector<std::string> declared;
  std::size_t pos = 0;
  while (pos < prom.size()) {
    const std::size_t eol = prom.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "exposition must end in a newline";
    const std::string line = prom.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      const bool help = line.rfind("# HELP ", 0) == 0;
      const bool type = line.rfind("# TYPE ", 0) == 0;
      EXPECT_TRUE(help || type) << line;
      if (type) {
        const std::string rest = line.substr(7);
        declared.push_back(rest.substr(0, rest.find(' ')));
      }
      continue;
    }
    std::size_t name_end = line.find('{');
    if (name_end == std::string::npos) name_end = line.find(' ');
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "bad metric name char in: " << line;
    }
    bool owned = false;
    for (const auto& base : declared) {
      if (name == base || name == base + "_bucket" ||
          name == base + "_sum" || name == base + "_count")
        owned = true;
    }
    EXPECT_TRUE(owned) << "sample without a # TYPE header: " << line;
    // A sample line ends in a space-separated value.
    EXPECT_NE(line.rfind(' '), std::string::npos) << line;
  }
}

TEST(Metrics, PrometheusLabelValueEscaping) {
  // Histogram le labels and summary quantile labels are produced from
  // numbers, so the interesting escapes come via prom_number("+Inf") and
  // the quoting itself: assert the +Inf bucket label survives intact and
  // that no label value contains a raw unescaped quote.
  obs::Registry reg;
  auto& h = reg.histogram("lat");
  h.observe(1.0);
  const std::string prom = reg.prometheus();
  EXPECT_NE(prom.find("lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  // Every quoted label value must close before the next '}'.
  std::size_t pos = 0;
  while ((pos = prom.find("{le=\"", pos)) != std::string::npos) {
    pos += 5;
    const std::size_t close = prom.find('"', pos);
    const std::size_t brace = prom.find('}', pos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_LT(close, brace) << "unterminated label value";
  }
}

TEST(Metrics, JsonSnapshotIncludesDigestQuantiles) {
  obs::Registry reg;
  auto& d = reg.digest("wait");
  for (int i = 1; i <= 1000; ++i) d.add(static_cast<double>(i));
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"digests\""), std::string::npos);
  EXPECT_NE(json.find("\"wait\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1000"), std::string::npos);
  for (const char* key : {"\"p50\"", "\"p95\"", "\"p99\"", "\"p999\"",
                          "\"mean\"", "\"min\"", "\"max\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

// ---------------------------------------------------------------- tracer --

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.begin("a", "c");
  t.instant("b", "c");
  t.end("a", "c");
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, RecordsSpansAndInstantsInOrder) {
  obs::Tracer t(16);
  t.begin("outer", "k", 1.0);
  t.instant("mark", "k", 2.0);
  t.end("outer", "k", 3.0);
  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].kind, obs::SpanKind::kBegin);
  EXPECT_STREQ(recs[0].name, "outer");
  EXPECT_DOUBLE_EQ(recs[0].sim_time, 1.0);
  EXPECT_EQ(recs[1].kind, obs::SpanKind::kInstant);
  EXPECT_EQ(recs[2].kind, obs::SpanKind::kEnd);
  // Wall clock is monotone over the stream.
  EXPECT_LE(recs[0].wall_us, recs[1].wall_us);
  EXPECT_LE(recs[1].wall_us, recs[2].wall_us);
}

TEST(Tracer, RingWrapDropsOldestAndCounts) {
  obs::Tracer t(4);
  for (int i = 0; i < 10; ++i)
    t.instant("i", "c", static_cast<double>(i));
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.size(), 4u);
  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 4u);
  // The survivors are the most recent four, oldest first.
  EXPECT_DOUBLE_EQ(recs.front().sim_time, 6.0);
  EXPECT_DOUBLE_EQ(recs.back().sim_time, 9.0);
}

TEST(Tracer, ScopedSpanEmitsBeginEnd) {
  obs::Tracer t(8);
  {
    obs::ScopedSpan span(t, "phase", "test", 5.0);
    span.set_end_sim_time(9.0);
  }
  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].kind, obs::SpanKind::kBegin);
  EXPECT_DOUBLE_EQ(recs[0].sim_time, 5.0);
  EXPECT_EQ(recs[1].kind, obs::SpanKind::kEnd);
  EXPECT_DOUBLE_EQ(recs[1].sim_time, 9.0);
}

// Counts occurrences of a substring.
std::size_t count_of(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Tracer, ChromeJsonHasBalancedSpans) {
  obs::Tracer t(32);
  t.begin("a", "c", 0.0);
  t.begin("b", "c", 1.0);
  t.instant("i", "c", 1.5);
  t.end("b", "c", 2.0);
  t.end("a", "c", 3.0);
  const std::string json = t.chrome_json();
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"t_sim\""), std::string::npos);
}

TEST(Tracer, ChromeJsonRebalancesAroundRingWrap) {
  // Capacity 4 with 3 nested spans: the open "a"/"b" B records are
  // overwritten, leaving orphaned E records at the front of the ring. The
  // exporter must skip those and still emit balanced output.
  obs::Tracer t(4);
  t.begin("a", "c", 0.0);
  t.begin("b", "c", 1.0);
  t.begin("d", "c", 2.0);
  t.end("d", "c", 3.0);
  t.end("b", "c", 4.0);
  t.end("a", "c", 5.0);
  EXPECT_GT(t.dropped(), 0u);
  const std::string json = t.chrome_json();
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), count_of(json, "\"ph\":\"E\""));
}

TEST(Tracer, ChromeJsonClosesDanglingSpans) {
  obs::Tracer t(8);
  t.begin("open", "c", 0.0);
  t.instant("i", "c", 1.0);
  // No end record: the exporter closes the span at the last timestamp.
  const std::string json = t.chrome_json();
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 1u);
}

TEST(Tracer, EnableResetsState) {
  obs::Tracer t(2);
  t.instant("x", "c");
  t.instant("x", "c");
  t.instant("x", "c");
  EXPECT_EQ(t.dropped(), 1u);
  t.enable(4);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

// ------------------------------------------------------- kernel observer --

TEST(KernelObserver, CountersMatchPendingAcrossTransitions) {
  obs::Observability plane;
  sim::Simulation s;
  s.set_observer(plane.kernel_observer());

  auto check = [&] {
    const auto& m = plane.metrics;
    const std::uint64_t scheduled =
        plane.metrics.counters().at("sim.events_scheduled").value();
    const std::uint64_t fired =
        plane.metrics.counters().at("sim.events_fired").value();
    const std::uint64_t cancelled =
        plane.metrics.counters().at("sim.events_cancelled").value();
    EXPECT_EQ(s.pending(), scheduled - fired - cancelled);
    EXPECT_DOUBLE_EQ(m.gauges().at("sim.queue_depth").value(),
                     static_cast<double>(s.pending()));
  };

  std::size_t fired_count = 0;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(s.schedule_at(static_cast<double>(i),
                                    [&fired_count] { ++fired_count; }));
    check();
  }
  // Cancel a few (including the earliest: the tombstone-at-front path).
  EXPECT_TRUE(handles[0].cancel());
  check();
  EXPECT_TRUE(handles[5].cancel());
  check();
  EXPECT_FALSE(handles[5].cancel());  // double-cancel must not recount
  check();

  const std::size_t executed = s.run_until(4.5);
  check();
  // Single run so far: the histogram's sum is exactly `executed`.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(executed),
      plane.metrics.histograms().at("sim.run_events").sum());
  s.run();
  check();
  EXPECT_EQ(fired_count, 8u);
  EXPECT_EQ(plane.metrics.counters().at("sim.events_fired").value(), 8u);
  EXPECT_EQ(plane.metrics.counters().at("sim.events_cancelled").value(), 2u);
}

TEST(KernelObserver, HandleGenerationRecyclingKeepsCountsExact) {
  obs::Observability plane;
  sim::Simulation s;
  s.set_observer(plane.kernel_observer());

  // Schedule, cancel, and reschedule into the recycled slot; then try a
  // stale cancel through the old handle. The stale cancel must be a no-op
  // for both pending() and the cancelled counter.
  auto h1 = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(h1.cancel());
  auto h2 = s.schedule_at(2.0, [] {});  // likely reuses h1's slot
  EXPECT_FALSE(h1.cancel());            // stale generation
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(plane.metrics.counters().at("sim.events_cancelled").value(), 1u);
  s.run();
  EXPECT_EQ(plane.metrics.counters().at("sim.events_fired").value(), 1u);
  EXPECT_EQ(s.pending(), 0u);
  (void)h2;
}

TEST(KernelObserver, RunSpanAndRunEventsHistogram) {
  obs::Observability plane;
  sim::Simulation s;
  s.set_observer(plane.kernel_observer());
  for (int i = 0; i < 5; ++i) s.schedule_at(static_cast<double>(i), [] {});
  s.run();

  const auto& h = plane.metrics.histograms().at("sim.run_events");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);

  const auto recs = plane.tracer.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].kind, obs::SpanKind::kBegin);
  EXPECT_STREQ(recs[0].name, "sim.run");
  EXPECT_EQ(recs[1].kind, obs::SpanKind::kEnd);
  EXPECT_DOUBLE_EQ(recs[1].sim_time, 4.0);  // time of the last event
}

TEST(KernelObserver, MetricsOnlyPlaneRecordsNoSpans) {
  obs::Observability plane(0);  // tracer disabled
  sim::Simulation s;
  s.set_observer(plane.kernel_observer());
  s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_EQ(plane.tracer.recorded(), 0u);
  EXPECT_EQ(plane.metrics.counters().at("sim.events_fired").value(), 1u);
}

TEST(KernelObserver, ScheduleInThePastClampsObservedTime) {
  // schedule_at with a past deadline clamps to now; the observer must see
  // the clamped time, keeping trace timestamps monotone with the kernel.
  obs::Observability plane;
  sim::Simulation s;
  s.set_observer(plane.kernel_observer());
  s.schedule_at(5.0, [&s] {
    s.schedule_at(1.0, [] {});  // in the past: fires at now (5.0)
  });
  s.run();
  EXPECT_EQ(plane.metrics.counters().at("sim.events_fired").value(), 2u);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
