#pragma once
// Shared golden-statistics helpers for the test suites. These used to be
// copy-pasted per test binary (workload_plane_test, shard_test); they live
// here once so the eco conformance suite can compare composed runs against
// standalone engines with the exact same renderings.
//
// Fingerprints follow the chaos_util discipline: every field rendered
// exactly (%.17g doubles, decimal integers), so EXPECT_EQ on two
// fingerprints is a byte-identity check over the model outputs. Kernel
// diagnostics that are documented as layout-dependent (windows, messages)
// are deliberately excluded — append them locally where a test pins them.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "chaos_util.hpp"

namespace atlarge::golden {

/// Scratch-file path under gtest's temp dir, prefixed per test binary so
/// concurrently running suites never collide.
inline std::string temp_path(const std::string& prefix,
                             const std::string& leaf) {
  return ::testing::TempDir() + prefix + "_" + leaf;
}

/// Whole file as bytes (empty string when the file does not exist).
inline std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Exact rendering of a zone-world result's model outputs.
inline std::string zone_fingerprint(const mmog::ZoneSimResult& r) {
  std::string fp;
  fp += "a=" + std::to_string(r.actions);
  fp += " m=" + std::to_string(r.migrations);
  fp += " ar=" + std::to_string(r.arrivals);
  fp += " d=" + std::to_string(r.departures);
  fp += " c=" + std::to_string(r.churned);
  fp += " res=" + std::to_string(r.residents);
  fp += " q=" + std::to_string(r.queued_logins);
  fp += " us=" + std::to_string(r.session_seconds_x1e6);
  fp += " za=";
  for (const auto v : r.zone_actions) fp += std::to_string(v) + ",";
  fp += " pop=";
  for (const auto v : r.final_population) fp += std::to_string(v) + ",";
  fp += " dig=" + chaos::digest_fingerprint(r.session_digest);
  return fp;
}

/// Exact rendering of a serverless platform result.
inline std::string faas_fingerprint(const serverless::PlatformResult& r) {
  std::string fp;
  fp += "n=" + std::to_string(r.invocations.size());
  fp += " p50=" + chaos::exact(r.p50_latency);
  fp += " p95=" + chaos::exact(r.p95_latency);
  fp += " p99=" + chaos::exact(r.p99_latency);
  fp += " p999=" + chaos::exact(r.p999_latency);
  fp += " cold=" + chaos::exact(r.cold_fraction);
  fp += " billed=" + chaos::exact(r.billed_instance_seconds);
  fp += " busy=" + chaos::exact(r.busy_instance_seconds);
  fp += " peak=" + std::to_string(r.peak_instances);
  fp += " failed=" + std::to_string(r.failed_invocations);
  fp += " retries=" + std::to_string(r.retries);
  fp += " ok=" + chaos::exact(r.success_rate);
  fp += " inj=" + std::to_string(r.faults_injected);
  fp += " rec=" + std::to_string(r.faults_recovered);
  fp += " denied=" + std::to_string(r.capacity_denials);
  fp += " dig=" + chaos::digest_fingerprint(r.latency_digest);
  return fp;
}

/// Exact rendering of a cluster-scheduling result.
inline std::string sched_fingerprint(const sched::SchedResult& r) {
  std::string fp;
  fp += "jobs=" + std::to_string(r.jobs.size());
  fp += " mk=" + chaos::exact(r.makespan);
  fp += " wait=" + chaos::exact(r.mean_wait);
  fp += " slow=" + chaos::exact(r.mean_slowdown);
  fp += " p95=" + chaos::exact(r.p95_slowdown);
  fp += " util=" + chaos::exact(r.utilization);
  fp += " tasks=" + std::to_string(r.tasks_completed);
  fp += " rq=" + std::to_string(r.tasks_requeued);
  fp += " inj=" + std::to_string(r.faults_injected);
  fp += " rec=" + std::to_string(r.faults_recovered);
  fp += " wdig=" + chaos::digest_fingerprint(r.wait_digest);
  fp += " sdig=" + chaos::digest_fingerprint(r.slowdown_digest);
  return fp;
}

}  // namespace atlarge::golden
