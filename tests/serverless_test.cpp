// Tests for the FaaS platform and the serverless workflow engine
// (paper Section 6.4).

#include <string_view>

#include <gtest/gtest.h>

#include "atlarge/obs/observability.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/serverless/workflow_engine.hpp"

namespace sl = atlarge::serverless;
using atlarge::stats::Rng;

namespace {

std::vector<sl::FunctionSpec> two_functions() {
  return {{"alpha", 0.2, 1.0, 128.0}, {"beta", 0.5, 2.0, 256.0}};
}

}  // namespace

TEST(Platform, FirstInvocationIsCold) {
  const auto registry = two_functions();
  const std::vector<sl::Invocation> invocations = {{0, 0.0}};
  const auto result = sl::run_platform(registry, invocations, {});
  ASSERT_EQ(result.invocations.size(), 1u);
  EXPECT_TRUE(result.invocations[0].cold);
  EXPECT_DOUBLE_EQ(result.invocations[0].latency(), 1.0 + 0.2);
}

TEST(Platform, SecondInvocationReusesWarmInstance) {
  const auto registry = two_functions();
  const std::vector<sl::Invocation> invocations = {{0, 0.0}, {0, 5.0}};
  const auto result = sl::run_platform(registry, invocations, {});
  ASSERT_EQ(result.invocations.size(), 2u);
  EXPECT_FALSE(result.invocations[1].cold);
  EXPECT_NEAR(result.invocations[1].latency(), 0.2, 1e-9);
}

TEST(Platform, KeepAliveExpiryForcesColdStart) {
  const auto registry = two_functions();
  sl::PlatformConfig config;
  config.keep_alive = 10.0;
  const std::vector<sl::Invocation> invocations = {{0, 0.0}, {0, 100.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  EXPECT_TRUE(result.invocations[1].cold);
}

TEST(Platform, PrewarmedPoolAvoidsFirstCold) {
  const auto registry = two_functions();
  sl::PlatformConfig config;
  config.prewarmed = 1;
  const std::vector<sl::Invocation> invocations = {{0, 1.0}, {1, 1.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  EXPECT_DOUBLE_EQ(result.cold_fraction, 0.0);
}

TEST(Platform, ConcurrencyCapQueuesRequests) {
  const auto registry = two_functions();
  sl::PlatformConfig config;
  config.max_instances = 1;
  // Three concurrent requests to the same function.
  const std::vector<sl::Invocation> invocations = {{0, 0.0}, {0, 0.0},
                                                   {0, 0.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  ASSERT_EQ(result.invocations.size(), 3u);
  EXPECT_EQ(result.peak_instances, 1u);
  // They serialize: each finishes ~exec_time after the previous.
  std::vector<double> finishes;
  for (const auto& s : result.invocations) finishes.push_back(s.finish);
  std::sort(finishes.begin(), finishes.end());
  EXPECT_GT(finishes[1], finishes[0]);
  EXPECT_GT(finishes[2], finishes[1]);
}

TEST(Platform, MixedFunctionsUnderCapDoNotDeadlock) {
  const auto registry = two_functions();
  sl::PlatformConfig config;
  config.max_instances = 1;
  const std::vector<sl::Invocation> invocations = {{0, 0.0}, {1, 0.0},
                                                   {0, 0.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  EXPECT_EQ(result.invocations.size(), 3u);
}

TEST(Platform, UnknownFunctionRejected) {
  const auto registry = two_functions();
  const std::vector<sl::Invocation> invocations = {{9, 0.0}};
  EXPECT_THROW(sl::run_platform(registry, invocations, {}),
               std::invalid_argument);
}

TEST(Platform, BilledAtLeastBusy) {
  Rng rng(1);
  const auto registry = two_functions();
  const auto invocations =
      sl::bursty_invocations(2, 0.5, 2'000.0, 500.0, 20, rng);
  const auto result = sl::run_platform(registry, invocations, {});
  EXPECT_GE(result.billed_instance_seconds,
            result.busy_instance_seconds - 1e-6);
}

TEST(Platform, ColdFractionDropsWithLongerKeepAlive) {
  Rng rng(2);
  const auto registry = two_functions();
  const auto invocations =
      sl::bursty_invocations(2, 0.05, 10'000.0, 2'000.0, 10, rng);
  sl::PlatformConfig ephemeral;
  ephemeral.keep_alive = 1.0;
  sl::PlatformConfig sticky;
  sticky.keep_alive = 3'600.0;
  const auto r_eph = sl::run_platform(registry, invocations, ephemeral);
  const auto r_sticky = sl::run_platform(registry, invocations, sticky);
  EXPECT_GT(r_eph.cold_fraction, r_sticky.cold_fraction);
}

TEST(Platform, KeepAliveTradesBillingForLatency) {
  Rng rng(3);
  const auto registry = two_functions();
  const auto invocations =
      sl::bursty_invocations(2, 0.05, 10'000.0, 2'000.0, 10, rng);
  sl::PlatformConfig ephemeral;
  ephemeral.keep_alive = 1.0;
  sl::PlatformConfig sticky;
  sticky.keep_alive = 3'600.0;
  const auto r_eph = sl::run_platform(registry, invocations, ephemeral);
  const auto r_sticky = sl::run_platform(registry, invocations, sticky);
  EXPECT_LT(r_eph.billed_instance_seconds, r_sticky.billed_instance_seconds);
  EXPECT_GE(r_eph.p95_latency, r_sticky.p95_latency);
}

TEST(Platform, MicroserviceBaselineHasNoColdStarts) {
  Rng rng(4);
  const auto registry = two_functions();
  const auto invocations =
      sl::bursty_invocations(2, 0.2, 5'000.0, 1'000.0, 15, rng);
  const auto result =
      sl::run_microservice_baseline(registry, invocations, 4, 5'000.0);
  EXPECT_DOUBLE_EQ(result.cold_fraction, 0.0);
  // Always-on billing: instances x functions x horizon.
  EXPECT_DOUBLE_EQ(result.billed_instance_seconds, 4.0 * 2.0 * 5'000.0);
}

TEST(Platform, ServerlessCheaperForSparseTraffic) {
  // The serverless economics claim of [101]: pay-per-use wins when
  // traffic is sparse.
  Rng rng(5);
  const auto registry = two_functions();
  const auto invocations =
      sl::bursty_invocations(2, 0.01, 20'000.0, 10'000.0, 5, rng);
  sl::PlatformConfig config;
  config.keep_alive = 60.0;
  const auto faas = sl::run_platform(registry, invocations, config);
  const auto micro =
      sl::run_microservice_baseline(registry, invocations, 2, 20'000.0);
  EXPECT_LT(faas.billed_instance_seconds,
            micro.billed_instance_seconds * 0.25);
}

TEST(Platform, BurstyGeneratorSortedAndBounded) {
  Rng rng(6);
  const auto invocations =
      sl::bursty_invocations(3, 0.5, 1'000.0, 200.0, 25, rng);
  for (std::size_t i = 1; i < invocations.size(); ++i)
    EXPECT_GE(invocations[i].arrival, invocations[i - 1].arrival);
  for (const auto& inv : invocations) {
    EXPECT_LT(inv.function, 3u);
    EXPECT_LT(inv.arrival, 1'000.0);
  }
}

// --------------------------------------------------------- workflow engine --

TEST(WorkflowEngine, ChainExecutesSequentially) {
  // 5 distinct functions: every step pays a cold start the first time.
  const auto registry = sl::uniform_registry(5, 0.1, 1.0);
  std::vector<atlarge::workflow::Job> jobs = {
      sl::make_chain_workflow(5, 5, 0.0)};
  sl::OrchestratorConfig orch;
  orch.kind = sl::OrchestratorKind::kIntegratedEngine;
  orch.step_overhead = 0.0;
  const auto result = sl::run_workflows(registry, jobs, {}, orch);
  ASSERT_EQ(result.runs.size(), 1u);
  // 5 steps, all cold: 5 * (1.0 + 0.1).
  EXPECT_NEAR(result.runs[0].makespan(), 5.5, 1e-6);
  EXPECT_EQ(result.runs[0].cold_steps, 5u);
}

TEST(WorkflowEngine, ChainReusesWarmContainersAcrossSteps) {
  // 5 steps cycling over 3 functions: steps 4 and 5 reuse the containers
  // steps 1 and 2 warmed up.
  const auto registry = sl::uniform_registry(3, 0.1, 1.0);
  std::vector<atlarge::workflow::Job> jobs = {
      sl::make_chain_workflow(5, 3, 0.0)};
  sl::OrchestratorConfig orch;
  orch.step_overhead = 0.0;
  const auto result = sl::run_workflows(registry, jobs, {}, orch);
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].cold_steps, 3u);
  EXPECT_NEAR(result.runs[0].makespan(), 3 * 1.1 + 2 * 0.1, 1e-6);
}

TEST(WorkflowEngine, WarmReuseAcrossRuns) {
  const auto registry = sl::uniform_registry(2, 0.1, 1.0);
  std::vector<atlarge::workflow::Job> jobs = {
      sl::make_chain_workflow(4, 2, 0.0),
      sl::make_chain_workflow(4, 2, 100.0)};  // later run reuses containers
  sl::OrchestratorConfig orch;
  orch.step_overhead = 0.0;
  const auto result = sl::run_workflows(registry, jobs, {}, orch);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_GT(result.runs[0].cold_steps, 0u);
  EXPECT_EQ(result.runs[1].cold_steps, 0u);
  EXPECT_LT(result.runs[1].makespan(), result.runs[0].makespan());
}

TEST(WorkflowEngine, FanoutRunsInParallel) {
  const auto registry = sl::uniform_registry(8, 0.5, 0.0);
  std::vector<atlarge::workflow::Job> jobs = {
      sl::make_fanout_workflow(6, 8, 0.0)};
  sl::OrchestratorConfig orch;
  orch.step_overhead = 0.0;
  const auto result = sl::run_workflows(registry, jobs, {}, orch);
  // source + parallel stage + sink = ~3 x exec, far below 8 x exec.
  EXPECT_NEAR(result.runs[0].makespan(), 1.5, 0.1);
}

TEST(WorkflowEngine, ExternalPollingAddsLatency) {
  // The Fission-Workflows design argument: integrated orchestration beats
  // an external poller.
  const auto registry = sl::uniform_registry(4, 0.1, 0.5);
  std::vector<atlarge::workflow::Job> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(sl::make_chain_workflow(6, 4, i * 50.0));
  sl::OrchestratorConfig integrated;
  integrated.kind = sl::OrchestratorKind::kIntegratedEngine;
  sl::OrchestratorConfig polling;
  polling.kind = sl::OrchestratorKind::kExternalPolling;
  polling.poll_interval = 1.0;
  const auto fast = sl::run_workflows(registry, jobs, {}, integrated);
  const auto slow = sl::run_workflows(registry, jobs, {}, polling);
  EXPECT_LT(fast.mean_makespan, slow.mean_makespan);
  EXPECT_LT(fast.orchestration_overhead, slow.orchestration_overhead);
}

TEST(WorkflowEngine, RejectsBadFunctionIndex) {
  const auto registry = sl::uniform_registry(2, 0.1, 0.5);
  atlarge::workflow::Job bad;
  atlarge::workflow::Task t;
  t.runtime = 1.0;
  t.cores = 7;  // registry has 2 functions
  bad.tasks.push_back(t);
  std::vector<atlarge::workflow::Job> jobs = {bad};
  EXPECT_THROW(sl::run_workflows(registry, jobs, {}, {}),
               std::invalid_argument);
}

TEST(WorkflowEngine, ColdFractionAggregates) {
  const auto registry = sl::uniform_registry(2, 0.1, 1.0);
  std::vector<atlarge::workflow::Job> jobs = {
      sl::make_chain_workflow(4, 2, 0.0)};
  const auto result = sl::run_workflows(registry, jobs, {}, {});
  EXPECT_GT(result.cold_fraction, 0.0);
  EXPECT_LE(result.cold_fraction, 1.0);
}

TEST(Observability, PlatformEmitsFaasTelemetry) {
  atlarge::obs::Observability plane;
  const auto registry = two_functions();
  std::vector<sl::Invocation> invocations = {
      {0, 0.0}, {0, 0.1}, {1, 0.2}, {0, 100.0}};
  sl::PlatformConfig config;
  config.keep_alive = 30.0;
  config.obs = &plane;
  const auto result = sl::run_platform(registry, invocations, config);

  std::size_t cold = 0;
  for (const auto& s : result.invocations)
    if (s.cold) ++cold;
  const auto& counters = plane.metrics.counters();
  EXPECT_EQ(counters.at("faas.invocations").value(),
            result.invocations.size());
  EXPECT_EQ(counters.at("faas.cold_starts").value(), cold);
  EXPECT_EQ(plane.metrics.histograms().at("faas.latency").count(),
            result.invocations.size());

  bool saw_kernel = false;
  bool saw_faas_run = false;
  for (const auto& rec : plane.tracer.records()) {
    if (std::string_view(rec.category) == "kernel") saw_kernel = true;
    if (std::string_view(rec.name) == "faas.run") saw_faas_run = true;
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_faas_run);

  // Observation must not perturb the simulation.
  sl::PlatformConfig bare = config;
  bare.obs = nullptr;
  const auto unobserved = sl::run_platform(registry, invocations, bare);
  EXPECT_DOUBLE_EQ(unobserved.p99_latency, result.p99_latency);
  EXPECT_DOUBLE_EQ(unobserved.billed_instance_seconds,
                   result.billed_instance_seconds);
}

// ----------------------------------------------------- fault injection --

TEST(Faults, MessageLossFailsSingleAttemptInvocation) {
  const auto registry = two_functions();
  atlarge::fault::FaultPlan plan;
  plan.add({0.0, atlarge::fault::FaultKind::kMessageLoss, 0, 10.0, 0.5});
  sl::PlatformConfig config;
  config.faults = &plan;  // default retry: one attempt, no timeout
  const std::vector<sl::Invocation> invocations = {{0, 1.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  ASSERT_EQ(result.invocations.size(), 1u);
  EXPECT_TRUE(result.invocations[0].failed);
  EXPECT_EQ(result.invocations[0].attempts, 1u);
  EXPECT_EQ(result.failed_invocations, 1u);
  EXPECT_DOUBLE_EQ(result.success_rate, 0.0);
  EXPECT_EQ(result.faults_injected, 1u);
  EXPECT_EQ(result.retries, 0u);
}

TEST(Faults, RetriesEscapeTheLossWindow) {
  const auto registry = two_functions();
  atlarge::fault::FaultPlan plan;
  plan.add({0.0, atlarge::fault::FaultKind::kMessageLoss, 0, 2.0, 0.5});
  sl::PlatformConfig config;
  config.faults = &plan;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = 0.5;
  config.retry.backoff_factor = 2.0;
  const std::vector<sl::Invocation> invocations = {{0, 1.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  // Attempt 1 at t=1.0 is lost; retry at 1.5 still inside the window;
  // retry at 2.5 escapes it and cold-starts: 2.5 + 1.0 + 0.2 = 3.7.
  ASSERT_EQ(result.invocations.size(), 1u);
  EXPECT_FALSE(result.invocations[0].failed);
  EXPECT_EQ(result.invocations[0].attempts, 3u);
  EXPECT_DOUBLE_EQ(result.invocations[0].finish, 3.7);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_DOUBLE_EQ(result.success_rate, 1.0);
  EXPECT_GE(result.faults_recovered, 1u);
}

TEST(Faults, TimeoutAbandonsAttemptsThatRunTooLong) {
  // No fault plan: the retry/timeout machinery stands on its own. beta's
  // cold start (2.0 + 0.5) exceeds the 1s timeout; the abandoned instance
  // stays warm, so the retry at 1.5 executes in 0.5s and succeeds.
  const auto registry = two_functions();
  sl::PlatformConfig config;
  config.retry.max_attempts = 2;
  config.retry.timeout = 1.0;
  config.retry.backoff_base = 0.5;
  const std::vector<sl::Invocation> invocations = {{1, 0.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  ASSERT_EQ(result.invocations.size(), 1u);
  EXPECT_FALSE(result.invocations[0].failed);
  EXPECT_EQ(result.invocations[0].attempts, 2u);
  EXPECT_DOUBLE_EQ(result.invocations[0].finish, 2.0);
  EXPECT_EQ(result.retries, 1u);
  EXPECT_EQ(result.failed_invocations, 0u);
}

TEST(Faults, ColdStartFailureWindowBlocksProvisioning) {
  const auto registry = two_functions();
  atlarge::fault::FaultPlan plan;
  plan.add({0.0, atlarge::fault::FaultKind::kColdStartFailure, 0, 5.0, 0.5});
  sl::PlatformConfig config;
  config.keep_alive = 1.0;  // the failed attempt leaves no warm instance
  config.faults = &plan;
  const std::vector<sl::Invocation> invocations = {{0, 1.0}, {0, 6.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  ASSERT_EQ(result.invocations.size(), 2u);
  std::size_t failed = 0;
  for (const auto& s : result.invocations)
    if (s.failed) ++failed;
  EXPECT_EQ(failed, 1u);
  EXPECT_DOUBLE_EQ(result.success_rate, 0.5);
  // The invocation after the window cold-starts normally.
  EXPECT_EQ(result.failed_invocations, 1u);
}

TEST(Faults, MessageDelayDefersDispatchWithoutFailing) {
  const auto registry = two_functions();
  atlarge::fault::FaultPlan plan;
  plan.add({0.0, atlarge::fault::FaultKind::kMessageDelay, 0, 5.0, 0.5});
  sl::PlatformConfig config;
  config.faults = &plan;
  const std::vector<sl::Invocation> invocations = {{0, 1.0}};
  const auto result = sl::run_platform(registry, invocations, config);
  ASSERT_EQ(result.invocations.size(), 1u);
  const auto& s = result.invocations[0];
  EXPECT_FALSE(s.failed);
  EXPECT_EQ(s.attempts, 1u);  // deferral consumes no attempt
  EXPECT_TRUE(s.cold);
  // Dispatch deferred to the window end: start 5.0 + 1.0 cold = 6.0.
  EXPECT_DOUBLE_EQ(s.start, 6.0);
  EXPECT_DOUBLE_EQ(s.latency(), 6.2 - 1.0);
  EXPECT_EQ(result.failed_invocations, 0u);
  EXPECT_DOUBLE_EQ(result.success_rate, 1.0);
}
