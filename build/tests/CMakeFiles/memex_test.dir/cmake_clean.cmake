file(REMOVE_RECURSE
  "CMakeFiles/memex_test.dir/memex_test.cpp.o"
  "CMakeFiles/memex_test.dir/memex_test.cpp.o.d"
  "memex_test"
  "memex_test.pdb"
  "memex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
