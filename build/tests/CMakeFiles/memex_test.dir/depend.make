# Empty dependencies file for memex_test.
# This may be replaced when dependencies are built.
