# Empty dependencies file for vicissitude_test.
# This may be replaced when dependencies are built.
