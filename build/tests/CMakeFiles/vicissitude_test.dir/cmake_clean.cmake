file(REMOVE_RECURSE
  "CMakeFiles/vicissitude_test.dir/vicissitude_test.cpp.o"
  "CMakeFiles/vicissitude_test.dir/vicissitude_test.cpp.o.d"
  "vicissitude_test"
  "vicissitude_test.pdb"
  "vicissitude_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vicissitude_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
