
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/design/CMakeFiles/atlarge_design.dir/DependInfo.cmake"
  "/root/repo/build/src/autoscale/CMakeFiles/atlarge_autoscale.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/atlarge_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/atlarge_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/atlarge_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/mmog/CMakeFiles/atlarge_mmog.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atlarge_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/atlarge_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/atlarge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/atlarge_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atlarge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
