file(REMOVE_RECURSE
  "CMakeFiles/mmog_test.dir/mmog_test.cpp.o"
  "CMakeFiles/mmog_test.dir/mmog_test.cpp.o.d"
  "mmog_test"
  "mmog_test.pdb"
  "mmog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
