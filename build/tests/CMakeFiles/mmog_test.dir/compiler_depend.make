# Empty compiler generated dependencies file for mmog_test.
# This may be replaced when dependencies are built.
