# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/portfolio_test[1]_include.cmake")
include("/root/repo/build/tests/autoscale_test[1]_include.cmake")
include("/root/repo/build/tests/p2p_test[1]_include.cmake")
include("/root/repo/build/tests/mmog_test[1]_include.cmake")
include("/root/repo/build/tests/serverless_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/design_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/memex_test[1]_include.cmake")
include("/root/repo/build/tests/vicissitude_test[1]_include.cmake")
