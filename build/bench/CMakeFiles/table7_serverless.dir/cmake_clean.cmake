file(REMOVE_RECURSE
  "CMakeFiles/table7_serverless.dir/table7_serverless.cpp.o"
  "CMakeFiles/table7_serverless.dir/table7_serverless.cpp.o.d"
  "table7_serverless"
  "table7_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
