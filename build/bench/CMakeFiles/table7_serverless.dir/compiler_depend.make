# Empty compiler generated dependencies file for table7_serverless.
# This may be replaced when dependencies are built.
