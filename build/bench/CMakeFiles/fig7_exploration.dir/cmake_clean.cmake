file(REMOVE_RECURSE
  "CMakeFiles/fig7_exploration.dir/fig7_exploration.cpp.o"
  "CMakeFiles/fig7_exploration.dir/fig7_exploration.cpp.o.d"
  "fig7_exploration"
  "fig7_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
