# Empty dependencies file for fig7_exploration.
# This may be replaced when dependencies are built.
