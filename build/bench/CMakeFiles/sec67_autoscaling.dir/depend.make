# Empty dependencies file for sec67_autoscaling.
# This may be replaced when dependencies are built.
