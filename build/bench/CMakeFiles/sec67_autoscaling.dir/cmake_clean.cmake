file(REMOVE_RECURSE
  "CMakeFiles/sec67_autoscaling.dir/sec67_autoscaling.cpp.o"
  "CMakeFiles/sec67_autoscaling.dir/sec67_autoscaling.cpp.o.d"
  "sec67_autoscaling"
  "sec67_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec67_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
