file(REMOVE_RECURSE
  "CMakeFiles/table9_portfolio.dir/table9_portfolio.cpp.o"
  "CMakeFiles/table9_portfolio.dir/table9_portfolio.cpp.o.d"
  "table9_portfolio"
  "table9_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
