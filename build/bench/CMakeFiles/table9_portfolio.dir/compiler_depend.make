# Empty compiler generated dependencies file for table9_portfolio.
# This may be replaced when dependencies are built.
