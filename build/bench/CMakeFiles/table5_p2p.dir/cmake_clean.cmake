file(REMOVE_RECURSE
  "CMakeFiles/table5_p2p.dir/table5_p2p.cpp.o"
  "CMakeFiles/table5_p2p.dir/table5_p2p.cpp.o.d"
  "table5_p2p"
  "table5_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
