file(REMOVE_RECURSE
  "CMakeFiles/fig9_refarch.dir/fig9_refarch.cpp.o"
  "CMakeFiles/fig9_refarch.dir/fig9_refarch.cpp.o.d"
  "fig9_refarch"
  "fig9_refarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_refarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
