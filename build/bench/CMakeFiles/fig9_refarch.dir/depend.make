# Empty dependencies file for fig9_refarch.
# This may be replaced when dependencies are built.
