file(REMOVE_RECURSE
  "CMakeFiles/fig2_design_articles.dir/fig2_design_articles.cpp.o"
  "CMakeFiles/fig2_design_articles.dir/fig2_design_articles.cpp.o.d"
  "fig2_design_articles"
  "fig2_design_articles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_design_articles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
