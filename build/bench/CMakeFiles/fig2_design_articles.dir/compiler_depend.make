# Empty compiler generated dependencies file for fig2_design_articles.
# This may be replaced when dependencies are built.
