file(REMOVE_RECURSE
  "CMakeFiles/table6_mmog.dir/table6_mmog.cpp.o"
  "CMakeFiles/table6_mmog.dir/table6_mmog.cpp.o.d"
  "table6_mmog"
  "table6_mmog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_mmog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
