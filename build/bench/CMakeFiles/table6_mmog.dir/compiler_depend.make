# Empty compiler generated dependencies file for table6_mmog.
# This may be replaced when dependencies are built.
