file(REMOVE_RECURSE
  "CMakeFiles/fig3_review_scores.dir/fig3_review_scores.cpp.o"
  "CMakeFiles/fig3_review_scores.dir/fig3_review_scores.cpp.o.d"
  "fig3_review_scores"
  "fig3_review_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_review_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
