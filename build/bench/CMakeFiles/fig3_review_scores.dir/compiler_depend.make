# Empty compiler generated dependencies file for fig3_review_scores.
# This may be replaced when dependencies are built.
