# Empty dependencies file for fig1_keywords.
# This may be replaced when dependencies are built.
