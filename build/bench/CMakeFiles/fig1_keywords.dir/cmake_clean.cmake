file(REMOVE_RECURSE
  "CMakeFiles/fig1_keywords.dir/fig1_keywords.cpp.o"
  "CMakeFiles/fig1_keywords.dir/fig1_keywords.cpp.o.d"
  "fig1_keywords"
  "fig1_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
