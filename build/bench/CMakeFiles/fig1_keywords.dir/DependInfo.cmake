
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_keywords.cpp" "bench/CMakeFiles/fig1_keywords.dir/fig1_keywords.cpp.o" "gcc" "bench/CMakeFiles/fig1_keywords.dir/fig1_keywords.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/design/CMakeFiles/atlarge_design.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
