# Empty compiler generated dependencies file for table8_graphalytics.
# This may be replaced when dependencies are built.
