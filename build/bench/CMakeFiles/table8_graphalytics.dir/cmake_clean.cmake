file(REMOVE_RECURSE
  "CMakeFiles/table8_graphalytics.dir/table8_graphalytics.cpp.o"
  "CMakeFiles/table8_graphalytics.dir/table8_graphalytics.cpp.o.d"
  "table8_graphalytics"
  "table8_graphalytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_graphalytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
