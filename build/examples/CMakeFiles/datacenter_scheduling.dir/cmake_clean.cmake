file(REMOVE_RECURSE
  "CMakeFiles/datacenter_scheduling.dir/datacenter_scheduling.cpp.o"
  "CMakeFiles/datacenter_scheduling.dir/datacenter_scheduling.cpp.o.d"
  "datacenter_scheduling"
  "datacenter_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
