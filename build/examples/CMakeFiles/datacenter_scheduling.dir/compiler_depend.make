# Empty compiler generated dependencies file for datacenter_scheduling.
# This may be replaced when dependencies are built.
