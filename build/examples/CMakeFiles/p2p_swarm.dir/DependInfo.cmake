
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/p2p_swarm.cpp" "examples/CMakeFiles/p2p_swarm.dir/p2p_swarm.cpp.o" "gcc" "examples/CMakeFiles/p2p_swarm.dir/p2p_swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p2p/CMakeFiles/atlarge_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atlarge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
