file(REMOVE_RECURSE
  "CMakeFiles/graphalytics_run.dir/graphalytics_run.cpp.o"
  "CMakeFiles/graphalytics_run.dir/graphalytics_run.cpp.o.d"
  "graphalytics_run"
  "graphalytics_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphalytics_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
