# Empty dependencies file for graphalytics_run.
# This may be replaced when dependencies are built.
