# Empty compiler generated dependencies file for mmog_operations.
# This may be replaced when dependencies are built.
