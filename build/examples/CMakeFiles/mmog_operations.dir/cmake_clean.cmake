file(REMOVE_RECURSE
  "CMakeFiles/mmog_operations.dir/mmog_operations.cpp.o"
  "CMakeFiles/mmog_operations.dir/mmog_operations.cpp.o.d"
  "mmog_operations"
  "mmog_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmog_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
