
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/serverless_pipeline.cpp" "examples/CMakeFiles/serverless_pipeline.dir/serverless_pipeline.cpp.o" "gcc" "examples/CMakeFiles/serverless_pipeline.dir/serverless_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serverless/CMakeFiles/atlarge_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/atlarge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atlarge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/atlarge_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
