file(REMOVE_RECURSE
  "CMakeFiles/atlarge_cluster.dir/cost.cpp.o"
  "CMakeFiles/atlarge_cluster.dir/cost.cpp.o.d"
  "CMakeFiles/atlarge_cluster.dir/machine.cpp.o"
  "CMakeFiles/atlarge_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/atlarge_cluster.dir/refarch.cpp.o"
  "CMakeFiles/atlarge_cluster.dir/refarch.cpp.o.d"
  "libatlarge_cluster.a"
  "libatlarge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
