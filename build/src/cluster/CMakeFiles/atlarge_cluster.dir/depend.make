# Empty dependencies file for atlarge_cluster.
# This may be replaced when dependencies are built.
