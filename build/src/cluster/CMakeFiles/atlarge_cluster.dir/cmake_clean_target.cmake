file(REMOVE_RECURSE
  "libatlarge_cluster.a"
)
