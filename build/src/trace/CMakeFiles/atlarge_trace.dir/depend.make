# Empty dependencies file for atlarge_trace.
# This may be replaced when dependencies are built.
