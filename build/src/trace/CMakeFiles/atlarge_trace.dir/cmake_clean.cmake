file(REMOVE_RECURSE
  "CMakeFiles/atlarge_trace.dir/archive.cpp.o"
  "CMakeFiles/atlarge_trace.dir/archive.cpp.o.d"
  "CMakeFiles/atlarge_trace.dir/record.cpp.o"
  "CMakeFiles/atlarge_trace.dir/record.cpp.o.d"
  "libatlarge_trace.a"
  "libatlarge_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
