file(REMOVE_RECURSE
  "libatlarge_trace.a"
)
