file(REMOVE_RECURSE
  "CMakeFiles/atlarge_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/atlarge_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/atlarge_stats.dir/correlation.cpp.o"
  "CMakeFiles/atlarge_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/atlarge_stats.dir/descriptive.cpp.o"
  "CMakeFiles/atlarge_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/atlarge_stats.dir/distributions.cpp.o"
  "CMakeFiles/atlarge_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/atlarge_stats.dir/rng.cpp.o"
  "CMakeFiles/atlarge_stats.dir/rng.cpp.o.d"
  "CMakeFiles/atlarge_stats.dir/violin.cpp.o"
  "CMakeFiles/atlarge_stats.dir/violin.cpp.o.d"
  "libatlarge_stats.a"
  "libatlarge_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
