# Empty dependencies file for atlarge_stats.
# This may be replaced when dependencies are built.
