file(REMOVE_RECURSE
  "libatlarge_stats.a"
)
