file(REMOVE_RECURSE
  "libatlarge_serverless.a"
)
