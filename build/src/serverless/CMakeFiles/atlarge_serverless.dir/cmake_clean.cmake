file(REMOVE_RECURSE
  "CMakeFiles/atlarge_serverless.dir/platform.cpp.o"
  "CMakeFiles/atlarge_serverless.dir/platform.cpp.o.d"
  "CMakeFiles/atlarge_serverless.dir/workflow_engine.cpp.o"
  "CMakeFiles/atlarge_serverless.dir/workflow_engine.cpp.o.d"
  "libatlarge_serverless.a"
  "libatlarge_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
