# Empty dependencies file for atlarge_serverless.
# This may be replaced when dependencies are built.
