file(REMOVE_RECURSE
  "libatlarge_design.a"
)
