
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/bdc.cpp" "src/design/CMakeFiles/atlarge_design.dir/bdc.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/bdc.cpp.o.d"
  "/root/repo/src/design/bibliometrics.cpp" "src/design/CMakeFiles/atlarge_design.dir/bibliometrics.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/bibliometrics.cpp.o.d"
  "/root/repo/src/design/catalog.cpp" "src/design/CMakeFiles/atlarge_design.dir/catalog.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/catalog.cpp.o.d"
  "/root/repo/src/design/design_space.cpp" "src/design/CMakeFiles/atlarge_design.dir/design_space.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/design_space.cpp.o.d"
  "/root/repo/src/design/exploration.cpp" "src/design/CMakeFiles/atlarge_design.dir/exploration.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/exploration.cpp.o.d"
  "/root/repo/src/design/memex.cpp" "src/design/CMakeFiles/atlarge_design.dir/memex.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/memex.cpp.o.d"
  "/root/repo/src/design/review.cpp" "src/design/CMakeFiles/atlarge_design.dir/review.cpp.o" "gcc" "src/design/CMakeFiles/atlarge_design.dir/review.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
