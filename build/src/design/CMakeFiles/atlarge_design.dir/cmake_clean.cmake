file(REMOVE_RECURSE
  "CMakeFiles/atlarge_design.dir/bdc.cpp.o"
  "CMakeFiles/atlarge_design.dir/bdc.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/bibliometrics.cpp.o"
  "CMakeFiles/atlarge_design.dir/bibliometrics.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/catalog.cpp.o"
  "CMakeFiles/atlarge_design.dir/catalog.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/design_space.cpp.o"
  "CMakeFiles/atlarge_design.dir/design_space.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/exploration.cpp.o"
  "CMakeFiles/atlarge_design.dir/exploration.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/memex.cpp.o"
  "CMakeFiles/atlarge_design.dir/memex.cpp.o.d"
  "CMakeFiles/atlarge_design.dir/review.cpp.o"
  "CMakeFiles/atlarge_design.dir/review.cpp.o.d"
  "libatlarge_design.a"
  "libatlarge_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
