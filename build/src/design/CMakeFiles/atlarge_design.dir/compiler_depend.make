# Empty compiler generated dependencies file for atlarge_design.
# This may be replaced when dependencies are built.
