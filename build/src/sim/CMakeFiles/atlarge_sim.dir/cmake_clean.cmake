file(REMOVE_RECURSE
  "CMakeFiles/atlarge_sim.dir/resource.cpp.o"
  "CMakeFiles/atlarge_sim.dir/resource.cpp.o.d"
  "CMakeFiles/atlarge_sim.dir/sampler.cpp.o"
  "CMakeFiles/atlarge_sim.dir/sampler.cpp.o.d"
  "CMakeFiles/atlarge_sim.dir/simulation.cpp.o"
  "CMakeFiles/atlarge_sim.dir/simulation.cpp.o.d"
  "libatlarge_sim.a"
  "libatlarge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
