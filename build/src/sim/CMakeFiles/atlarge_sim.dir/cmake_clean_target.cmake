file(REMOVE_RECURSE
  "libatlarge_sim.a"
)
