# Empty compiler generated dependencies file for atlarge_sim.
# This may be replaced when dependencies are built.
