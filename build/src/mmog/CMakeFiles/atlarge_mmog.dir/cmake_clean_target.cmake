file(REMOVE_RECURSE
  "libatlarge_mmog.a"
)
