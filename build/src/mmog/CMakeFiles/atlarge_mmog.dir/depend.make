# Empty dependencies file for atlarge_mmog.
# This may be replaced when dependencies are built.
