file(REMOVE_RECURSE
  "CMakeFiles/atlarge_mmog.dir/analytics.cpp.o"
  "CMakeFiles/atlarge_mmog.dir/analytics.cpp.o.d"
  "CMakeFiles/atlarge_mmog.dir/interest.cpp.o"
  "CMakeFiles/atlarge_mmog.dir/interest.cpp.o.d"
  "CMakeFiles/atlarge_mmog.dir/provisioning.cpp.o"
  "CMakeFiles/atlarge_mmog.dir/provisioning.cpp.o.d"
  "CMakeFiles/atlarge_mmog.dir/workload.cpp.o"
  "CMakeFiles/atlarge_mmog.dir/workload.cpp.o.d"
  "libatlarge_mmog.a"
  "libatlarge_mmog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_mmog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
