file(REMOVE_RECURSE
  "CMakeFiles/atlarge_p2p.dir/ecosystem.cpp.o"
  "CMakeFiles/atlarge_p2p.dir/ecosystem.cpp.o.d"
  "CMakeFiles/atlarge_p2p.dir/flashcrowd.cpp.o"
  "CMakeFiles/atlarge_p2p.dir/flashcrowd.cpp.o.d"
  "CMakeFiles/atlarge_p2p.dir/monitor.cpp.o"
  "CMakeFiles/atlarge_p2p.dir/monitor.cpp.o.d"
  "CMakeFiles/atlarge_p2p.dir/swarm.cpp.o"
  "CMakeFiles/atlarge_p2p.dir/swarm.cpp.o.d"
  "CMakeFiles/atlarge_p2p.dir/twofast.cpp.o"
  "CMakeFiles/atlarge_p2p.dir/twofast.cpp.o.d"
  "libatlarge_p2p.a"
  "libatlarge_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
