# Empty compiler generated dependencies file for atlarge_p2p.
# This may be replaced when dependencies are built.
