file(REMOVE_RECURSE
  "libatlarge_p2p.a"
)
