
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/ecosystem.cpp" "src/p2p/CMakeFiles/atlarge_p2p.dir/ecosystem.cpp.o" "gcc" "src/p2p/CMakeFiles/atlarge_p2p.dir/ecosystem.cpp.o.d"
  "/root/repo/src/p2p/flashcrowd.cpp" "src/p2p/CMakeFiles/atlarge_p2p.dir/flashcrowd.cpp.o" "gcc" "src/p2p/CMakeFiles/atlarge_p2p.dir/flashcrowd.cpp.o.d"
  "/root/repo/src/p2p/monitor.cpp" "src/p2p/CMakeFiles/atlarge_p2p.dir/monitor.cpp.o" "gcc" "src/p2p/CMakeFiles/atlarge_p2p.dir/monitor.cpp.o.d"
  "/root/repo/src/p2p/swarm.cpp" "src/p2p/CMakeFiles/atlarge_p2p.dir/swarm.cpp.o" "gcc" "src/p2p/CMakeFiles/atlarge_p2p.dir/swarm.cpp.o.d"
  "/root/repo/src/p2p/twofast.cpp" "src/p2p/CMakeFiles/atlarge_p2p.dir/twofast.cpp.o" "gcc" "src/p2p/CMakeFiles/atlarge_p2p.dir/twofast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/atlarge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
