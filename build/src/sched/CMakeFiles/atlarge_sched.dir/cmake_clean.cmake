file(REMOVE_RECURSE
  "CMakeFiles/atlarge_sched.dir/policies.cpp.o"
  "CMakeFiles/atlarge_sched.dir/policies.cpp.o.d"
  "CMakeFiles/atlarge_sched.dir/portfolio.cpp.o"
  "CMakeFiles/atlarge_sched.dir/portfolio.cpp.o.d"
  "CMakeFiles/atlarge_sched.dir/simulator.cpp.o"
  "CMakeFiles/atlarge_sched.dir/simulator.cpp.o.d"
  "libatlarge_sched.a"
  "libatlarge_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
