# Empty dependencies file for atlarge_sched.
# This may be replaced when dependencies are built.
