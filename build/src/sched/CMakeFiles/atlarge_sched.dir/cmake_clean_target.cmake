file(REMOVE_RECURSE
  "libatlarge_sched.a"
)
