# Empty compiler generated dependencies file for atlarge_autoscale.
# This may be replaced when dependencies are built.
