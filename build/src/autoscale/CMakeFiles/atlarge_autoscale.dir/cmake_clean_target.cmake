file(REMOVE_RECURSE
  "libatlarge_autoscale.a"
)
