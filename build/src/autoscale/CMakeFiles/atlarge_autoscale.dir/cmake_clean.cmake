file(REMOVE_RECURSE
  "CMakeFiles/atlarge_autoscale.dir/autoscalers.cpp.o"
  "CMakeFiles/atlarge_autoscale.dir/autoscalers.cpp.o.d"
  "CMakeFiles/atlarge_autoscale.dir/elastic_sim.cpp.o"
  "CMakeFiles/atlarge_autoscale.dir/elastic_sim.cpp.o.d"
  "CMakeFiles/atlarge_autoscale.dir/metrics.cpp.o"
  "CMakeFiles/atlarge_autoscale.dir/metrics.cpp.o.d"
  "CMakeFiles/atlarge_autoscale.dir/ranking.cpp.o"
  "CMakeFiles/atlarge_autoscale.dir/ranking.cpp.o.d"
  "libatlarge_autoscale.a"
  "libatlarge_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
