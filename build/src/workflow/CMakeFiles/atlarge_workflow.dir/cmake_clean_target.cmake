file(REMOVE_RECURSE
  "libatlarge_workflow.a"
)
