
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/generators.cpp" "src/workflow/CMakeFiles/atlarge_workflow.dir/generators.cpp.o" "gcc" "src/workflow/CMakeFiles/atlarge_workflow.dir/generators.cpp.o.d"
  "/root/repo/src/workflow/job.cpp" "src/workflow/CMakeFiles/atlarge_workflow.dir/job.cpp.o" "gcc" "src/workflow/CMakeFiles/atlarge_workflow.dir/job.cpp.o.d"
  "/root/repo/src/workflow/vicissitude.cpp" "src/workflow/CMakeFiles/atlarge_workflow.dir/vicissitude.cpp.o" "gcc" "src/workflow/CMakeFiles/atlarge_workflow.dir/vicissitude.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/atlarge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
