file(REMOVE_RECURSE
  "CMakeFiles/atlarge_workflow.dir/generators.cpp.o"
  "CMakeFiles/atlarge_workflow.dir/generators.cpp.o.d"
  "CMakeFiles/atlarge_workflow.dir/job.cpp.o"
  "CMakeFiles/atlarge_workflow.dir/job.cpp.o.d"
  "CMakeFiles/atlarge_workflow.dir/vicissitude.cpp.o"
  "CMakeFiles/atlarge_workflow.dir/vicissitude.cpp.o.d"
  "libatlarge_workflow.a"
  "libatlarge_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
