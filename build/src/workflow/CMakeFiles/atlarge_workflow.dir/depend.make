# Empty dependencies file for atlarge_workflow.
# This may be replaced when dependencies are built.
