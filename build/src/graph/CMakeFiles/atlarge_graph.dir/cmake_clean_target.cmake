file(REMOVE_RECURSE
  "libatlarge_graph.a"
)
