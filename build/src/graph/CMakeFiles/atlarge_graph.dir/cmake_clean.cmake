file(REMOVE_RECURSE
  "CMakeFiles/atlarge_graph.dir/algorithms.cpp.o"
  "CMakeFiles/atlarge_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/atlarge_graph.dir/granula.cpp.o"
  "CMakeFiles/atlarge_graph.dir/granula.cpp.o.d"
  "CMakeFiles/atlarge_graph.dir/graph.cpp.o"
  "CMakeFiles/atlarge_graph.dir/graph.cpp.o.d"
  "CMakeFiles/atlarge_graph.dir/pad.cpp.o"
  "CMakeFiles/atlarge_graph.dir/pad.cpp.o.d"
  "libatlarge_graph.a"
  "libatlarge_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlarge_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
