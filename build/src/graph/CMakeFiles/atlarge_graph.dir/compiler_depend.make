# Empty compiler generated dependencies file for atlarge_graph.
# This may be replaced when dependencies are built.
