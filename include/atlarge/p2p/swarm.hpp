#pragma once
// Single-swarm BitTorrent simulator (paper Section 6.1).
//
// The model is fluid/flow-level, the standard choice for swarm-scale P2P
// studies: rather than simulating piece exchange packet-by-packet, each
// epoch distributes the swarm's aggregate upload capacity across leechers.
// The model captures exactly the phenomena the paper's studies report:
//  * upload/download asymmetry (ADSL, study [62]): swarms become
//    upload-bound, so download pipes idle;
//  * seed/leecher dynamics: more seeds -> faster downloads;
//  * flashcrowds (study [66]): arrival surges depress per-peer rates;
//  * protocol efficiency: a piece-availability factor reduces usable
//    upload when the swarm is young (few distinct pieces available).

#include <cstdint>
#include <vector>

#include "atlarge/obs/digest.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
}

namespace atlarge::p2p {

struct SwarmConfig {
  double content_mb = 700.0;         // file size
  double seed_upload_mbps = 8.0;     // origin seed capacity
  double peer_upload_mbps = 1.0;     // leecher upload (ADSL: 1/8 of down)
  double peer_download_mbps = 8.0;   // leecher download cap
  double efficiency = 0.9;           // protocol efficiency eta in (0, 1]
  double seed_time_mean = 1800.0;    // post-completion seeding, exp-dist.
  double abort_rate = 0.0;           // per-second probability of abandoning
  int initial_seeds = 1;
  double epoch = 10.0;               // fluid integration step, s
  std::uint64_t seed = 1;
  /// Optional instrumentation plane (not owned, may be null): wraps the
  /// run in a "p2p.swarm" span, tracks seed/leecher census gauges, counts
  /// finished/aborted peers, and records a download-time histogram plus a
  /// "p2p.download_time" registry digest. (The fluid model is not a DES,
  /// so no kernel observer or sampling hook is attached; instead
  /// Observability::sample_now is driven manually at each epoch boundary,
  /// so TimeSeries and SloMonitor planes still work.)
  obs::Observability* obs = nullptr;
  /// Optional fault plan (not owned, may be null). The swarm interprets
  /// kChurnSpike: at the event's time, floor(magnitude x leechers) of the
  /// newest leechers abandon the swarm at once (a correlated churn burst,
  /// e.g. an ISP outage). The fluid model has no DES kernel, so the plan
  /// is walked directly at epoch boundaries — the documented exception to
  /// the fault-hook route. A null or empty plan keeps behaviour
  /// byte-identical.
  const fault::FaultPlan* faults = nullptr;
};

/// Per-peer ground truth.
struct PeerOutcome {
  double arrival = 0.0;
  double completion = -1.0;  // < 0: never finished (aborted or cut off)
  double departure = -1.0;   // when it left the swarm (< 0: still present)
  bool finished = false;

  double download_time() const noexcept { return completion - arrival; }
};

/// One epoch snapshot of the swarm (the *true* state a perfect monitor
/// would see; biased monitors subsample this series).
struct SwarmSample {
  double time = 0.0;
  std::uint32_t seeds = 0;
  std::uint32_t leechers = 0;
  double per_leecher_mbps = 0.0;  // current fluid download rate
};

struct SwarmResult {
  std::vector<PeerOutcome> peers;
  std::vector<SwarmSample> series;
  double mean_download_time = 0.0;    // finished peers only
  double median_download_time = 0.0;
  std::size_t finished = 0;
  std::size_t aborted = 0;
  std::uint32_t peak_swarm_size = 0;
  /// Leechers expelled by churn-spike fault events (0 without a plan).
  std::size_t churned = 0;
  /// Mergeable percentile digest over finished-peer download times (same
  /// population as the exact mean/median fields above).
  obs::Digest download_digest;
};

/// Simulates one swarm: peers arrive at the given times (nondecreasing),
/// download under the fluid model, seed, and depart. Runs until `horizon`
/// or swarm drain, whichever is first. Deterministic for fixed config.
SwarmResult simulate_swarm(const SwarmConfig& config,
                           const std::vector<double>& arrivals,
                           double horizon);

/// Pull-source of peer arrival times in nondecreasing order — the seam
/// trace-driven replays (trace::catalog) plug into.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  /// Fills `out` with the next arrival time; returns false at end.
  virtual bool next(double& out) = 0;
};

/// Trace-driven variant. Note the honest caveat: the fluid model keeps
/// per-peer state for every arrival (peers are the *output*), so unlike
/// the serverless streaming path this adapter materializes the arrival
/// vector — memory is O(peers) either way; what stays bounded is the
/// upstream trace reader (one chunk resident).
SwarmResult simulate_swarm(const SwarmConfig& config, ArrivalSource& source,
                           double horizon);

/// Poisson arrival times with the given rate over [0, horizon].
std::vector<double> poisson_arrivals(double rate, double horizon,
                                     atlarge::stats::Rng& rng);

/// Flashcrowd arrival times: base Poisson plus a surge of
/// `surge_peers` extra arrivals spread exponentially after `surge_start`
/// with mean gap `surge_mean_gap` — the empirical flashcrowd shape of the
/// paper's BitTorrent studies (sharp onset, exponential decay).
std::vector<double> flashcrowd_arrivals(double base_rate, double horizon,
                                        std::size_t surge_peers,
                                        double surge_start,
                                        double surge_mean_gap,
                                        atlarge::stats::Rng& rng);

}  // namespace atlarge::p2p
