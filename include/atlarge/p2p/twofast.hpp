#pragma once
// 2fast collaborative downloads (paper study [68]).
//
// In ADSL-asymmetric swarms, downloads are upload-bound: a solo leecher's
// rate is the swarm fair share r(t), far below its download capacity d.
// 2fast forms a collaboration group: helpers earn additional fair shares
// with their own connections and relay the pieces to the collector, whose
// rate becomes min(d, k * r(t)) for a group of size k. The model operates
// on the fair-share series produced by simulate_swarm, which is exactly
// the quantity the original paper's analysis is phrased in.

#include <cstddef>
#include <vector>

#include "atlarge/p2p/swarm.hpp"

namespace atlarge::p2p {

struct TwoFastOutcome {
  double solo_download_time = 0.0;       // s; < 0 if never completed
  double collector_download_time = 0.0;  // s; < 0 if never completed
  double speedup = 0.0;                  // solo / collector
};

/// Computes solo vs 2fast-collector download time for a peer joining the
/// swarm at `join_time`, by integrating the swarm's fair-share rate series.
/// `group_size` >= 1 (1 reproduces the solo case exactly).
TwoFastOutcome evaluate_two_fast(const SwarmConfig& config,
                                 const std::vector<SwarmSample>& series,
                                 double join_time, std::size_t group_size);

}  // namespace atlarge::p2p
