#pragma once
// Ecosystem monitors and sampling-bias analysis (paper Section 6.1).
//
// BTWorld and MultiProbe observed the global BitTorrent ecosystem by
// scraping trackers. The paper's meta-analysis study [65] showed such
// instruments introduce *systematic bias*; this module reproduces the
// three bias sources and quantifies each against the simulated ground
// truth:
//  1. coverage bias  — only a fraction of trackers is scraped;
//  2. duplication bias — a swarm announced on several scraped trackers is
//     counted once per tracker unless the monitor deduplicates;
//  3. spam bias — spam trackers report fabricated peers that survive
//     deduplication (fake identities are unique).

#include <cstdint>
#include <vector>

#include "atlarge/p2p/ecosystem.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::p2p {

struct MonitorConfig {
  double period = 500.0;        // scrape period, s
  double tracker_coverage = 1.0;  // fraction of trackers scraped
  bool deduplicate = false;     // peer-identity dedup across trackers
  std::uint64_t seed = 99;
};

struct MonitorSample {
  double time = 0.0;
  double observed_peers = 0.0;
  double true_peers = 0.0;

  /// Relative bias: (observed - true) / true; 0 when truth is 0.
  double bias() const noexcept {
    return true_peers > 0.0 ? (observed_peers - true_peers) / true_peers
                            : 0.0;
  }
};

struct MonitorReport {
  std::vector<MonitorSample> samples;
  std::vector<std::uint32_t> scraped_trackers;
  double mean_bias = 0.0;       // average relative bias over samples
  double mean_abs_bias = 0.0;
};

/// Scrapes the simulated ecosystem with the given monitor configuration
/// and returns the observed time series next to ground truth.
MonitorReport scrape(const EcosystemResult& eco, const EcosystemConfig& cfg,
                     const MonitorConfig& monitor);

}  // namespace atlarge::p2p
