#pragma once
// Flashcrowd identification and characterization (paper study [66],
// "Identifying, analyzing, and modeling flashcrowds in BitTorrent").
//
// A flashcrowd is a sustained surge of the leecher population far above
// the swarm's *long-term* baseline. The detector follows the published
// method's structure: compute a robust baseline (the median of the full
// history so far — a trailing window would chase the surge's own ramp),
// flag samples whose level exceeds `threshold_factor` x baseline and an
// absolute minimum, and merge adjacent flagged samples into episodes.
// The module also quantifies the *negative phenomenon* the study
// reports: per-peer download rates sag during flashcrowds.

#include <cstddef>
#include <vector>

#include "atlarge/p2p/swarm.hpp"

namespace atlarge::p2p {

struct FlashcrowdConfig {
  std::size_t min_history = 30;   // samples before detection may start
  double threshold_factor = 3.0;  // surge = level > factor * baseline
  double min_level = 20.0;        // absolute floor, in leechers
  std::size_t min_duration = 3;   // samples an episode must persist
};

struct FlashcrowdEpisode {
  double start = 0.0;
  double end = 0.0;
  double peak_leechers = 0.0;
  double baseline_leechers = 0.0;

  double magnitude() const noexcept {
    return baseline_leechers > 0.0 ? peak_leechers / baseline_leechers : 0.0;
  }
  double duration() const noexcept { return end - start; }
};

/// Detects flashcrowd episodes in a swarm's leecher time series.
std::vector<FlashcrowdEpisode> detect_flashcrowds(
    const std::vector<SwarmSample>& series, const FlashcrowdConfig& config);

/// Mean per-leecher download rate inside vs outside the given episodes:
/// {inside, outside} in Mbps. Quantifies flashcrowd-induced slowdown.
std::pair<double, double> rate_inside_outside(
    const std::vector<SwarmSample>& series,
    const std::vector<FlashcrowdEpisode>& episodes);

}  // namespace atlarge::p2p
