#pragma once
// Multi-swarm BitTorrent ecosystem (paper Section 6.1, studies [61]-[63]).
//
// A content catalog with Zipf popularity feeds many swarms; titles may be
// *aliased* (the same media in several formats/releases), splitting their
// swarm population — the phenomenon discovered by the paper's 2005
// analytics study [61]. Swarms are announced on multiple trackers, some of
// which are *spam trackers* reporting fabricated peers — discovered by the
// BTWorld study [63]. The ecosystem ground truth feeds the biased monitors
// of monitor.hpp.

#include <cstdint>
#include <vector>

#include "atlarge/p2p/swarm.hpp"

namespace atlarge::p2p {

struct ContentTitle {
  std::uint32_t id = 0;
  double popularity = 0.0;   // expected total peers over the horizon
  std::uint32_t aliases = 1; // #swarm-splitting copies of this title
};

struct EcosystemConfig {
  std::size_t titles = 50;
  double zipf_exponent = 1.1;
  double total_peers = 5'000.0;   // expected peers across all titles
  double aliased_fraction = 0.3;  // titles that exist in multiple formats
  std::uint32_t alias_copies = 3; // aliases per aliased title
  std::size_t trackers = 8;
  double spam_tracker_fraction = 0.25;
  double spam_inflation = 4.0;    // fake peers per real peer on spam trackers
  double horizon = 40'000.0;
  SwarmConfig swarm;              // per-swarm physics
  std::uint64_t seed = 1;
};

/// One swarm instance (an alias of a title) and its simulation output.
struct SwarmInstance {
  std::uint32_t title = 0;
  std::uint32_t alias = 0;
  std::vector<std::uint32_t> trackers;  // tracker ids announcing this swarm
  SwarmResult result;
};

struct EcosystemResult {
  std::vector<ContentTitle> catalog;
  std::vector<SwarmInstance> swarms;
  std::vector<bool> tracker_is_spam;
  double horizon = 0.0;

  /// True number of concurrently connected peers at time t.
  double true_peers_at(double t) const;
  /// Largest swarm (peak concurrent peers) in the ecosystem.
  std::uint32_t giant_swarm_peak() const;
  /// Mean download time over swarms with >= min_finished completions,
  /// split by title aliasing: {aliased titles, non-aliased titles}.
  std::pair<double, double> aliased_vs_plain_download_time() const;
};

EcosystemResult simulate_ecosystem(const EcosystemConfig& config);

}  // namespace atlarge::p2p
