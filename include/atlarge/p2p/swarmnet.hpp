#pragma once
// Sharded P2P swarm network: many fluid-model swarms (swarm.hpp) plus a
// tracker, run as logical processes of a parallel DES (sim/sharded.hpp).
// This is the D-P2P-Sim+ lesson from PAPERS.md applied to the BTWorld
// ecosystem: one swarm engine stops scaling, a *network* of swarm engines
// exchanging tracker traffic scales with cores.
//
// Model: each swarm integrates the fluid download model on its own epoch
// clock (identical physics to simulate_swarm: availability-limited upload
// pooling). Every announce interval it reports its census to the tracker;
// the tracker aggregates the ecosystem view and — when cross_seed is on —
// redistributes idle seeding capacity to under-seeded swarms (the 2fast
// effect at ecosystem scale). The announce interval is the conservative
// lookahead: announcements and grants always land one interval ahead.
//
// Determinism across shard layouts rests on strict-past reads: an epoch
// at time T integrates only peers with arrival < T and grants received
// strictly before T; a tracker round at time G reads only announcements
// that arrived strictly before G. Tied-timestamp delivery order therefore
// cannot change any result, and every aggregate is folded in swarm-id
// order — runs are byte-identical across shards x threads (property
// tests pin this, including the download digest).
//
// Faults: kChurnSpike (target = swarm) kicks a magnitude fraction of the
// swarm's leechers via independent per-peer hash draws; per-LP injectors
// attach before any peer is scheduled, so spikes win tied timestamps on
// every layout (same rule as mmog::simulate_zones).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atlarge/obs/digest.hpp"
#include "atlarge/sim/sharded.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
}

namespace atlarge::p2p {

/// One peer joining a swarm (plain struct — the trace layer sits above
/// p2p, so scenario replays adapt their events to this).
struct PeerArrival {
  double time = 0.0;
  std::uint64_t peer = 0;  // unique id; also the cross-LP ordering key
  std::uint32_t swarm = 0;
};

struct SwarmNetConfig {
  std::size_t swarms = 4;
  // Fluid physics, field-for-field the semantics of SwarmConfig.
  double content_mb = 200.0;
  double seed_upload_mbps = 8.0;
  double peer_upload_mbps = 1.0;
  double peer_download_mbps = 8.0;
  double efficiency = 0.9;
  double seed_time_mean = 1800.0;
  double abort_rate = 0.0;
  int initial_seeds = 1;
  double epoch = 10.0;  // fluid integration step, s
  /// Tracker announce period, s — the conservative lookahead. Rounded to
  /// the nearest positive multiple of `epoch`.
  double announce_interval = 60.0;
  /// Tracker redistribution of idle seed capacity (drained swarms donate
  /// their seeds' upload to under-seeded ones).
  bool cross_seed = true;
  double horizon = 20'000.0;
  std::uint64_t seed = 1;
  /// Sharding knob; defaults to one LP on the caller thread. The engine
  /// derives `shard.lookahead` from the announce interval.
  sim::ShardOptions shard;
  /// Optional churn plan (kChurnSpike, target = swarm). Not owned.
  const fault::FaultPlan* faults = nullptr;
  /// Optional instrumentation plane (not owned): "p2p.swarmnet" span,
  /// result counters, per-LP spans merged in LP-id order.
  obs::Observability* obs = nullptr;
};

struct SwarmNetResult {
  std::uint64_t finished = 0;
  std::uint64_t aborted = 0;
  std::uint64_t churned = 0;       // kicked by churn spikes
  std::uint64_t announcements = 0; // swarm -> tracker reports
  std::uint64_t grants = 0;        // tracker -> swarm capacity grants
  std::uint64_t residual_leechers = 0;  // still downloading at horizon
  std::uint64_t residual_seeds = 0;     // still seeding at horizon
  std::vector<std::uint32_t> peak_swarm;  // per swarm, incl. origin seeds
  /// Download times of finished peers; byte-identical across layouts
  /// (per-swarm digests merged in swarm-id order).
  obs::Digest download_digest;
  /// Exact fixed-point total of download times (microseconds).
  std::uint64_t download_seconds_x1e6 = 0;
  std::uint64_t windows = 0;   // sharded-run diagnostic, layout-dependent
  std::uint64_t messages = 0;  // cross-LP traffic carried by mailboxes

  double mean_download_time() const noexcept {
    return finished == 0 ? 0.0
                         : static_cast<double>(download_seconds_x1e6) / 1e6 /
                               static_cast<double>(finished);
  }
};

/// Deterministic flashcrowd entry trace across `swarms` swarms: Poisson
/// base arrivals plus an exponential-decay surge into swarm 0 (the
/// paper's flashcrowd shape), peers assigned round-robin elsewhere.
std::vector<PeerArrival> flashcrowd_net_arrivals(std::size_t peers,
                                                 std::size_t swarms,
                                                 double horizon,
                                                 double surge_start,
                                                 double surge_fraction,
                                                 std::uint64_t seed);

/// Runs the swarm network to config.horizon. Results are invariant
/// across config.shard.{shards,threads}.
SwarmNetResult simulate_swarm_network(const SwarmNetConfig& config,
                                      const std::vector<PeerArrival>& arrivals);

}  // namespace atlarge::p2p
