#pragma once
// The datacenter reference architecture of the paper's Figure 9.
//
// Figure 9 (bottom) structures the datacenter ecosystem into five core
// layers — (5) Front-end, (4) Back-end, (3) Resources, (2) Operations
// Service, (1) Infrastructure — plus an orthogonal (6) DevOps layer, with
// sub-layering inside layers 4 and 5. This module makes the architecture a
// queryable object: a registry of components with layer assignments, plus
// ecosystem mappings (e.g. the MapReduce stack) validated for completeness
// ("covers the minimum set of layers necessary for execution", as the
// figure's caption requires).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atlarge::cluster {

/// Layers of the 2016+ reference architecture (Figure 9, bottom). Numeric
/// values match the paper's numbering; kDevOps is orthogonal.
enum class Layer : std::uint8_t {
  kInfrastructure = 1,     // physical/virtual resource management
  kOperationsService = 2,  // distributed-OS-style basic services
  kResources = 3,          // operator-side task/resource/service mgmt
  kBackEnd = 4,            // application-side task/resource/service mgmt
  kFrontEnd = 5,           // application-level functionality
  kDevOps = 6,             // monitoring, logging, benchmarking (orthogonal)
};

std::string to_string(Layer layer);

/// A named component with its layer and (for layers 4-5) sub-layer, e.g.
/// {"Hadoop", kBackEnd, "execution-engine"}.
struct Component {
  std::string name;
  Layer layer = Layer::kInfrastructure;
  std::string sublayer;  // empty outside layers 4-5
};

/// An ecosystem mapping: a stack of component names claimed to form a
/// working ecosystem (the highlighted components of Figure 9).
struct EcosystemMapping {
  std::string name;
  std::vector<std::string> components;
};

/// Result of validating a mapping against the architecture.
struct MappingReport {
  bool all_components_known = false;
  std::vector<std::string> unknown;     // names not in the registry
  std::vector<Layer> covered;           // distinct layers covered, ascending
  /// True when the mapping covers the minimum executable set: at least
  /// Infrastructure, Operations Service or Resources, Back-End, and
  /// Front-End (an application entry point).
  bool executable = false;
};

class ReferenceArchitecture {
 public:
  /// Registers a component; returns false if the name is already taken.
  bool register_component(Component c);

  std::optional<Component> find(const std::string& name) const;
  std::vector<Component> in_layer(Layer layer) const;
  std::size_t size() const noexcept { return components_.size(); }

  MappingReport validate(const EcosystemMapping& mapping) const;

  const std::vector<Component>& components() const noexcept {
    return components_;
  }

 private:
  std::vector<Component> components_;
};

/// The architecture pre-populated with the components named in the paper
/// (Pig, Hive, Hadoop, HDFS, YARN, Mesos, Zookeeper, MemEFS, Pocket,
/// Crail, FlashNet, Graphalytics, Granula, ...).
ReferenceArchitecture paper_reference_architecture();

/// The MapReduce big-data ecosystem mapping highlighted in Figure 9.
EcosystemMapping mapreduce_ecosystem();

/// A serverless (FaaS) ecosystem mapping (Kubernetes-Fission style,
/// Section 6.4).
EcosystemMapping serverless_ecosystem();

/// The 2011-2016 big-data architecture (Figure 9, top) had only four
/// conceptual layers; this returns the layer names in top-down order, used
/// by the bench to contrast the two generations.
std::vector<std::string> legacy_bigdata_layers();

}  // namespace atlarge::cluster
