#pragma once
// Cloud cost models. Section 6.7 of the paper extends the autoscaling
// analysis with "an analysis of cost metrics based on several real-world
// cost models"; Table 9 row [116] studies on-demand vs reserved instances.
// This module provides both: hourly on-demand billing with configurable
// rounding, and reserved capacity with an upfront discount.

#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::cluster {

/// Billing granularity for on-demand machines.
enum class Billing {
  kPerSecond,  // pay exactly for use (modern clouds)
  kPerHour,    // round each allocation up to whole hours (EC2-classic)
};

struct CostModel {
  std::string name;
  Billing billing = Billing::kPerHour;
  double on_demand_rate = 1.0;     // $ per machine-hour
  double reserved_rate = 0.6;      // $ per machine-hour, reserved capacity
  double reserved_machines = 0.0;  // machines billed at the reserved rate
                                   // for the whole horizon, used or not

  /// Cost of one on-demand allocation of `seconds` on one machine.
  double on_demand_cost(double seconds) const noexcept;

  /// Total cost: reserved floor over [0, horizon] plus the on-demand cost
  /// of each allocation interval that exceeds the reserved pool. The
  /// caller passes per-allocation durations for on-demand machines only.
  double total_cost(double horizon_seconds,
                    const std::vector<double>& on_demand_allocations)
      const noexcept;
};

/// The three cost models used by the autoscaling bench (per-second,
/// per-hour, and reserved+on-demand hybrid).
std::vector<CostModel> standard_cost_models();

}  // namespace atlarge::cluster
