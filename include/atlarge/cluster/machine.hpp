#pragma once
// Datacenter resource model: machines grouped into clusters, clusters
// grouped into environments. Environments correspond to the "Env" column
// of the paper's Table 9: own cluster (CL), grid (G), public cloud (CD),
// multi-cluster datacenter (MCD), and geo-distributed datacenters (GDC).
//
// Machines expose core slots; task placement and timing live in the
// scheduler module. Clouds additionally support elastic provisioning with
// a provisioning delay and per-hour billing (cost.hpp).

#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::cluster {

using MachineId = std::uint32_t;

/// One machine: `cores` identical cores at relative `speed` (1.0 = the
/// reference core; a task with runtime r takes r/speed seconds here).
struct Machine {
  MachineId id = 0;
  std::uint32_t cores = 1;
  double speed = 1.0;
  std::uint32_t cluster = 0;  // owning cluster index within the environment
};

/// A named group of machines, typically homogeneous.
struct Cluster {
  std::string name;
  std::vector<Machine> machines;

  std::uint32_t total_cores() const noexcept;
};

/// Environment archetypes of Table 9.
enum class EnvironmentType {
  kOwnCluster,       // CL
  kGrid,             // G
  kPublicCloud,      // CD
  kMultiCluster,     // MCD
  kGeoDistributed,   // GDC
};

std::string to_string(EnvironmentType t);

/// A complete execution environment.
struct Environment {
  std::string name;
  EnvironmentType type = EnvironmentType::kOwnCluster;
  std::vector<Cluster> clusters;
  /// Inter-cluster latency in seconds; relevant for kGeoDistributed, where
  /// cross-cluster task dispatch pays this penalty once per task.
  double inter_cluster_latency = 0.0;
  /// For kPublicCloud: seconds from provisioning request to usable machine.
  double provisioning_delay = 0.0;

  std::uint32_t total_cores() const noexcept;
  std::size_t total_machines() const noexcept;
  /// Flat view of all machines with cluster indices filled in.
  std::vector<Machine> all_machines() const;
};

/// Builders for the standard environments used by the benches.
Environment make_homogeneous_cluster(std::string name, std::size_t machines,
                                     std::uint32_t cores_per_machine,
                                     double speed = 1.0);
Environment make_grid(std::string name, std::size_t sites,
                      std::size_t machines_per_site,
                      std::uint32_t cores_per_machine);
Environment make_cloud(std::string name, std::size_t max_machines,
                       std::uint32_t cores_per_machine,
                       double provisioning_delay);
Environment make_multi_cluster(std::string name, std::size_t clusters,
                               std::size_t machines_per_cluster,
                               std::uint32_t cores_per_machine);
Environment make_geo_distributed(std::string name, std::size_t datacenters,
                                 std::size_t machines_per_dc,
                                 std::uint32_t cores_per_machine,
                                 double inter_dc_latency);

}  // namespace atlarge::cluster
