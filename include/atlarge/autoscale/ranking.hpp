#pragma once
// Ranking and grading of autoscalers (paper Section 6.7): the experiments
// designed "two ranking methods to aggregate the results into head-to-head
// comparisons — which policy is the best?", later extended with "a method
// to grade autoscalers, by combining their scores judiciously".
//
// Method 1 (pairwise): each pair of systems is compared metric-by-metric;
// a system wins the pair if it is better on a strict majority of metrics.
// The rank score is the fraction of pairs won.
//
// Method 2 (fractional difference): per metric, a system's penalty is its
// relative distance from the best system on that metric; the rank score is
// the mean penalty (lower is better).
//
// Grading maps both scores onto a 0-10 grade: grade = 10 * (pairwise_score
// weighted with (1 - normalized fractional penalty)).

#include <span>
#include <string>
#include <vector>

namespace atlarge::autoscale {

/// One system's metric vector; all metrics are lower-is-better (callers
/// must pre-negate higher-is-better metrics).
struct SystemScores {
  std::string name;
  std::vector<double> metrics;
};

struct Ranked {
  std::string name;
  double score = 0.0;
};

/// Fraction of head-to-head pairs won, in [0, 1]; higher is better.
/// Sorted descending by score (ties broken by name for determinism).
std::vector<Ranked> rank_pairwise(std::span<const SystemScores> systems);

/// Mean fractional distance from per-metric best; lower is better.
/// Sorted ascending by score.
std::vector<Ranked> rank_fractional(std::span<const SystemScores> systems);

/// Combined 0-10 grade per system, sorted descending.
/// `pairwise_weight` in [0, 1] balances the two methods.
std::vector<Ranked> grade(std::span<const SystemScores> systems,
                          double pairwise_weight = 0.5);

}  // namespace atlarge::autoscale
