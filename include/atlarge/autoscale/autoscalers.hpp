#pragma once
// The autoscaler zoo of the paper's autoscaling experiments [126]-[128]:
// five general autoscalers (React, Adapt, Hist, Reg, ConPaaS) and two
// workflow-aware ones (Plan, Token). Implementations follow the published
// algorithms in spirit; parameters are the defaults used in the ICPE'17
// study unless noted.

#include <cstdint>
#include <deque>
#include <vector>

#include "atlarge/autoscale/autoscaler.hpp"

namespace atlarge::autoscale {

/// React (Chieu et al. 2009): purely reactive — provision exactly the
/// machines the current demand needs.
class ReactAutoscaler final : public Autoscaler {
 public:
  std::string name() const override { return "React"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;
};

/// Adapt (Ali-Eldin et al. 2012): reactive with hysteresis — scales up
/// eagerly, scales down only after `down_patience` consecutive
/// over-provisioned observations, damped by `down_step` machines per
/// decision.
class AdaptAutoscaler final : public Autoscaler {
 public:
  explicit AdaptAutoscaler(int down_patience = 2, std::uint32_t down_step = 2)
      : down_patience_(down_patience), down_step_(down_step) {}
  std::string name() const override { return "Adapt"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;

 private:
  int down_patience_;
  std::uint32_t down_step_;
  int over_streak_ = 0;
};

/// Hist (Urgaonkar et al. 2008): histogram prediction — provisions the
/// `percentile` of the demand observed in a sliding window.
class HistAutoscaler final : public Autoscaler {
 public:
  explicit HistAutoscaler(std::size_t window = 24, double percentile = 0.95)
      : window_(window), percentile_(percentile) {}
  std::string name() const override { return "Hist"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;

 private:
  std::size_t window_;
  double percentile_;
  std::deque<double> history_;
};

/// Reg (Iqbal et al. 2011): linear regression over the recent demand
/// trend, provisioning for the extrapolated next-interval demand.
class RegAutoscaler final : public Autoscaler {
 public:
  explicit RegAutoscaler(std::size_t window = 6) : window_(window) {}
  std::string name() const override { return "Reg"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;

 private:
  std::size_t window_;
  std::deque<std::pair<double, double>> history_;  // (time, demand)
};

/// ConPaaS (Fernandez et al. 2014): provisions for the maximum of current
/// demand and a short-horizon moving-average forecast.
class ConPaasAutoscaler final : public Autoscaler {
 public:
  explicit ConPaasAutoscaler(std::size_t window = 4) : window_(window) {}
  std::string name() const override { return "ConPaaS"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;

 private:
  std::size_t window_;
  std::deque<double> history_;
};

/// Plan (workflow-aware, Ilyushkin et al. 2017): provisions for the level
/// of parallelism reachable within the next interval — current demand plus
/// the cores of tasks whose dependencies are about to clear.
class PlanAutoscaler final : public Autoscaler {
 public:
  std::string name() const override { return "Plan"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;
};

/// Token (workflow-aware): like Plan but discounts the soon-eligible cores
/// by a token fraction, trading responsiveness for stability.
class TokenAutoscaler final : public Autoscaler {
 public:
  explicit TokenAutoscaler(double token_fraction = 0.5)
      : token_fraction_(token_fraction) {}
  std::string name() const override { return "Token"; }
  std::uint32_t target_machines(const Observation& obs) override;
  std::unique_ptr<Autoscaler> clone() const override;

 private:
  double token_fraction_;
};

/// The full zoo in the order the paper's tables list them.
std::vector<std::unique_ptr<Autoscaler>> standard_autoscalers();

}  // namespace atlarge::autoscale
