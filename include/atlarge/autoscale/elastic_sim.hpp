#pragma once
// Elastic cloud simulator: workflows on an autoscaled machine pool.
//
// This is the in-silico arm of the paper's autoscaling experiments [128]:
// a pool of homogeneous machines grows and shrinks under an Autoscaler's
// control (with a provisioning delay on scale-up and drain-on-idle on
// scale-down), while a FIFO task scheduler runs workflow tasks on whatever
// machines exist. The simulator records the supply/demand curves for the
// elasticity metrics, per-job statistics for performance and deadline-SLA
// analysis, and machine rental intervals for the cost models.

#include <cstdint>
#include <vector>

#include "atlarge/autoscale/autoscaler.hpp"
#include "atlarge/autoscale/metrics.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::autoscale {

struct ElasticConfig {
  std::uint32_t cores_per_machine = 4;
  std::uint32_t max_machines = 64;
  std::uint32_t min_machines = 1;
  double provisioning_delay = 60.0;  // s between request and availability
  double interval = 30.0;            // autoscaler decision period, s
  /// Deadline SLA: a job's deadline is submit + sla_factor*critical_path;
  /// <= 0 disables deadline accounting.
  double sla_factor = 4.0;
  /// Optional instrumentation plane (not owned, may be null): attaches the
  /// kernel observer, wraps the run in an "autoscale.run" span with one
  /// "autoscale.tick" span per decision, and records tick/machine-churn
  /// counters plus supply/demand core gauges and an
  /// "autoscale.job_slowdown" registry digest. When the plane carries a
  /// TimeSeries or SloMonitor, its sampling hook is attached to the
  /// kernel.
  obs::Observability* obs = nullptr;
  /// Optional fault plan (not owned, may be null), replayed through the
  /// kernel fault hook. The elastic pool interprets kMachineCrash: the
  /// target machine is lost (its rental ends, its running tasks are
  /// killed and re-queued); the autoscaler heals the capacity loss
  /// through ordinary provisioning. A null or empty plan keeps behaviour
  /// byte-identical.
  const fault::FaultPlan* faults = nullptr;
};

struct ElasticResult {
  std::vector<sched::JobStats> jobs;
  double makespan = 0.0;
  double mean_slowdown = 0.0;
  double median_slowdown = 0.0;
  double mean_response = 0.0;
  std::size_t deadline_violations = 0;
  std::size_t deadline_total = 0;
  /// Supply/demand curves in cores, one point per decision interval.
  std::vector<SupplyDemandPoint> series;
  ElasticityMetrics metrics;
  /// Rental duration of every machine instance ever provisioned, seconds;
  /// feeds cluster::CostModel::total_cost.
  std::vector<double> rentals;
  /// Fault outcomes (all zero with a null/empty plan). A recovery is a
  /// crash victim task successfully restarted on a surviving machine.
  std::size_t faults_injected = 0;
  std::size_t faults_recovered = 0;
  std::size_t tasks_requeued = 0;
  /// Mergeable percentile digest over per-job bounded slowdowns (same
  /// population as the exact mean/median fields above).
  obs::Digest slowdown_digest;
  double deadline_violation_rate() const noexcept {
    return deadline_total == 0
               ? 0.0
               : static_cast<double>(deadline_violations) /
                     static_cast<double>(deadline_total);
  }
};

/// Runs `workload` under `autoscaler` control. Tasks wider than one
/// machine are rejected (std::invalid_argument). Deterministic.
ElasticResult run_elastic(const workflow::Workload& workload,
                          Autoscaler& autoscaler,
                          const ElasticConfig& config = {});

}  // namespace atlarge::autoscale
