#pragma once
// Autoscaler interface (paper Section 6.7).
//
// An autoscaler is "an algorithm used by an autoscaling system to automate
// elasticity efficiently". Every `interval` seconds the elastic simulator
// hands the autoscaler an Observation of demand and supply and asks for a
// target machine count. General autoscalers see only aggregate demand;
// workflow-aware autoscalers (Plan, Token) additionally see the level of
// parallelism (LoP) the queued workflows can reach soon — the distinction
// the paper's first autoscaling experiment [126] was designed around.

#include <cstdint>
#include <memory>
#include <string>

namespace atlarge::autoscale {

/// What an autoscaler can observe at a decision point.
struct Observation {
  double now = 0.0;
  /// Core demand of currently running plus eligible (ready) tasks.
  double demand_cores = 0.0;
  /// Machines currently usable (provisioned and not being drained).
  std::uint32_t supply_machines = 0;
  /// Machines requested but still within the provisioning delay.
  std::uint32_t pending_machines = 0;
  std::uint32_t cores_per_machine = 1;
  std::size_t queued_tasks = 0;
  /// Workflow-aware signal: cores that will become eligible within one
  /// decision interval if currently running tasks finish on schedule.
  double lop_soon_cores = 0.0;
};

class Autoscaler {
 public:
  virtual ~Autoscaler() = default;
  virtual std::string name() const = 0;
  /// Desired total machine count (the simulator clamps to [0, max]).
  virtual std::uint32_t target_machines(const Observation& obs) = 0;
  virtual std::unique_ptr<Autoscaler> clone() const = 0;
};

/// Utility shared by implementations: machines needed for `cores` demand.
std::uint32_t machines_for_cores(double cores, std::uint32_t cores_per_machine);

}  // namespace atlarge::autoscale
