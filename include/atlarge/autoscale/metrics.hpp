#pragma once
// The ten elasticity metrics of the paper's autoscaling experiments
// (Section 6.7; Herbst et al., TOMPECS 2018). All are computed from the
// supply/demand step curves an elastic simulation records: demand is the
// core demand of running+eligible tasks, supply the cores of provisioned
// machines. Accuracy metrics are in cores (time-averaged); normalized
// variants divide by average demand; timeshares, instability are in [0,1];
// jitter is in events/hour.

#include <span>
#include <string>
#include <vector>

namespace atlarge::autoscale {

/// One point of the piecewise-constant supply/demand curves; values hold
/// until the next point. Times are nondecreasing.
struct SupplyDemandPoint {
  double time = 0.0;
  double demand = 0.0;  // cores demanded
  double supply = 0.0;  // cores provisioned
};

struct ElasticityMetrics {
  double accuracy_over = 0.0;        // avg (supply-demand)+ in cores
  double accuracy_under = 0.0;       // avg (demand-supply)+ in cores
  double norm_accuracy_over = 0.0;   // accuracy_over / avg demand
  double norm_accuracy_under = 0.0;  // accuracy_under / avg demand
  double timeshare_over = 0.0;       // fraction of time supply > demand
  double timeshare_under = 0.0;      // fraction of time supply < demand
  double instability = 0.0;  // fraction of steps where supply and demand
                             // move in opposite directions
  double jitter_per_hour = 0.0;  // supply direction changes per hour
  double avg_supply = 0.0;
  double avg_demand = 0.0;

  /// Metric values in declaration order, paired with names; lower is
  /// better for every metric except avg_demand (which is workload-given
  /// and excluded from rankings).
  static const std::vector<std::string>& names();
  std::vector<double> values() const;
};

/// Computes the metrics over [series.front().time, horizon]. Returns a
/// zero struct for series with fewer than one point or a non-positive
/// window.
ElasticityMetrics compute_metrics(std::span<const SupplyDemandPoint> series,
                                  double horizon);

}  // namespace atlarge::autoscale
