#pragma once
// ResultStore: content-addressed trial results with crash-safe JSONL
// persistence.
//
// Every completed trial is one JSON object on one line of the store file:
//
//   {"key":"89ab...","domain":"serverless","repeat":0,"seed":123,
//    "params":{"keep_alive":"300","prewarmed":"8"},
//    "objective":1.82,"metrics":{"p95_latency":1.82,...}}
//
// Lines are appended and flushed one at a time, so a killed campaign
// loses at most the line being written. On open the store replays the
// file, indexes every valid line by key, and *repairs* the file when the
// tail is truncated or corrupt: valid lines are kept, the broken tail is
// dropped (recovered()/discarded_lines() report what happened), and the
// file is rewritten before appending resumes — so a crash-resume cycle
// always leaves a well-formed JSONL file behind.
//
// Memoization is just lookup(): the TrialRunner consults the store before
// running a trial and reuses the stored record on a hit, which makes
// re-running an unchanged campaign ~free and makes `kill -9` + re-run a
// checkpoint/resume mechanism with per-trial granularity.
//
// A default-constructed store is memory-only (no persistence) — used by
// tests and benchmarks.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace atlarge::exp {

/// The persisted slice of a trial: everything aggregation needs.
/// Metric values round-trip through the JSON number format, so runner
/// code canonicalizes doubles before constructing a record — a record
/// read back from disk is bitwise identical to the one appended.
struct TrialRecord {
  std::string key;
  double objective = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
  /// Optional serialized obs::Digest (empty when the adapter recorded
  /// none). Digest serialization is exact (%.17g + integer buckets), so
  /// the string read back from disk equals the one appended; lines
  /// written before this field existed simply parse to an empty digest.
  std::string digest;
};

/// Presentation context persisted alongside a record (not needed to
/// aggregate, but it makes the JSONL self-describing for external tools).
struct TrialRowContext {
  std::string domain;
  std::uint32_t repeat = 0;
  std::uint64_t seed = 0;
  /// (parameter name, option label) in adapter order.
  std::vector<std::pair<std::string, std::string>> params;
};

class ResultStore {
 public:
  /// Memory-only store.
  ResultStore() = default;

  /// Opens (creating if absent) the JSONL store at `path`, replaying and
  /// repairing it as described above. Throws std::runtime_error when the
  /// file exists but cannot be read, or the directory cannot be written.
  explicit ResultStore(const std::string& path);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ~ResultStore();

  /// The record for `key`, or nullptr. Pointers stay valid until the
  /// store is destroyed (records are never evicted).
  const TrialRecord* lookup(const std::string& key) const;

  /// Indexes the record and, for persistent stores, appends + flushes its
  /// JSONL line. Re-appending an existing key is a no-op (idempotent).
  void append(const TrialRecord& record, const TrialRowContext& context);

  std::size_t size() const noexcept { return records_.size(); }
  const std::string& path() const noexcept { return path_; }

  /// Valid lines replayed at open.
  std::size_t recovered() const noexcept { return recovered_; }
  /// Malformed/truncated lines dropped (and repaired away) at open.
  std::size_t discarded_lines() const noexcept { return discarded_; }

 private:
  void open_and_replay();
  static std::string render_line(const TrialRecord& record,
                                 const TrialRowContext& context);

  std::string path_;  // empty: memory-only
  std::FILE* file_ = nullptr;
  std::map<std::string, TrialRecord> records_;
  std::size_t recovered_ = 0;
  std::size_t discarded_ = 0;
};

/// Parses one JSONL store line into a record; returns false on any
/// malformation (unterminated string, missing key/objective/metrics,
/// trailing garbage). Exposed for tests and external tooling.
bool parse_trial_line(const std::string& line, TrialRecord& out);

}  // namespace atlarge::exp
