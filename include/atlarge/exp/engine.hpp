#pragma once
// The campaign engine's one-call front door: enumerate (or adaptively
// search) a campaign's trials, run them through the memoizing TrialRunner,
// and aggregate the results. atlarge_campaign, the tests, and the
// campaign benchmarks all drive this entry point.

#include <optional>
#include <vector>

#include "atlarge/design/exploration.hpp"
#include "atlarge/exp/adapter.hpp"
#include "atlarge/exp/aggregate.hpp"
#include "atlarge/exp/campaign.hpp"
#include "atlarge/exp/runner.hpp"
#include "atlarge/exp/store.hpp"

namespace atlarge::exp {

struct CampaignOutcome {
  /// Every trial the campaign scheduled, enumeration order. For explore
  /// mode this is the adaptive evaluation sequence (revisited points
  /// reappear; the store deduplicates the work).
  std::vector<TrialTask> tasks;
  /// Aligned with tasks; nullopt only for trials skipped by the
  /// max_executed cap.
  std::vector<std::optional<TrialRecord>> records;
  RunnerStats stats;
  CampaignAggregate aggregate;
  /// Explore mode only: the design::explore_free trace over the bound
  /// space (best_point indexes the bound space's options).
  design::ExplorationTrace trace;
  /// False when the max_executed cap interrupted the campaign; re-running
  /// with the same store resumes where it stopped.
  bool complete = true;
};

/// Runs the campaign against `adapter`, memoizing through `store`.
/// `config.scale` is overridden by the spec's scale; `config.threads`
/// falls back to the spec's threads when 0.
CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const SimulatorAdapter& adapter,
                             ResultStore& store, RunnerConfig config);

}  // namespace atlarge::exp
