#pragma once
// Declarative design-space campaigns (the engine behind atlarge_campaign).
//
// A campaign binds a design space carved out of a SimulatorAdapter's
// parameters to an enumeration mode and runs the resulting trials through
// the memoizing TrialRunner. The spec format is line-oriented text —
// `key value` pairs plus `dim <name> <option>...` lines that restrict a
// parameter to a subset of its adapter options:
//
//   campaign serverless-keepalive
//   domain serverless
//   mode grid                 # grid | random | explore
//   repeats 3
//   seed 42
//   scale 0.5
//   dim keep_alive 0 300 600
//   dim prewarmed 0 8
//
// Modes:
//  * grid — the Cartesian product of every bound dimension, enumerated in
//    mixed-radix order (last dimension fastest);
//  * random — `trials` points drawn uniformly from the bound space
//    (duplicates possible; the memoizing store collapses them);
//  * explore — budgeted adaptive search: design::explore_free runs over a
//    Landscape whose quality is a monotone transform of the (memoized)
//    mean objective, spending at most `trials` point evaluations.
//
// Memoization key: every trial has a content-hashed key over
// (format version, domain, campaign seed, scale, parameter name=value
// bindings, repeat). Campaign name, mode, and thread count are *excluded*
// so a grid campaign pre-populates the store for a later explore campaign
// over the same space, and so results are reusable across renames.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "atlarge/design/design_space.hpp"
#include "atlarge/design/exploration.hpp"
#include "atlarge/exp/adapter.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::exp {

enum class CampaignMode { kGrid, kRandom, kExplore };

std::string to_string(CampaignMode mode);

struct CampaignSpec {
  std::string name;
  std::string domain;
  CampaignMode mode = CampaignMode::kGrid;
  /// Independent repetitions per design point; repeat index salts the
  /// per-trial seed stream.
  std::size_t repeats = 1;
  std::uint64_t seed = 1;
  /// Workload scale in (0, 1]; adapters shrink job counts / horizons
  /// proportionally (with floors).
  double scale = 1.0;
  /// random: points drawn; explore: point-evaluation budget. Ignored by
  /// grid mode.
  std::size_t trials = 32;
  /// Default worker threads for the runner (CLI --threads overrides).
  std::size_t threads = 1;
  /// Configurations shown in the ranked text table.
  std::size_t top_k = 5;
  /// Per-dimension option restrictions: parameter name -> option tokens
  /// (labels for categorical parameters, numeric literals otherwise).
  /// Order follows the adapter's parameter order regardless of spec line
  /// order; unlisted parameters keep their full option lists.
  std::map<std::string, std::vector<std::string>> dims;
};

/// Parses the spec text; throws std::invalid_argument with a line-number
/// diagnostic on malformed input.
CampaignSpec parse_campaign_spec(const std::string& text);

/// Reads and parses a spec file; throws std::runtime_error when the file
/// cannot be read.
CampaignSpec load_campaign_spec(const std::string& path);

/// One dimension of the bound (spec-restricted) space.
struct BoundDimension {
  std::string name;
  std::size_t param_index = 0;             // into adapter.params()
  std::vector<std::uint32_t> option_indices;  // into ParamSpec::values
};

/// The adapter's parameter space after applying the spec's `dim`
/// restrictions. DesignPoints are indices into the *bound* options.
class BoundSpace {
 public:
  /// Validates the spec against the adapter: unknown dimension names and
  /// tokens matching no adapter option throw std::invalid_argument.
  BoundSpace(const SimulatorAdapter& adapter, const CampaignSpec& spec);

  std::size_t dimensions() const noexcept { return dims_.size(); }
  const std::vector<BoundDimension>& dims() const noexcept { return dims_; }
  const std::vector<ParamSpec>& params() const noexcept { return params_; }
  /// Product of per-dimension option counts.
  std::size_t grid_size() const noexcept;
  /// Option counts per bound dimension (the design::Landscape shape).
  std::vector<std::uint32_t> option_counts() const;

  /// Resolves a bound-space point to adapter parameter values (one per
  /// adapter parameter, in adapter order).
  std::vector<double> values(const design::DesignPoint& point) const;
  /// Spec-facing labels for a point, in adapter parameter order.
  std::vector<std::string> labels(const design::DesignPoint& point) const;

  /// Point `index` of the grid enumeration (mixed radix, last dimension
  /// fastest).
  design::DesignPoint grid_point(std::size_t index) const;
  design::DesignPoint random_point(stats::Rng& rng) const;

 private:
  std::vector<ParamSpec> params_;
  std::vector<BoundDimension> dims_;
};

/// One scheduled trial: a bound-space point plus its repeat index, the
/// derived deterministic seed, and the memoization key.
struct TrialTask {
  std::size_t index = 0;  // enumeration order within the campaign
  design::DesignPoint point;
  std::vector<double> values;        // resolved adapter parameter values
  std::vector<std::string> labels;   // spec-facing option labels
  std::uint32_t repeat = 0;
  std::uint64_t seed = 0;
  std::string key;  // 16 lowercase hex chars
};

/// Canonical trial descriptor (the memo-key preimage). Stable across
/// platforms: doubles are rendered with %.12g.
std::string trial_descriptor(const CampaignSpec& spec, const BoundSpace& space,
                             const std::vector<double>& values,
                             std::uint32_t repeat);

/// Builds the trial for (point, repeat): resolves values, derives the
/// seed from the descriptor hash, renders the key.
TrialTask make_trial(const CampaignSpec& spec, const BoundSpace& space,
                     const design::DesignPoint& point, std::uint32_t repeat,
                     std::size_t index);

/// Full trial list for grid/random mode (points x repeats, repeats
/// innermost). Throws std::logic_error for explore mode — explore
/// schedules its trials adaptively via run_campaign.
std::vector<TrialTask> enumerate_trials(const CampaignSpec& spec,
                                        const BoundSpace& space);

/// FNV-1a 64-bit over `s` (the memo hash; also used to salt per-point
/// bootstrap RNG streams).
std::uint64_t fnv1a64(const std::string& s);

}  // namespace atlarge::exp
