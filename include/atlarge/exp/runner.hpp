#pragma once
// TrialRunner: memoized, deterministic parallel execution of campaign
// trials over sim::ThreadPool.
//
// Determinism discipline (same contract as PortfolioConfig::eval_threads):
// every trial's seed is derived from its content descriptor, workers
// write results into per-trial slots, and all shared state — the
// ResultStore, the obs plane — is touched only from the calling thread
// after the parallel join, in trial-enumeration order. Serial and
// parallel execution therefore produce identical stores and identical
// aggregates, byte for byte.
//
// Observability: the runner bumps exp.trials.{requested,executed,
// memoized,skipped} counters, sets an exp.threads gauge, records an
// exp.trial_wall_ms histogram, and emits one "exp.trial" span per
// executed trial (plus an enclosing "exp.run" span) using wall seconds
// since run() entry as the span timeline, so an exported Chrome trace
// shows campaign fan-out lanes. Spans carry wall time, not simulated
// time, and are excluded from every deterministic artifact.

#include <cstdint>
#include <optional>
#include <vector>

#include "atlarge/exp/adapter.hpp"
#include "atlarge/exp/campaign.hpp"
#include "atlarge/exp/store.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::exp {

struct RunnerConfig {
  std::size_t threads = 1;
  double scale = 1.0;
  /// Cap on trials *executed* (memo misses) per run() call; 0 = no cap.
  /// Tasks beyond the cap are skipped and reported in stats().skipped —
  /// the campaign is then incomplete and a later invocation resumes it.
  /// (This is how CI simulates a killed campaign deterministically.)
  std::size_t max_executed = 0;
  /// Optional instrumentation plane (not owned, may be null). Touched
  /// only from the calling thread.
  obs::Observability* obs = nullptr;
};

struct RunnerStats {
  std::size_t requested = 0;  // tasks passed to run(), cumulative
  std::size_t executed = 0;   // simulations actually run
  std::size_t memoized = 0;   // served from the store
  std::size_t skipped = 0;    // beyond max_executed
  double wall_ms = 0.0;       // wall time spent inside run()
};

class TrialRunner {
 public:
  /// The adapter and store must outlive the runner.
  TrialRunner(const SimulatorAdapter& adapter, ResultStore& store,
              RunnerConfig config);

  /// Runs `tasks` (memo hits are free), appends new results to the store
  /// in task order, and returns records aligned with `tasks`; an entry is
  /// nullopt only when the max_executed cap skipped that trial. Duplicate
  /// keys within `tasks` execute once.
  std::vector<std::optional<TrialRecord>> run(
      const std::vector<TrialTask>& tasks);

  const RunnerStats& stats() const noexcept { return stats_; }

 private:
  const SimulatorAdapter* adapter_;
  ResultStore* store_;
  RunnerConfig config_;
  RunnerStats stats_;
};

}  // namespace atlarge::exp
