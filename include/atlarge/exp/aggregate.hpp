#pragma once
// Campaign aggregation: collapse trial records into ranked
// configurations, per-dimension marginals, and bootstrap confidence
// intervals.
//
// Every output here is deterministic in (spec, records): grouping follows
// the campaign's enumeration order, ties in the ranking break on the
// design point itself, and the bootstrap RNG for each point is seeded
// from the campaign seed and the point's content hash — never from
// execution order or thread count. aggregate_json() is therefore
// byte-identical across 1..N runner threads and across fresh vs memoized
// invocations, which is the property the campaign acceptance tests pin.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atlarge/exp/campaign.hpp"
#include "atlarge/exp/store.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/stats/bootstrap.hpp"

namespace atlarge::exp {

/// One design point with its repeats collapsed.
struct PointAggregate {
  design::DesignPoint point;
  std::vector<double> values;        // adapter parameter values
  std::vector<std::string> labels;   // spec-facing option labels
  std::size_t repeats = 0;           // records aggregated
  double mean_objective = 0.0;
  /// Percentile-bootstrap 95% CI of the mean objective over repeats;
  /// degenerate (lo == point == hi) when repeats < 2.
  stats::Interval objective_ci;
  /// Mean of every adapter metric over repeats, adapter order.
  std::vector<std::pair<std::string, double>> mean_metrics;
  /// Union of every repeat's serialized trial digest (empty when the
  /// adapter records none). Merging distributions — rather than averaging
  /// per-trial quantiles — is the statistically honest way to report a
  /// design point's tail, and digest merge is commutative, so this is
  /// deterministic in (spec, records) like everything else here.
  obs::Digest digest;
};

/// Mean objective restricted to points choosing `option` on `dim` — the
/// campaign's per-dimension effect estimate.
struct MarginalCell {
  std::string dim;
  std::string option;
  double mean_objective = 0.0;
  std::size_t trials = 0;
};

struct CampaignAggregate {
  std::string campaign;
  std::string domain;
  std::string objective;  // metric name being minimized
  std::string mode;
  std::size_t points = 0;  // distinct design points aggregated
  std::size_t trials = 0;  // records behind them
  bool complete = true;    // false when any task was skipped (resume due)
  /// Bound-space dimension names, adapter parameter order (the labels in
  /// each PointAggregate align with these).
  std::vector<std::string> param_names;
  /// All points, best (lowest mean objective) first.
  std::vector<PointAggregate> ranked;
  std::vector<MarginalCell> marginals;
};

/// Aggregates aligned (tasks, records) as produced by TrialRunner::run.
/// Tasks with nullopt records mark the aggregate incomplete and are
/// excluded; duplicate keys collapse to one record.
CampaignAggregate aggregate_campaign(
    const CampaignSpec& spec, const SimulatorAdapter& adapter,
    const BoundSpace& space, const std::vector<TrialTask>& tasks,
    const std::vector<std::optional<TrialRecord>>& records);

/// Canonical JSON rendering (single object, deterministic member order).
std::string aggregate_json(const CampaignAggregate& aggregate);

/// Aligned text table of the top `top_k` configurations plus marginals,
/// for terminal output and EXPERIMENTS.md.
std::string aggregate_table(const CampaignAggregate& aggregate,
                            std::size_t top_k);

}  // namespace atlarge::exp
