#pragma once
// The built-in domain adapters: portfolio scheduling (Section 6.6),
// serverless/FaaS (Section 6.4), autoscaling (Section 6.7), and P2P
// swarms (Section 6.1). Each binds a small, opinionated design space over
// its domain simulator's config knobs — the axes the paper's own tables
// sweep — and a deterministic seed-derived workload.
//
// All four are stateless beyond their construction-time parameter tables,
// so one instance can serve every worker thread of a campaign.

#include "atlarge/exp/adapter.hpp"

namespace atlarge::exp {

/// Domain "portfolio": PortfolioScheduler knobs (selection interval,
/// active-set size, per-task simulation cost) x workload class, run
/// through sched::simulate. Objective: mean bounded slowdown.
std::unique_ptr<SimulatorAdapter> make_portfolio_adapter();

/// Domain "serverless": FaaS platform keep-alive / pre-warm / concurrency
/// cap against a bursty invocation stream. Objective: p95 latency.
std::unique_ptr<SimulatorAdapter> make_serverless_adapter();

/// Domain "autoscale": autoscaler policy x machine shape x provisioning
/// delay x decision interval on an industrial workflow load. Objective:
/// mean slowdown.
std::unique_ptr<SimulatorAdapter> make_autoscale_adapter();

/// Domain "p2p": swarm seeding/capacity knobs under a flashcrowd.
/// Objective: median download time.
std::unique_ptr<SimulatorAdapter> make_p2p_adapter();

/// Domain "graph": the Graphalytics kernels over dataset family x scale x
/// algorithm x threads. Each trial runs the real kernel, then prices its
/// measured work profile on the Native-1N platform model. Objective:
/// predicted runtime (runtime_proxy).
std::unique_ptr<SimulatorAdapter> make_graph_adapter();

/// Domain "eco": the full ecosystem composition (Section 2's "systems of
/// systems") — serverless, MMOG zones, and workflow DAGs co-tenant on one
/// cluster fabric. Sweeps the fabric shape (eco.machines,
/// eco.provisioning_delay) against the control-plane choices
/// (eco.autoscaler, eco.policy), so campaigns measure cross-domain
/// interference, not a simulator in isolation. Objective: serverless p95
/// latency under co-tenancy.
std::unique_ptr<SimulatorAdapter> make_eco_adapter();

}  // namespace atlarge::exp
