#pragma once
// Simulator adapters: the seam between the declarative campaign engine
// and the domain simulators (paper Section 6's experiment domains).
//
// An adapter publishes a *discrete design space* — named parameters, each
// with a fixed list of candidate values — and knows how to run one trial:
// given resolved parameter values, a seed, and a workload scale, it
// configures and runs its domain simulator and returns a flat metric
// vector plus one designated objective (lower is better, matching the
// "cost" orientation of every domain objective we expose: slowdown,
// latency, download time).
//
// Contract for run():
//  * deterministic — a pure function of (values, seed, scale);
//  * thread-safe — trials are fanned out over a sim::ThreadPool, so run()
//    must not touch shared mutable state (construct simulators, policies,
//    RNGs, and any obs::Observability plane per call; a *local* per-trial
//    plane — used by the serverless/portfolio adapters for SLO burn-rate
//    evaluation — is fine, a shared one is not);
//  * metric names and order must not depend on the values, so rows of one
//    campaign are column-compatible.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace atlarge::exp {

/// One discrete campaign parameter. `values` are the candidate settings;
/// when `labels` is non-empty (same size as `values`) the parameter is
/// categorical and values are indices rendered through their label (e.g.
/// autoscaler names, workload classes).
struct ParamSpec {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;

  bool categorical() const noexcept { return !labels.empty(); }
  /// Human/spec-facing rendering of option `i`.
  std::string option_label(std::size_t i) const;
};

/// Outcome of one simulator trial. `metrics` keeps insertion order (the
/// adapter's declared order), including the objective metric itself.
/// `digest` optionally carries the trial's latency/slowdown distribution
/// as a serialized obs::Digest (see Digest::serialize) — exact strings
/// round-trip through the store, so campaign aggregation can merge
/// distributions across repeats instead of averaging quantiles.
struct TrialResult {
  double objective = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
  std::string digest;
};

class SimulatorAdapter {
 public:
  virtual ~SimulatorAdapter() = default;

  /// Stable domain identifier used in specs and memo keys.
  virtual std::string domain() const = 0;
  /// Name of the metric minimized by exploration and ranking.
  virtual std::string objective() const = 0;
  /// The full design space this adapter exposes. Deterministic.
  virtual std::vector<ParamSpec> params() const = 0;
  /// Runs one trial; see the thread-safety/determinism contract above.
  /// `values[i]` corresponds to params()[i]; `scale` in (0, 1] shrinks
  /// the workload proportionally (floored so trials stay meaningful).
  virtual TrialResult run(const std::vector<double>& values,
                          std::uint64_t seed, double scale) const = 0;
};

/// Registered adapter domains, in presentation order.
std::vector<std::string> adapter_domains();

/// Constructs the adapter for `domain`; throws std::invalid_argument for
/// unknown domains (message lists the known ones).
std::unique_ptr<SimulatorAdapter> make_adapter(const std::string& domain);

}  // namespace atlarge::exp
