#pragma once
// Declarative service-level objectives evaluated continuously in sim time.
//
// An SloSpec names a *bad-event fraction* the system promises to keep
// under budget (objective = promised good fraction; budget = 1 -
// objective) and points at the instruments that define "bad":
//  * kErrorRatio    — two counters: bad events / total events;
//  * kLatencyAbove  — a Digest: observations above `threshold` are bad;
//  * kGaugeAbove    — a gauge: each evaluation where value > `threshold`
//                     contributes one bad observation (time-based budget,
//                     the queue-depth / saturation style of SLO).
//
// The monitor follows the SRE multi-window burn-rate recipe: at every
// sampling boundary it folds the instrument deltas into two sliding
// sim-time windows (a fast window that reacts quickly and a slow window
// that suppresses blips), computes each window's burn rate — the observed
// bad fraction divided by the error budget — and raises an alert on the
// rising edge of "both windows burn above their thresholds". Alert times
// are sampling boundaries, i.e. deterministic sim-time values that are
// byte-identical across queue backends and host thread counts.
//
// Windows are bucketed rings (kWindowBuckets per window) allocated when
// the spec is added, so steady-state evaluation is allocation-free. Drive
// advance() from the kernel sampling hook (see obs::Observability) or
// manually from non-DES loops.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/obs/digest.hpp"
#include "atlarge/obs/metrics.hpp"

namespace atlarge::obs {

enum class SloKind {
  kErrorRatio,
  kLatencyAbove,
  kGaugeAbove,
};

/// One sliding evaluation window: bad fraction over the trailing `span`
/// sim-seconds must burn less than `burn_threshold` times the budget.
struct SloWindow {
  double span = 300.0;
  double burn_threshold = 10.0;
};

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kErrorRatio;
  /// Promised good fraction; the error budget is 1 - objective.
  double objective = 0.99;
  /// kLatencyAbove: latency bound; kGaugeAbove: gauge bound. Unused for
  /// kErrorRatio.
  double threshold = 0.0;
  /// Instruments (not owned, must outlive the monitor); which pair is read
  /// depends on `kind`.
  const Counter* bad = nullptr;    // kErrorRatio
  const Counter* total = nullptr;  // kErrorRatio
  const Digest* digest = nullptr;  // kLatencyAbove
  const Gauge* gauge = nullptr;    // kGaugeAbove
  /// Multi-window gating: an alert needs both windows burning.
  SloWindow fast{300.0, 10.0};
  SloWindow slow{1800.0, 2.0};
};

/// A rising-edge alert: the first evaluation boundary at which both
/// windows of `slo` burned above threshold (after a quiet period).
struct SloAlert {
  double time = 0.0;
  std::size_t slo = 0;
  std::string name;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

class SloMonitor {
 public:
  static constexpr std::size_t kWindowBuckets = 16;

  /// Registers a spec (validated: objective in [0,1), instruments matching
  /// the kind, positive window spans — throws std::invalid_argument
  /// otherwise) and returns its index. Add every spec before the run.
  std::size_t add(SloSpec spec);

  std::size_t size() const noexcept { return slos_.size(); }
  const SloSpec& spec(std::size_t i) const { return slos_[i].spec; }

  /// Evaluates every SLO at sim-time boundary `t` (nondecreasing across
  /// calls). Allocation-free except for appending a rising-edge alert.
  void advance(double t);

  /// Whether SLO `i` is currently in the firing state.
  bool firing(std::size_t i) const { return slos_[i].firing; }
  /// Most recent burn rates of SLO `i` (0 before the first evaluation).
  double burn_fast(std::size_t i) const { return slos_[i].windows[0].burn; }
  double burn_slow(std::size_t i) const { return slos_[i].windows[1].burn; }

  /// Rising-edge alerts in evaluation order.
  const std::vector<SloAlert>& alerts() const noexcept { return alerts_; }

  /// {"slos":[{name,kind,objective,firing,burn_fast,burn_slow}...],
  ///  "alerts":[{time,slo,burn_fast,burn_slow}...]}
  std::string json() const;

 private:
  struct Window {
    double span = 0.0;
    double burn_threshold = 0.0;
    double bucket_width = 0.0;
    std::int64_t current = -1;  // absolute bucket index of the newest slot
    std::vector<double> bad;    // kWindowBuckets, allocated in add()
    std::vector<double> total;
    double burn = 0.0;

    void fold(double t, double dbad, double dtotal);
  };

  struct State {
    SloSpec spec;
    Window windows[2];
    // Cumulative (bad, total) as of the previous evaluation.
    double last_bad = 0.0;
    double last_total = 0.0;
    bool firing = false;
  };

  void cumulative(const State& s, double& bad, double& total) const;

  std::vector<State> slos_;
  std::vector<SloAlert> alerts_;
};

}  // namespace atlarge::obs
