#pragma once
// One instrumentation plane shared across every layer of a run.
//
// The MELODIC-style argument (and the Massivizing Computer Systems
// "understanding before designing" prerequisite): a multi-layer system
// needs ONE instrumentation plane, not per-layer ad-hoc timers. An
// Observability object bundles a metrics Registry and a span Tracer, plus
// the KernelObserver that bridges the DES kernel's Observer hook onto
// both. Domain simulators accept an optional `obs::Observability*` in
// their config/options structs; when set they attach the kernel observer
// to their internal Simulation and emit their own domain-level spans and
// metrics into the same plane, so an exported trace shows kernel and
// domain activity on one timeline.
//
// A plane is single-run / single-threaded: share one plane across
// sequential runs (metrics accumulate; spans append), but never across
// concurrently running simulations.

#include <cstddef>

#include "atlarge/obs/metrics.hpp"
#include "atlarge/obs/trace.hpp"
#include "atlarge/sim/simulation.hpp"

namespace atlarge::obs {

/// Standard kernel instrumentation: event-transition counters
/// (sim.events_scheduled / sim.events_fired / sim.events_cancelled), a
/// queue-depth gauge (sim.queue_depth), a per-run executed-events
/// histogram (sim.run_events), a system-allocator counter
/// (sim.alloc_events — zero for a pre-sized steady-state run), and a
/// "sim.run" span per run()/run_until().
class KernelObserver final : public sim::Observer {
 public:
  KernelObserver(Registry& metrics, Tracer& tracer)
      : tracer_(&tracer),
        scheduled_(&metrics.counter("sim.events_scheduled")),
        fired_(&metrics.counter("sim.events_fired")),
        cancelled_(&metrics.counter("sim.events_cancelled")),
        alloc_events_(&metrics.counter("sim.alloc_events")),
        queue_depth_(&metrics.gauge("sim.queue_depth")),
        run_events_(&metrics.histogram("sim.run_events")) {}

  void on_schedule(sim::Time at, std::size_t pending) override {
    (void)at;
    scheduled_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_fire(sim::Time now, std::size_t pending) override {
    (void)now;
    fired_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_cancel(sim::Time now, std::size_t pending) override {
    (void)now;
    cancelled_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_run_begin(sim::Time now) override {
    tracer_->begin("sim.run", "kernel", now);
  }

  void on_run_end(sim::Time now, std::size_t executed) override {
    run_events_->observe(static_cast<double>(executed));
    tracer_->end("sim.run", "kernel", now);
  }

  void on_alloc_event() override { alloc_events_->add(1); }

 private:
  Tracer* tracer_;
  Counter* scheduled_;
  Counter* fired_;
  Counter* cancelled_;
  Counter* alloc_events_;
  Gauge* queue_depth_;
  Histogram* run_events_;
};

class Observability {
 public:
  /// `trace_capacity` sizes the tracer ring; 0 keeps the tracer disabled
  /// (metrics-only plane — the kernel observer then costs counter bumps
  /// but records no spans).
  explicit Observability(std::size_t trace_capacity = 1 << 16)
      : tracer(trace_capacity), kernel_(metrics, tracer) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Registry metrics;
  Tracer tracer;

  /// The observer to pass to sim::Simulation::set_observer.
  sim::Observer* kernel_observer() noexcept { return &kernel_; }

 private:
  KernelObserver kernel_;
};

}  // namespace atlarge::obs
