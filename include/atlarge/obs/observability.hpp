#pragma once
// One instrumentation plane shared across every layer of a run.
//
// The MELODIC-style argument (and the Massivizing Computer Systems
// "understanding before designing" prerequisite): a multi-layer system
// needs ONE instrumentation plane, not per-layer ad-hoc timers. An
// Observability object bundles a metrics Registry and a span Tracer, plus
// the KernelObserver that bridges the DES kernel's Observer hook onto
// both. Domain simulators accept an optional `obs::Observability*` in
// their config/options structs; when set they attach the kernel observer
// to their internal Simulation and emit their own domain-level spans and
// metrics into the same plane, so an exported trace shows kernel and
// domain activity on one timeline.
//
// The plane also anchors the *continuous* telemetry layer: an attached
// TimeSeries, SloMonitor, and FlightRecorder ride the kernel's sampling
// hook (sampling_hook()/sample_now), so every domain that honors `obs`
// gets sim-time series, burn-rate SLO alerting, and causal incident dumps
// for free — see DESIGN.md's Telemetry section.
//
// A plane is single-run / single-threaded: share one plane across
// sequential runs (metrics accumulate; spans append), but never across
// concurrently running simulations.

#include <cstddef>
#include <string>
#include <utility>

#include "atlarge/obs/flight.hpp"
#include "atlarge/obs/metrics.hpp"
#include "atlarge/obs/slo.hpp"
#include "atlarge/obs/timeseries.hpp"
#include "atlarge/obs/trace.hpp"
#include "atlarge/sim/simulation.hpp"

namespace atlarge::obs {

/// Standard kernel instrumentation: event-transition counters
/// (sim.events_scheduled / sim.events_fired / sim.events_cancelled), a
/// queue-depth gauge (sim.queue_depth), a per-run executed-events
/// histogram (sim.run_events), a system-allocator counter
/// (sim.alloc_events — zero for a pre-sized steady-state run), and a
/// "sim.run" span per run()/run_until().
class KernelObserver final : public sim::Observer {
 public:
  KernelObserver(Registry& metrics, Tracer& tracer)
      : tracer_(&tracer),
        scheduled_(&metrics.counter("sim.events_scheduled")),
        fired_(&metrics.counter("sim.events_fired")),
        cancelled_(&metrics.counter("sim.events_cancelled")),
        alloc_events_(&metrics.counter("sim.alloc_events")),
        queue_depth_(&metrics.gauge("sim.queue_depth")),
        run_events_(&metrics.histogram("sim.run_events")) {}

  void on_schedule(sim::Time at, std::size_t pending) override {
    (void)at;
    scheduled_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_fire(sim::Time now, std::size_t pending) override {
    (void)now;
    fired_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_cancel(sim::Time now, std::size_t pending) override {
    (void)now;
    cancelled_->add(1);
    queue_depth_->set(static_cast<double>(pending));
  }

  void on_run_begin(sim::Time now) override {
    tracer_->begin("sim.run", "kernel", now);
  }

  void on_run_end(sim::Time now, std::size_t executed) override {
    run_events_->observe(static_cast<double>(executed));
    tracer_->end("sim.run", "kernel", now);
  }

  void on_alloc_event() override { alloc_events_->add(1); }

 private:
  Tracer* tracer_;
  Counter* scheduled_;
  Counter* fired_;
  Counter* cancelled_;
  Counter* alloc_events_;
  Gauge* queue_depth_;
  Histogram* run_events_;
};

class Observability {
 public:
  /// `trace_capacity` sizes the tracer ring; 0 keeps the tracer disabled
  /// (metrics-only plane — the kernel observer then costs counter bumps
  /// but records no spans).
  explicit Observability(std::size_t trace_capacity = 1 << 16)
      : tracer(trace_capacity), kernel_(metrics, tracer) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Registry metrics;
  Tracer tracer;

  /// The observer to pass to sim::Simulation::set_observer.
  sim::Observer* kernel_observer() noexcept { return &kernel_; }

  // ----------------------------------------------------- telemetry plane --
  // Continuous components (none owned; each must outlive the plane or be
  // detached with nullptr). Domain engines that honor `obs` in their
  // config attach sampling_hook() to their kernel when it is non-null, so
  // attaching a TimeSeries or SloMonitor here is all a caller does to get
  // continuous telemetry out of any domain run.

  /// Attach a time-series recorder; its rows advance at every sampling
  /// boundary. When no explicit sampling interval is set, the recorder's
  /// own interval becomes the plane's.
  void attach_timeseries(TimeSeries* series) noexcept { series_ = series; }
  TimeSeries* timeseries() const noexcept { return series_; }

  /// Attach an SLO monitor; it is advanced at every sampling boundary.
  void attach_slo(SloMonitor* slo) noexcept { slo_ = slo; }
  SloMonitor* slo() const noexcept { return slo_; }

  /// Attach a flight recorder; domain engines feed it causal per-entity
  /// events, and the first SLO alert dumps it (see set_alert_dump_path).
  void attach_flight(FlightRecorder* flight) noexcept { flight_ = flight; }
  FlightRecorder* flight() const noexcept { return flight_; }

  /// When set and a flight recorder is attached, the first SLO alert
  /// writes the recorder's Chrome-trace snapshot to `path` (once — the
  /// black box captures the history *leading into* the first incident).
  void set_alert_dump_path(std::string path) {
    alert_dump_path_ = std::move(path);
  }
  const std::string& alert_dump_path() const noexcept {
    return alert_dump_path_;
  }
  bool alert_dumped() const noexcept { return alert_dumped_; }

  /// Sim-time sampling period used when attaching the hook. Defaults to
  /// the attached TimeSeries' interval, or 1.0 with none attached.
  void set_sampling_interval(double interval) noexcept {
    sampling_interval_ = interval;
  }
  double sampling_interval() const noexcept {
    if (sampling_interval_ > 0.0) return sampling_interval_;
    return series_ != nullptr ? series_->interval() : 1.0;
  }

  /// The hook to pass to sim::Simulation::set_sampling_hook, or nullptr
  /// when no continuous component is attached (so domains skip the kernel
  /// sampling machinery entirely on plain metric/trace planes).
  sim::SamplingHook* sampling_hook() noexcept {
    return series_ != nullptr || slo_ != nullptr ? &hub_ : nullptr;
  }

  /// One sampling boundary at sim-time `t`: record a time-series row,
  /// advance the SLO monitor, and on the first rising-edge alert emit an
  /// "slo.alert" trace instant and dump the flight recorder. Called by the
  /// kernel hook; call directly from non-DES loops (p2p epochs).
  void sample_now(double t) {
    if (series_ != nullptr) series_->sample(t);
    if (slo_ == nullptr) return;
    const std::size_t before = slo_->alerts().size();
    slo_->advance(t);
    if (slo_->alerts().size() == before) return;
    tracer.instant("slo.alert", "slo", t);
    if (flight_ != nullptr && !alert_dump_path_.empty() && !alert_dumped_) {
      flight_->write_chrome_json(alert_dump_path_);
      alert_dumped_ = true;
    }
  }

 private:
  class Hub final : public sim::SamplingHook {
   public:
    explicit Hub(Observability& owner) : owner_(owner) {}
    void on_sample(sim::Time now) override { owner_.sample_now(now); }

   private:
    Observability& owner_;
  };

  KernelObserver kernel_;
  Hub hub_{*this};
  TimeSeries* series_ = nullptr;
  SloMonitor* slo_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  std::string alert_dump_path_;
  double sampling_interval_ = 0.0;
  bool alert_dumped_ = false;
};

}  // namespace atlarge::obs
