#pragma once
// Continuous sim-time series: the paper's "monitoring agent" graduated
// from one-off probes (sim::Sampler) to a plane-level recorder. A
// TimeSeries tracks registered Registry instruments (counters and gauges)
// and appends one row per kernel sampling boundary — attach it through
// Observability::sampling_hook() / Simulation::set_sampling_hook, or call
// sample() directly from non-DES loops (the p2p fluid model's epochs).
//
// Storage is a fixed-capacity ring of rows: the first sample allocates the
// backing buffer once (column count is frozen there), and every later
// sample is a handful of loads and stores — zero-alloc steady state, with
// dropped() counting rows that overwrote the oldest history. Rows are a
// pure function of sim-time state, so the recorded series is byte-identical
// across queue backends and host thread counts.
//
// Export: csv() for eyeballs and spreadsheets (%.17g, exact round-trip),
// json() for tools (shared JsonWriter formatting). Both are deterministic
// functions of the recorded rows, so equal series compare equal as text.

#include <cstddef>
#include <string>
#include <vector>

#include "atlarge/obs/metrics.hpp"
#include "atlarge/sim/simulation.hpp"

namespace atlarge::obs {

class TimeSeries final : public sim::SamplingHook {
 public:
  /// `interval` is the sim-time sampling period advertised through
  /// Observability (and stamped into exports); `capacity` bounds retained
  /// rows (older rows are overwritten once full).
  explicit TimeSeries(double interval = 1.0, std::size_t capacity = 4096);

  /// Registers a column. Call before the first sample; registrations after
  /// the column set is frozen are ignored. Instruments are not owned and
  /// must outlive the TimeSeries.
  void track_counter(const std::string& name, const Counter& counter);
  void track_gauge(const std::string& name, const Gauge& gauge);

  double interval() const noexcept { return interval_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t columns() const noexcept { return columns_.size(); }

  /// SamplingHook: one row per kernel boundary.
  void on_sample(sim::Time now) override { sample(now); }

  /// Appends one row at sim-time `t` (manual path for non-DES loops).
  void sample(double t);

  /// Retained rows (<= capacity) and rows lost to ring wraparound.
  std::size_t size() const noexcept { return size_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Row access, oldest retained row first.
  double time_at(std::size_t row) const noexcept;
  double value_at(std::size_t row, std::size_t column) const noexcept;
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// "time,<col>,...\n" header plus one %.17g row per retained sample.
  std::string csv() const;
  /// {"interval":...,"dropped":...,"columns":["time",...],"rows":[[...]]}
  std::string json() const;
  /// Write json() to `path`; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;
  /// Write csv() to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  struct Column {
    const Counter* counter = nullptr;  // exactly one of the two is set
    const Gauge* gauge = nullptr;
  };

  double read(std::size_t column) const noexcept;
  std::size_t row_start(std::size_t row) const noexcept;

  double interval_;
  std::size_t capacity_;
  std::vector<Column> columns_;
  std::vector<std::string> names_;
  std::vector<double> data_;  // ring of rows: [time, col0, col1, ...]
  std::size_t head_ = 0;      // next row slot to write
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
  bool frozen_ = false;
};

}  // namespace atlarge::obs
