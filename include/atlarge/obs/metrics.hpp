#pragma once
// Metrics registry: named counters, gauges, and log-bucketed histograms
// with O(1) hot-path updates.
//
// The intended usage pattern is registration-then-update: a component
// looks its instruments up by name once (O(log n), allocates), keeps the
// returned references, and updates through them on the hot path (a single
// add/store, no lookup, no allocation). References stay valid for the
// Registry's lifetime — instruments live in node-based maps and are never
// removed.
//
// Snapshots serialize to JSON (for programmatic consumers and the bench
// harnesses) and to Prometheus text exposition format (dots in metric
// names become underscores; histograms emit cumulative `le` buckets).
//
// Instruments are NOT thread-safe: update them from one thread at a time
// (in this codebase, from simulation event handlers, which are serial by
// construction — the parallel portfolio evaluation deliberately does not
// touch the registry from worker threads).

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "atlarge/obs/digest.hpp"

namespace atlarge::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, supply cores, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram: power-of-two buckets spanning ~1e-6 to ~2^43,
/// so one increment per observation regardless of value range. Quantiles
/// are bucket-resolution estimates (within a factor of 2), which is the
/// right fidelity for "where did the latency mass go" questions; exact
/// quantiles belong to the stats module's offline paths.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kMinExp = -20;  // bucket 0 holds values <= 2^-20

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper-bound estimate of the q-quantile (q in [0,1]), clamped to the
  /// observed max. Returns 0 when empty.
  double quantile(double q) const noexcept;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Inclusive upper bound of bucket `i`; +inf for the last bucket.
  static double bucket_upper_bound(int i) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instrument registry; one per run/plane.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  /// Fine-grained mergeable quantile digest (see obs/digest.hpp) — the
  /// instrument behind latency-quantile SLOs and campaign digest merging.
  Digest& digest(const std::string& name) { return digests_[name]; }

  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, Digest>& digests() const noexcept {
    return digests_;
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p95,p99}},"digests":{name:{count,sum,min,max,mean,p50,
  /// p95,p99,p999}}}
  std::string json() const;

  /// Prometheus text exposition format: '.' in names mapped to '_', one
  /// `# HELP`/`# TYPE` pair per family, label values escaped per the
  /// exposition-format rules (backslash, double quote, newline).
  /// Histograms emit cumulative `le` buckets; digests emit summaries with
  /// `quantile` labels.
  std::string prometheus() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Digest> digests_;
};

}  // namespace atlarge::obs
