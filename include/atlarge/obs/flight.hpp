#pragma once
// Causal flight recorder: a bounded black box per entity.
//
// Domains register entities (machines, functions, peers) and record short
// event tuples against them — what happened, when, with what detail, and
// *because of which earlier record* (a global sequence number chains
// causality across entities: a machine-crash record is the cause of every
// task-requeue record it produced). Each entity keeps only its last N
// records in a preallocated ring, so recording is O(1) and allocation-free
// in steady state, cheap enough to leave on for entire runs.
//
// When something goes wrong — in practice, when an SloMonitor fires (see
// Observability::set_alert_dump_path) — chrome_json() dumps the retained
// history as a Chrome trace-event file: one thread lane per entity,
// instant events carrying {seq, cause, detail} args, loadable in Perfetto
// / about://tracing next to the Tracer's span exports. The dump is a pure
// function of recorded sim-time history, so it is byte-identical across
// queue backends and host thread counts.
//
// Event names follow the Tracer discipline: string literals only (the
// recorder stores the pointer, not a copy).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace atlarge::obs {

class FlightRecorder {
 public:
  /// `per_entity` bounds retained records per entity ring.
  explicit FlightRecorder(std::size_t per_entity = 64)
      : per_entity_(per_entity == 0 ? 1 : per_entity) {}

  /// Registers (or looks up) an entity lane by name; returns its id.
  /// Allocates — call during setup, not on the hot path.
  std::size_t entity(const std::string& name);

  std::size_t entities() const noexcept { return rings_.size(); }

  /// Records an event against `entity` at sim-time `t`. `event` must be a
  /// string literal. `cause` is the seq() of the causally preceding record
  /// (0 = spontaneous). Returns this record's sequence number, to be used
  /// as the `cause` of downstream records.
  std::uint64_t record(std::size_t entity, double t, const char* event,
                       double detail = 0.0, std::uint64_t cause = 0);

  /// Sequence number of the most recent record on `entity` (0 if none) —
  /// convenient causal anchor when the producer did not keep the seq.
  std::uint64_t last_seq(std::size_t entity) const {
    return rings_[entity].last_seq;
  }

  std::uint64_t recorded() const noexcept { return next_seq_ - 1; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Chrome trace-event JSON: thread_name metadata per entity, one instant
  /// event per retained record with args {seq, cause, detail}.
  std::string chrome_json() const;
  /// Write chrome_json() to `path`; throws std::runtime_error on failure.
  void write_chrome_json(const std::string& path) const;

 private:
  struct Record {
    double time = 0.0;
    const char* event = nullptr;
    double detail = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t cause = 0;
  };

  struct Ring {
    std::string name;
    std::vector<Record> records;  // capacity per_entity_, filled lazily
    std::size_t head = 0;
    std::size_t size = 0;
    std::uint64_t last_seq = 0;
  };

  std::size_t per_entity_;
  std::vector<Ring> rings_;
  std::map<std::string, std::size_t> index_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dropped_ = 0;
};

}  // namespace atlarge::obs
