#pragma once
// Span/instant tracer over a preallocated ring buffer.
//
// Granula's lesson (paper [100]) generalized: every simulator should be
// able to say *where the time goes*, not just report end-to-end numbers.
// The tracer records begin/end span markers and instant events, each
// stamped with both simulated time and wall time, into a fixed-capacity
// ring: recording is wait-free and allocation-free, and when the ring is
// full the oldest records are overwritten (a drop counter reports how
// many) — a long run degrades to "the most recent window" instead of
// growing without bound.
//
// The null-sink fast path: a default-constructed (or disabled) tracer
// reduces every begin/end/instant call to a load and branch on a single
// bool, so instrumented code pays ~nothing when tracing is off.
//
// `name` and `category` are stored as raw pointers and are NOT copied:
// pass string literals (or strings that outlive the tracer).
//
// Export: chrome_json() emits Chrome trace_event JSON ("JSON Object
// Format", B/E/i phase events, ts in wall-clock microseconds, simulated
// time attached as args.t_sim), directly loadable in about://tracing and
// Perfetto. The exporter re-balances records around ring wraps: orphaned
// E records (whose B was overwritten) are skipped, and spans still open
// at export time are closed at the last recorded timestamp.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::obs {

enum class SpanKind : std::uint8_t { kBegin, kEnd, kInstant };

struct TraceRecord {
  const char* name = "";
  const char* category = "";
  double sim_time = 0.0;  // simulated seconds
  double wall_us = 0.0;   // wall microseconds since tracer enable()
  SpanKind kind = SpanKind::kInstant;
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(std::size_t capacity) { enable(capacity); }

  /// Preallocates a ring of `capacity` records and starts recording;
  /// resets any previously recorded state. capacity 0 leaves the tracer
  /// disabled.
  void enable(std::size_t capacity = 1 << 16);
  void disable() noexcept { enabled_ = false; }
  bool enabled() const noexcept { return enabled_; }

  void begin(const char* name, const char* category, double sim_time = 0.0) {
    if (!enabled_) return;
    record(name, category, sim_time, SpanKind::kBegin);
  }

  void end(const char* name, const char* category, double sim_time = 0.0) {
    if (!enabled_) return;
    record(name, category, sim_time, SpanKind::kEnd);
  }

  void instant(const char* name, const char* category,
               double sim_time = 0.0) {
    if (!enabled_) return;
    record(name, category, sim_time, SpanKind::kInstant);
  }

  /// Records ever submitted (including overwritten ones).
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Records lost to ring wrap (oldest-first).
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Records currently held.
  std::size_t size() const noexcept { return size_; }

  /// Snapshot of the held records, oldest first.
  std::vector<TraceRecord> records() const;

  /// Chrome trace_event JSON (see file comment).
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  void record(const char* name, const char* category, double sim_time,
              SpanKind kind);
  double wall_now_us() const;

  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // index of the oldest record
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
  bool enabled_ = false;
};

/// RAII span: begin on construction, end on destruction. The end record
/// reuses the construction-time sim_time unless set_end_sim_time() was
/// called (simulated time usually advances during the span).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, const char* category,
             double sim_time = 0.0)
      : tracer_(&tracer),
        name_(name),
        category_(category),
        end_sim_time_(sim_time) {
    tracer_->begin(name, category, sim_time);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_end_sim_time(double sim_time) noexcept {
    end_sim_time_ = sim_time;
  }

  ~ScopedSpan() { tracer_->end(name_, category_, end_sim_time_); }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  double end_sim_time_;
};

}  // namespace atlarge::obs
