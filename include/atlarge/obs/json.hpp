#pragma once
// Minimal JSON writer shared by every emitter in the ecosystem: the
// Chrome trace-event exporter, the metrics-registry snapshot, and the
// bench harnesses. One implementation so string escaping and non-finite
// handling cannot diverge between emitters: strings are escaped per RFC
// 8259, and NaN/inf (which JSON cannot represent) are emitted as null.
//
// The writer is append-only with automatic comma management:
//
//   JsonWriter w;
//   w.begin_object().key("name").value("run").key("t").value(1.5);
//   w.key("tags").begin_array().value("a").value("b").end_array();
//   w.end_object();
//   w.str();  // {"name":"run","t":1.5,"tags":["a","b"]}
//
// Callers are responsible for well-formedness (matched begin/end, keys
// only inside objects); the writer does not validate structure. Strings
// ARE validated: control characters are \u-escaped, multi-byte sequences
// are checked as UTF-8 (overlong encodings, surrogate code points, and
// truncated sequences are replaced with U+FFFD, so output is always valid
// UTF-8 JSON even for garbage input), and set_ascii_only(true) escapes
// every non-ASCII code point as \uXXXX (surrogate pairs past the BMP) for
// consumers that cannot be trusted with raw UTF-8.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace atlarge::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }

  JsonWriter& end_object() {
    first_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& begin_array() {
    prefix();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }

  JsonWriter& end_array() {
    first_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    prefix();
    quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    prefix();
    quote(s);
    return *this;
  }

  JsonWriter& value(const char* s) { return value(std::string_view(s)); }

  /// Non-finite doubles become null: JSON has no NaN/inf literal, and
  /// emitting one silently produces output `python -m json.tool` rejects.
  JsonWriter& value(double v) {
    prefix();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ += buf;
    return *this;
  }

  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(std::int64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  JsonWriter& value(bool v) {
    prefix();
    out_ += v ? "true" : "false";
    return *this;
  }

  JsonWriter& null() {
    prefix();
    out_ += "null";
    return *this;
  }

  const std::string& str() const noexcept { return out_; }

  /// When true, every code point >= U+0080 is emitted as a \uXXXX escape
  /// (two escapes forming a surrogate pair beyond the BMP); when false
  /// (default), valid UTF-8 passes through byte-for-byte.
  void set_ascii_only(bool v) noexcept { ascii_only_ = v; }
  bool ascii_only() const noexcept { return ascii_only_; }

 private:
  /// Emits the separating comma before a value/key unless it is the first
  /// element of its container or the value completing a key.
  void prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  void escape_code_point(unsigned cp) {
    char buf[16];
    if (cp < 0x10000) {
      std::snprintf(buf, sizeof(buf), "\\u%04x", cp);
    } else {  // surrogate pair for astral code points
      cp -= 0x10000;
      std::snprintf(buf, sizeof(buf), "\\u%04x\\u%04x",
                    0xd800u + (cp >> 10), 0xdc00u + (cp & 0x3ffu));
    }
    out_ += buf;
  }

  /// Decodes one UTF-8 sequence starting at s[i]; returns the code point
  /// and advances `i` past the sequence, or returns U+FFFD (advancing one
  /// byte) for anything malformed: stray continuation bytes, truncated
  /// sequences, overlong encodings, surrogates, values past U+10FFFF.
  unsigned decode_utf8(std::string_view s, std::size_t& i) {
    const auto byte = [&](std::size_t k) {
      return static_cast<unsigned>(static_cast<unsigned char>(s[k]));
    };
    const unsigned b0 = byte(i);
    std::size_t len = 0;
    unsigned cp = 0;
    if ((b0 & 0xe0u) == 0xc0u) {
      len = 2;
      cp = b0 & 0x1fu;
    } else if ((b0 & 0xf0u) == 0xe0u) {
      len = 3;
      cp = b0 & 0x0fu;
    } else if ((b0 & 0xf8u) == 0xf0u) {
      len = 4;
      cp = b0 & 0x07u;
    } else {  // 0x80..0xbf continuation or 0xf8..0xff: never a lead byte
      ++i;
      return 0xfffdu;
    }
    if (i + len > s.size()) {  // truncated at end of string
      ++i;
      return 0xfffdu;
    }
    for (std::size_t k = 1; k < len; ++k) {
      const unsigned b = byte(i + k);
      if ((b & 0xc0u) != 0x80u) {
        ++i;
        return 0xfffdu;
      }
      cp = (cp << 6) | (b & 0x3fu);
    }
    static constexpr unsigned kMinForLen[5] = {0, 0, 0x80u, 0x800u,
                                               0x10000u};
    if (cp < kMinForLen[len] ||                  // overlong encoding
        (cp >= 0xd800u && cp <= 0xdfffu) ||      // UTF-16 surrogate
        cp > 0x10ffffu) {
      ++i;
      return 0xfffdu;
    }
    i += len;
    return cp;
  }

  void quote(std::string_view s) {
    out_ += '"';
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      switch (c) {
        case '"': out_ += "\\\""; ++i; continue;
        case '\\': out_ += "\\\\"; ++i; continue;
        case '\n': out_ += "\\n"; ++i; continue;
        case '\r': out_ += "\\r"; ++i; continue;
        case '\t': out_ += "\\t"; ++i; continue;
        case '\b': out_ += "\\b"; ++i; continue;
        case '\f': out_ += "\\f"; ++i; continue;
        default: break;
      }
      const unsigned b = static_cast<unsigned char>(c);
      if (b < 0x20) {
        escape_code_point(b);
        ++i;
      } else if (b < 0x80) {
        out_ += c;
        ++i;
      } else {
        const std::size_t start = i;
        const unsigned cp = decode_utf8(s, i);
        if (ascii_only_ || cp == 0xfffdu) {
          escape_code_point(cp);
        } else {
          out_.append(s.substr(start, i - start));
        }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
  bool ascii_only_ = false;
};

}  // namespace atlarge::obs
