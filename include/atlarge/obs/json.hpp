#pragma once
// Minimal JSON writer shared by every emitter in the ecosystem: the
// Chrome trace-event exporter, the metrics-registry snapshot, and the
// bench harnesses. One implementation so string escaping and non-finite
// handling cannot diverge between emitters: strings are escaped per RFC
// 8259, and NaN/inf (which JSON cannot represent) are emitted as null.
//
// The writer is append-only with automatic comma management:
//
//   JsonWriter w;
//   w.begin_object().key("name").value("run").key("t").value(1.5);
//   w.key("tags").begin_array().value("a").value("b").end_array();
//   w.end_object();
//   w.str();  // {"name":"run","t":1.5,"tags":["a","b"]}
//
// Callers are responsible for well-formedness (matched begin/end, keys
// only inside objects); the writer does not validate.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace atlarge::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }

  JsonWriter& end_object() {
    first_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& begin_array() {
    prefix();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }

  JsonWriter& end_array() {
    first_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    prefix();
    quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    prefix();
    quote(s);
    return *this;
  }

  JsonWriter& value(const char* s) { return value(std::string_view(s)); }

  /// Non-finite doubles become null: JSON has no NaN/inf literal, and
  /// emitting one silently produces output `python -m json.tool` rejects.
  JsonWriter& value(double v) {
    prefix();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ += buf;
    return *this;
  }

  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(std::int64_t v) {
    prefix();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  JsonWriter& value(bool v) {
    prefix();
    out_ += v ? "true" : "false";
    return *this;
  }

  JsonWriter& null() {
    prefix();
    out_ += "null";
    return *this;
  }

  const std::string& str() const noexcept { return out_; }

 private:
  /// Emits the separating comma before a value/key unless it is the first
  /// element of its container or the value completing a key.
  void prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace atlarge::obs
