#pragma once
// Log-linear percentile digest (HDR-histogram style): each power-of-two
// octave is split into kSub linear sub-buckets, so any positive value is
// recorded with bounded relative error (one part in kSub, ~3%) using a
// single array increment — no per-sample storage, no data-dependent
// allocation, no comparison sorts.
//
// The digest is the ecosystem's *mergeable* quantile representation: two
// digests over disjoint sample streams merge by adding bucket counts, and
// the merge of per-trial digests answers campaign-level "p99 across all
// repeats" questions that per-trial quantiles cannot (quantiles do not
// average). Bucket counts, extrema, and therefore every quantile are
// insertion-order invariant; only the scalar sum rounds per IEEE addition
// order. Merge is commutative bitwise, and the campaign aggregates merge
// in enumeration order, which is what lets serial and parallel campaign
// runs produce byte-identical merged digests.
//
// Quantiles are reported as the upper edge of the target bucket clamped to
// the observed [min, max], mirroring obs::Histogram's convention but at
// kSub-times finer resolution. serialize()/deserialize() round-trip the
// exact state (%.17g doubles, sparse bucket encoding), so digests persist
// through the campaign store byte-identically.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace atlarge::obs {

class Digest {
 public:
  static constexpr int kSubBits = 5;
  /// Linear sub-buckets per octave: relative error <= 1/kSub.
  static constexpr int kSub = 1 << kSubBits;
  /// Values <= 2^kMinExp collapse into the underflow bucket (with zero and
  /// negatives); values > 2^kMaxExp collapse into the overflow bucket.
  static constexpr int kMinExp = -24;  // ~6.0e-8
  static constexpr int kMaxExp = 40;   // ~1.1e12
  static constexpr int kOctaves = kMaxExp - kMinExp;
  static constexpr int kBuckets = kOctaves * kSub + 2;  // + under/overflow

  /// Records `n` observations of `v`. O(1), allocation-free. Non-finite
  /// values land in the overflow bucket and are excluded from sum/min/max
  /// (they have no usable magnitude); everything else is tracked exactly
  /// in the scalar accumulators and at bucket resolution in the array.
  void add(double v, std::uint64_t n = 1) noexcept;

  /// Adds every observation of `other` into this digest. The result is
  /// identical to having recorded both streams into one digest.
  void merge(const Digest& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return finite_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return finite_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return finite_ == 0 ? 0.0 : sum_ / static_cast<double>(finite_);
  }

  /// Upper-edge estimate of the q-quantile (q clamped to [0,1]), clamped
  /// to the observed [min, max]. Returns 0 when empty. Relative error is
  /// bounded by 1/kSub inside [2^kMinExp, 2^kMaxExp].
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }
  double p999() const noexcept { return quantile(0.999); }

  /// Observations recorded strictly above `x`, at bucket resolution: the
  /// bucket straddling `x` counts as above (conservative for SLO "bad
  /// event" detection). Exact when `x` is a bucket upper edge.
  std::uint64_t count_above(double x) const noexcept;

  /// Inclusive upper edge of bucket `i` (the value quantile() reports for
  /// mass resolved to that bucket, before min/max clamping).
  static double bucket_upper_bound(int i) noexcept;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Exact state comparison — the determinism property tests' workhorse.
  friend bool operator==(const Digest& a, const Digest& b) noexcept {
    return a.count_ == b.count_ && a.finite_ == b.finite_ &&
           a.sum_ == b.sum_ && a.min_ == b.min_ && a.max_ == b.max_ &&
           a.buckets_ == b.buckets_;
  }

  /// Compact exact encoding: "d1;count;finite;sum;min;max;idx:n,idx:n,..."
  /// with %.17g doubles, so deserialize(serialize()) == *this bitwise.
  /// Empty digests serialize to "" and "" deserializes to an empty digest.
  std::string serialize() const;

  /// Parses serialize() output; returns false (leaving `out` empty) on any
  /// malformation. Exposed for the campaign store and external tooling.
  static bool deserialize(std::string_view text, Digest& out);

 private:
  static int bucket_index(double v) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t finite_ = 0;  // observations with a usable magnitude
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace atlarge::obs
