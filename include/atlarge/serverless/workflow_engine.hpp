#pragma once
// Serverless workflow orchestration, modeled on Fission Workflows (the
// system the paper co-created with Platform9, Section 6.4).
//
// A serverless workflow is a DAG of function invocations. Two orchestrator
// designs are compared, reproducing the design argument behind Fission
// Workflows:
//  * External orchestrator: a controller outside the platform polls for
//    step completion every `poll_interval`, adding up to one interval of
//    latency per step plus a per-step scheduling overhead;
//  * Integrated engine: the workflow engine lives in the platform's event
//    path and dispatches successor functions immediately on completion,
//    paying only a small per-step overhead.

#include <cstdint>
#include <vector>

#include "atlarge/serverless/platform.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::serverless {

enum class OrchestratorKind { kExternalPolling, kIntegratedEngine };

struct OrchestratorConfig {
  OrchestratorKind kind = OrchestratorKind::kIntegratedEngine;
  double poll_interval = 0.5;   // s; external orchestrator only
  double step_overhead = 0.01;  // s of control-plane work per step
};

struct WorkflowRunStats {
  double submit = 0.0;
  double finish = 0.0;
  std::size_t steps = 0;
  std::size_t cold_steps = 0;
  double makespan() const noexcept { return finish - submit; }
};

struct WorkflowEngineResult {
  std::vector<WorkflowRunStats> runs;
  double mean_makespan = 0.0;
  double p95_makespan = 0.0;
  double cold_fraction = 0.0;
  double orchestration_overhead = 0.0;  // total added latency, s
};

/// Executes each workflow (a DAG whose task ids index into `registry`
/// via the task's `cores` field, see the mapping convention below)
/// on a FaaS platform under the given orchestrator. Workflows are
/// submitted at their jobs' submit times.
///
/// Mapping convention: task.cores holds the function index plus one (so
/// the job validates as a normal workflow job); task.runtime is ignored
/// in favor of the function's exec_time. This
/// reuses the validated DAG machinery of atlarge::workflow.
WorkflowEngineResult run_workflows(const std::vector<FunctionSpec>& registry,
                                   const std::vector<workflow::Job>& jobs,
                                   const PlatformConfig& platform,
                                   const OrchestratorConfig& orchestrator);

/// Builds a registry of `n` functions with the given exec/cold times.
std::vector<FunctionSpec> uniform_registry(std::size_t n, double exec_time,
                                           double cold_start);

/// A chain workflow of `steps` tasks cycling through the registry.
workflow::Job make_chain_workflow(std::size_t steps, std::size_t functions,
                                  double submit_time);

/// A fan-out/fan-in workflow: source, `width` parallel steps, sink.
workflow::Job make_fanout_workflow(std::size_t width, std::size_t functions,
                                   double submit_time);

}  // namespace atlarge::serverless
