#pragma once
// FaaS platform simulator (paper Section 6.4).
//
// The structure follows the SPEC-RG FaaS reference architecture the paper
// co-authored [103]: an event *router* receives invocations, a *function
// registry* holds function specs, an *instance manager* keeps per-function
// pools of warm instances (keep-alive policy) and performs cold starts,
// and a *resource pool* caps platform concurrency. The serverless
// principles of [101] are encoded directly: operational logic abstracted
// away (the platform manages the lifecycle), fine-grained pay-per-use
// (billing = instance busy+warm seconds), and event-driven elastic scaling.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::sim {
class Simulation;
}

namespace atlarge::serverless {

struct FunctionSpec {
  std::string name;
  double exec_time = 0.1;        // warm execution time, s
  double cold_start = 1.5;       // extra latency when no warm instance, s
  double memory_mb = 128.0;
};

struct PlatformConfig {
  double keep_alive = 600.0;     // warm-instance retention after last use, s
  std::uint32_t max_instances = 1'000;  // platform-wide concurrency cap
  /// Pre-warmed instances per function at t=0 (0 = pure scale-from-zero).
  std::uint32_t prewarmed = 0;
  /// Optional instrumentation plane (not owned, may be null): attaches
  /// the kernel observer, wraps the run in a "faas.run" span, marks cold
  /// starts and queueing as instants, and records invocation counters,
  /// a live-instances gauge, a latency histogram, and a "faas.latency"
  /// registry digest. When the plane carries a TimeSeries or SloMonitor,
  /// its sampling hook is attached to the kernel; when it carries a
  /// FlightRecorder, per-function rings record invoke/cold_start/queue/
  /// fail events with causal links.
  obs::Observability* obs = nullptr;
  /// Optional fault plan (not owned, may be null), replayed through the
  /// kernel fault hook. The platform interprets kMessageLoss (requests
  /// dispatched in the window are dropped), kMessageDelay (requests in
  /// the window are deferred to its end, no attempt consumed), and
  /// kColdStartFailure (new containers for the target function cannot be
  /// provisioned during the window). A null or empty plan keeps behaviour
  /// byte-identical to a fault-unaware platform.
  const fault::FaultPlan* faults = nullptr;
  /// Client-side retry/timeout/backoff policy. The default (one attempt,
  /// no timeout) is a no-op.
  fault::RetryPolicy retry;
  /// When false, PlatformResult::invocations stays empty and the latency
  /// percentiles are estimated from the mergeable latency digest instead
  /// of the exact per-invocation list. This is what makes a streaming
  /// replay O(in-flight requests) in memory: with recording off and an
  /// InvocationSource, nothing scales with the trace length.
  bool record_invocations = true;
};

/// One invocation request.
struct Invocation {
  std::size_t function = 0;  // index into the platform's registry
  double arrival = 0.0;
};

struct InvocationStats {
  std::size_t function = 0;
  double arrival = 0.0;
  double start = 0.0;     // execution start (after cold start if any)
  double finish = 0.0;    // for failed invocations: time of final failure
  bool cold = false;
  std::uint32_t attempts = 1;  // attempts consumed (first try included)
  bool failed = false;         // true if every attempt failed

  double latency() const noexcept { return finish - arrival; }
};

struct PlatformResult {
  std::vector<InvocationStats> invocations;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double p999_latency = 0.0;
  /// Mergeable percentile digest over successful-invocation latencies
  /// (same population as the exact p50/p95/p99 fields); campaign
  /// aggregation merges these across trials.
  obs::Digest latency_digest;
  double cold_fraction = 0.0;
  /// Billed seconds: busy time plus warm idle time across instances — the
  /// serverless cost driver.
  double billed_instance_seconds = 0.0;
  /// Busy seconds only (useful work).
  double busy_instance_seconds = 0.0;
  std::uint32_t peak_instances = 0;
  /// Fault/retry outcomes. With a null/empty plan and the default retry
  /// policy: failed_invocations == retries == 0 and success_rate == 1.
  std::size_t failed_invocations = 0;
  std::size_t retries = 0;
  double success_rate = 1.0;
  std::size_t faults_injected = 0;
  std::size_t faults_recovered = 0;
  /// Instance creations refused by the backing substrate (always 0 for the
  /// abstract pool). A refused creation consumes an attempt, like a
  /// cold-start failure.
  std::size_t capacity_denials = 0;
};

/// Pull-source of invocations in nondecreasing arrival order. The
/// streaming run_platform overload drains one of these lazily — the next
/// invocation is pulled only when the previous one's arrival fires — so a
/// trace-backed source (e.g. trace::catalog's event adapter over a chunked
/// .atl reader) replays with bounded memory.
class InvocationSource {
 public:
  virtual ~InvocationSource() = default;
  /// Fills `out` with the next invocation; returns false at end of load.
  virtual bool next(Invocation& out) = 0;
};

/// Simulates the invocations (sorted by arrival) against the platform.
PlatformResult run_platform(const std::vector<FunctionSpec>& registry,
                            const std::vector<Invocation>& invocations,
                            const PlatformConfig& config);

/// Streaming variant: pulls invocations lazily from `source` (arrivals
/// must be nondecreasing; throws std::invalid_argument otherwise).
/// Completed requests release their bookkeeping slot, so with
/// config.record_invocations == false the platform's memory is bounded by
/// the number of in-flight requests, not the trace length.
PlatformResult run_platform(const std::vector<FunctionSpec>& registry,
                            InvocationSource& source,
                            const PlatformConfig& config);

/// Backing substrate for instance provisioning — the seam through which a
/// composition layer (eco::Ecosystem) replaces the platform's abstract
/// instance pool with a real datacenter model. Every instance creation
/// asks the substrate for a machine lease; every instance destruction
/// returns it. A null backing is the abstract pool: creations always
/// succeed and cost nothing beyond the function's cold start.
class InstanceBacking {
 public:
  virtual ~InstanceBacking() = default;
  /// Lease capacity for one instance of `function`. On success fills
  /// `machine` (substrate machine id, echoed back on release) and
  /// `extra_latency` (additional provisioning delay — real machine
  /// power-up — added to the instance's first cold start) and returns
  /// true. Returns false when the substrate is out of capacity; the
  /// triggering attempt then fails like a cold-start failure.
  virtual bool acquire(std::size_t function, std::uint32_t& machine,
                       double& extra_latency) = 0;
  /// An instance was destroyed (keep-alive expiry, recycling, or crash);
  /// its lease on `machine` is returned.
  virtual void release(std::uint32_t machine) = 0;
};

namespace detail {
class FaasEngine;
}

/// Composable form of the platform: the same engine run_platform uses, but
/// scheduled onto an externally owned kernel so several domain simulators
/// share one clock (eco::Ecosystem). prepare() schedules prewarm pools,
/// fault hooks, and arrivals; the caller runs the shared kernel past the
/// platform's quiescence; collect() finalizes. With a null backing and no
/// fail_machine calls the per-domain event stream is byte-identical to a
/// standalone run_platform run.
class PlatformDriver {
 public:
  /// All referenced objects must outlive the driver. `invocations` must be
  /// sorted by arrival.
  PlatformDriver(const std::vector<FunctionSpec>& registry,
                 const std::vector<Invocation>& invocations,
                 const PlatformConfig& config, sim::Simulation& sim,
                 InstanceBacking* backing = nullptr);
  ~PlatformDriver();
  PlatformDriver(const PlatformDriver&) = delete;
  PlatformDriver& operator=(const PlatformDriver&) = delete;

  /// Schedules prewarm pools, fault hooks, and invocation arrivals.
  void prepare();
  /// Finalizes statistics after the shared kernel has run. Correct as
  /// long as the kernel ran past the platform's last invocation finish;
  /// keep-alive expiries cut off after that point only re-bill idle time
  /// that finalize() clamps identically.
  PlatformResult collect();

  /// Crash propagation from the backing substrate: warm instances on
  /// `machine` are destroyed (their leases released); busy instances are
  /// doomed — they finish their committed execution, then are destroyed
  /// instead of rejoining the warm pool.
  void fail_machine(std::uint32_t machine);

 private:
  std::unique_ptr<detail::FaasEngine> engine_;
};

/// Microservice baseline: `instances` always-on servers per function, FIFO
/// queueing, no cold starts, billed for the full horizon.
PlatformResult run_microservice_baseline(
    const std::vector<FunctionSpec>& registry,
    const std::vector<Invocation>& invocations, std::uint32_t instances,
    double horizon);

/// Bursty invocation workload: Poisson background plus periodic bursts —
/// the traffic shape that makes serverless economics interesting.
std::vector<Invocation> bursty_invocations(std::size_t functions,
                                           double base_rate, double horizon,
                                           double burst_every,
                                           std::size_t burst_size,
                                           atlarge::stats::Rng& rng);

}  // namespace atlarge::serverless
