#pragma once
// Umbrella header for the AtLarge library: an executable rendition of the
// ATLARGE design framework for Massivizing Computer Systems (Iosup et al.,
// ICDCS 2019) together with the simulation substrates behind every
// experiment of the paper's Section 6.
//
// Modules (each usable independently):
//   atlarge::stats      - statistics, distributions, reproducible RNG
//   atlarge::sim        - discrete-event simulation kernel
//   atlarge::obs        - metrics registry, span tracer, kernel observer,
//                         continuous telemetry (time series, percentile
//                         digests, SLO burn-rate monitors, flight recorder)
//   atlarge::trace      - trace tables, FAIR archive catalogs, and the
//                         workload plane: .atl binary columnar traces,
//                         seeded generators, scenario catalog + replay
//   atlarge::workflow   - jobs, DAGs, workload generators
//   atlarge::cluster    - datacenter model, cost models, Figure 9 ref. arch.
//   atlarge::sched      - scheduler zoo + portfolio scheduling (Table 9)
//   atlarge::autoscale  - autoscalers, elasticity metrics, rankings (S 6.7)
//   atlarge::p2p        - BitTorrent swarm/ecosystem simulation (Table 5)
//   atlarge::mmog       - MMOG workloads, provisioning, AoS (Table 6)
//   atlarge::serverless - FaaS platform + workflow engine (Table 7)
//   atlarge::graph      - Graphalytics algorithms + PAD law (Table 8)
//   atlarge::design     - the design framework itself (Figs. 1-3, 5-8)
//   atlarge::exp        - design-space campaign engine (specs, memoized
//                         parallel trials, checkpoint/resume, aggregation)
//   atlarge::fault      - deterministic fault plans + kernel injector
//                         (chaos dimension of every domain simulator)

#include "atlarge/autoscale/autoscaler.hpp"
#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/autoscale/metrics.hpp"
#include "atlarge/autoscale/ranking.hpp"
#include "atlarge/cluster/cost.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/cluster/refarch.hpp"
#include "atlarge/design/bdc.hpp"
#include "atlarge/design/bibliometrics.hpp"
#include "atlarge/design/catalog.hpp"
#include "atlarge/design/design_space.hpp"
#include "atlarge/design/exploration.hpp"
#include "atlarge/design/memex.hpp"
#include "atlarge/design/review.hpp"
#include "atlarge/exp/adapter.hpp"
#include "atlarge/exp/adapters.hpp"
#include "atlarge/exp/aggregate.hpp"
#include "atlarge/exp/campaign.hpp"
#include "atlarge/exp/engine.hpp"
#include "atlarge/exp/runner.hpp"
#include "atlarge/exp/store.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/fault/injector.hpp"
#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/granula.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"
#include "atlarge/mmog/analytics.hpp"
#include "atlarge/mmog/interest.hpp"
#include "atlarge/mmog/provisioning.hpp"
#include "atlarge/mmog/workload.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/obs/flight.hpp"
#include "atlarge/obs/json.hpp"
#include "atlarge/obs/metrics.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/obs/slo.hpp"
#include "atlarge/obs/timeseries.hpp"
#include "atlarge/obs/trace.hpp"
#include "atlarge/p2p/ecosystem.hpp"
#include "atlarge/p2p/flashcrowd.hpp"
#include "atlarge/p2p/monitor.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/p2p/swarmnet.hpp"
#include "atlarge/p2p/twofast.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/policy.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/serverless/workflow_engine.hpp"
#include "atlarge/sim/resource.hpp"
#include "atlarge/sim/sampler.hpp"
#include "atlarge/sim/sharded.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/bootstrap.hpp"
#include "atlarge/stats/correlation.hpp"
#include "atlarge/stats/descriptive.hpp"
#include "atlarge/stats/distributions.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/stats/violin.hpp"
#include "atlarge/trace/archive.hpp"
#include "atlarge/trace/atl.hpp"
#include "atlarge/trace/catalog.hpp"
#include "atlarge/trace/event.hpp"
#include "atlarge/trace/gen.hpp"
#include "atlarge/trace/record.hpp"
#include "atlarge/workflow/generators.hpp"
#include "atlarge/workflow/job.hpp"
#include "atlarge/workflow/vicissitude.hpp"
