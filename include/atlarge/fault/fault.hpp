#pragma once
// Deterministic fault-injection plane (the dependability arm of the MCS
// principles): churn, flash crowds, and partial failure are first-class
// inputs to every AtLarge simulator, not afterthoughts.
//
// The design splits stochasticity from application:
//  * A FaultPlan is a *materialized* list of fault events. All randomness
//    lives in FaultPlan::generate, which derives every event from
//    (seed, event index) independently — so two plans generated with the
//    same seed but different rates are supersets of one another, which is
//    what makes "sweep faults.rate" campaigns monotone-comparable.
//  * Applying a plan is purely deterministic: domains interpret events as
//    windows/outages, so a plan replayed from its serialized form yields
//    byte-identical results (the chaos property tests pin this).
//
// Determinism contract (same discipline as the campaign engine): for a
// fixed plan, results are identical at 1, 2, and 8 runner threads and
// across killed-and-resumed campaigns, because plans are constructed
// per-trial from the trial seed and never shared mutable state.

#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::fault {

enum class FaultKind : std::uint8_t {
  kMachineCrash = 0,     // machine outage for `duration`, then restart
  kMessageLoss,          // requests in [time, time+duration) are dropped
  kMessageDelay,         // requests in the window are deferred to its end
  kColdStartFailure,     // cold starts in the window fail
  kChurnSpike,           // `magnitude` fraction of peers leave at `time`
  kSlowdown,             // target limps at `magnitude` speed for `duration`
};

inline constexpr std::size_t kFaultKindCount = 6;

/// Stable spec/serialization token ("machine_crash", "message_loss", ...).
const char* to_string(FaultKind kind) noexcept;
/// Parses a to_string token; false on unknown input.
bool fault_kind_from_string(const std::string& token, FaultKind& out);
/// Span/instant name for obs mirroring ("fault.machine_crash", ...);
/// returns a string literal, safe to hand to obs::Tracer.
const char* span_name(FaultKind kind) noexcept;

struct FaultEvent {
  double time = 0.0;         // injection time, simulated seconds
  FaultKind kind = FaultKind::kMachineCrash;
  std::uint32_t target = 0;  // domain-defined (machine/function index, ...)
  double duration = 0.0;     // outage / window length, seconds
  double magnitude = 0.0;    // churn fraction / slowdown factor, in (0, 1]

  bool operator==(const FaultEvent&) const = default;
};

/// Generative description of a plan. `rate` is the expected number of
/// fault events per 1000 simulated seconds over [0, horizon).
struct FaultSpec {
  double rate = 0.0;
  double horizon = 1'000.0;
  std::uint64_t seed = 1;
  /// Target ids are drawn uniformly from [0, targets). Domains reduce
  /// them modulo their own entity count, so any value >= 1 works.
  std::uint32_t targets = 16;
  double mean_duration = 60.0;    // exponential outage/window length
  double mean_magnitude = 0.4;    // center of the magnitude draw
  /// Kinds to draw from; empty = all kinds.
  std::vector<FaultKind> kinds;
};

/// A deterministic, replayable list of fault events, sorted by time
/// (generation order breaks ties). Value type; copy freely.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Derives round(rate * horizon / 1000) events, each a pure function of
  /// (spec.seed, event index) — plans at a lower rate with the same seed
  /// are subsets of plans at a higher rate.
  static FaultPlan generate(const FaultSpec& spec);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Appends an event (manual plan construction); keeps the list sorted
  /// by time, preserving insertion order among equal times.
  void add(const FaultEvent& event);

  /// Events with time in [t0, t1), in plan order.
  std::vector<FaultEvent> events_between(double t0, double t1) const;

  /// Line-oriented text form:
  ///   faultplan v1
  ///   seed 42
  ///   event <time> <kind> <target> <duration> <magnitude>
  /// Doubles are rendered with %.17g, so deserialize(serialize()) is an
  /// exact (bitwise) round trip.
  std::string serialize() const;
  /// Parses serialize() output; throws std::invalid_argument (with a line
  /// number) on malformed input.
  static FaultPlan deserialize(const std::string& text);

  bool operator==(const FaultPlan&) const = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultEvent> events_;
};

/// Retry/timeout/backoff policy for request-shaped work (serverless
/// invocations). The defaults are a no-op: one attempt, no timeout — a
/// platform configured with the default policy behaves exactly as one
/// that predates the fault plane.
struct RetryPolicy {
  /// Total attempts (first try included); >= 1.
  std::uint32_t max_attempts = 1;
  /// Per-attempt timeout in seconds; 0 disables timeouts.
  double timeout = 0.0;
  /// Delay before retry k (1-based) is backoff_base * backoff_factor^(k-1),
  /// capped at backoff_cap.
  double backoff_base = 0.5;
  double backoff_factor = 2.0;
  double backoff_cap = 60.0;

  /// Delay before the retry_index-th retry (retry_index >= 1).
  double backoff_delay(std::uint32_t retry_index) const noexcept;
};

}  // namespace atlarge::fault
