#pragma once
// Injector: bridges a FaultPlan onto a sim::Simulation through the
// kernel's fault hook, so injections are ordinary kernel events — totally
// ordered against domain events, deterministic, and visible to the
// attached Observer like any other event.
//
// Usage (domain engines):
//   fault::Injector injector(plan, obs);
//   injector.on_kind(fault::FaultKind::kMachineCrash,
//                    [&](const fault::FaultEvent& e) { crash(e); });
//   sim.set_fault_hook(&injector);   // schedules one event per plan entry
//
// The injector mirrors every handled injection into the obs plane:
// `fault.injected` (plus a per-kind `fault.injected.<kind>` counter) and a
// "fault.<kind>" instant in the "fault" span category. Domains report
// healing through recovered(), which bumps `fault.recovered` and emits a
// matching instant — so an exported trace shows inject/recover pairs on
// the same timeline as kernel and domain spans. Events whose kind has no
// registered handler are counted under `fault.ignored` and otherwise
// skipped, which lets one plan drive several engines that each consume
// only the kinds they understand.

#include <array>
#include <cstdint>
#include <functional>

#include "atlarge/fault/fault.hpp"
#include "atlarge/sim/simulation.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {

class Injector final : public sim::FaultHook {
 public:
  using Handler = std::function<void(const FaultEvent&)>;

  /// Neither the plan nor the obs plane is owned; both must outlive the
  /// injector (and the Simulation it is attached to).
  explicit Injector(const FaultPlan& plan,
                    obs::Observability* obs = nullptr);

  /// Registers the handler for `kind` (replacing any previous one).
  /// Register handlers *before* attaching the hook.
  void on_kind(FaultKind kind, Handler handler);

  /// sim::FaultHook: schedules one kernel event per plan entry. Called by
  /// Simulation::set_fault_hook.
  void attach(sim::Simulation& sim) override;

  /// Domains call this when a fault heals (machine restarted, invocation
  /// succeeded after faulted attempts): bumps `fault.recovered` and emits
  /// a "fault.<kind>" recovery instant at simulated time `now`.
  void recovered(const FaultEvent& event, double now);

  std::size_t injected() const noexcept { return injected_; }
  std::size_t recovered_count() const noexcept { return recovered_; }
  std::size_t ignored() const noexcept { return ignored_; }

 private:
  void fire(const FaultEvent& event, double now);

  const FaultPlan* plan_;
  obs::Observability* obs_;
  std::array<Handler, kFaultKindCount> handlers_{};
  std::size_t injected_ = 0;
  std::size_t recovered_ = 0;
  std::size_t ignored_ = 0;
};

}  // namespace atlarge::fault
