#pragma once
// Seeded deterministic workload generators (paper Secs. 3.6, 5).
//
// Each generator models a population of *sessions*: entities arrive under
// a time-varying rate (a nonhomogeneous Poisson process sampled by
// thinning), stay for a heavy-tailed duration, and issue requests at
// exponential gaps while present. Popularity follows a zipfian law over a
// fixed entity universe, request sizes are lognormal, and entities map to
// regions with a stable skew — the statistical fingerprints the paper's
// case studies (flashcrowds in BitTorrent swarms, diurnal gaming load,
// bursty serverless traffic) report from real traces.
//
// Determinism: every generator is a pure function of (spec, seed). Events
// are emitted in nondecreasing t_us order into an EventSink, so a
// generator can feed a TraceWriter directly and a million-user day never
// needs to be resident in memory. Session lifetimes overlap, so the
// generator keeps a merge heap of the currently-open sessions' pending
// events — memory is O(concurrent sessions), not O(total events).
//
// Event field conventions (see event.hpp):
//   kSessionStart.size = session duration, milliseconds
//   kRequest.size      = request payload/work size, KB
//   kSessionEnd.size   = number of requests the session issued

#include <cstdint>

#include "atlarge/stats/rng.hpp"
#include "atlarge/trace/event.hpp"

namespace atlarge::trace::gen {

/// Zipf(s) sampler over ranks [0, n) by rejection inversion (Hörmann &
/// Derflinger): O(1) memory and O(1) expected time per draw regardless of
/// n, so a million-entity universe costs nothing to skew. s = 0 is
/// uniform; s ~ 1 is the classic web/key-popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double s);

  std::int64_t operator()(stats::Rng& rng) const;

  std::int64_t n() const noexcept { return n_; }
  double s() const noexcept { return s_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::int64_t n_;
  double s_;
  double h_x1_;          // hIntegral(1.5) - h(1)
  double h_n_;           // hIntegral(n + 0.5)
  double threshold_;     // s-constant of the rejection test
};

/// Population mix: who issues load, from where, and how big requests are.
struct Mix {
  std::int64_t entities = 100'000;  // entity universe size
  double zipf_s = 0.99;             // popularity skew over entities
  std::int64_t regions = 4;         // region count; skewed toward region 0
  double size_log_mean = 2.0;       // request size ~ lognormal, ln(KB)
  double size_log_sigma = 1.0;
};

/// Session length and in-session request process.
struct SessionShape {
  enum class Tail {
    kPareto,     // duration = scale * U^(-1/alpha) (heavy tail)
    kLognormal,  // duration = exp(N(log_mu, log_sigma))
  };
  Tail tail = Tail::kPareto;
  double pareto_alpha = 1.5;   // tail index; < 2 => infinite variance
  double pareto_scale = 30.0;  // minimum session length, s
  double log_mu = 4.0;         // lognormal ln-seconds
  double log_sigma = 1.0;
  double max_duration = 7200.0;    // truncation cap, s
  double mean_request_gap = 5.0;   // s between requests within a session
  std::int64_t max_requests = 256; // per-session request cap
};

/// Flashcrowd: Poisson base-rate session arrivals plus a Gaussian surge
/// pulse centred at surge_time — the video-streaming / e-commerce spike
/// shape (sharp onset, symmetric decay).
struct FlashcrowdSpec {
  double duration = 3600.0;    // trace horizon, s
  double base_rate = 50.0;     // session starts per second, baseline
  double surge_time = 1800.0;  // pulse centre, s
  double surge_rate = 450.0;   // extra session starts/s at the peak
  double surge_width = 120.0;  // pulse sigma, s
  Mix mix;
  SessionShape session;
};

/// Diurnal: sinusoidal rate modulation around a mean — the day/night cycle
/// of gaming and leaderboard traffic.
struct DiurnalSpec {
  double duration = 86'400.0;   // trace horizon, s
  double mean_rate = 20.0;      // mean session starts per second
  double amplitude = 0.8;       // relative swing in [0, 1)
  double period = 86'400.0;     // cycle length, s
  double phase = 0.0;           // radians; 0 starts at the mean, rising
  Mix mix;
  SessionShape session;
};

/// Generates the flashcrowd trace; emits events in nondecreasing t_us
/// order. Pure function of (spec, seed).
void flashcrowd(const FlashcrowdSpec& spec, std::uint64_t seed,
                const EventSink& sink);

/// Generates the diurnal trace; same contract as flashcrowd().
void diurnal(const DiurnalSpec& spec, std::uint64_t seed,
             const EventSink& sink);

}  // namespace atlarge::trace::gen
