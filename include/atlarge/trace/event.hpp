#pragma once
// The canonical workload-event schema of the trace plane.
//
// Every workload generator (trace/gen.hpp) and every catalog scenario
// (trace/catalog.hpp) speaks one five-column record: *when* (microsecond
// timestamp), *who* (entity — a user, peer, or tenant id), *what* (session
// start / request / session end), *how much* (size, in work units the
// consuming engine interprets), and *where* (region). All five are integer
// columns, which is what makes the .atl delta/varint encoding compact: a
// million-user day compresses to a few bytes per event.
//
// The schema is deliberately engine-agnostic. A serverless replay turns
// requests into invocations; a P2P replay turns session starts into peer
// arrivals; the sched/autoscale replays turn sessions into submitted jobs.
// One trace, four engines — the paper's "workloads as first-class design
// artifacts" (Secs. 3.6, 5) made concrete.

#include <cstdint>
#include <functional>
#include <vector>

#include "atlarge/trace/record.hpp"

namespace atlarge::trace {

/// What an event marks in an entity's lifetime.
enum class EventKind : std::int64_t {
  kSessionStart = 0,  // entity appears (peer arrival, user login, job submit)
  kRequest = 1,       // one unit of demand (invocation, delivery, message)
  kSessionEnd = 2,    // entity departs
};

/// One workload event. All fields are integers so the .atl writer can
/// delta/varint-encode every column.
struct Event {
  std::int64_t t_us = 0;    // microseconds since trace start, nondecreasing
  std::int64_t entity = 0;  // stable user/peer/key id
  std::int64_t kind = 0;    // EventKind
  std::int64_t size = 0;    // work units (payload KB, core-ms, fanout, ...)
  std::int64_t region = 0;  // region/zone index

  double t_seconds() const noexcept {
    return static_cast<double>(t_us) * 1e-6;
  }
};

/// Seconds -> event timestamp (the one conversion every generator uses).
inline std::int64_t to_micros(double seconds) noexcept {
  return static_cast<std::int64_t>(seconds * 1e6 + 0.5);
}

/// The canonical column set: {t_us, entity, kind, size, region}, all kInt.
std::vector<Column> event_schema();

/// True when `schema` is exactly the canonical event schema (names, order,
/// and types all match).
bool is_event_schema(const std::vector<Column>& schema);

/// Push-side consumer: generators emit events in nondecreasing t_us order
/// into a sink (a TraceWriter, a vector, a replay adapter, ...).
using EventSink = std::function<void(const Event&)>;

/// Pull-side producer: replay adapters drain a stream one event at a time,
/// so a multi-GB .atl trace replays with only the reader's current chunk
/// resident. Streams yield events in nondecreasing t_us order.
class EventStream {
 public:
  virtual ~EventStream() = default;
  /// Fills `out` with the next event; returns false at end of stream.
  virtual bool next(Event& out) = 0;
};

/// In-memory stream over a pre-generated event vector (campaign trials and
/// tests; the file-backed counterpart is AtlEventStream in atl.hpp).
class VectorEventStream final : public EventStream {
 public:
  explicit VectorEventStream(const std::vector<Event>& events)
      : events_(&events) {}

  bool next(Event& out) override {
    if (pos_ >= events_->size()) return false;
    out = (*events_)[pos_++];
    return true;
  }

 private:
  const std::vector<Event>* events_;
  std::size_t pos_ = 0;
};

/// Caps an underlying stream at `max_events` (0 = unlimited) — the
/// `--max-events` CLI knob and the CI scenario-smoke cap.
class CappedEventStream final : public EventStream {
 public:
  CappedEventStream(EventStream& inner, std::size_t max_events)
      : inner_(&inner), remaining_(max_events == 0 ? SIZE_MAX : max_events) {}

  bool next(Event& out) override {
    if (remaining_ == 0) return false;
    if (!inner_->next(out)) return false;
    --remaining_;
    return true;
  }

 private:
  EventStream* inner_;
  std::size_t remaining_;
};

}  // namespace atlarge::trace
