#pragma once
// .atl: the compact binary columnar trace format of the workload plane.
//
// Layout (all integers little-endian):
//
//   file   := header chunk*
//   header := magic "ATLTRC01" (8 bytes)
//           | u32 version (= 1)
//           | u16 column count
//           | column*            -- u8 type (0 int, 1 real, 2 text)
//                                   u16 name length, name bytes
//   chunk  := u32 chunk magic (0x43BA715E)
//           | u32 row count (> 0)
//           | colblock[ncols]    -- u8 encoding
//                                   varint payload length, payload bytes
//           | u32 crc32          -- IEEE CRC-32 over row count + colblocks
//
// Column encodings:
//   0  int:  zigzag(delta) varints — the first value is a delta from 0, so
//            sorted id/timestamp columns shrink to ~1-2 bytes per row;
//   1  real: raw IEEE-754 binary64, little-endian (exact round-trip);
//   2  text: varint byte length + UTF-8 bytes per cell.
//
// Streaming contract: the writer buffers one chunk of rows and flushes it
// as a self-contained, CRC-protected block; the reader holds exactly one
// decoded chunk at a time, so replaying a multi-GB trace keeps resident
// memory bounded by the chunk size, never the file size. A file whose last
// chunk was cut off mid-write (a crash) can be read with
// ReaderOptions::allow_partial_tail, which stops cleanly at the last
// complete chunk — the same tail-repair discipline as the campaign JSONL
// store. A CRC mismatch on a fully present chunk is corruption, not a
// crash tail, and always fails with a clear error.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "atlarge/trace/event.hpp"
#include "atlarge/trace/record.hpp"

namespace atlarge::obs {
class Registry;
}

namespace atlarge::trace {

/// Format constants shared by writer, reader, and the robustness tests.
inline constexpr char kAtlMagic[8] = {'A', 'T', 'L', 'T', 'R', 'C', '0', '1'};
inline constexpr std::uint32_t kAtlVersion = 1;
inline constexpr std::uint32_t kAtlChunkMagic = 0x43BA715Eu;

/// IEEE CRC-32 (reflected polynomial 0xEDB88320) over `data`.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

/// LEB128 unsigned varint append / zigzag signed mapping (exposed for the
/// property tests; the writer and reader use them internally).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t zigzag_encode(std::int64_t v) noexcept;
std::int64_t zigzag_decode(std::uint64_t v) noexcept;

struct WriterOptions {
  /// Rows buffered per chunk. The reader's resident memory is proportional
  /// to this, so it is the memory/throughput dial of the whole plane.
  std::size_t chunk_rows = 1 << 16;
};

/// Streaming columnar writer. Rows are staged column-wise and flushed as
/// self-contained chunks, so writing never holds more than one chunk.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header immediately.
  /// Throws std::runtime_error when the file cannot be opened.
  TraceWriter(const std::string& path, std::vector<Column> schema,
              WriterOptions options = {});
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  const std::vector<Column>& schema() const noexcept { return schema_; }

  /// Appends one row; throws std::invalid_argument on arity or type
  /// mismatch (same contract as Table::append).
  void append_row(const std::vector<Field>& row);

  /// Fast path for the canonical event schema; throws std::logic_error
  /// when the writer's schema is not event_schema().
  void append(const Event& event);

  /// Flushes the staged rows as one chunk (no-op when empty).
  void flush_chunk();

  /// Flushes and closes the file; further appends throw. Called by the
  /// destructor, but call it explicitly to observe write errors.
  void finish();

  std::uint64_t rows_written() const noexcept { return rows_written_; }
  std::uint64_t chunks_written() const noexcept { return chunks_written_; }
  /// Bytes emitted so far, header included (staged rows excluded).
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  void write_raw(const void* data, std::size_t size);

  std::vector<Column> schema_;
  WriterOptions options_;
  std::ofstream out_;
  bool finished_ = false;
  bool is_event_schema_ = false;
  std::size_t staged_rows_ = 0;
  // Column-wise staging buffers, indexed by column.
  std::vector<std::vector<std::int64_t>> int_cols_;
  std::vector<std::vector<double>> real_cols_;
  std::vector<std::vector<std::string>> text_cols_;
  std::vector<std::uint8_t> scratch_;  // encoded chunk, reused across flushes
  std::uint64_t rows_written_ = 0;
  std::uint64_t chunks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
};

struct ReaderOptions {
  /// Tolerate a truncated final chunk (crash tail): reading stops cleanly
  /// at the last complete chunk and truncated() reports true. With the
  /// default false, a truncated file throws std::runtime_error.
  bool allow_partial_tail = false;
  /// Optional metrics registry (not owned, may be null). The reader keeps
  /// trace.reader_chunks / trace.reader_rows counters and a
  /// trace.reader_resident_bytes gauge (high-water mark of buffer + decoded
  /// columns) — the counter the bounded-memory replay contract is asserted
  /// against.
  obs::Registry* obs = nullptr;
};

/// Chunk-at-a-time columnar reader. Exactly one chunk is decoded and
/// resident at any moment; text cells are string_views into the chunk
/// buffer (zero-copy), valid until the next next_chunk() call.
class TraceReader {
 public:
  /// Opens and validates the header. Throws std::runtime_error on missing
  /// files, bad magic, or unsupported versions.
  explicit TraceReader(const std::string& path, ReaderOptions options = {});

  const std::vector<Column>& schema() const noexcept { return schema_; }

  /// Decodes the next chunk; returns false at (clean) end of file. Throws
  /// std::runtime_error on CRC mismatch or malformed chunks, and on
  /// truncation unless allow_partial_tail is set.
  bool next_chunk();

  /// Rows in the current chunk (0 before the first next_chunk()).
  std::size_t rows() const noexcept { return chunk_rows_; }

  /// Column accessors for the current chunk. `row` < rows(); `col` must
  /// have the matching type (checked, throws std::invalid_argument).
  std::int64_t int_at(std::size_t col, std::size_t row) const;
  double real_at(std::size_t col, std::size_t row) const;
  std::string_view text_at(std::size_t col, std::size_t row) const;

  /// Whole decoded int column of the current chunk (for bulk consumers).
  const std::vector<std::int64_t>& int_column(std::size_t col) const;
  const std::vector<double>& real_column(std::size_t col) const;

  /// True when a truncated tail was tolerated (allow_partial_tail only).
  bool truncated() const noexcept { return truncated_; }

  std::uint64_t rows_read() const noexcept { return rows_read_; }
  std::uint64_t chunks_read() const noexcept { return chunks_read_; }
  /// High-water mark of resident decode memory (chunk buffer + decoded
  /// columns), in bytes — mirrors the trace.reader_resident_bytes gauge.
  std::uint64_t peak_resident_bytes() const noexcept {
    return peak_resident_;
  }

 private:
  void account_residency();

  std::ifstream in_;
  ReaderOptions options_;
  std::vector<Column> schema_;
  std::vector<std::uint8_t> buffer_;  // raw chunk bytes, reused
  std::vector<std::vector<std::int64_t>> int_cols_;
  std::vector<std::vector<double>> real_cols_;
  // Text columns decode to (offset, length) pairs into buffer_.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> text_cols_;
  std::size_t chunk_rows_ = 0;
  bool truncated_ = false;
  std::uint64_t rows_read_ = 0;
  std::uint64_t chunks_read_ = 0;
  std::uint64_t peak_resident_ = 0;
};

/// Pull-stream facade over a TraceReader whose schema is event_schema()
/// (validated in the constructor; throws std::runtime_error otherwise).
/// This is how catalog replays drain .atl files with bounded memory.
class AtlEventStream final : public EventStream {
 public:
  explicit AtlEventStream(TraceReader& reader);

  bool next(Event& out) override;

 private:
  TraceReader* reader_;
  std::size_t row_ = 0;
};

/// Convenience: writes a whole Table as one .atl file (chunked per
/// options) / reads a whole .atl file back into a Table. The streaming
/// API above is the real interface; these serve the property tests and
/// small-table interop with the CSV paths.
void write_atl(const Table& table, const std::string& path,
               WriterOptions options = {});
Table read_atl(const std::string& path, ReaderOptions options = {});

}  // namespace atlarge::trace
