#pragma once
// Generic tabular trace records with schema-checked CSV I/O.
//
// The paper argues (Sections 3.6 and 6.1-6.2) that sharing workload and
// operational traces through FAIR/FOAD archives is a first-class design
// output. This module is the storage substrate for that: a small, typed,
// dependency-free table format every simulator can serialize into.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace atlarge::trace {

/// Cell value: integer, real, or text.
using Field = std::variant<std::int64_t, double, std::string>;

enum class FieldType { kInt, kReal, kText };

/// Ordered column declaration.
struct Column {
  std::string name;
  FieldType type = FieldType::kReal;
};

/// A table: schema plus rows. Rows are checked against the schema on
/// append, so a Table is well-formed by construction.
class Table {
 public:
  explicit Table(std::vector<Column> schema);

  const std::vector<Column>& schema() const noexcept { return schema_; }
  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return schema_.size(); }

  /// Appends a row; throws std::invalid_argument on arity or type mismatch.
  void append(std::vector<Field> row);

  const std::vector<Field>& row(std::size_t i) const { return rows_.at(i); }

  /// Column index by name; returns npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t column_index(const std::string& name) const noexcept;

  /// Extracts a numeric column (ints widened to double).
  /// Throws std::invalid_argument for text columns or unknown names.
  std::vector<double> numeric_column(const std::string& name) const;

  /// Serializes as CSV with a header row. Text cells are quoted when they
  /// contain separators or quotes.
  void write_csv(std::ostream& out) const;

  /// Parses a CSV produced by write_csv, validating against `schema`.
  /// Throws std::runtime_error on malformed input.
  static Table read_csv(std::istream& in, std::vector<Column> schema);

 private:
  std::vector<Column> schema_;
  std::vector<std::vector<Field>> rows_;
};

}  // namespace atlarge::trace
