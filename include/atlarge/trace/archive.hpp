#pragma once
// Trace-archive catalog with FAIR metadata.
//
// Models the Peer-to-Peer Trace Archive and the Game Trace Archive from the
// paper (Sections 3.6, 6.1, 6.2): a catalog of datasets, each carrying
// provenance metadata and a FAIR (Findable, Accessible, Interoperable,
// Reusable) self-assessment. The paper treats archive design as a design
// activity in its own right; this module makes the checklist executable.

#include <optional>
#include <string>
#include <vector>

namespace atlarge::trace {

/// Application domain of a dataset; mirrors the paper's experiment domains.
enum class Domain {
  kP2P,
  kGaming,
  kDatacenter,
  kServerless,
  kGraph,
  kWorkflow,
  kOther,
};

std::string to_string(Domain d);

/// FAIR self-assessment, one criterion per principle (Wilkinson et al.).
struct FairAssessment {
  bool findable_identifier = false;   // F: globally unique, persistent id
  bool findable_metadata = false;     // F: rich metadata
  bool accessible_protocol = false;   // A: retrievable by open protocol
  bool interoperable_format = false;  // I: open, documented format
  bool reusable_license = false;      // R: clear usage license
  bool reusable_provenance = false;   // R: provenance recorded

  /// Fraction of satisfied criteria in [0, 1].
  double score() const noexcept;
};

/// One archived dataset.
struct DatasetEntry {
  std::string id;           // archive-unique identifier, e.g. "p2p-0007"
  std::string title;
  Domain domain = Domain::kOther;
  int year = 0;             // year of collection
  std::string collector;    // instrument or team, e.g. "BTWorld"
  std::string license;
  std::uint64_t records = 0;
  FairAssessment fair;
  std::vector<std::string> keywords;
};

/// In-memory archive catalog with id uniqueness and keyword search.
class Archive {
 public:
  explicit Archive(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Adds an entry; returns false (and ignores it) if the id is taken.
  bool add(DatasetEntry entry);

  std::optional<DatasetEntry> find(const std::string& id) const;

  /// All entries whose domain matches.
  std::vector<DatasetEntry> by_domain(Domain d) const;

  /// All entries containing the keyword (exact match).
  std::vector<DatasetEntry> by_keyword(const std::string& keyword) const;

  /// Mean FAIR score over all entries; 0 when empty.
  double mean_fair_score() const noexcept;

  const std::vector<DatasetEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::string name_;
  std::vector<DatasetEntry> entries_;
};

}  // namespace atlarge::trace
