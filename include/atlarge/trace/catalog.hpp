#pragma once
// Scenario catalog: named, campaign-runnable workload scenarios.
//
// Each scenario binds a case-study family from the paper's ecosystem
// studies (social feed fan-out, video-streaming flashcrowd, e-commerce
// spike, gaming/leaderboard diurnal cycle) to one generator spec and one
// replay engine. A scenario is runnable three ways, all from the same
// event stream:
//   * generated in memory (campaign trials, tests),
//   * written to a .atl trace (write_trace) and replayed later from the
//     file with bounded memory (replay over an AtlEventStream),
//   * swept as the `workload.scenario` campaign dimension of the exp
//     adapters.
// Replay summary statistics are deterministic: a scenario replayed from
// the same events yields byte-identical ReplaySummary::text() regardless
// of campaign thread count or kernel queue backend.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "atlarge/p2p/swarm.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/trace/atl.hpp"
#include "atlarge/trace/event.hpp"
#include "atlarge/trace/gen.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::trace::catalog {

/// One named scenario: a generator spec plus the engine it replays on.
struct Scenario {
  std::string name;    // catalog key, e.g. "feed-fanout"
  std::string family;  // the case-study family it models
  std::string engine;  // "serverless" | "p2p" | "sched" | "autoscale" | "eco"
  enum class Shape { kFlashcrowd, kDiurnal };
  Shape shape = Shape::kFlashcrowd;
  gen::FlashcrowdSpec flashcrowd;  // used when shape == kFlashcrowd
  gen::DiurnalSpec diurnal;        // used when shape == kDiurnal
  std::uint64_t default_seed = 1;

  /// Trace horizon in seconds (whichever spec is active).
  double horizon() const noexcept {
    return shape == Shape::kFlashcrowd ? flashcrowd.duration
                                       : diurnal.duration;
  }
};

/// The built-in catalog, in stable order.
const std::vector<Scenario>& scenarios();

/// Lookup by name; nullptr when absent.
const Scenario* find(std::string_view name);

/// Runs the scenario's generator into `sink` (full trace, no cap).
void generate(const Scenario& scenario, std::uint64_t seed,
              const EventSink& sink);

/// Materializes up to `max_events` events (0 = all). Generation is
/// abandoned once the cap is hit, so capped calls stay cheap even for
/// scenarios whose full trace has millions of events.
std::vector<Event> events(const Scenario& scenario, std::uint64_t seed,
                          std::size_t max_events = 0);

/// Generates the scenario into a .atl file; returns events written.
/// Capped like events().
std::uint64_t write_trace(const Scenario& scenario, const std::string& path,
                          std::uint64_t seed, std::size_t max_events = 0,
                          WriterOptions options = {});

// ---------------------------------------------------------------------------
// Engine adapters: the canonical event stream feeding each engine's
// trace-driven arrival seam.

/// kRequest events become serverless invocations: function index =
/// region % functions (regional routing), arrival = event time. Pull-based
/// end to end, so a file-backed stream replays with bounded memory.
class RequestInvocationSource final : public serverless::InvocationSource {
 public:
  RequestInvocationSource(EventStream& events, std::size_t functions);

  bool next(serverless::Invocation& out) override;

 private:
  EventStream* events_;
  std::size_t functions_;
};

/// kSessionStart events become peer arrival times.
class SessionArrivalSource final : public p2p::ArrivalSource {
 public:
  explicit SessionArrivalSource(EventStream& events) : events_(&events) {}

  bool next(double& out) override;

 private:
  EventStream* events_;
};

/// kSessionStart events become one-task jobs for the sched/autoscale
/// engines: submit = event time, task runtime = session duration (the
/// start event's size field, ms) scaled by `runtime_scale` and clamped to
/// [1, 600] s, cores = 1 + entity % 4, user = "region-<region>". The
/// workload is materialized (both engines are O(jobs) anyway);
/// `max_jobs` caps it (0 = all).
workflow::Workload to_workload(EventStream& events, std::size_t max_jobs = 0,
                               double runtime_scale = 0.02);

// ---------------------------------------------------------------------------
// Replay

struct ReplayOptions {
  /// Cap on events pulled from the stream (0 = unlimited) — the CLI
  /// --max-events knob and the CI scenario-smoke cap.
  std::size_t max_events = 0;
  /// Optional metrics registry (not owned, may be null): replay counters
  /// (trace.replay_events / _sessions / _requests) land here, alongside
  /// whatever the trace reader instruments when the stream is file-backed.
  obs::Registry* obs = nullptr;
};

/// Deterministic replay outcome: stream census plus the engine's summary
/// statistics, in a fixed order.
struct ReplaySummary {
  std::string scenario;
  std::string engine;
  std::uint64_t events = 0;    // events consumed from the stream
  std::uint64_t sessions = 0;  // kSessionStart count
  std::uint64_t requests = 0;  // kRequest count
  std::vector<std::pair<std::string, double>> metrics;  // engine summary

  /// Canonical rendering, one "key=value" line per field with doubles in
  /// shortest round-trip form — byte-identical for identical replays,
  /// which is what the determinism acceptance tests compare.
  std::string text() const;
};

/// Replays `events` through the scenario's engine and summarizes.
ReplaySummary replay(const Scenario& scenario, EventStream& events,
                     const ReplayOptions& options = {});

/// Opens `path` as a .atl event trace and replays it (chunked reader, so
/// reader residency stays bounded; reader instruments land in
/// options.obs).
ReplaySummary replay_file(const Scenario& scenario, const std::string& path,
                          const ReplayOptions& options = {});

/// Generates (capped) and replays in one step — the campaign path.
ReplaySummary replay_generated(const Scenario& scenario, std::uint64_t seed,
                               const ReplayOptions& options = {});

}  // namespace atlarge::trace::catalog
