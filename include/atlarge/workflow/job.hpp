#pragma once
// Job, task, and workflow (DAG) model.
//
// The portfolio-scheduling (Section 6.6) and autoscaling (Section 6.7)
// experiments both run on workloads of bags-of-tasks and workflows: a job is
// a set of tasks with precedence constraints; a bag-of-tasks is the special
// case with no constraints. Tasks have a service demand in core-seconds and
// a degree of parallelism; precedence edges form a DAG, validated at
// construction time.

#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::workflow {

using TaskId = std::uint32_t;

/// One schedulable unit of work.
struct Task {
  double runtime = 1.0;       // seconds on `cores` cores (not scaled further)
  std::uint32_t cores = 1;    // simultaneous cores required
  std::vector<TaskId> deps;   // indices of tasks that must finish first
};

/// A job: a DAG of tasks submitted at a point in simulated time.
///
/// Invariants (enforced by Job::validate, called by the generators and by
/// the simulators on ingest): every dependency index is in range, the
/// dependency graph is acyclic, runtimes are positive, cores >= 1.
struct Job {
  std::uint64_t id = 0;
  double submit_time = 0.0;
  std::string user;           // workload class or tenant label
  std::vector<Task> tasks;

  std::size_t size() const noexcept { return tasks.size(); }

  /// Total service demand in core-seconds.
  double total_work() const noexcept;

  /// Length of the critical path in seconds (0 for empty jobs).
  /// Requires a valid (acyclic) job.
  double critical_path() const;

  /// True if no task has dependencies (a bag-of-tasks).
  bool is_bag_of_tasks() const noexcept;

  /// Topological order of task indices; throws std::invalid_argument if the
  /// dependency graph has a cycle or an out-of-range edge.
  std::vector<TaskId> topological_order() const;

  /// Validates all invariants; throws std::invalid_argument on violation.
  void validate() const;
};

/// A workload: jobs sorted by nondecreasing submit time.
struct Workload {
  std::string name;
  std::vector<Job> jobs;

  double makespan_lower_bound(std::uint32_t total_cores) const;
  double total_work() const noexcept;
  /// Sorts jobs by submit time (stable) and re-assigns contiguous ids.
  void normalize();
};

}  // namespace atlarge::workflow
