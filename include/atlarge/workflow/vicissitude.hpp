#pragma once
// Vicissitude (paper Section 2.5, discovered in [38] while scaling the
// BTWorld big-data workflow): "a class of phenomena where several known
// bottlenecks appear seemingly at random in various parts of the system".
//
// Two pieces:
//  * a multi-stage pipeline simulator whose stage capacities fluctuate
//    (stragglers, GC pauses, contention), producing per-stage utilization
//    series under a bursty input;
//  * an analyzer that identifies the bottleneck stage per window and
//    quantifies rotation — the signature that distinguishes vicissitude
//    from a classic static bottleneck.

#include <cstdint>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::workflow {

/// One observation window: per-stage utilization in [0, 1+] (values above
/// 1 mean the stage was saturated and queuing).
struct StageSample {
  double time = 0.0;
  std::vector<double> utilization;
};

struct PipelineConfig {
  std::size_t stages = 5;
  double horizon = 10'000.0;
  double window = 50.0;            // observation window, s
  double input_rate = 100.0;       // records/s entering stage 0
  double burst_factor = 3.0;       // input multiplier during bursts
  double burst_share = 0.2;        // fraction of windows that are bursts
  /// Nominal per-stage capacity in records/s; sized so the pipeline is
  /// near-critical (that is where vicissitude lives).
  double stage_capacity = 120.0;
  /// Relative std-dev of per-window capacity fluctuation (stragglers,
  /// interference). 0 yields a static system.
  double capacity_noise = 0.25;
  std::uint64_t seed = 1;
};

/// Simulates the pipeline: each window, every stage processes up to its
/// (fluctuating) capacity; unprocessed records queue and carry over.
/// Utilization = offered load / capacity for the window.
std::vector<StageSample> simulate_pipeline(const PipelineConfig& config);

struct VicissitudeReport {
  /// Windows in which each stage was the bottleneck (the most utilized
  /// stage, provided its utilization exceeded the saturation threshold).
  std::vector<std::size_t> bottleneck_windows;
  std::size_t saturated_windows = 0;  // windows with any bottleneck
  std::size_t distinct_bottlenecks = 0;
  /// Fraction of consecutive saturated windows where the bottleneck moved
  /// to a different stage.
  double rotation_rate = 0.0;
  /// The vicissitude verdict: at least two stages bottleneck and the
  /// bottleneck moves in at least `rotation_threshold` of transitions.
  bool vicissitude = false;
};

/// Analyzes the utilization series. A stage is saturated when its window
/// utilization >= `saturation`; vicissitude requires rotation_rate >=
/// `rotation_threshold` across >= 2 distinct bottleneck stages.
VicissitudeReport analyze_vicissitude(
    const std::vector<StageSample>& samples, double saturation = 0.95,
    double rotation_threshold = 0.2);

}  // namespace atlarge::workflow
