#pragma once
// Workload generators: DAG shapes, service-demand distributions, and
// arrival processes.
//
// Table 9 of the paper evaluates portfolio scheduling across workload
// classes — synthetic (Syn), scientific (Sci), gaming (G), computer
// engineering (CE), business-critical (BC), industrial IoT analytics (Ind),
// and big data (BD). Each class here is a preset over the same primitives:
// a structure generator (bag / chain / fork-join / layered random DAG), a
// demand distribution, and an arrival process. Section 6.1 of the paper
// stresses that real arrivals are *not* Poisson; the flashcrowd process
// reproduces that finding.

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::workflow {

// ---------------------------------------------------------------- shapes --

/// Bag of `n` independent tasks with runtimes drawn from [lo, hi] bounded
/// Pareto (shape alpha) and 1 core each.
Job make_bag_of_tasks(std::size_t n, double lo, double hi, double alpha,
                      atlarge::stats::Rng& rng);

/// Linear chain of `n` tasks.
Job make_chain(std::size_t n, double mean_runtime, atlarge::stats::Rng& rng);

/// Fork-join: source -> `width` parallel tasks -> sink.
Job make_fork_join(std::size_t width, double mean_runtime,
                   atlarge::stats::Rng& rng);

/// Layered random DAG: `layers` layers of `width` tasks; each task depends
/// on 1..max_fan_in random tasks of the previous layer.
Job make_random_dag(std::size_t layers, std::size_t width,
                    std::size_t max_fan_in, double mean_runtime,
                    atlarge::stats::Rng& rng);

// -------------------------------------------------------------- arrivals --

/// Interface for arrival processes: produces nondecreasing arrival times.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next inter-arrival gap (>= 0), possibly time-dependent via `now`.
  virtual double next_gap(double now, atlarge::stats::Rng& rng) = 0;
};

/// Memoryless arrivals at a constant rate (jobs/second).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : rate_(rate) {}
  double next_gap(double now, atlarge::stats::Rng& rng) override;

 private:
  double rate_;
};

/// Flashcrowd arrivals: a base Poisson rate multiplied by `surge_factor`
/// inside the window [surge_start, surge_end). Models the BitTorrent
/// flashcrowds of Section 6.1 (Zhang et al. 2011).
class FlashcrowdArrivals final : public ArrivalProcess {
 public:
  FlashcrowdArrivals(double base_rate, double surge_factor,
                     double surge_start, double surge_end);
  double next_gap(double now, atlarge::stats::Rng& rng) override;

 private:
  double base_rate_;
  double surge_factor_;
  double surge_start_;
  double surge_end_;
};

/// Diurnal arrivals: Poisson modulated by a sinusoid with the given period
/// and relative amplitude in [0, 1). Models the daily cycles of MMOG and
/// business-critical workloads (Sections 6.2, 6.6).
class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(double mean_rate, double amplitude, double period);
  double next_gap(double now, atlarge::stats::Rng& rng) override;

 private:
  double mean_rate_;
  double amplitude_;
  double period_;
};

// ------------------------------------------------------ workload classes --

/// The workload classes of Table 9.
enum class WorkloadClass {
  kSynthetic,          // Syn: uniform bags, Poisson arrivals
  kScientific,         // Sci: heavy-tailed bags + chains
  kGaming,             // G:   diurnal arrivals, short interactive tasks
  kComputerEng,        // CE:  fork-join EDA-style jobs
  kBusinessCritical,   // BC:  long-running services, diurnal, strict cores
  kIndustrial,         // Ind: periodic IoT analytics workflows
  kBigData,            // BD:  wide layered DAGs with skewed task runtimes
};

std::string to_string(WorkloadClass wc);

struct WorkloadSpec {
  WorkloadClass cls = WorkloadClass::kSynthetic;
  std::size_t jobs = 100;
  double horizon = 10'000.0;  // arrivals are spread over [0, horizon]
  std::uint64_t seed = 1;
};

/// Generates a validated, normalized workload for the given class.
Workload generate(const WorkloadSpec& spec);

}  // namespace atlarge::workflow
