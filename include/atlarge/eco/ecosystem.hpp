#pragma once
// Ecosystem composition layer (paper Sections 4.2, 6.1): the domain
// simulators plugged into one "system of systems" on a single shared
// clock, so cross-domain resource contention and fault propagation are
// real instead of modeled per-domain in isolation.
//
// An EcosystemSpec declares which domains run and how they bind:
//  * serverless x cluster — the FaaS platform's abstract instance pool is
//    backed by the shared cluster fabric (serverless::InstanceBacking):
//    cold starts become real machine provisioning, and capacity denials
//    appear when co-tenants hold the cores.
//  * mmog x autoscale — zone login capacity is provisioned by an
//    autoscaler from the zoo instead of being unlimited: zones report
//    population upstream, the controller leases whole machines from the
//    fabric, and capacity grants flow back after the provisioning delay.
//  * workflow x sched — DAG jobs run under a scheduling policy (or the
//    portfolio scheduler) either on a dedicated environment or on the
//    fabric itself, where serverless/mmog leases are indistinguishable
//    from cores occupied by running tasks.
//
// Every binding has an *identity* setting (kAbstract / kUnlimited /
// kDedicated) under which the composed run reproduces the standalone
// engine byte-for-byte — the regression anchor the conformance suite
// (tests/eco_test.cpp) pins.
//
// Determinism contract (DESIGN.md section 13): results are byte-identical
// across threads and shard layouts. The core tier (fabric, serverless,
// scheduler, autoscale controller) always lives on LP 0; MMOG zones
// spread over LPs 1..S-1 when S >= 2 (all on LP 0 when S == 1). Cross-LP
// traffic uses namespaced message keys (report/grant key bases above any
// avatar id) and regular-time offset classes that cannot collide with the
// continuous RNG-derived domain timestamps.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/sim/sharded.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
}

namespace atlarge::eco {

/// How the serverless platform's instances are backed.
enum class ServerlessBacking {
  kAbstract,  ///< identity: the platform's own pool, no fabric interaction
  kCluster,   ///< instances lease cores from the shared cluster fabric
};

/// How MMOG zone login capacity is provisioned.
enum class ZoneProvisioning {
  kUnlimited,   ///< identity: no caps, byte-identical to simulate_zones
  kAutoscaled,  ///< capacity = machines leased from the fabric by a policy
};

/// Where workflow DAGs are scheduled.
enum class DagScheduling {
  kDedicated,     ///< identity: own environment, equals sched::simulate
  kSharedFabric,  ///< jobs placed on fabric machines, contending with leases
};

/// The shared datacenter substrate every kCluster/kAutoscaled/
/// kSharedFabric binding draws from.
struct FabricSpec {
  std::size_t machines = 16;
  std::uint32_t cores_per_machine = 8;
  double machine_speed = 1.0;
  /// Cold machine power-up time: the extra latency a serverless cold
  /// start pays when its lease activates an idle machine, and the delay
  /// before an autoscale machine grant becomes zone capacity.
  double provisioning_delay = 45.0;
};

struct ServerlessSpec {
  bool enabled = false;
  ServerlessBacking backing = ServerlessBacking::kAbstract;
  std::vector<serverless::FunctionSpec> registry;
  std::vector<serverless::Invocation> invocations;  // sorted by arrival
  /// Platform knobs. `config.obs` and `config.faults` are overridden by
  /// the ecosystem-level plane/plan; set those on EcosystemSpec instead.
  serverless::PlatformConfig config;
  /// Fabric cores one instance leases (kCluster backing only).
  std::uint32_t instance_cores = 1;
};

struct MmogSpec {
  bool enabled = false;
  ZoneProvisioning provisioning = ZoneProvisioning::kUnlimited;
  /// World knobs. `config.shard`, `config.obs`, and `config.faults` are
  /// ignored — the ecosystem owns layout, plane, and plan.
  mmog::ZoneSimConfig config;
  std::vector<mmog::ZoneArrival> arrivals;
  // --- kAutoscaled knobs -------------------------------------------------
  /// Autoscaler name from autoscale::standard_autoscalers()
  /// ("React", "Adapt", "Hist", "Reg", "ConPaaS", "Plan", "Token").
  std::string autoscaler = "React";
  /// Avatars one leased machine can host (capacity currency).
  std::uint32_t avatars_per_machine = 64;
  /// Zone population report cadence; the controller ticks one lookahead
  /// after the reports land. Must exceed 2 * config.crossing_time.
  double report_interval = 30.0;
  /// Machines leased (and provisioned for free) before t = 0.
  std::size_t initial_machines = 1;
};

struct WorkflowSpec {
  bool enabled = false;
  DagScheduling scheduling = DagScheduling::kDedicated;
  workflow::Workload workload;
  /// Policy zoo name ("FCFS", "EASY-BF", "SJF", "LJF", "WIDE", "RANDOM",
  /// "FAIR") or "PORTFOLIO" for the portfolio scheduler over the full zoo.
  std::string policy = "FCFS";
  std::uint64_t policy_seed = 42;  // RANDOM / PORTFOLIO streams
  // --- kDedicated environment (ignored for kSharedFabric) ----------------
  std::size_t machines = 16;
  std::uint32_t cores_per_machine = 8;
};

/// Declarative description of one composed run.
struct EcosystemSpec {
  FabricSpec fabric;
  ServerlessSpec serverless;
  MmogSpec mmog;
  WorkflowSpec dags;
  /// Shared-clock horizon. Results are exact as long as the horizon
  /// covers quiescence of the request-shaped domains (last invocation
  /// finish, last job finish); see DESIGN.md section 13.
  double horizon = 14'400.0;
  /// Shared fault plan (not owned, may be null). Domain kinds route to
  /// each domain's own injector exactly as standalone; kMachineCrash
  /// additionally routes through the fabric when any binding uses it.
  const fault::FaultPlan* faults = nullptr;
  /// Optional instrumentation plane (not owned): kernel observer and
  /// sampling hook attach to the core LP, the run is wrapped in an
  /// "eco.run" span, and fabric counters are mirrored as eco.* metrics.
  obs::Observability* obs = nullptr;
  /// Requested shard count (clamped: the core tier pins to LP 0, zones
  /// use the rest; without mmog everything collapses to one LP).
  std::size_t shards = 1;
  std::size_t threads = 1;
  sim::QueueKind queue = sim::default_queue_kind();
};

/// Fabric-side counters of one composed run.
struct FabricStats {
  std::uint64_t faas_leases = 0;       // instance leases granted
  std::uint64_t faas_denials = 0;      // instance leases refused (no cores)
  std::uint64_t machine_leases = 0;    // whole-machine grants to autoscale
  std::uint64_t machine_returns = 0;   // whole machines handed back
  std::uint64_t crashes = 0;           // kMachineCrash injections applied
  std::uint64_t autoscale_decisions = 0;
  std::uint64_t capacity_updates = 0;  // capacity pushes to the zone tier
  std::uint32_t peak_cores_leased = 0;
  std::uint32_t final_machines_leased = 0;
};

struct EcosystemResult {
  serverless::PlatformResult faas;
  mmog::ZoneSimResult zones;
  sched::SchedResult dags;
  FabricStats fabric;
  // Diagnostics of the sharded run; layout-dependent by construction and
  // therefore excluded from summary().
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;

  /// Layout-invariant key/value rendering (%.17g doubles) — the byte
  /// string the conformance suite and the eco-smoke golden compare. Two
  /// runs of one spec at any shards x threads produce identical text.
  std::string summary() const;
};

/// One composed ecosystem. The spec is copied; run() may be called
/// repeatedly (each run builds a fresh shared kernel) and is
/// deterministic for a fixed spec.
class Ecosystem {
 public:
  explicit Ecosystem(EcosystemSpec spec);

  const EcosystemSpec& spec() const noexcept { return spec_; }
  EcosystemResult run() const;

 private:
  EcosystemSpec spec_;
};

/// Convenience: Ecosystem(spec).run().
EcosystemResult run_ecosystem(const EcosystemSpec& spec);

}  // namespace atlarge::eco
