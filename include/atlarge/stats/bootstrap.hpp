#pragma once
// Nonparametric bootstrap confidence intervals. The benches report measured
// effects (speedups, metric differences) with percentile-bootstrap CIs so
// that "who wins" claims are backed by resampled uncertainty, not single
// point estimates — part of the paper's methodological push (P7: a science
// of MCS design needs falsifiable, reproducible measurement).

#include <functional>
#include <span>

#include "atlarge/stats/rng.hpp"

namespace atlarge::stats {

struct Interval {
  double lo = 0.0;
  double point = 0.0;
  double hi = 0.0;
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Percentile bootstrap CI for an arbitrary statistic of one sample.
/// `statistic` maps a resampled vector to a scalar (e.g. mean or median).
Interval bootstrap_ci(std::span<const double> sample,
                      const std::function<double(std::span<const double>)>&
                          statistic,
                      Rng& rng, std::size_t resamples = 1000,
                      double confidence = 0.95);

/// Convenience: CI of the mean.
Interval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                           std::size_t resamples = 1000,
                           double confidence = 0.95);

}  // namespace atlarge::stats
