#pragma once
// Heavy-tailed and bounded distributions used by the AtLarge workload
// generators. Cloud, P2P, and gaming workloads are famously *not* Poisson
// (see the paper's Section 6.1 debunking of Poisson arrivals for
// BitTorrent); these distributions supply the file sizes, session lengths,
// popularity ranks, and service demands the simulators need.

#include <cstddef>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::stats {

/// Zipf distribution over ranks {1, ..., n} with exponent s > 0.
/// Used for content popularity (P2P swarms, MMOG zones, FaaS functions).
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Draws a rank in [1, n].
  std::size_t operator()(Rng& rng) const;

  /// Probability mass of the given rank (1-based).
  double pmf(std::size_t rank) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.
};

/// Pareto (Type I) distribution with scale x_m > 0 and shape alpha > 0.
class Pareto {
 public:
  Pareto(double scale, double shape) noexcept;
  double operator()(Rng& rng) const noexcept;
  double mean() const noexcept;  // +inf when shape <= 1 (returns large value)

 private:
  double scale_;
  double shape_;
};

/// Bounded Pareto on [lo, hi] with shape alpha; the canonical model for
/// task service demands in datacenter workloads.
class BoundedPareto {
 public:
  BoundedPareto(double lo, double hi, double shape) noexcept;
  double operator()(Rng& rng) const noexcept;

 private:
  double lo_;
  double hi_;
  double shape_;
};

/// Weibull distribution with scale lambda > 0 and shape k > 0.
/// Models machine time-between-failures and session durations.
class Weibull {
 public:
  Weibull(double scale, double shape) noexcept;
  double operator()(Rng& rng) const noexcept;

 private:
  double scale_;
  double shape_;
};

/// Lognormal distribution parameterized by the underlying normal's mu/sigma.
class LogNormal {
 public:
  LogNormal(double mu, double sigma) noexcept;
  double operator()(Rng& rng) const noexcept;
  double mean() const noexcept;

 private:
  double mu_;
  double sigma_;
};

/// Discrete distribution over arbitrary weights (need not be normalized).
class Discrete {
 public:
  explicit Discrete(std::vector<double> weights);
  /// Draws an index in [0, weights.size()).
  std::size_t operator()(Rng& rng) const;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace atlarge::stats
