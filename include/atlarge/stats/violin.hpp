#pragma once
// Violin-plot summaries, reproducing the statistical content of the paper's
// Figure 3: for each article category, the figure shows the score
// distribution as a kernel-density "violin" annotated with mean (star),
// median (white dot), IQR (thick bar), and 1.5x-IQR whiskers clipped to the
// data range. ViolinSummary computes exactly those elements plus the density
// curve, so a bench can print the same information as rows.

#include <span>
#include <string>
#include <vector>

#include "atlarge/stats/descriptive.hpp"

namespace atlarge::stats {

/// Gaussian kernel density estimate evaluated on a regular grid.
struct DensityCurve {
  std::vector<double> grid;     // evaluation points, ascending
  std::vector<double> density;  // estimated density at each grid point
  double bandwidth = 0.0;       // Silverman's rule-of-thumb bandwidth
};

/// Computes a Gaussian KDE over [min(sample), max(sample)] (padded by one
/// bandwidth on each side) at `points` grid positions. Empty samples yield
/// an empty curve.
DensityCurve kde(std::span<const double> sample, std::size_t points = 64);

/// Everything Figure 3 draws for one violin.
struct ViolinSummary {
  Summary stats;                // mean (star), median (dot), q1/q3 (bar)
  double whisker_lo = 0.0;      // max(min, q1 - 1.5*IQR)
  double whisker_hi = 0.0;      // min(max, q3 + 1.5*IQR)
  DensityCurve curve;           // the violin outline
  std::size_t below(double threshold) const;  // #points strictly below
  std::vector<double> sample;   // retained, sorted ascending
};

ViolinSummary violin(std::span<const double> sample,
                     std::size_t grid_points = 64);

/// A labeled group of violins, e.g. "merit" scores split by article
/// category, ready for side-by-side textual rendering.
struct ViolinGroup {
  std::string title;
  std::vector<std::string> labels;
  std::vector<ViolinSummary> violins;
};

/// Renders the group as an aligned ASCII table (one row per violin:
/// label, n, mean, median, q1, q3, whiskers, %below-threshold).
std::string render_table(const ViolinGroup& group, double threshold);

}  // namespace atlarge::stats
