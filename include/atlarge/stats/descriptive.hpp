#pragma once
// Descriptive statistics used throughout the benchmark harnesses: the paper
// reports medians, means, IQRs (Figure 3), slowdowns and speedups (Sections
// 6.1-6.7). Summary computes them in one pass over a sample; Accumulator
// (Welford) supports streaming use inside simulators.

#include <cstddef>
#include <span>
#include <vector>

namespace atlarge::stats {

/// One-shot summary of a sample. Quantiles use linear interpolation
/// (type-7, the R/NumPy default).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;  // 25th percentile
  double q3 = 0.0;  // 75th percentile

  double iqr() const noexcept { return q3 - q1; }
};

/// Computes a Summary of the sample. Empty samples yield a zero Summary.
Summary summarize(std::span<const double> sample);

/// Quantile q in [0, 1] of the sample, linear interpolation. The sample
/// need not be sorted. Returns 0 for empty samples.
double quantile(std::span<const double> sample, double q);

/// Quantile over an already-sorted sample (ascending).
double quantile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for empty samples.
double mean(std::span<const double> sample);

/// Streaming mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  // sample variance; 0 if n < 2
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. utilization
/// or queue length over simulated time. Feed (time, value) observations in
/// nondecreasing time order; value holds until the next observation.
class TimeWeighted {
 public:
  void observe(double time, double value) noexcept;
  /// Finalizes at end_time and returns the time-weighted mean.
  double average(double end_time) const noexcept;
  double last_value() const noexcept { return value_; }

 private:
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  bool started_ = false;
};

}  // namespace atlarge::stats
