#pragma once
// Reproducible pseudo-random number generation for all AtLarge simulators.
//
// Every stochastic component in the ecosystem draws from an explicitly seeded
// Rng instance, so that a whole experiment is a pure function of its seed.
// The generator is xoshiro256**, seeded through SplitMix64, which gives
// high-quality streams that are cheap to fork (see Rng::fork) so that
// subsystems can own independent substreams without correlation.

#include <array>
#include <cstdint>
#include <limits>

namespace atlarge::stats {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with the
/// standard <random> distributions as well as the distributions in
/// distributions.hpp.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential variate with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Forks an independent substream. The child is seeded from the parent's
  /// stream, so forking is itself deterministic.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace atlarge::stats
