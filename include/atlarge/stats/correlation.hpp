#pragma once
// Correlation and ranking utilities. The paper's experiments repeatedly
// compare rankings of systems/policies (autoscaler head-to-head rankings in
// Section 6.7, PAD-law interaction analysis in Section 6.5); Spearman and
// Kendall coefficients quantify agreement between two rankings, and
// `ranks` converts scores to fractional ranks.

#include <span>
#include <vector>

namespace atlarge::stats {

/// Pearson linear correlation; 0 for degenerate inputs.
double pearson(std::span<const double> x, std::span<const double> y);

/// Fractional ranks (average rank for ties), 1-based.
std::vector<double> ranks(std::span<const double> values);

/// Spearman rank correlation.
double spearman(std::span<const double> x, std::span<const double> y);

/// Kendall tau-b rank correlation (tie-corrected).
double kendall(std::span<const double> x, std::span<const double> y);

}  // namespace atlarge::stats
