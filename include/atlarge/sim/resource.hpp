#pragma once
// Queued resources for the DES kernel: a fixed-capacity pool of identical
// servers with a FIFO (or priority) wait queue. Machines, network links,
// tracker sockets, and FaaS instance slots are all modeled as Resources.

#include <cstdint>
#include <deque>
#include <functional>

#include "atlarge/sim/simulation.hpp"

namespace atlarge::sim {

/// A counting resource with `capacity` units and a FIFO wait queue.
///
/// acquire(n, cb) grants n units to cb as soon as they are available, in
/// request order (no overtaking, even if a later, smaller request would
/// fit — FIFO keeps the model simple and starvation-free).
class Resource {
 public:
  using Grant = std::function<void()>;

  Resource(Simulation& sim, std::uint64_t capacity);

  /// Requests `units` (<= capacity); invokes `on_grant` (via the event
  /// queue, never inline) once granted.
  void acquire(std::uint64_t units, Grant on_grant);

  /// Returns `units` to the pool and admits waiting requests.
  void release(std::uint64_t units);

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t in_use() const noexcept { return in_use_; }
  std::uint64_t available() const noexcept { return capacity_ - in_use_; }
  std::size_t queue_length() const noexcept { return waiting_.size(); }

  /// Utilization in [0, 1] at this instant.
  double utilization() const noexcept {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(in_use_) /
                                static_cast<double>(capacity_);
  }

 private:
  struct Waiter {
    std::uint64_t units;
    Grant on_grant;
  };

  void admit();

  Simulation& sim_;
  std::uint64_t capacity_;
  std::uint64_t in_use_ = 0;
  std::deque<Waiter> waiting_;
};

}  // namespace atlarge::sim
