#pragma once
// Bump-pointer arena for event payloads. Every pool slot owns one 64-byte
// block from this arena for its whole lifetime (the common case — small
// closures are constructed, invoked, and destroyed in place there), and
// larger closures take a per-event block from the matching size class —
// storage that would otherwise cost one malloc/free per event on a hot
// path.
//
// Layout: fixed 64 KiB chunks carved into power-of-two size classes
// (64..1024 bytes). allocate() pops a per-class free list or bumps the
// cursor chunk, advancing into pre-reserved chunks before allocating new
// ones; deallocate() pushes back onto the free list, so after warm-up a
// steady-state simulation recycles payload storage without touching the
// system allocator. Chunks are never returned individually — the arena
// frees them wholesale on destruction, which is exactly the lifetime the
// kernel needs (a Simulation owns its arena and both die together).

#include <cstddef>
#include <memory>
#include <vector>

namespace atlarge::sim {

class PayloadArena {
 public:
  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxClass = 1024;
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;

  /// Smallest size class holding `bytes`, or 0 if `bytes` exceeds
  /// kMaxClass (the caller falls back to the system allocator).
  static constexpr std::size_t size_class(std::size_t bytes) noexcept {
    if (bytes > kMaxClass) return 0;
    std::size_t cls = kMinClass;
    while (cls < bytes) cls <<= 1;
    return cls;
  }

  /// Allocates one block of size class `cls` (a value returned by
  /// size_class, > 0). Alignment is alignof(std::max_align_t).
  void* allocate(std::size_t cls) {
    FreeNode*& head = free_[class_index(cls)];
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      return node;
    }
    if (opened_ == 0 || used_ + cls > kChunkBytes) advance_chunk();
    void* p =
        reinterpret_cast<unsigned char*>(chunks_[opened_ - 1].get()) + used_;
    used_ += cls;
    return p;
  }

  /// Returns a block obtained from allocate(cls) to its class free list.
  void deallocate(void* p, std::size_t cls) noexcept {
    FreeNode*& head = free_[class_index(cls)];
    auto* node = static_cast<FreeNode*>(p);
    node->next = head;
    head = node;
  }

  /// Pre-allocates enough chunks to cover `bytes` of payload without a
  /// further system allocation (growth beyond that still works). The
  /// cursor does not move: pre-reserved chunks are consumed on demand.
  void reserve(std::size_t bytes) {
    std::size_t want = (bytes + kChunkBytes - 1) / kChunkBytes;
    chunks_.reserve(want);
    while (chunks_.size() < want) push_chunk();
  }

  /// Number of chunk allocations performed so far (the arena's only
  /// system-allocator traffic); the kernel's alloc-event accounting uses
  /// the delta across an operation. Chunks created by reserve() count
  /// here too — callers snapshot around the operations they meter.
  std::size_t chunks() const noexcept { return chunks_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t class_index(std::size_t cls) noexcept {
    std::size_t i = 0;
    for (std::size_t c = kMinClass; c < cls; c <<= 1) ++i;
    return i;
  }
  static constexpr std::size_t kNumClasses = 5;  // 64,128,256,512,1024

  // Chunks are arrays of max_align_t so every 64-byte-multiple offset is
  // suitably aligned for any payload.
  static constexpr std::size_t kChunkUnits =
      kChunkBytes / sizeof(std::max_align_t);

  void push_chunk() {
    chunks_.push_back(std::make_unique<std::max_align_t[]>(kChunkUnits));
  }

  // Opens the next chunk: a pre-reserved one when available, else new.
  void advance_chunk() {
    if (opened_ == chunks_.size()) push_chunk();
    ++opened_;
    used_ = 0;
  }

  std::vector<std::unique_ptr<std::max_align_t[]>> chunks_;
  std::size_t opened_ = 0;  // chunks the bump cursor has passed through
  std::size_t used_ = 0;    // bytes used in chunk opened_ - 1
  FreeNode* free_[kNumClasses] = {};
};

}  // namespace atlarge::sim
