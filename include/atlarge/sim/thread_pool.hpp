#pragma once
// A small fixed-size worker pool for CPU-bound fan-out inside the
// simulation ecosystem — most prominently the portfolio scheduler's
// what-if evaluations, which are independent simulations on private
// snapshots (paper Section 6.6: the portfolio is only usable online if
// those simulations are fast).
//
// Design notes:
//  * Deliberately minimal: a mutex-protected FIFO of std::function jobs
//    and a condition variable. The jobs the ecosystem submits are whole
//    nested simulations (milliseconds to seconds), so queue overhead is
//    irrelevant and lock-free machinery would be unearned complexity.
//  * parallel_for hands out indices through an atomic counter and the
//    *calling* thread participates as a worker, so a pool of size N uses
//    N threads total (N-1 workers + caller), and a pool of size 1 runs
//    the loop inline with zero synchronization.
//  * Determinism is the callers' contract, not the pool's: callers must
//    write results into per-index slots and draw randomness from
//    per-index streams, then reduce in index order after the join.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atlarge::sim {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the Nth worker in
  /// parallel_for). `threads` <= 1 means no workers: everything runs
  /// inline on the caller.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: joins workers after finishing jobs already dequeued;
  /// queued-but-unstarted jobs are discarded.
  ~ThreadPool();

  /// Total parallelism of parallel_for (workers + calling thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Number of dedicated worker threads (size() - 1; 0 for a size-1 pool).
  /// Valid `run_on` indices are [0, worker_count()).
  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues a job for a worker thread. With a pool of size 1 the job
  /// runs inline immediately.
  void submit(std::function<void()> job);

  /// Enqueues a job pinned to worker `worker_index`: it runs on that
  /// worker's thread, after any pinned jobs already queued there, and
  /// before the worker takes more shared `submit` work. This is the
  /// LP->worker affinity primitive for sharded simulation: pinning every
  /// window of one logical process to the same worker keeps its queue and
  /// arena hot in that core's cache, and guarantees two jobs pinned to the
  /// same index never run concurrently (a per-worker FIFO).
  ///
  /// `worker_index` is reduced modulo worker_count(); with no workers
  /// (size-1 pool) the job runs inline immediately, preserving the
  /// sequential-FIFO guarantee trivially.
  void run_on(std::size_t worker_index, std::function<void()> job);

  /// Blocks until every submitted and pinned job has finished.
  void wait_idle();

  /// Runs fn(i) for every i in [0, n), spread across the pool; the calling
  /// thread participates. Blocks until all n invocations returned. fn must
  /// be safe to invoke concurrently from distinct threads.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  // One FIFO per worker for run_on; only worker i pops pinned_[i].
  std::vector<std::deque<std::function<void()>>> pinned_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a job or stop arrived"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::size_t in_flight_ = 0;        // dequeued but not yet finished
  std::size_t pinned_pending_ = 0;   // queued in pinned_, not yet dequeued
  bool stop_ = false;
};

}  // namespace atlarge::sim
