#pragma once
// A small fixed-size worker pool for CPU-bound fan-out inside the
// simulation ecosystem — most prominently the portfolio scheduler's
// what-if evaluations, which are independent simulations on private
// snapshots (paper Section 6.6: the portfolio is only usable online if
// those simulations are fast).
//
// Design notes:
//  * Deliberately minimal: a mutex-protected FIFO of std::function jobs
//    and a condition variable. The jobs the ecosystem submits are whole
//    nested simulations (milliseconds to seconds), so queue overhead is
//    irrelevant and lock-free machinery would be unearned complexity.
//  * parallel_for hands out indices through an atomic counter and the
//    *calling* thread participates as a worker, so a pool of size N uses
//    N threads total (N-1 workers + caller), and a pool of size 1 runs
//    the loop inline with zero synchronization.
//  * Determinism is the callers' contract, not the pool's: callers must
//    write results into per-index slots and draw randomness from
//    per-index streams, then reduce in index order after the join.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atlarge::sim {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the Nth worker in
  /// parallel_for). `threads` <= 1 means no workers: everything runs
  /// inline on the caller.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: joins workers after finishing jobs already dequeued;
  /// queued-but-unstarted jobs are discarded.
  ~ThreadPool();

  /// Total parallelism of parallel_for (workers + calling thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Enqueues a job for a worker thread. With a pool of size 1 the job
  /// runs inline immediately.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  /// Runs fn(i) for every i in [0, n), spread across the pool; the calling
  /// thread participates. Blocks until all n invocations returned. fn must
  /// be safe to invoke concurrently from distinct threads.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a job or stop arrived"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::size_t in_flight_ = 0;        // dequeued but not yet finished
  bool stop_ = false;
};

}  // namespace atlarge::sim
