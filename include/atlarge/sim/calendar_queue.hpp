#pragma once
// Calendar-queue event scheduler (Brown 1988), the O(1)-amortized
// alternative to the kernel's 4-ary heap. Records hash into a power-of-two
// array of "day" buckets by floor(time / width); a dequeue scans one
// "year" of buckets from a cursor, falling back to a direct full search
// when the year comes up empty (sparse far-future schedules).
//
// The queue orders the same packed 128-bit records as the heap
// (time bits : 64 | seq : 40 | slot : 24) and always pops the exact
// total-order minimum: within the candidate bucket the minimum is taken
// by full record comparison, so ties at equal timestamps break by
// sequence number and the heap and calendar backends produce
// byte-identical event orderings by construction (pinned by
// tests/sim_queue_test.cpp).
//
// All day bookkeeping uses one computation — floor(time * inv_width) — for
// both the bucket hash and the year scan, so the two can never disagree on
// which day a record belongs to. Day indices are exact as doubles up to
// 2^53; widths are re-derived from content on resize (3x the mean
// inter-event gap), which keeps realistic day indices within ~3x the live
// event count, far below that limit.
//
// Resize policy: grow (double) when size exceeds 2x buckets, shrink
// (halve) when size falls below buckets/8 — but never below the floor set
// by reserve(), so a pre-sized queue stays allocation-free in steady
// state.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atlarge::sim {

/// What the event queues order: one 128-bit integer per event, laid out as
/// (time bits : 64 | seq : 40 | slot : 24). Simulated time is always >= 0,
/// and non-negative IEEE-754 doubles order identically to their bit
/// patterns, so a single unsigned compare is exactly the (time, seq, slot)
/// event order.
using QueueRecord = unsigned __int128;

/// Simulated time of a packed record.
inline double queue_record_time(QueueRecord rec) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(rec >> 64));
}

class CalendarQueue {
 public:
  static constexpr std::size_t kMinBuckets = 16;

  CalendarQueue() { rebuild(kMinBuckets, 1.0); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Inserts a record. Returns true if the insert had to allocate (bucket
  /// growth or a table resize) — the kernel's alloc-event accounting.
  bool push(QueueRecord rec) {
    bool allocated = false;
    if (size_ + 1 > (nbuckets_ << 1)) {
      resize(nbuckets_ << 1);
      allocated = true;
    }
    const double day = day_of(queue_record_time(rec));
    const std::size_t b = bucket_of_day(day);
    std::vector<QueueRecord>& bucket = buckets_[b];
    if (bucket.size() == bucket.capacity()) allocated = true;
    bucket.push_back(rec);
    ++size_;
    if (size_ == 1 || day < cursor_day_) {
      // First record, or earlier than the cursor's current day: rewind the
      // scan cursor so the year scan starts where this record lives.
      cursor_bucket_ = b;
      cursor_day_ = day;
      cache_valid_ = false;
    } else if (cache_valid_ && rec < min_rec_) {
      min_rec_ = rec;
      min_bucket_ = b;
      min_index_ = bucket.size() - 1;
    }
    return allocated;
  }

  /// The exact total-order minimum record. Requires !empty().
  QueueRecord front() {
    if (!cache_valid_) locate_min();
    return min_rec_;
  }

  /// Removes the minimum record. Requires !empty(). Returns true if the
  /// removal triggered a reallocation via table shrink.
  bool pop_front() {
    if (!cache_valid_) locate_min();
    std::vector<QueueRecord>& bucket = buckets_[min_bucket_];
    bucket[min_index_] = bucket.back();
    bucket.pop_back();
    --size_;
    cursor_bucket_ = min_bucket_;
    cursor_day_ = day_of(queue_record_time(min_rec_));
    cache_valid_ = false;
    return maybe_shrink();
  }

  /// Removes every record sharing the minimum record's timestamp and
  /// appends them (unsorted) to `out`. Equal-time records always hash to
  /// the same bucket, so this is one bucket sweep. Returns true if a table
  /// shrink allocated.
  bool extract_equal_run(std::vector<QueueRecord>& out) {
    if (!cache_valid_) locate_min();
    const std::uint64_t time_bits =
        static_cast<std::uint64_t>(min_rec_ >> 64);
    std::vector<QueueRecord>& bucket = buckets_[min_bucket_];
    std::size_t i = 0;
    while (i < bucket.size()) {
      const QueueRecord rec = bucket[i];
      if (static_cast<std::uint64_t>(rec >> 64) == time_bits) {
        out.push_back(rec);
        bucket[i] = bucket.back();
        bucket.pop_back();
        --size_;
      } else {
        ++i;
      }
    }
    cursor_bucket_ = min_bucket_;
    cursor_day_ = day_of(queue_record_time(min_rec_));
    cache_valid_ = false;
    return maybe_shrink();
  }

  /// Pre-sizes the bucket table for `events` concurrent records and pins
  /// it as the shrink floor, so a matched workload runs allocation-free.
  void reserve(std::size_t events) {
    std::size_t want = kMinBuckets;
    while (want < (events + 1) / 2) want <<= 1;
    if (want > min_buckets_) {
      min_buckets_ = want;
      if (nbuckets_ < want) resize(want);
    }
    for (std::vector<QueueRecord>& b : buckets_)
      if (b.capacity() < 4) b.reserve(4);
    scratch_.reserve(events);
  }

 private:
  /// Absolute day index of time `t` — exact as a double up to 2^53.
  double day_of(double t) const noexcept {
    return std::floor(t * inv_width_);
  }

  std::size_t bucket_of_day(double day) const noexcept {
    // The cast below is undefined past 2^64; such a day index has long
    // since wrapped around the table, so fold it with fmod first.
    if (day < 1.8e19) {
      return static_cast<std::size_t>(static_cast<std::uint64_t>(day)) &
             mask_;
    }
    return static_cast<std::size_t>(static_cast<std::uint64_t>(
               std::fmod(day, static_cast<double>(nbuckets_)))) &
           mask_;
  }

  // Scan invariant: no queued record's day precedes cursor_day_ (pops only
  // move time forward; pushes behind the cursor rewind it). So the first
  // bucket, in cursor order, holding a record of the exact day being
  // scanned holds the global minimum, and the full-record minimum within
  // that bucket is the exact total-order front.
  void locate_min() {
    std::size_t b = cursor_bucket_;
    double day = cursor_day_;
    for (std::size_t n = 0; n < nbuckets_; ++n) {
      const std::vector<QueueRecord>& bucket = buckets_[b];
      bool found = false;
      QueueRecord best = 0;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (day_of(queue_record_time(bucket[i])) == day &&
            (!found || bucket[i] < best)) {
          best = bucket[i];
          best_i = i;
          found = true;
        }
      }
      if (found) {
        min_rec_ = best;
        min_bucket_ = b;
        min_index_ = best_i;
        cache_valid_ = true;
        return;
      }
      b = (b + 1) & mask_;
      day += 1.0;
    }
    direct_search();
  }

  /// A whole year held nothing (sparse far-future schedule): scan every
  /// record for the global minimum and park the cursor on its day.
  void direct_search() {
    bool found = false;
    QueueRecord best = 0;
    std::size_t best_b = 0;
    std::size_t best_i = 0;
    for (std::size_t b = 0; b < nbuckets_; ++b) {
      const std::vector<QueueRecord>& bucket = buckets_[b];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (!found || bucket[i] < best) {
          best = bucket[i];
          best_b = b;
          best_i = i;
          found = true;
        }
      }
    }
    min_rec_ = best;
    min_bucket_ = best_b;
    min_index_ = best_i;
    cache_valid_ = true;
    cursor_bucket_ = best_b;
    cursor_day_ = day_of(queue_record_time(best));
  }

  bool maybe_shrink() {
    if (nbuckets_ > min_buckets_ && size_ < (nbuckets_ >> 3)) {
      resize(nbuckets_ >> 1);
      return true;
    }
    return false;
  }

  void resize(std::size_t target) {
    scratch_.clear();
    double tmin = 0.0;
    double tmax = 0.0;
    bool first = true;
    for (std::vector<QueueRecord>& bucket : buckets_) {
      for (const QueueRecord rec : bucket) {
        const double t = queue_record_time(rec);
        if (first || t < tmin) tmin = t;
        if (first || t > tmax) tmax = t;
        first = false;
        scratch_.push_back(rec);
      }
      bucket.clear();
    }
    double width = 1.0;
    if (scratch_.size() >= 2 && tmax > tmin)
      width = 3.0 * (tmax - tmin) / static_cast<double>(scratch_.size());
    if (!(width > 1e-300)) width = 1.0;
    rebuild(target, width);
    for (const QueueRecord rec : scratch_) {
      buckets_[bucket_of_day(day_of(queue_record_time(rec)))].push_back(rec);
    }
    size_ = scratch_.size();
    if (!scratch_.empty()) {
      cursor_day_ = day_of(tmin);
      cursor_bucket_ = bucket_of_day(cursor_day_);
    }
    cache_valid_ = false;
  }

  void rebuild(std::size_t target, double width) {
    if (target < kMinBuckets) target = kMinBuckets;
    nbuckets_ = std::size_t{1};
    while (nbuckets_ < target) nbuckets_ <<= 1;
    mask_ = nbuckets_ - 1;
    width_ = width;
    inv_width_ = 1.0 / width;
    buckets_.clear();
    buckets_.resize(nbuckets_);
    cursor_bucket_ = 0;
    cursor_day_ = 0.0;
    cache_valid_ = false;
  }

  std::vector<std::vector<QueueRecord>> buckets_;
  std::vector<QueueRecord> scratch_;  // resize staging, reused
  std::size_t nbuckets_ = 0;
  std::size_t mask_ = 0;
  std::size_t min_buckets_ = kMinBuckets;
  std::size_t size_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;

  // Year-scan cursor: the next dequeue scans from this bucket at this
  // absolute day index.
  std::size_t cursor_bucket_ = 0;
  double cursor_day_ = 0.0;

  // Cached position of the current minimum (valid until any mutation).
  bool cache_valid_ = false;
  QueueRecord min_rec_ = 0;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
};

}  // namespace atlarge::sim
