#pragma once
// Discrete-event simulation (DES) kernel.
//
// Every AtLarge substrate — datacenter, P2P swarm, MMOG world, FaaS
// platform — is built on this kernel: a simulated clock plus a totally
// ordered event queue. Events at equal timestamps fire in scheduling order
// (a strictly increasing sequence number breaks ties), which makes every
// simulation a deterministic function of its inputs and RNG seed; the
// determinism tests in tests/sim_test.cpp rely on this.
//
// The kernel is allocation-free per event after warm-up: event state lives
// in a free-list-recycled slot pool, the priority queue orders lightweight
// POD records, and handles are {slot, generation} pairs rather than
// shared-pointer control blocks. A slot's generation is bumped every time
// the slot is recycled, so a stale handle can never cancel or observe an
// unrelated later event that happens to reuse its slot.

#include <cstdint>
#include <functional>
#include <vector>

namespace atlarge::sim {

/// Simulated time, in seconds since simulation start.
using Time = double;

class Simulation;

/// Optional kernel instrumentation hook. A Simulation with no observer
/// attached pays one pointer test per schedule/fire/cancel (the null-sink
/// fast path); with an observer attached, the kernel reports every event
/// transition plus run boundaries. Hooks receive the live-event count
/// *after* the transition, so an observer's scheduled/fired/cancelled
/// counters always satisfy pending() == scheduled - fired - cancelled.
/// The obs module provides the standard implementation
/// (atlarge::obs::KernelObserver) that feeds a metrics registry and a
/// span tracer; custom observers can subclass directly.
class Observer {
 public:
  virtual ~Observer() = default;

  /// An event was scheduled at absolute simulated time `at`.
  virtual void on_schedule(Time at, std::size_t pending) {
    (void)at;
    (void)pending;
  }
  /// An event is about to execute at simulated time `now`.
  virtual void on_fire(Time now, std::size_t pending) {
    (void)now;
    (void)pending;
  }
  /// A pending event was cancelled.
  virtual void on_cancel(Time now, std::size_t pending) {
    (void)now;
    (void)pending;
  }
  /// run()/run_until() entered (not emitted for bare step() calls).
  virtual void on_run_begin(Time now) { (void)now; }
  /// run()/run_until() returned after executing `executed` events.
  virtual void on_run_end(Time now, std::size_t executed) {
    (void)now;
    (void)executed;
  }
};

/// Optional fault hook: a domain-agnostic seam through which a fault
/// plane schedules failure injections as ordinary kernel events, so
/// injections are totally ordered against domain events and every run
/// remains a deterministic function of its inputs. The fault module
/// provides the standard implementation (atlarge::fault::Injector), which
/// replays a materialized FaultPlan; custom hooks can subclass directly.
/// The kernel itself never interprets faults — it only gives the hook a
/// chance to schedule its injections when attached.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called once by Simulation::set_fault_hook: schedule the hook's
  /// injections (via schedule_at/schedule_after) on `sim`.
  virtual void attach(Simulation& sim) = 0;
};

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. A handle is a {slot index, generation} pair into its
/// Simulation's event pool and must not outlive the Simulation it came from.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has not yet fired or been
  /// cancelled.
  bool pending() const noexcept;

  /// Cancels the event if still pending; returns true if it was cancelled
  /// by this call.
  bool cancel() noexcept;

 private:
  friend class Simulation;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// The event-driven simulation engine.
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute simulated time `at` (>= now()).
  /// Scheduling in the past is clamped to now().
  EventHandle schedule_at(Time at, Action action);

  /// Schedules `action` after a relative delay (>= 0).
  EventHandle schedule_after(Time delay, Action action);

  /// Runs until the event queue drains or the clock would pass `until`.
  /// Events scheduled exactly at `until` still fire. Returns the number of
  /// events executed.
  std::size_t run_until(Time until);

  /// Runs until the event queue drains completely.
  std::size_t run();

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  /// Exact number of live (scheduled, not yet fired or cancelled) events.
  /// Maintained as a counter on schedule/cancel/fire, so this is O(1) and
  /// never counts cancelled tombstones still sitting in the queue.
  std::size_t pending() const noexcept { return live_; }

  /// Pre-sizes the event pool and queue for `events` concurrent events.
  void reserve(std::size_t events);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Attaches (or, with nullptr, detaches) an instrumentation observer.
  /// Not owned; must outlive the Simulation or be detached first.
  void set_observer(Observer* observer) noexcept { observer_ = observer; }
  Observer* observer() const noexcept { return observer_; }

  /// Attaches a fault hook and lets it schedule its injections (attach()
  /// is invoked immediately). Not owned; must outlive the Simulation.
  /// Passing nullptr detaches without side effects.
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    if (hook != nullptr) hook->attach(*this);
  }
  FaultHook* fault_hook() const noexcept { return fault_hook_; }

 private:
  friend class EventHandle;

  /// Pooled event state; recycled through `free_slots_`.
  struct EventSlot {
    Action action;
    std::uint64_t generation = 0;
    bool live = false;
  };

  /// What the priority queue actually orders: one 128-bit integer per
  /// event, laid out as (time bits : 64 | seq : 40 | slot : 24). Simulated
  /// time is always >= 0 (schedule_at clamps to now(), which starts at 0),
  /// and non-negative IEEE-754 doubles order identically to their bit
  /// patterns, so a single unsigned 128-bit compare is exactly the
  /// (time, seq) event order — branchless, where a struct comparator costs
  /// a data-dependent branch per heap level. seq gives 1.1e12 events per
  /// Simulation; slot caps concurrent events at 16.7M.
  ///
  /// The slot is owned by its record until the record is popped, so
  /// records never dangle; cancellation just clears `live` and the record
  /// becomes a tombstone reclaimed on pop.
  using QueueRecord = unsigned __int128;
  static constexpr unsigned kSlotBits = 24;

  static QueueRecord pack(Time time, std::uint64_t seq_slot) noexcept;
  static Time record_time(QueueRecord rec) noexcept;
  static std::uint32_t record_slot(QueueRecord rec) noexcept {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(rec) &
                                      ((1u << kSlotBits) - 1));
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  void purge_cancelled() noexcept;
  void heap_push(QueueRecord rec);
  void heap_pop_front() noexcept;
  bool slot_pending(std::uint32_t slot, std::uint64_t generation) const noexcept;
  bool cancel_slot(std::uint32_t slot, std::uint64_t generation) noexcept;

  // 4-ary min-heap with bottom-up ("hole-sinking") pop: half the levels of
  // a binary heap, children share a cache line, and the record type makes
  // every comparison a single wide integer compare. Measured ~2x faster
  // than std::push_heap/pop_heap over {double, u64} structs on 100k-event
  // queues.
  std::vector<QueueRecord> heap_;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  Observer* observer_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  bool stopped_ = false;
};

}  // namespace atlarge::sim
