#pragma once
// Discrete-event simulation (DES) kernel.
//
// Every AtLarge substrate — datacenter, P2P swarm, MMOG world, FaaS
// platform — is built on this kernel: a simulated clock plus a totally
// ordered event queue. Events at equal timestamps fire in scheduling order
// (a strictly increasing sequence number breaks ties), which makes every
// simulation a deterministic function of its inputs and RNG seed; the
// determinism tests in tests/sim_test.cpp rely on this.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace atlarge::sim {

/// Simulated time, in seconds since simulation start.
using Time = double;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has not yet fired or been
  /// cancelled.
  bool pending() const noexcept;

  /// Cancels the event if still pending; returns true if it was cancelled
  /// by this call.
  bool cancel() noexcept;

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event-driven simulation engine.
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute simulated time `at` (>= now()).
  /// Scheduling in the past is clamped to now().
  EventHandle schedule_at(Time at, Action action);

  /// Schedules `action` after a relative delay (>= 0).
  EventHandle schedule_after(Time delay, Action action);

  /// Runs until the event queue drains or the clock would pass `until`.
  /// Events scheduled exactly at `until` still fire. Returns the number of
  /// events executed.
  std::size_t run_until(Time until);

  /// Runs until the event queue drains completely.
  std::size_t run();

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  /// Upper bound on the number of pending events (cancelled events still in
  /// the queue are counted until they are popped and discarded).
  std::size_t pending() const noexcept;

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

 private:
  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;
    Action action;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace atlarge::sim
