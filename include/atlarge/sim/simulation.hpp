#pragma once
// Discrete-event simulation (DES) kernel.
//
// Every AtLarge substrate — datacenter, P2P swarm, MMOG world, FaaS
// platform — is built on this kernel: a simulated clock plus a totally
// ordered event queue. Events at equal timestamps fire in scheduling order
// (a strictly increasing sequence number breaks ties), which makes every
// simulation a deterministic function of its inputs and RNG seed; the
// determinism tests in tests/sim_test.cpp rely on this.
//
// The kernel is allocation-free per event after warm-up: event state lives
// in a free-list-recycled slot pool, the priority queue orders lightweight
// POD records, and handles are {slot, generation} pairs rather than
// shared-pointer control blocks. A slot's generation is bumped every time
// the slot is recycled, so a stale handle can never cancel or observe an
// unrelated later event that happens to reuse its slot.
//
// Event payloads (the scheduled closures) live in a 64-byte arena block
// paired with each pool slot for the slot's lifetime — no type erasure
// through std::function, no per-event heap traffic, and stable payload
// addresses so closures are constructed, invoked, and destroyed in place.
// Larger closures fall back to per-event blocks from the same bump-pointer
// arena (atlarge/sim/arena.hpp), recycled with the Simulation; only
// payloads past the arena's largest size class ever reach the system
// allocator. Every residual allocation (pool/queue growth, arena chunks,
// oversize payloads) is counted and reported through
// Observer::on_alloc_event, so tests can assert that a pre-sized run is
// allocation-free in steady state.
//
// Two queue backends order the same packed 128-bit records: the default
// 4-ary min-heap (cache-friendly, O(log n), robust under any schedule
// shape) and a calendar queue (O(1) amortized under churny,
// near-uniform schedules — atlarge/sim/calendar_queue.hpp). Both pop the
// exact total-order minimum, so the backend choice can never change
// simulation results, only speed. run()/run_until() drain equal-time
// events in batches: one queue extraction per distinct timestamp instead
// of one pop per event.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "atlarge/sim/arena.hpp"
#include "atlarge/sim/calendar_queue.hpp"

namespace atlarge::sim {

/// Simulated time, in seconds since simulation start.
using Time = double;

class Simulation;

/// Which event-queue backend a Simulation orders its records with. Both
/// produce byte-identical event orderings (exact total-order pops); the
/// choice is purely a performance trade pinned down in DESIGN.md.
enum class QueueKind {
  kHeap,      ///< 4-ary min-heap: O(log n), robust default.
  kCalendar,  ///< calendar queue: O(1) amortized under dense schedules.
};

/// Process-wide default backend for newly constructed Simulations
/// (initially QueueKind::kHeap). Benchmarks flip this to compare backends
/// without threading a parameter through every domain engine.
QueueKind default_queue_kind() noexcept;
void set_default_queue_kind(QueueKind kind) noexcept;

namespace detail {

/// Static per-payload-type vtable: the two operations the kernel needs
/// from an erased closure. One immutable constexpr instance per payload
/// type replaces std::function's control block and heap fallback.
/// Payloads are invoked and destroyed in place (their storage never
/// relocates while they are alive), so no move operation is needed.
struct PayloadOps {
  void (*invoke)(void* payload);
  void (*destroy)(void* payload) noexcept;
};

template <class F>
struct PayloadOpsFor {
  static void invoke(void* payload) { (*static_cast<F*>(payload))(); }
  static void destroy(void* payload) noexcept {
    static_cast<F*>(payload)->~F();
  }
  static constexpr PayloadOps ops{&invoke, &destroy};
};

}  // namespace detail

/// Optional kernel instrumentation hook. A Simulation with no observer
/// attached pays one pointer test per schedule/fire/cancel (the null-sink
/// fast path); with an observer attached, the kernel reports every event
/// transition plus run boundaries. Hooks receive the live-event count
/// *after* the transition, so an observer's scheduled/fired/cancelled
/// counters always satisfy pending() == scheduled - fired - cancelled.
/// The obs module provides the standard implementation
/// (atlarge::obs::KernelObserver) that feeds a metrics registry and a
/// span tracer; custom observers can subclass directly.
class Observer {
 public:
  virtual ~Observer() = default;

  /// An event was scheduled at absolute simulated time `at`.
  virtual void on_schedule(Time at, std::size_t pending) {
    (void)at;
    (void)pending;
  }
  /// An event is about to execute at simulated time `now`.
  virtual void on_fire(Time now, std::size_t pending) {
    (void)now;
    (void)pending;
  }
  /// A pending event was cancelled.
  virtual void on_cancel(Time now, std::size_t pending) {
    (void)now;
    (void)pending;
  }
  /// run()/run_until() entered (not emitted for bare step() calls).
  virtual void on_run_begin(Time now) { (void)now; }
  /// run()/run_until() returned after executing `executed` events.
  virtual void on_run_end(Time now, std::size_t executed) {
    (void)now;
    (void)executed;
  }
  /// The kernel touched the system allocator: pool/queue growth, an arena
  /// chunk, or an oversize payload. A pre-sized steady-state run emits
  /// none of these (asserted in tests via Simulation::alloc_events()).
  virtual void on_alloc_event() {}
};

/// Optional periodic sampling hook: the kernel-side seam for continuous
/// telemetry (time-series recorders, SLO monitors). When attached with an
/// interval dt, the kernel invokes on_sample(k*dt) for every grid boundary
/// the clock crosses, *before* executing any event at or past the
/// boundary — so a sample at time b observes exactly the state produced by
/// events strictly earlier than b. Boundaries are derived from event
/// timestamps alone, so the sample stream is byte-identical across queue
/// backends and independent of host threading. A Simulation with no hook
/// attached pays one pointer test per batch; hooks must not schedule or
/// cancel events. run_until(t) with finite t also emits the trailing
/// boundaries up to t after the queue drains, so a recorded series covers
/// the full horizon even when the tail is idle.
class SamplingHook {
 public:
  virtual ~SamplingHook() = default;

  /// The clock reached sampling boundary `now` (== k * interval).
  virtual void on_sample(Time now) = 0;
};

/// Optional fault hook: a domain-agnostic seam through which a fault
/// plane schedules failure injections as ordinary kernel events, so
/// injections are totally ordered against domain events and every run
/// remains a deterministic function of its inputs. The fault module
/// provides the standard implementation (atlarge::fault::Injector), which
/// replays a materialized FaultPlan; custom hooks can subclass directly.
/// The kernel itself never interprets faults — it only gives the hook a
/// chance to schedule its injections when attached.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called once by Simulation::set_fault_hook: schedule the hook's
  /// injections (via schedule_at/schedule_after) on `sim`.
  virtual void attach(Simulation& sim) = 0;
};

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. A handle is a {slot index, generation} pair into its
/// Simulation's event pool and must not outlive the Simulation it came from.
///
/// Thread affinity: a handle inherits its Simulation's LP ownership rule
/// (see "LP thread affinity" on Simulation below). cancel() and pending()
/// mutate/read pool state without locks, so in a sharded run they must be
/// invoked only from the thread currently executing the owning LP —
/// never from another LP's event. Debug builds assert this; a release
/// build would silently race. To cancel an event owned by another LP,
/// route the request through ShardedSimulation::send so the owning LP
/// cancels it inside its own event context.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle refers to an event that has not yet fired or been
  /// cancelled.
  bool pending() const noexcept;

  /// Cancels the event if still pending; returns true if it was cancelled
  /// by this call.
  bool cancel() noexcept;

 private:
  friend class Simulation;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// The event-driven simulation engine.
class Simulation {
 public:
  /// Compatibility alias: a type-erased action is still accepted anywhere
  /// a callable is, but the kernel no longer stores payloads through it.
  using Action = std::function<void()>;

  explicit Simulation(QueueKind kind = default_queue_kind());
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Which queue backend this instance orders events with.
  QueueKind queue_kind() const noexcept { return kind_; }

  /// Schedules `action` at absolute simulated time `at` (>= now()).
  /// Scheduling in the past is clamped to now(). The callable is stored
  /// in the slot's arena-resident payload block when it fits 64 bytes, in
  /// a per-event arena allocation otherwise — construct captures in
  /// place, no std::function detour.
  template <class F>
  EventHandle schedule_at(Time at, F&& action) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>,
                  "event payload must be callable with no arguments");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event payloads are not supported");
    assert_owner_thread();
    const std::uint32_t slot = acquire_slot();
    EventSlot& s = slots_[slot];
    void* where;
    if constexpr (sizeof(Fn) <= EventSlot::kInlineBytes) {
      where = s.block;
    } else {
      constexpr std::size_t cls = PayloadArena::size_class(sizeof(Fn));
      if constexpr (cls != 0) {
        const std::size_t chunks_before = arena_.chunks();
        where = arena_.allocate(cls);
        if (arena_.chunks() != chunks_before) note_alloc_event();
      } else {
        where = ::operator new(sizeof(Fn));
        note_alloc_event();
      }
      s.heap_payload = where;
      s.payload_class = static_cast<std::uint32_t>(cls);
    }
    ::new (where) Fn(std::forward<F>(action));
    s.ops = &detail::PayloadOpsFor<Fn>::ops;
    return schedule_slot(at, slot);
  }

  /// Schedules `action` after a relative delay (>= 0).
  template <class F>
  EventHandle schedule_after(Time delay, F&& action) {
    return schedule_at(now_ + std::max(delay, 0.0),
                       std::forward<F>(action));
  }

  /// Runs until the event queue drains or the clock would pass `until`.
  /// Events scheduled exactly at `until` still fire. Returns the number of
  /// events executed.
  std::size_t run_until(Time until);

  /// Runs until the event queue drains completely.
  std::size_t run();

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  /// Exact number of live (scheduled, not yet fired or cancelled) events.
  /// Maintained as a counter on schedule/cancel/fire, so this is O(1) and
  /// never counts cancelled tombstones still sitting in the queue.
  std::size_t pending() const noexcept { return live_; }

  /// Timestamp of the earliest live event, or +infinity when none is
  /// pending. Purges cancelled tombstones at the queue front first, so
  /// the returned time is exact — the conservative-window scheduler
  /// (sharded.hpp) derives its synchronization floors from this.
  Time next_event_time();

  // ------------------------------------------------------------------
  // LP thread affinity (sharded runs).
  //
  // A Simulation is a single-threaded kernel: schedule_at/schedule_after,
  // EventHandle::cancel()/pending(), step(), and run()/run_until() all
  // mutate pool and queue state without locks. When a Simulation serves
  // as one logical process (LP) of a ShardedSimulation, the rule is that
  // every such call comes from the thread currently executing that LP:
  // the worker the coordinator pinned the LP to during a synchronization
  // window, or the coordinator thread between windows (mailbox delivery,
  // floor queries). Cancelling or rescheduling another LP's event from
  // your own LP's event context is a data race — ask the owning LP to do
  // it by sending it a message (ShardedSimulation::send) instead.
  //
  // bind_owner_thread() pins the kernel to the calling thread and
  // clear_owner_thread() releases it; while bound, debug builds (NDEBUG
  // undefined) assert the rule on every entry point above, so a cross-LP
  // cancel dies loudly instead of corrupting the pool. Release builds
  // compile the checks out entirely.

  /// Binds this kernel to the calling thread (debug-assert affinity).
  void bind_owner_thread() noexcept {
    owner_thread_.store(this_thread_token(), std::memory_order_relaxed);
  }
  /// Releases the binding; any thread may use the kernel again.
  void clear_owner_thread() noexcept {
    owner_thread_.store(0, std::memory_order_relaxed);
  }

  /// Pre-sizes the event pool, queue (heap or calendar buckets), dispatch
  /// scratch, and — when `payload_bytes` > 0 — the payload arena, for
  /// `events` concurrent events. A heap-backed workload that stays within
  /// these bounds runs without touching the system allocator
  /// (alloc_events() stays 0); the calendar backend additionally grows
  /// bucket capacities toward the schedule's day clustering during a first
  /// rotation of the table, then goes allocation-free too.
  void reserve(std::size_t events, std::size_t payload_bytes = 0);

  /// Number of system-allocator events (pool/queue growth, arena chunks,
  /// oversize payloads) since construction. Zero after a reserve()-sized
  /// steady-state run; mirrored to Observer::on_alloc_event.
  std::uint64_t alloc_events() const noexcept { return alloc_events_; }

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Attaches (or, with nullptr, detaches) an instrumentation observer.
  /// Not owned; must outlive the Simulation or be detached first.
  void set_observer(Observer* observer) noexcept { observer_ = observer; }
  Observer* observer() const noexcept { return observer_; }

  /// Attaches a fault hook and lets it schedule its injections (attach()
  /// is invoked immediately). Not owned; must outlive the Simulation.
  /// Passing nullptr detaches without side effects.
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    if (hook != nullptr) hook->attach(*this);
  }
  FaultHook* fault_hook() const noexcept { return fault_hook_; }

  /// Attaches a periodic sampling hook invoked at every multiple of
  /// `interval` the clock crosses during run()/run_until() (see
  /// SamplingHook for the exact boundary semantics). The first boundary is
  /// the smallest multiple of `interval` strictly greater than now().
  /// Passing nullptr detaches; `interval` must be > 0 when attaching.
  /// Not owned; must outlive the Simulation or be detached first.
  void set_sampling_hook(SamplingHook* hook, Time interval) {
    sampling_hook_ = hook;
    sample_interval_ = interval;
    if (hook != nullptr) {
      // Align to the absolute grid so the boundary times are a function of
      // the interval alone, not of when the hook was attached.
      const double k = std::floor(now_ / interval);
      next_sample_ = (k + 1.0) * interval;
    }
  }
  SamplingHook* sampling_hook() const noexcept { return sampling_hook_; }

 private:
  friend class EventHandle;

  /// Pooled event state; recycled through `free_slots_`. The payload
  /// lives in `block` — a 64-byte arena allocation paired with the slot
  /// for the slot's whole lifetime, so payload addresses are stable even
  /// when the slot vector reallocates (the kernel invokes payloads in
  /// place, and an action may grow the pool mid-execution). Payloads past
  /// 64 bytes live at `heap_payload` instead (a per-event arena block of
  /// class `payload_class`, or — when the class is 0 — a plain
  /// operator-new block). `ops` is null iff the slot currently owns no
  /// payload.
  struct EventSlot {
    static constexpr std::size_t kInlineBytes = 64;

    const detail::PayloadOps* ops = nullptr;
    void* block = nullptr;
    void* heap_payload = nullptr;
    std::uint32_t payload_class = 0;
    std::uint64_t generation = 0;
    bool live = false;

    EventSlot() = default;
    EventSlot(const EventSlot&) = delete;
    EventSlot& operator=(const EventSlot&) = delete;
    // Pool growth relocates slot records; payloads stay put in their
    // arena blocks, so this is a plain pointer move.
    EventSlot(EventSlot&& other) noexcept
        : ops(other.ops),
          block(other.block),
          heap_payload(other.heap_payload),
          payload_class(other.payload_class),
          generation(other.generation),
          live(other.live) {
      other.ops = nullptr;
      other.block = nullptr;
      other.heap_payload = nullptr;
    }
    // Destroys a still-owned payload. Arena storage is not returned here
    // (no arena reference); ~Simulation destroys slots before the arena
    // member, which then releases their blocks wholesale.
    ~EventSlot() {
      if (ops == nullptr) return;
      ops->destroy(heap_payload != nullptr ? heap_payload : block);
      if (heap_payload != nullptr && payload_class == 0)
        ::operator delete(heap_payload);
    }
  };

  static QueueRecord pack(Time time, std::uint64_t seq_slot) noexcept;
  static constexpr unsigned kSlotBits = 24;
  static Time record_time(QueueRecord rec) noexcept {
    return queue_record_time(rec);
  }
  static std::uint32_t record_slot(QueueRecord rec) noexcept {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(rec) &
                                      ((1u << kSlotBits) - 1));
  }

  std::uint32_t acquire_slot();
  EventHandle schedule_slot(Time at, std::uint32_t slot);
  void destroy_payload(EventSlot& s) noexcept;
  void release_slot(std::uint32_t slot) noexcept;
  void fire_slot(std::uint32_t slot);
  std::size_t run_batch();
  void purge_cancelled();
  bool slot_pending(std::uint32_t slot,
                    std::uint64_t generation) const noexcept;
  bool cancel_slot(std::uint32_t slot, std::uint64_t generation) noexcept;
  void note_alloc_event() noexcept;
  /// Nonzero token identifying the calling thread (hash of thread::id).
  static std::size_t this_thread_token() noexcept {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h == 0 ? 1 : h;
  }
  /// Debug-asserts the LP-affinity rule documented above; a no-op when
  /// unbound or in release builds.
  void assert_owner_thread() const noexcept {
#ifndef NDEBUG
    const std::size_t owner = owner_thread_.load(std::memory_order_relaxed);
    assert((owner == 0 || owner == this_thread_token()) &&
           "Simulation accessed from a thread that does not own its LP "
           "(cancel/reschedule cross-LP events via ShardedSimulation::send)");
#endif
  }
  /// Fires every pending sampling boundary <= `upto`, advancing the clock
  /// to each boundary before invoking the hook.
  void emit_samples(Time upto);

  // Queue backend dispatch: one branch per operation on `kind_`, perfectly
  // predicted in any real run.
  bool queue_empty() const noexcept;
  QueueRecord queue_front();
  void queue_pop_front();
  void queue_push(QueueRecord rec);
  /// Moves every record at the front timestamp into batch_, sorted by full
  /// record order (== scheduling order at equal time).
  void queue_extract_equal_run();

  void heap_push(QueueRecord rec);
  void heap_pop_front() noexcept;
  void heap_extract_equal_run();

  // 4-ary min-heap with bottom-up ("hole-sinking") pop: half the levels of
  // a binary heap, children share a cache line, and the record type makes
  // every comparison a single wide integer compare. Measured ~2x faster
  // than std::push_heap/pop_heap over {double, u64} structs on 100k-event
  // queues.
  //
  // Member order matters: arena_ is declared before slots_ so that slot
  // destructors (which may run payload destructors living in arena
  // storage) execute while the arena is still alive.
  PayloadArena arena_;
  std::vector<QueueRecord> heap_;
  CalendarQueue calendar_;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Batched-dispatch scratch: the current equal-time run, reused across
  // batches (swapped out while executing so reentrant runs can't clobber
  // it).
  std::vector<QueueRecord> batch_;
  std::size_t live_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t alloc_events_ = 0;
  // LP-affinity binding: 0 = unbound (any thread), else the owning
  // thread's token. Only consulted by debug asserts; relaxed atomics keep
  // bind/clear race-free across window hand-offs.
  std::atomic<std::size_t> owner_thread_{0};
  Observer* observer_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  SamplingHook* sampling_hook_ = nullptr;
  Time sample_interval_ = 0.0;
  Time next_sample_ = 0.0;
  QueueKind kind_ = QueueKind::kHeap;
  bool stopped_ = false;
};

}  // namespace atlarge::sim
