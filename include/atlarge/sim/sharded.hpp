#pragma once
// Sharded parallel discrete-event simulation: one simulation partitioned
// into logical processes (LPs), each owning a private event queue (the
// same heap/calendar kernel as Simulation), synchronized by conservative
// lookahead windows in the Chandy-Misra-Bryant tradition and executed on
// sim::ThreadPool workers (DESIGN.md section 12).
//
// Model
//  * Each LP is a full sim::Simulation — queue backend, arena, observer,
//    sampling hook, fault hooks all work per-LP unchanged.
//  * Cross-LP interaction goes exclusively through send(): a closure to
//    execute on the destination LP at a future timestamp. Sends are
//    buffered in per-source outboxes during a window and delivered at the
//    barrier, so LPs never touch each other's queues concurrently.
//  * Lookahead L is the model's minimum cross-LP latency (MMOG: the time
//    an avatar needs to cross an interest radius into another zone; P2P:
//    the tracker announce interval). An event at time t may only send at
//    timestamps >= t + L.
//
// Window algorithm (the conservative synchronization)
//  1. floor  = min over LPs of their next event time.
//  2. window = [floor, floor + L): every LP executes its local events in
//     that half-open interval in parallel. Safe because any message such
//     an event emits lands at >= floor + L, strictly after the window —
//     no LP can receive anything that should have preempted work it is
//     doing now.
//  3. barrier, then deliver all buffered sends (globally sorted, see
//     below) and repeat. L == 0 degenerates to one timestamp per window:
//     still correct, just serialized per tick — pick models with real
//     latency floors to shard (DESIGN.md lists when not to shard).
//
// Determinism contract (kept from the kernel)
//  * Per-LP event orderings are byte-identical across thread counts for a
//    fixed shard count: window bounds depend only on event timestamps,
//    and barrier delivery sorts messages by (time, key, src, seq) — a
//    total order independent of which worker ran what when.
//  * Shard-count invariance of *results* is the engine's contract, like
//    ThreadPool::parallel_for: engines give each entity its own RNG
//    stream and fold outcomes into order-independent aggregates (sums,
//    counters, log-bucket digests). The `key` argument of send() is the
//    engine's entity id precisely so delivery order ties break the same
//    way no matter how entities are spread over LPs.
//
// Thread affinity: LP i always runs on lane (i mod lanes), and a lane is
// pinned to one ThreadPool worker via run_on — an LP's queue and arena
// stay hot in one core's cache across windows. While a lane executes an
// LP window it binds the LP's owner thread (Simulation::bind_owner_thread),
// so debug builds assert on cross-LP handle cancels instead of racing.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "atlarge/sim/simulation.hpp"
#include "atlarge/sim/thread_pool.hpp"

namespace atlarge::sim {

struct ShardOptions {
  /// Number of logical processes. 1 (the default) keeps today's
  /// single-queue behaviour: one LP, windows collapse to plain runs.
  std::size_t shards = 1;
  /// Worker parallelism (ThreadPool size; 1 = everything on the caller).
  std::size_t threads = 1;
  /// Conservative lookahead L in simulated time: the minimum delay of any
  /// cross-LP send. 0 is always safe but serializes one timestamp per
  /// window.
  double lookahead = 0.0;
  /// Queue backend for every LP (follows the process-wide default, so the
  /// backend matrix in tests covers sharded runs too).
  QueueKind queue = default_queue_kind();
};

class ShardedSimulation {
 public:
  explicit ShardedSimulation(const ShardOptions& options);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  std::size_t shards() const noexcept { return lps_.size(); }
  std::size_t threads() const noexcept { return pool_.size(); }
  double lookahead() const noexcept { return lookahead_; }

  /// The LP's kernel: schedule local events, attach observers, sampling
  /// hooks, or a fault::Injector per LP. Outside run_until/run only, or
  /// from code currently executing on that LP.
  Simulation& lp(std::size_t index) { return lps_[index]->sim; }

  /// Cross-LP message: execute `fn` on LP `dst` at time `at`. Must be
  /// called either outside a run (setup) or from code executing on LP
  /// `src` during a window; `at` must be >= sender time + lookahead().
  /// Delivery happens at the next window barrier: all buffered messages
  /// are sorted by (at, key, src, seq) and scheduled in that order, so
  /// the destination's event sequence is reproducible. `key` is the
  /// engine's entity id (avatar, peer, swarm) — the shard-layout-stable
  /// part of the tie-break.
  void send(std::size_t src, std::size_t dst, Time at, std::uint64_t key,
            std::function<void()> fn);

  /// Runs lookahead windows until every LP's next event is past `until`
  /// (then advances each LP's clock to `until`, emitting any sampling
  /// tails). Returns the number of events executed across all LPs.
  std::size_t run_until(Time until);

  /// Runs until every LP queue and every mailbox drains.
  std::size_t run();

  /// Lookahead windows executed so far (a measure of barrier overhead).
  std::uint64_t windows() const noexcept { return windows_; }
  /// Cross-LP messages delivered so far.
  std::uint64_t messages() const noexcept { return messages_; }

 private:
  struct Message {
    Time at = 0.0;
    std::uint64_t key = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;  // per-source send counter
    std::function<void()> fn;
  };

  // Sized and aligned so two lanes never share a cache line through
  // adjacent LPs' outboxes.
  struct alignas(64) Lp {
    explicit Lp(QueueKind kind) : sim(kind) {}
    Simulation sim;
    std::vector<Message> outbox;  // appended only by the lane running it
    std::uint64_t next_send_seq = 0;
  };

  std::size_t lane_of(std::size_t lp) const noexcept {
    return lp % lanes_;
  }

  void deliver_mailboxes();
  std::size_t run_window(Time window_until);

  std::vector<std::unique_ptr<Lp>> lps_;
  ThreadPool pool_;
  double lookahead_ = 0.0;
  std::size_t lanes_ = 1;
  std::vector<std::size_t> lane_executed_;  // per-lane, summed at barrier
  std::vector<Message> delivery_;           // reused barrier scratch
  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
  bool executing_ = false;
};

}  // namespace atlarge::sim
