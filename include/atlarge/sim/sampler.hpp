#pragma once
// Periodic sampling of simulation state — the in-simulation analog of a
// monitoring agent. The paper's instruments (BTWorld, MultiProbe, DevOps
// monitoring in the Figure 9 reference architecture) all reduce to "call a
// probe every delta seconds and record what it sees"; Sampler provides that,
// including the ability to *subsample* (probe fewer targets than exist),
// which is how the sampling-bias study of Table 5 is reproduced.

#include <functional>
#include <vector>

#include "atlarge/sim/simulation.hpp"

namespace atlarge::sim {

/// One time-stamped observation of a scalar signal.
struct Sample {
  Time time = 0.0;
  double value = 0.0;
};

/// Calls `probe` every `period` seconds from `start` until `end`, recording
/// (time, value) pairs. Construction arms the sampler; the record is
/// available after the simulation runs past `end`.
class Sampler {
 public:
  using Probe = std::function<double()>;

  Sampler(Simulation& sim, Time start, Time end, Time period, Probe probe);

  const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// The sampled values only, convenient for stats::summarize.
  std::vector<double> values() const;

 private:
  void tick();

  Simulation& sim_;
  Time end_;
  Time period_;
  Probe probe_;
  std::vector<Sample> samples_;
};

}  // namespace atlarge::sim
