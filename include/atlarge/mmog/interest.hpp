#pragma once
// Interest management for virtual worlds: zoning, full replication, and
// the paper's Area-of-Simulation technique (study [81]), evaluated with an
// RTSenv-style scalability harness (study [76]).
//
// The key discovery of [76] is that RTS-game scalability is governed not
// by raw entity count but by *how entities are used*: replay analysis
// showed multiple points of interest, with tens of tightly managed
// entities in some and hundreds of casually managed entities elsewhere.
// The world generator reproduces that structure (hotspot mixture), and the
// three techniques price a simulation tick under it:
//  * Zoning: static spatial grid, zones pinned to servers — cheap, but
//    hotspot clustering destroys load balance;
//  * Full replication (mirrored): every server simulates everything —
//    perfectly balanced, but per-server cost grows with global N^2;
//  * Area of Simulation (AoS): full-fidelity simulation only inside areas
//    around points of interest, casual (linear-cost) simulation elsewhere,
//    areas load-balanced across servers.

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::mmog {

struct Entity {
  double x = 0.0;
  double y = 0.0;
  bool in_hotspot = false;
};

struct WorldConfig {
  double size = 1'000.0;            // square world edge
  std::size_t entities = 1'000;
  std::size_t hotspots = 4;         // points of interest
  double hotspot_fraction = 0.7;    // entities clustered at hotspots
  double hotspot_sigma = 30.0;      // cluster spread
  std::uint64_t seed = 1;
};

struct World {
  WorldConfig config;
  std::vector<Entity> entities;
  std::vector<std::pair<double, double>> hotspots;
};

World generate_world(const WorldConfig& config);

enum class ImTechnique { kZoning, kFullReplication, kAreaOfSimulation };

std::string to_string(ImTechnique t);

struct ImConfig {
  std::size_t servers = 4;
  std::size_t zone_grid = 4;           // zoning: grid is zone_grid^2 zones
  double aos_radius = 60.0;            // AoS area radius around hotspots
  double cost_per_pair = 1e-6;         // s/tick per locally interacting pair
  double cost_per_entity = 1e-5;       // s/tick per entity (casual sim)
  double sync_cost_per_entity = 2e-6;  // s/tick per replicated entity
  double tick_budget = 1.0 / 30.0;     // s/tick for a playable 30 Hz game
};

struct ImReport {
  std::string technique;
  double busiest_server_cost = 0.0;  // s per tick on the busiest server
  double total_cost = 0.0;           // s per tick across servers
  double imbalance = 0.0;            // busiest / mean server cost
  double sync_overhead = 0.0;        // s per tick of consistency traffic
  bool playable = false;             // busiest server fits the tick budget
};

/// Prices one tick of the world under the technique.
ImReport evaluate_interest_management(ImTechnique technique,
                                      const World& world,
                                      const ImConfig& config);

/// RTSenv-style sweep: the largest entity count (from `candidates`,
/// ascending) the technique can sustain within the tick budget; 0 if none.
std::size_t max_sustainable_entities(ImTechnique technique,
                                     const WorldConfig& world_template,
                                     const ImConfig& config,
                                     const std::vector<std::size_t>&
                                         candidates);

}  // namespace atlarge::mmog
