#pragma once
// Dynamic resource provisioning for MMOG operations (paper studies [71],
// [87]: "efficient management of data center resources for massively
// multiplayer online games").
//
// Given a player-population series, a provisioner decides how many game
// servers to rent each interval. The paper's result — cloud-based dynamic
// provisioning cuts over-provisioning dramatically versus static
// peak-sizing while keeping SLA violations low, provided the predictor
// anticipates the diurnal ramp — re-emerges from these models.

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/mmog/workload.hpp"

namespace atlarge::mmog {

/// Load predictors evaluated by the paper's MMOG provisioning work.
enum class Predictor {
  kLastValue,     // next load = current load
  kMovingAverage, // mean of a trailing window
  kExponential,   // exponential smoothing
  kLinearTrend,   // least-squares extrapolation over a trailing window
};

std::string to_string(Predictor p);

struct ProvisioningConfig {
  Predictor predictor = Predictor::kLastValue;
  double players_per_server = 500.0;
  double headroom = 1.1;        // provision for predicted * headroom
  std::size_t window = 12;      // trailing samples for MA / trend
  double smoothing = 0.5;       // alpha for exponential smoothing
  double provisioning_delay = 600.0;  // s until new servers are usable
  std::uint32_t min_servers = 1;
  std::uint32_t max_servers = 10'000;
};

struct ProvisioningResult {
  std::string predictor;
  double avg_servers = 0.0;
  double peak_servers = 0.0;
  /// Fraction of time capacity < demand (degraded service = SLA breach).
  double sla_violation_share = 0.0;
  /// Time-averaged over-provisioned capacity, in servers.
  double avg_overprovision = 0.0;
  /// Server-hours consumed (the cost driver).
  double server_hours = 0.0;
};

/// Simulates dynamic provisioning against the population series.
ProvisioningResult provision_dynamic(const PopulationSeries& series,
                                     const ProvisioningConfig& config);

/// Static peak provisioning baseline: rent peak demand (plus headroom)
/// for the whole horizon.
ProvisioningResult provision_static(const PopulationSeries& series,
                                    const ProvisioningConfig& config);

}  // namespace atlarge::mmog
