#pragma once
// Gaming analytics (paper Section 6.2): the CAMEO-style analytics function
// of the MMOG ecosystem. Three published directions are reproduced:
//  * implicit social networks from co-play ([74]): who plays with whom
//    forms a graph with community structure, even without explicit
//    friendship;
//  * matchmaking on the implicit network and skill ([74], [91]);
//  * toxicity detection ([77]): classifying toxic players from noisy
//    per-message signals.

#include <cstdint>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::mmog {

using PlayerId = std::uint32_t;

struct MatchRecord {
  double time = 0.0;
  std::vector<PlayerId> players;  // co-play group (party or match lobby)
};

struct MatchLogConfig {
  std::size_t players = 500;
  std::size_t matches = 3'000;
  std::size_t communities = 10;     // latent social groups
  double in_community_prob = 0.8;   // chance a match stays in-community
  std::size_t group_min = 2;
  std::size_t group_max = 5;
  double toxic_fraction = 0.05;     // latently toxic players
  std::uint64_t seed = 1;
};

struct MatchLog {
  MatchLogConfig config;
  std::vector<MatchRecord> matches;
  std::vector<std::uint32_t> community;  // latent community per player
  std::vector<double> skill;             // latent skill per player, ~N(25,8)
  std::vector<bool> toxic;               // latent toxicity per player
};

MatchLog generate_match_log(const MatchLogConfig& config);

/// The implicit social network: players are nodes, co-play counts are
/// edge weights.
class SocialGraph {
 public:
  explicit SocialGraph(std::size_t players);

  /// Builds the graph from a match log (every pair in a match gains one
  /// unit of edge weight).
  static SocialGraph from_matches(std::size_t players,
                                  const std::vector<MatchRecord>& matches);

  std::size_t players() const noexcept { return adjacency_.size(); }
  std::size_t edges() const noexcept;
  void add_edge(PlayerId a, PlayerId b, double weight = 1.0);
  double edge_weight(PlayerId a, PlayerId b) const;

  std::vector<double> degrees() const;  // unweighted degree per player
  /// Global clustering coefficient (transitivity) over the unweighted
  /// graph.
  double clustering_coefficient() const;
  /// Connected-component sizes, descending.
  std::vector<std::size_t> component_sizes() const;
  /// Fraction of edge weight internal to the given community labeling —
  /// how well the implicit network recovers latent communities.
  double community_cohesion(const std::vector<std::uint32_t>& labels) const;

 private:
  std::vector<std::vector<std::pair<PlayerId, double>>> adjacency_;
};

/// Matchmaking experiment: forms `rounds` head-to-head pairs either
/// randomly or greedily by closest skill; returns the mean absolute skill
/// gap per pair (lower = fairer matches).
double matchmaking_skill_gap(const MatchLog& log, bool skill_based,
                             std::size_t rounds, std::uint64_t seed);

struct ToxicityOutcome {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Toxicity detection: each player emits per-match toxicity scores
/// (toxic players have a higher mean); a player is flagged when their mean
/// observed score exceeds `threshold`. Returns detection quality against
/// the latent ground truth.
ToxicityOutcome detect_toxicity(const MatchLog& log, double threshold,
                                std::size_t samples_per_player,
                                std::uint64_t seed);

}  // namespace atlarge::mmog
