#pragma once
// Sharded MMOG world simulation: the zones of interest management
// (interest.hpp) turned into logical processes of a parallel DES
// (sim/sharded.hpp), so one million-avatar world uses every core.
//
// Model: a ring of zones hosts avatars. Each avatar acts on its own
// exponential clock (think time); an action either plays in place or
// migrates the avatar to a neighbouring zone. Crossing a zone border
// takes `crossing_time` seconds — the time to traverse the interest
// radius between adjacent zones — which is exactly the conservative
// lookahead of the sharded run: a migration sent at time t arrives at
// t + crossing_time, so zones can simulate `crossing_time` of wall-clock
// game time independently before they must exchange avatars.
//
// Determinism: every avatar owns a private Rng seeded from (seed, avatar
// id), so its action times, migration path, and session length are a pure
// function of the config — independent of shard layout and thread count.
// Aggregates are order-independent (integer counters, fixed-point session
// sum, digest bucket counts), so a run is invariant across
// shards x threads; the property tests pin this.
//
// Faults: a FaultPlan's kChurnSpike events (target = zone index) kick a
// `magnitude` fraction of the zone's residents at the spike time. Each LP
// carries its own fault::Injector over the shared plan and handles only
// the zones it hosts; injector events are attached before any avatar
// spawns, so at tied timestamps a spike always fires before the activity
// it preempts — on every shard layout. The kick decision is a per-avatar
// hash draw, not a stream draw, so it too is layout-invariant.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "atlarge/obs/digest.hpp"
#include "atlarge/sim/sharded.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
class Injector;
}

namespace atlarge::mmog {

/// One avatar entering the world (plain struct: the trace layer sits
/// above mmog, so trace-driven replays adapt their events to this).
struct ZoneArrival {
  double time = 0.0;
  std::uint64_t avatar = 0;  // unique id; also the cross-LP ordering key
  std::uint32_t zone = 0;
};

struct ZoneSimConfig {
  std::size_t zones = 8;         // ring topology
  double act_mean = 30.0;        // mean think time between actions, s
  double migrate_prob = 0.05;    // per-action border-crossing probability
  double crossing_time = 5.0;    // interest-radius traversal = lookahead, s
  double session_mean = 3600.0;  // mean session length, s
  double horizon = 14'400.0;
  std::uint64_t seed = 1;
  /// Sharding knob. Defaults to a single LP on the caller thread — the
  /// exact serial semantics. `shard.lookahead` is ignored: the engine
  /// derives it from `crossing_time` (the model's real latency floor).
  sim::ShardOptions shard;
  /// Optional churn plan (kChurnSpike, target = zone). Not owned.
  const fault::FaultPlan* faults = nullptr;
  /// Optional instrumentation plane (not owned): wraps the run in an
  /// "mmog.zonesim" span, mirrors the result counters, and merges per-LP
  /// contributions in LP-id order.
  obs::Observability* obs = nullptr;
};

struct ZoneSimResult {
  std::uint64_t actions = 0;     // avatar actions executed
  std::uint64_t migrations = 0;  // border crossings initiated
  std::uint64_t arrivals = 0;    // border crossings completed
  std::uint64_t departures = 0;  // natural session ends
  std::uint64_t churned = 0;     // kicked by churn spikes
  /// Avatars resident in a zone at the horizon (crossers still in flight
  /// are `migrations - arrivals` on top of this).
  std::uint64_t residents = 0;
  std::vector<std::uint64_t> zone_actions;      // per zone
  std::vector<std::uint32_t> final_population;  // per zone
  /// Session lengths of departed avatars. Bucket counts / min / max /
  /// quantiles are shard-layout invariant; `sum()` rounds per IEEE
  /// addition order (use session_seconds_x1e6 for exact totals).
  obs::Digest session_digest;
  /// Exact fixed-point sum of departed session lengths (microseconds):
  /// integer addition commutes, so this is bit-equal across layouts.
  std::uint64_t session_seconds_x1e6 = 0;
  /// Logins (spawns or completed crossings) that found their zone at
  /// capacity and waited in the FIFO login queue (0 without capacity
  /// caps). Avatars still queued at the horizon are neither residents nor
  /// departures.
  std::uint64_t queued_logins = 0;
  // Sharded-run diagnostics (windows depends on shards/lookahead, not a
  // model output; messages == migrations + initial spawns by design).
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
};

/// Deterministic synthetic entry trace: `avatars` avatars, spawn times
/// uniform in [0, spawn_window), zones assigned round-robin by id hash.
std::vector<ZoneArrival> synthetic_zone_arrivals(std::size_t avatars,
                                                 std::size_t zones,
                                                 double spawn_window,
                                                 std::uint64_t seed);

/// Runs the world to config.horizon. Results are invariant across
/// config.shard.{shards,threads} (see the determinism notes above).
ZoneSimResult simulate_zones(const ZoneSimConfig& config,
                             const std::vector<ZoneArrival>& arrivals);

namespace detail {
struct ZoneEngine;
}

/// Composable form of the zone world: the same engine simulate_zones
/// runs, but over an externally owned sharded kernel so the world can
/// share a clock with other domain simulators (eco::Ecosystem). Zones map
/// to LPs `lp_base + zone % lp_count`; `config.shard` is ignored and the
/// kernel's lookahead must not exceed config.crossing_time (migrations
/// ride the lookahead window exactly as in standalone runs).
///
/// Capacity binding: each zone optionally carries a login capacity (the
/// eco autoscale binding). A spawn or completed crossing that finds its
/// zone full waits in a per-zone FIFO login queue and is admitted when a
/// departure, churn kick, migration, or capacity raise frees a slot. The
/// default capacity is unlimited, which keeps per-zone event streams
/// byte-identical to simulate_zones.
class ZoneWorld {
 public:
  /// All referenced objects must outlive the ZoneWorld. Requires
  /// lp_base + lp_count <= sharded.shards() and lp_count >= 1.
  ZoneWorld(const ZoneSimConfig& config,
            const std::vector<ZoneArrival>& arrivals,
            sim::ShardedSimulation& sharded, std::size_t lp_base,
            std::size_t lp_count);
  ~ZoneWorld();
  ZoneWorld(const ZoneWorld&) = delete;
  ZoneWorld& operator=(const ZoneWorld&) = delete;

  /// Attaches per-LP churn injectors (when config.faults is set) and
  /// seeds the arrival trace through the sorted-mailbox path. Call once,
  /// before the kernel runs.
  void prepare();

  /// LP hosting `zone` (lp_base + zone % lp_count).
  std::size_t lp_of(std::size_t zone) const;
  /// Current residents of `zone`. Read only from the zone's own LP.
  std::size_t population(std::size_t zone) const;
  /// Logins currently waiting in `zone`'s queue. Zone's own LP only.
  std::size_t queue_length(std::size_t zone) const;
  /// Sets `zone`'s login capacity and admits queued logins into freed
  /// slots. Call from an event on the zone's own LP (eco routes grants
  /// through ShardedSimulation::send), or before the kernel runs.
  void set_capacity(std::size_t zone, std::uint32_t capacity);

  /// Folds per-zone state into a result. windows/messages stay 0 — the
  /// shared kernel's counters belong to the composition layer.
  ZoneSimResult collect() const;

 private:
  std::unique_ptr<detail::ZoneEngine> engine_;
  std::vector<std::unique_ptr<fault::Injector>> injectors_;
  const std::vector<ZoneArrival>* arrivals_ = nullptr;
};

}  // namespace atlarge::mmog
