#pragma once
// Sharded MMOG world simulation: the zones of interest management
// (interest.hpp) turned into logical processes of a parallel DES
// (sim/sharded.hpp), so one million-avatar world uses every core.
//
// Model: a ring of zones hosts avatars. Each avatar acts on its own
// exponential clock (think time); an action either plays in place or
// migrates the avatar to a neighbouring zone. Crossing a zone border
// takes `crossing_time` seconds — the time to traverse the interest
// radius between adjacent zones — which is exactly the conservative
// lookahead of the sharded run: a migration sent at time t arrives at
// t + crossing_time, so zones can simulate `crossing_time` of wall-clock
// game time independently before they must exchange avatars.
//
// Determinism: every avatar owns a private Rng seeded from (seed, avatar
// id), so its action times, migration path, and session length are a pure
// function of the config — independent of shard layout and thread count.
// Aggregates are order-independent (integer counters, fixed-point session
// sum, digest bucket counts), so a run is invariant across
// shards x threads; the property tests pin this.
//
// Faults: a FaultPlan's kChurnSpike events (target = zone index) kick a
// `magnitude` fraction of the zone's residents at the spike time. Each LP
// carries its own fault::Injector over the shared plan and handles only
// the zones it hosts; injector events are attached before any avatar
// spawns, so at tied timestamps a spike always fires before the activity
// it preempts — on every shard layout. The kick decision is a per-avatar
// hash draw, not a stream draw, so it too is layout-invariant.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atlarge/obs/digest.hpp"
#include "atlarge/sim/sharded.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
}

namespace atlarge::mmog {

/// One avatar entering the world (plain struct: the trace layer sits
/// above mmog, so trace-driven replays adapt their events to this).
struct ZoneArrival {
  double time = 0.0;
  std::uint64_t avatar = 0;  // unique id; also the cross-LP ordering key
  std::uint32_t zone = 0;
};

struct ZoneSimConfig {
  std::size_t zones = 8;         // ring topology
  double act_mean = 30.0;        // mean think time between actions, s
  double migrate_prob = 0.05;    // per-action border-crossing probability
  double crossing_time = 5.0;    // interest-radius traversal = lookahead, s
  double session_mean = 3600.0;  // mean session length, s
  double horizon = 14'400.0;
  std::uint64_t seed = 1;
  /// Sharding knob. Defaults to a single LP on the caller thread — the
  /// exact serial semantics. `shard.lookahead` is ignored: the engine
  /// derives it from `crossing_time` (the model's real latency floor).
  sim::ShardOptions shard;
  /// Optional churn plan (kChurnSpike, target = zone). Not owned.
  const fault::FaultPlan* faults = nullptr;
  /// Optional instrumentation plane (not owned): wraps the run in an
  /// "mmog.zonesim" span, mirrors the result counters, and merges per-LP
  /// contributions in LP-id order.
  obs::Observability* obs = nullptr;
};

struct ZoneSimResult {
  std::uint64_t actions = 0;     // avatar actions executed
  std::uint64_t migrations = 0;  // border crossings initiated
  std::uint64_t arrivals = 0;    // border crossings completed
  std::uint64_t departures = 0;  // natural session ends
  std::uint64_t churned = 0;     // kicked by churn spikes
  /// Avatars resident in a zone at the horizon (crossers still in flight
  /// are `migrations - arrivals` on top of this).
  std::uint64_t residents = 0;
  std::vector<std::uint64_t> zone_actions;      // per zone
  std::vector<std::uint32_t> final_population;  // per zone
  /// Session lengths of departed avatars. Bucket counts / min / max /
  /// quantiles are shard-layout invariant; `sum()` rounds per IEEE
  /// addition order (use session_seconds_x1e6 for exact totals).
  obs::Digest session_digest;
  /// Exact fixed-point sum of departed session lengths (microseconds):
  /// integer addition commutes, so this is bit-equal across layouts.
  std::uint64_t session_seconds_x1e6 = 0;
  // Sharded-run diagnostics (windows depends on shards/lookahead, not a
  // model output; messages == migrations + initial spawns by design).
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
};

/// Deterministic synthetic entry trace: `avatars` avatars, spawn times
/// uniform in [0, spawn_window), zones assigned round-robin by id hash.
std::vector<ZoneArrival> synthetic_zone_arrivals(std::size_t avatars,
                                                 std::size_t zones,
                                                 double spawn_window,
                                                 std::uint64_t seed);

/// Runs the world to config.horizon. Results are invariant across
/// config.shard.{shards,threads} (see the determinism notes above).
ZoneSimResult simulate_zones(const ZoneSimConfig& config,
                             const std::vector<ZoneArrival>& arrivals);

}  // namespace atlarge::mmog
