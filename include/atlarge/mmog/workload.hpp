#pragma once
// MMOG player-population dynamics (paper Section 6.2, studies [71]-[73]).
//
// The longitudinal MMOG studies uncovered strong short-term (diurnal) and
// long-term (content-release spikes, genre-dependent decay) dynamics in
// player populations. This generator produces the population time series
// those studies measured: a genre-specific baseline modulated by daily and
// weekly cycles, plus scheduled content-update surges and random noise.

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::mmog {

/// Game genres with distinct dynamics, per the paper's studies: MMORPG
/// (RuneScape-like, strong diurnal), MOBA (match-based, burstier), and
/// online-social (OS) games (flatter, higher churn).
enum class Genre { kMmorpg, kMoba, kOnlineSocial };

std::string to_string(Genre g);

struct PopulationConfig {
  Genre genre = Genre::kMmorpg;
  double base_players = 10'000.0;
  double days = 7.0;
  double step = 300.0;             // series resolution, s
  double diurnal_amplitude = 0.6;  // relative daily swing
  double weekend_boost = 0.25;     // relative weekend lift
  double noise = 0.05;             // multiplicative noise std-dev
  /// Content updates: each adds a surge of `update_boost` x base decaying
  /// with a one-day half-life.
  std::vector<double> update_times;  // in seconds from series start
  double update_boost = 0.8;
  std::uint64_t seed = 1;
};

struct PopulationPoint {
  double time = 0.0;
  double players = 0.0;
};

struct PopulationSeries {
  Genre genre = Genre::kMmorpg;
  std::vector<PopulationPoint> points;

  double peak() const noexcept;
  double mean() const noexcept;
  /// Peak-to-mean ratio — the over-provisioning cost of static sizing.
  double peak_to_mean() const noexcept;
};

PopulationSeries generate_population(const PopulationConfig& config);

}  // namespace atlarge::mmog
