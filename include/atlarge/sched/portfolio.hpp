#pragma once
// Portfolio scheduling (paper Section 6.6, Table 9).
//
// A portfolio scheduler holds a set of scheduling policies and, at run
// time, periodically *simulates* each policy on the current queue to pick
// the one to apply next. The paper's arc is reproduced faithfully:
//  * [114] simulate-all-policies selection works, but its simulation time
//    grows with #policies x queue length — with many-job workloads the
//    scheduler can "no longer be used to run online". We model this by
//    charging a configurable decision overhead per simulated policy-task
//    (Policy::tick), which delays placements.
//  * [115] the fix: an *active set* — only the top-K policies by recent
//    utility are simulated each round, trading decision quality for
//    decision latency.
//  * [120] mis-selection: when utility estimates are noisy (hard-to-predict
//    policy performance), the portfolio can pick sub-optimally; the
//    `utility_noise` knob reproduces that study.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/sched/policy.hpp"
#include "atlarge/sim/thread_pool.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::sched {

struct PortfolioConfig {
  /// Seconds between re-selections.
  double selection_interval = 500.0;
  /// Active-set size; 0 means simulate the full portfolio every round.
  std::size_t active_set = 0;
  /// Decision overhead charged per (policy x queued task) simulated, in
  /// seconds. 0 models an infinitely fast (offline-style) simulator.
  double cost_per_task_policy = 0.0;
  /// At most this many queued tasks enter each what-if snapshot.
  std::size_t snapshot_cap = 512;
  /// Selection only happens when at least this many tasks are queued:
  /// tiny queues make every policy look identical, and switching on such
  /// ties degrades the portfolio to whichever policy happens to be listed
  /// first.
  std::size_t min_queue_to_select = 4;
  /// Std-dev of multiplicative noise applied to utility estimates,
  /// reproducing the hard-to-predict-performance regime of [120]. Noise is
  /// drawn from a per-(candidate, round) RNG stream derived from `seed`, so
  /// draws are independent of evaluation order and of which other
  /// candidates are in the round.
  double utility_noise = 0.0;
  /// EWMA smoothing for per-policy utility history, in (0, 1].
  double ewma_alpha = 0.5;
  std::uint64_t seed = 7;
  /// Threads used to run the candidate what-if simulations of one tick()
  /// concurrently; 0 or 1 evaluates serially. Results are bitwise
  /// identical to the serial order for any thread count: every candidate
  /// gets a cloned policy, a private snapshot copy, and its own RNG
  /// stream, and the selection reduction runs serially in candidate order.
  std::size_t eval_threads = 1;
  /// Optional instrumentation plane (not owned, may be null): emits a
  /// "portfolio.select" span per selection round plus round/what-if
  /// counters and a best-utility histogram. Only touched from the serial
  /// sections of tick(), never from evaluation worker threads, and not
  /// inherited by clone() (a clone may be simulated on another thread).
  obs::Observability* obs = nullptr;
};

class PortfolioScheduler final : public Policy {
 public:
  /// The portfolio takes ownership of `policies` (must be non-empty) and
  /// keeps a copy of the environment for its what-if simulations.
  PortfolioScheduler(std::vector<std::unique_ptr<Policy>> policies,
                     cluster::Environment env, PortfolioConfig config = {});

  std::string name() const override { return "PORTFOLIO"; }
  void order(std::vector<TaskRef>& queue, const SchedState& state) override;
  double tick(const SchedState& state,
              const std::vector<TaskRef>& queue) override;
  std::unique_ptr<Policy> clone() const override;

  /// How often each policy won selection so far.
  const std::map<std::string, std::size_t>& selections() const noexcept {
    return selections_;
  }

  /// Total simulated decision overhead charged so far, seconds.
  double total_overhead() const noexcept { return total_overhead_; }

  /// Name of the currently applied policy.
  std::string current_policy() const;

 private:
  /// Indices of policies to simulate this round (full set or active set).
  std::vector<std::size_t> candidate_set() const;

  /// The eligible queue folded back into a bag-of-jobs what-if workload.
  workflow::Workload build_snapshot(const std::vector<TaskRef>& queue) const;

  /// Mean bounded slowdown of the snapshot under policy `pi`, with the
  /// round's noise applied. Thread-safe for distinct `pi`: works on a
  /// cloned policy, a private snapshot copy, and a per-(candidate, round)
  /// RNG stream.
  double evaluate(std::size_t pi, const workflow::Workload& snapshot,
                  std::uint64_t round) const;

  std::vector<std::unique_ptr<Policy>> policies_;
  cluster::Environment env_;
  PortfolioConfig config_;
  std::unique_ptr<sim::ThreadPool> pool_;  // lazily built when needed

  std::size_t current_ = 0;
  std::uint64_t round_ = 0;  // selection rounds so far; salts noise streams
  double next_decision_ = 0.0;
  std::vector<double> ewma_;      // smoothed utility per policy (lower=better)
  std::vector<bool> evaluated_;   // ever scored?
  std::map<std::string, std::size_t> selections_;
  double total_overhead_ = 0.0;
};

}  // namespace atlarge::sched
