#pragma once
// The scheduler zoo: the single-policy baselines a portfolio selects from.
// The paper's portfolio studies (Table 9) found "no individual technique or
// policy was consistently better than all others" — the zoo is intentionally
// diverse so that finding can re-emerge: queue-order policies (FCFS/LIFO),
// size-based (SJF/LJF/WideFirst), backfilling, randomized, and fair-share.

#include <cstdint>

#include "atlarge/sched/policy.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::sched {

/// First-come-first-served: by job submit time, then eligibility time.
class FcfsPolicy final : public Policy {
 public:
  std::string name() const override { return "FCFS"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;
};

/// FCFS with EASY backfilling.
class EasyBackfillingPolicy final : public Policy {
 public:
  std::string name() const override { return "EASY-BF"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  bool backfilling() const override { return true; }
  std::unique_ptr<Policy> clone() const override;
};

/// Shortest task first (by reference runtime).
class SjfPolicy final : public Policy {
 public:
  std::string name() const override { return "SJF"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;
};

/// Longest task first; good for utilization under heavy tails, bad for
/// mean slowdown.
class LjfPolicy final : public Policy {
 public:
  std::string name() const override { return "LJF"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;
};

/// Widest task first (most cores), a packing heuristic for multi-core
/// tasks (business-critical workloads).
class WideFirstPolicy final : public Policy {
 public:
  std::string name() const override { return "WIDE"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;
};

/// Uniformly random order; Altshuller's "performance vs random design"
/// baseline (paper, challenge C2).
class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 42) : rng_(seed), seed_(seed) {}
  std::string name() const override { return "RANDOM"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;

 private:
  atlarge::stats::Rng rng_;
  std::uint64_t seed_;
};

/// Fair-share: tasks of the least-served user first (by consumed
/// core-seconds), FCFS within a user.
class FairSharePolicy final : public Policy {
 public:
  std::string name() const override { return "FAIR"; }
  void order(std::vector<TaskRef>& q, const SchedState& s) override;
  std::unique_ptr<Policy> clone() const override;
};

/// All zoo policies, freshly constructed — the default portfolio.
std::vector<std::unique_ptr<Policy>> standard_policies(
    std::uint64_t random_seed = 42);

}  // namespace atlarge::sched
