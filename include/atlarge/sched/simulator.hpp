#pragma once
// Cluster scheduling simulator: the in-silico testbed for Table 9 and for
// every nested what-if simulation the portfolio scheduler runs.
//
// Semantics:
//  * A task needs `cores` on a *single* machine; runtime scales inversely
//    with machine speed. Tasks whose core demand exceeds every machine are
//    rejected at ingest (std::invalid_argument).
//  * On every scheduling event the policy orders the eligible queue; the
//    simulator then places tasks greedily in that order, skipping tasks
//    that do not currently fit ("first fit in policy order"). Policies
//    with backfilling() == true instead protect the queue head with an
//    EASY-style reservation: a later task may overtake only if it finishes
//    before the head's earliest feasible start.
//  * Geo-distributed environments charge env.inter_cluster_latency once
//    per task dispatched outside cluster 0.
//  * Policy::tick may return a decision overhead; the simulator freezes
//    placement (but not arrivals/completions) for that long, modeling the
//    paper's finding that portfolio simulation time can make a scheduler
//    "no longer ... run online".

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/obs/digest.hpp"
#include "atlarge/sched/policy.hpp"
#include "atlarge/workflow/job.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::fault {
class FaultPlan;
}

namespace atlarge::sim {
class Simulation;
}

namespace atlarge::sched {

struct JobStats {
  std::uint64_t id = 0;
  double submit = 0.0;
  double start = 0.0;    // first task start
  double finish = 0.0;   // last task finish
  double critical_path = 0.0;

  double response() const noexcept { return finish - submit; }
  double wait() const noexcept { return start - submit; }
  /// Bounded slowdown: response over critical path, floored at 1.
  double slowdown() const noexcept;
};

struct SchedResult {
  std::vector<JobStats> jobs;
  double makespan = 0.0;          // latest finish time
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;
  double median_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double p999_slowdown = 0.0;
  double utilization = 0.0;       // time-weighted busy/total cores
  double decision_overhead = 0.0; // total policy tick() seconds
  std::size_t tasks_completed = 0;
  /// Per-machine busy seconds, indexed by flat machine id; feeds the cloud
  /// cost models.
  std::vector<double> machine_busy_seconds;
  /// Portfolio bookkeeping: how often each policy was selected (empty for
  /// plain policies).
  std::map<std::string, std::size_t> selections;
  /// Fault outcomes (all zero with a null/empty plan): injections applied,
  /// machines restarted / slowdowns healed, and tasks killed by a crash
  /// and re-queued (they rerun from scratch).
  std::size_t faults_injected = 0;
  std::size_t faults_recovered = 0;
  std::size_t tasks_requeued = 0;
  /// Mergeable percentile digests over per-job wait and bounded slowdown
  /// (same populations as the exact mean/median/p95 fields above). These
  /// are what campaign aggregation merges across trials; the exact fields
  /// stay for single-run precision.
  obs::Digest wait_digest;
  obs::Digest slowdown_digest;
};

struct SimOptions {
  /// Hard stop; jobs not finished by then are excluded from job stats but
  /// counted in utilization.
  double time_limit = std::numeric_limits<double>::infinity();
  /// Optional instrumentation plane (not owned, may be null): attaches
  /// the kernel observer to the internal Simulation and emits
  /// scheduler-level spans ("sched.simulate", per-pass "sched.pass") and
  /// metrics (sched.passes, sched.tasks_placed, sched.eligible_queue, and
  /// a sched.task_wait registry digest). When the plane carries a
  /// TimeSeries or SloMonitor, its sampling hook is attached to the
  /// kernel; when it carries a FlightRecorder, per-machine rings record
  /// place/complete/crash/requeue events with causal links.
  obs::Observability* obs = nullptr;
  /// Optional fault plan (not owned, may be null), replayed through the
  /// kernel fault hook. The scheduler interprets kMachineCrash (machine
  /// down for the event's duration; its running tasks are killed and
  /// re-queued, restarting from scratch) and kSlowdown (machine limps at
  /// base speed x magnitude for the duration; affects new placements).
  /// A null or empty plan keeps behaviour byte-identical.
  const fault::FaultPlan* faults = nullptr;
};

/// Runs `workload` on `env` under `policy`. Deterministic for fixed inputs.
SchedResult simulate(const cluster::Environment& env,
                     const workflow::Workload& workload, Policy& policy,
                     const SimOptions& options = {});

namespace detail {
class SchedEngine;
}

/// Composable form of the scheduling simulator: the same engine `simulate`
/// runs, but driven by an externally owned kernel so several domain
/// simulators can share one clock (eco::Ecosystem). The driver schedules
/// its arrivals and fault hooks in prepare(), the caller runs the shared
/// kernel, and collect() finalizes the result. With no seam calls the
/// event stream is byte-identical to a standalone simulate() run.
///
/// The reserve/release seam lets a co-tenant (the eco cluster fabric)
/// take cores out of the scheduler's machines while it holds leases on
/// them, so placement contention between domains is real: reserved cores
/// are indistinguishable from cores occupied by running tasks.
class SchedDriver {
 public:
  /// `env`, `workload`, `policy`, and `sim` must outlive the driver.
  /// `options.faults` attaches the scheduler's own injector exactly as in
  /// standalone runs; pass a null plan when a composition layer routes
  /// machine crashes through fail_machine() instead.
  SchedDriver(const cluster::Environment& env,
              const workflow::Workload& workload, Policy& policy,
              const SimOptions& options, sim::Simulation& sim);
  ~SchedDriver();
  SchedDriver(const SchedDriver&) = delete;
  SchedDriver& operator=(const SchedDriver&) = delete;

  /// Schedules fault hooks and job arrivals on the shared kernel.
  void prepare();
  /// Finalizes statistics after the shared kernel has run. The result is
  /// independent of the kernel's final clock: stats derive from job
  /// submit/finish times only.
  SchedResult collect();

  // ---- fabric seam (all calls must come from the kernel's own events) --
  std::size_t machine_count() const;
  std::uint32_t free_cores_on(std::size_t machine) const;
  std::uint32_t total_cores_on(std::size_t machine) const;
  bool machine_down(std::size_t machine) const;
  /// Takes `cores` from a machine for an external tenant. Fails (false)
  /// when the machine is down or short on free cores.
  bool reserve_cores(std::size_t machine, std::uint32_t cores);
  /// Returns externally held cores and wakes the placement loop.
  void release_cores(std::size_t machine, std::uint32_t cores);
  /// Crashes a machine for `duration` seconds: running tasks are killed
  /// and re-queued exactly as a kMachineCrash fault would, but without an
  /// injector (the composition layer owns the fault bookkeeping).
  void fail_machine(std::size_t machine, double duration);

 private:
  std::unique_ptr<detail::SchedEngine> engine_;
};

}  // namespace atlarge::sched
