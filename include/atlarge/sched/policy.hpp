#pragma once
// Scheduling-policy interface.
//
// The cluster simulator (simulator.hpp) maintains a queue of *eligible*
// tasks (arrived, all dependencies finished). A policy's single job is to
// order that queue; the simulator then places tasks greedily in queue
// order, optionally with EASY-style backfilling when the policy opts in.
// This separation lets the portfolio scheduler (portfolio.hpp) treat every
// policy — including nested copies of itself — uniformly, which is exactly
// the property Section 6.6 of the paper needs: "simulate all the
// alternatives" online.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace atlarge::sched {

/// A queued, eligible task as seen by a policy.
struct TaskRef {
  std::uint64_t job_id = 0;
  std::uint32_t task_id = 0;
  double runtime = 0.0;       // reference-core runtime
  std::uint32_t cores = 1;
  double submit_time = 0.0;   // job submit time
  double eligible_time = 0.0; // when dependencies completed
  std::string user;
};

/// Cluster state snapshot offered to policies at decision time.
struct SchedState {
  double now = 0.0;
  std::uint32_t total_cores = 0;
  std::uint32_t free_cores = 0;
  std::size_t running_tasks = 0;
  std::size_t queued_tasks = 0;
  /// Work (core-seconds) completed per user so far; used by fair-share.
  const std::vector<std::pair<std::string, double>>* user_usage = nullptr;
};

/// Base class for scheduling policies. Implementations must be
/// deterministic given their constructor arguments (randomized policies
/// take a seed).
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Orders the eligible queue in-place; the simulator places tasks from
  /// the front. Must be a permutation (no adds/removes).
  virtual void order(std::vector<TaskRef>& queue, const SchedState& state) = 0;

  /// When true, the simulator applies EASY backfilling: the head task
  /// reserves its earliest feasible start, and later tasks may jump the
  /// queue only if they do not delay that reservation.
  virtual bool backfilling() const { return false; }

  /// Called on every scheduling event before placement. Returns a decision
  /// overhead in seconds; the simulator delays placement by that amount.
  /// Default: zero (instant decisions). The portfolio scheduler uses this
  /// hook to run (and charge for) its nested simulations.
  virtual double tick(const SchedState& state,
                      const std::vector<TaskRef>& queue);

  /// Fresh instance with identical configuration, for nested simulation.
  virtual std::unique_ptr<Policy> clone() const = 0;
};

}  // namespace atlarge::sched
