#pragma once
// The PAD law and platform performance models (paper Section 6.5).
//
// The paper's Graphalytics line of work established that graph-processing
// performance depends on the *interaction* of Platform, Algorithm, and
// Dataset (the PAD triangle): no platform dominates across the A x D
// plane. The follow-up HPAD study [106] added Heterogeneous hardware. We
// reproduce the law with platform cost models whose terms are calibrated
// to the published platform archetypes (disk-based MapReduce, in-memory
// dataflow, single-node native, GPU) applied to *measured* work profiles
// of the real algorithm implementations in algorithms.hpp.

#include <string>
#include <vector>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/graph.hpp"

namespace atlarge::graph {

/// Algorithm classes with distinct platform affinities.
enum class AlgoClass {
  kIterativeRegular,   // PageRank, CDLP: dense, synchronous supersteps
  kTraversalIrregular, // BFS, SSSP: frontier-driven, latency-sensitive
  kNeighborhoodLocal,  // LCC: per-vertex neighborhood intersection
  kPropagation,        // WCC: label propagation to fixpoint
};

AlgoClass algo_class(Algorithm a);

struct PlatformModel {
  std::string name;
  double startup_s = 0.0;       // job submission, JVM/DAG setup
  double per_iteration_s = 0.0; // superstep/barrier cost
  double per_edge_ns = 0.0;     // base cost per traversed edge
  double per_vertex_ns = 0.0;   // base cost per vertex per iteration
  /// Multiplier applied to per-edge cost per algorithm class (the source
  /// of platform-algorithm interaction).
  double class_factor_iterative = 1.0;
  double class_factor_traversal = 1.0;
  double class_factor_neighborhood = 1.0;
  double class_factor_propagation = 1.0;
  /// Edges beyond which the platform degrades (memory pressure); 0 = no
  /// limit. Degradation multiplies edge cost by `degraded_factor`.
  std::uint64_t capacity_edges = 0;
  double degraded_factor = 10.0;

  double class_factor(AlgoClass c) const noexcept;
};

/// Predicted runtime of an algorithm run with the given measured work
/// profile on a graph of (vertices, edges) size.
double predict_runtime(const PlatformModel& platform, Algorithm algo,
                       const WorkProfile& work, std::uint64_t vertices,
                       std::uint64_t edges);

/// The four platform archetypes of the PAD/HPAD studies.
std::vector<PlatformModel> standard_platforms();

/// One cell of the PAD result matrix.
struct PadCell {
  std::string platform;
  std::string algorithm;
  std::string dataset;
  double runtime_s = 0.0;
};

struct PadStudy {
  std::vector<PadCell> cells;
  /// For each (algorithm, dataset) pair: name of the fastest platform.
  std::vector<std::pair<std::string, std::string>> winners;  // (A:D, P)
  /// Number of distinct platforms that win at least one (A, D) cell —
  /// the PAD law holds when this exceeds 1.
  std::size_t distinct_winners = 0;
};

struct NamedGraph {
  std::string name;
  const Graph* graph = nullptr;
  /// Work-profile extrapolation factor. Graphalytics datasets reach
  /// billions of edges — beyond what an in-process graph can hold — but
  /// the per-edge work profile of each algorithm is measured on the
  /// in-memory instance and scales linearly in dataset volume. A scale
  /// of S prices the dataset as if it had S x the vertices and edges
  /// (iteration counts are kept, a conservative choice for traversals
  /// whose depth grows sublinearly). This is what lets the study span
  /// the capacity regimes where the PAD interaction appears.
  double scale = 1.0;
};

/// Runs every algorithm on every dataset, measures the work profiles
/// (extrapolated by each dataset's scale), and prices them on every
/// platform model. `threads` parallelizes each native kernel run (results
/// are thread-count independent, so the study is too).
PadStudy run_pad_study(const std::vector<NamedGraph>& datasets,
                       const std::vector<PlatformModel>& platforms,
                       std::uint32_t threads = 1);

}  // namespace atlarge::graph
