#pragma once
// Granula-style fine-grained performance breakdown (paper [100]): a
// benchmark should expose not just end-to-end runtime but *where the time
// goes*. For modeled platforms the breakdown comes from the cost model;
// for the native implementations in this library it is measured by
// emitting obs tracer spans around each phase and folding the span
// wall-times back into per-phase totals (breakdown_from_trace).

#include <string>
#include <vector>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/pad.hpp"
#include "atlarge/obs/trace.hpp"

namespace atlarge::graph {

struct Phase {
  std::string name;
  double seconds = 0.0;
};

struct Breakdown {
  std::string label;
  std::vector<Phase> phases;
  double total() const noexcept;
  /// Share of the named phase in total time, in [0,1].
  double share(const std::string& phase) const noexcept;
};

/// Modeled breakdown of a platform run: startup / synchronization /
/// compute, from the platform cost model and the measured work profile.
Breakdown modeled_breakdown(const PlatformModel& platform, Algorithm algo,
                            const WorkProfile& work, std::uint64_t vertices,
                            std::uint64_t edges);

/// Measured breakdown of a native in-process run: graph-load (CSR build
/// from an edge list) vs compute. Implemented as obs tracer spans around
/// each phase, folded into a Breakdown via breakdown_from_trace.
///
/// `opts.threads` is forwarded to the kernel. When `opts.obs` is set, the
/// load/compute spans are emitted into *that* plane's tracer alongside the
/// kernel's own per-iteration spans, and the breakdown is folded from it —
/// so the returned phases additionally include the per-round kernel phase
/// (e.g. "pr.iteration"). Pass a fresh plane; earlier spans in its tracer
/// would fold in too. Without a plane the breakdown is the classic
/// two-phase load/compute split.
Breakdown measured_breakdown(VertexId n,
                             std::vector<std::pair<VertexId, VertexId>> edges,
                             Algorithm algo, const KernelOptions& opts = {});

/// Folds the begin/end span pairs recorded in `tracer` into a Breakdown:
/// one phase per distinct span name (first-seen order), seconds = summed
/// wall-clock span durations. Instants are ignored; an unmatched begin or
/// end (e.g. after a ring wrap) contributes nothing.
Breakdown breakdown_from_trace(const obs::Tracer& tracer, std::string label);

}  // namespace atlarge::graph
