#pragma once
// Granula-style fine-grained performance breakdown (paper [100]): a
// benchmark should expose not just end-to-end runtime but *where the time
// goes*. For modeled platforms the breakdown comes from the cost model;
// for the native implementations in this library it is measured with
// wall-clock timers around each phase.

#include <string>
#include <vector>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/pad.hpp"

namespace atlarge::graph {

struct Phase {
  std::string name;
  double seconds = 0.0;
};

struct Breakdown {
  std::string label;
  std::vector<Phase> phases;
  double total() const noexcept;
  /// Share of the named phase in total time, in [0,1].
  double share(const std::string& phase) const noexcept;
};

/// Modeled breakdown of a platform run: startup / synchronization /
/// compute, from the platform cost model and the measured work profile.
Breakdown modeled_breakdown(const PlatformModel& platform, Algorithm algo,
                            const WorkProfile& work, std::uint64_t vertices,
                            std::uint64_t edges);

/// Measured breakdown of a native in-process run: graph-load (CSR build
/// from an edge list) vs compute, using wall-clock timers.
Breakdown measured_breakdown(VertexId n,
                             std::vector<std::pair<VertexId, VertexId>> edges,
                             Algorithm algo);

}  // namespace atlarge::graph
