#pragma once
// The six LDBC Graphalytics algorithms (paper Section 6.5, [99]):
// BFS, PageRank, Weakly Connected Components, Community Detection via
// Label Propagation, Local Clustering Coefficient, and Single-Source
// Shortest Paths. These are real implementations — the PAD-law analysis in
// pad.hpp uses their measured work profiles, and the table8 bench times
// them directly.
//
// Each algorithm also reports its *work profile* (edges traversed,
// iterations) — the Granula-style observable that lets platform models
// price the same algorithm differently (granula.hpp).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "atlarge/graph/graph.hpp"

namespace atlarge::graph {

/// Work accounting shared by all algorithms.
struct WorkProfile {
  std::uint64_t edges_traversed = 0;
  std::uint32_t iterations = 0;
};

constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

struct BfsResult {
  std::vector<std::uint32_t> depth;  // kUnreachable if not reached
  WorkProfile work;
};

/// Directed BFS from `source`.
BfsResult bfs(const Graph& g, VertexId source);

struct PageRankResult {
  std::vector<double> rank;  // sums to ~1
  WorkProfile work;
};

/// Power-iteration PageRank with damping factor `d`, run for `iterations`
/// rounds (the Graphalytics specification uses a fixed iteration count).
/// Dangling-vertex mass is redistributed uniformly.
PageRankResult pagerank(const Graph& g, std::uint32_t iterations = 20,
                        double d = 0.85);

struct WccResult {
  std::vector<VertexId> component;  // representative id per vertex
  std::size_t num_components = 0;
  WorkProfile work;
};

/// Weakly connected components (direction-ignoring label propagation to a
/// fixed point, as the Graphalytics reference does).
WccResult wcc(const Graph& g);

struct CdlpResult {
  std::vector<VertexId> label;  // community label per vertex
  std::size_t num_communities = 0;
  WorkProfile work;
};

/// Community detection by synchronous label propagation for `iterations`
/// rounds: each vertex adopts the most frequent label among its
/// (direction-ignoring) neighbors, smallest label winning ties.
CdlpResult cdlp(const Graph& g, std::uint32_t iterations = 10);

struct LccResult {
  std::vector<double> coefficient;  // per-vertex local clustering in [0,1]
  double mean = 0.0;
  WorkProfile work;
};

/// Local clustering coefficient over the undirected view.
LccResult lcc(const Graph& g);

struct SsspResult {
  std::vector<double> distance;  // +inf if unreachable
  WorkProfile work;
};

/// Dijkstra single-source shortest paths (non-negative weights; an
/// unweighted graph degenerates to hop counts).
SsspResult sssp(const Graph& g, VertexId source);

/// Graphalytics algorithm identifiers, for sweeps.
enum class Algorithm { kBfs, kPageRank, kWcc, kCdlp, kLcc, kSssp };

std::string to_string(Algorithm a);
const std::vector<Algorithm>& all_algorithms();

/// Runs the algorithm with default parameters (source 0 where needed) and
/// returns its work profile — the input to the PAD platform models.
WorkProfile run_algorithm(const Graph& g, Algorithm a);

}  // namespace atlarge::graph
