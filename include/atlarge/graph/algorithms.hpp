#pragma once
// The six LDBC Graphalytics algorithms (paper Section 6.5, [99]):
// BFS, PageRank, Weakly Connected Components, Community Detection via
// Label Propagation, Local Clustering Coefficient, and Single-Source
// Shortest Paths. These are real implementations — the PAD-law analysis in
// pad.hpp uses their measured work profiles, and the table8 bench times
// them directly.
//
// Each algorithm also reports its *work profile* (edges traversed,
// iterations) — the Granula-style observable that lets platform models
// price the same algorithm differently (granula.hpp).
//
// Parallelism and determinism: every kernel accepts a KernelOptions with a
// `threads` knob. Parallel execution fans vertex blocks of a fixed size
// over a sim::ThreadPool; every result vector slot is written by exactly
// one owner block, per-block WorkProfile/floating-point accumulators are
// reduced in block-index order, and the block size never depends on the
// thread count — so results AND work profiles are byte-identical at 1..N
// threads (the discipline proven by the portfolio evaluator and campaign
// engine). BFS is direction-optimizing (top-down/bottom-up switching over
// dense bitmap frontiers), PageRank is pull-based over the in-CSR (no
// scatter races), WCC is frontier-based (only vertices with a changed
// neighborhood are re-scanned), CDLP counts votes with a flat sorted-run
// scan instead of a hash map, and LCC intersects sorted undirected
// adjacency lists instead of probing per pair.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "atlarge/graph/graph.hpp"

namespace atlarge::obs {
class Observability;
}

namespace atlarge::graph {

/// Per-kernel execution knobs shared by all six algorithms.
struct KernelOptions {
  /// parallel_for lanes (1 = serial; the calling thread always
  /// participates). Results are identical for every value.
  std::uint32_t threads = 1;
  /// Optional instrumentation plane: when set, kernels emit one tracer
  /// span per iteration/round (category "graph") and bump the
  /// graph.edges_traversed / graph.iterations counters on completion.
  obs::Observability* obs = nullptr;
};

/// Work accounting shared by all algorithms.
struct WorkProfile {
  std::uint64_t edges_traversed = 0;
  std::uint32_t iterations = 0;
};

constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

struct BfsResult {
  std::vector<std::uint32_t> depth;  // kUnreachable if not reached
  WorkProfile work;
};

/// Directed BFS from `source`, direction-optimizing: levels run top-down
/// (scan out-edges of the frontier) until the frontier's out-edge volume
/// crosses m/alpha, then bottom-up (unvisited vertices probe their
/// in-neighbors for a frontier member) until the frontier shrinks below
/// n/beta. Frontiers are dense bitmaps; depths are level-synchronous and
/// thread-count independent.
BfsResult bfs(const Graph& g, VertexId source, const KernelOptions& opts = {});

struct PageRankResult {
  std::vector<double> rank;  // sums to ~1
  WorkProfile work;
};

/// Power-iteration PageRank with damping factor `d`, run for `iterations`
/// rounds (the Graphalytics specification uses a fixed iteration count).
/// Dangling-vertex mass is redistributed uniformly. Pull-based: each
/// vertex gathers contributions over its in-CSR, so no scatter races.
PageRankResult pagerank(const Graph& g, std::uint32_t iterations = 20,
                        double d = 0.85, const KernelOptions& opts = {});

struct WccResult {
  std::vector<VertexId> component;  // representative id per vertex
  std::size_t num_components = 0;
  WorkProfile work;
};

/// Weakly connected components (direction-ignoring label propagation to a
/// fixed point, as the Graphalytics reference does). Frontier-based: a
/// round only re-scans vertices adjacent to a vertex whose component
/// changed in the previous round.
WccResult wcc(const Graph& g, const KernelOptions& opts = {});

struct CdlpResult {
  std::vector<VertexId> label;  // community label per vertex
  std::size_t num_communities = 0;
  WorkProfile work;
};

/// Community detection by synchronous label propagation for `iterations`
/// rounds: each vertex adopts the most frequent label among its
/// (direction-ignoring, multiplicity-keeping) neighbors, smallest label
/// winning ties. Votes are tallied by sorting the gathered labels and
/// scanning runs — flat buffers, no per-vertex hash map.
CdlpResult cdlp(const Graph& g, std::uint32_t iterations = 10,
                const KernelOptions& opts = {});

struct LccResult {
  std::vector<double> coefficient;  // per-vertex local clustering in [0,1]
  double mean = 0.0;
  WorkProfile work;
};

/// Local clustering coefficient over the undirected view, via sorted
/// neighbor-list intersection (merge walk per incident edge) on the
/// materialized undirected CSR.
LccResult lcc(const Graph& g, const KernelOptions& opts = {});

struct SsspResult {
  std::vector<double> distance;  // +inf if unreachable
  WorkProfile work;
};

/// Dijkstra single-source shortest paths (non-negative weights; an
/// unweighted graph degenerates to hop counts). Inherently sequential —
/// the threads knob is accepted but unused.
SsspResult sssp(const Graph& g, VertexId source,
                const KernelOptions& opts = {});

/// Graphalytics algorithm identifiers, for sweeps.
enum class Algorithm { kBfs, kPageRank, kWcc, kCdlp, kLcc, kSssp };

std::string to_string(Algorithm a);
const std::vector<Algorithm>& all_algorithms();

/// Runs the algorithm with default parameters (source 0 where needed) and
/// returns its work profile — the input to the PAD platform models.
WorkProfile run_algorithm(const Graph& g, Algorithm a,
                          const KernelOptions& opts = {});

}  // namespace atlarge::graph
