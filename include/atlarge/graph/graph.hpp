#pragma once
// Compressed-sparse-row graph and generators for the Graphalytics substrate
// (paper Section 6.5). The LDBC Graphalytics benchmark the AtLarge team
// created runs six algorithms over platform x dataset combinations; this
// module supplies the datasets (synthetic generators spanning the degree
// distributions that drive the PAD effect) and the graph representation
// the algorithms in algorithms.hpp operate on.
//
// Three CSR views are materialized once at construction:
//  * out-CSR  — out-neighbors per vertex, sorted by target;
//  * in-CSR   — in-neighbors per vertex, sorted by source;
//  * und-CSR  — distinct undirected neighbors per vertex, sorted — the
//    merged view WCC/CDLP/LCC operate on, replacing the per-call
//    vector<vector> the old undirected_adjacency() materialized.
// The build is counting-sort based (two stable counting passes over the
// edge list instead of a comparison sort), so construction is O(n + m).

#include <cstdint>
#include <span>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::graph {

using VertexId = std::uint32_t;

/// Raw pointers into one CSR direction of a Graph. Kernel inner loops
/// hoist these out of the per-vertex loop and mark their local copies
/// __restrict: the per-edge span construction disappears and the compiler
/// can vectorize the gather, which it cannot prove safe through the
/// accessor methods. Vertex v's edges are heads[offsets[v]..offsets[v+1]);
/// edge counts fall out of offset differences, no per-edge counter needed.
struct CsrView {
  const std::size_t* offsets;  // size n+1
  const VertexId* heads;
};

/// Immutable directed graph in CSR form, with optional edge weights.
/// Vertices are [0, num_vertices). Self-loops and parallel edges are
/// removed at build time (the first occurrence of a parallel edge, in
/// input order, keeps its weight).
class Graph {
 public:
  /// Builds from an edge list; `n` is the vertex count (edges must stay in
  /// range or std::invalid_argument is thrown).
  static Graph from_edges(VertexId n,
                          std::vector<std::pair<VertexId, VertexId>> edges,
                          std::vector<double> weights = {});

  VertexId num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return heads_.size(); }

  // The CSR accessors are defined inline: they sit on the innermost loop
  // of every kernel, where an out-of-line call per edge would dominate.

  /// Out-neighbors of v, sorted ascending.
  std::span<const VertexId> out(VertexId v) const {
    return {heads_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  /// Weight of the i-th out-edge of v (1.0 when the graph is unweighted).
  double out_weight(VertexId v, std::size_t i) const {
    return weights_.empty() ? 1.0 : weights_[offsets_[v] + i];
  }
  std::uint32_t out_degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::uint32_t in_degree(VertexId v) const {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// In-neighbors of v, sorted ascending (both directions are materialized
  /// at construction for algorithmic convenience).
  std::span<const VertexId> in(VertexId v) const {
    return {in_heads_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Undirected neighbors of v: distinct neighbors in either direction,
  /// sorted ascending, from the undirected CSR materialized at
  /// construction. Shared by WCC/CDLP/LCC.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {und_heads_.data() + und_offsets_[v],
            und_offsets_[v + 1] - und_offsets_[v]};
  }
  /// Undirected view degree: distinct neighbors in either direction.
  std::uint32_t und_degree(VertexId v) const {
    return static_cast<std::uint32_t>(und_offsets_[v + 1] - und_offsets_[v]);
  }

  /// Raw views of the three CSR directions, for kernel inner loops (see
  /// CsrView). Valid as long as the Graph is.
  CsrView out_csr() const noexcept { return {offsets_.data(), heads_.data()}; }
  CsrView in_csr() const noexcept {
    return {in_offsets_.data(), in_heads_.data()};
  }
  CsrView und_csr() const noexcept {
    return {und_offsets_.data(), und_heads_.data()};
  }

  /// The undirected view as an adjacency-list copy (kept for callers that
  /// want owning vectors; the kernels use neighbors() directly).
  std::vector<std::vector<VertexId>> undirected_adjacency() const;

  bool weighted() const noexcept { return !weights_.empty(); }

  /// The edge list back out (in CSR order), for re-weighting and I/O.
  std::vector<std::pair<VertexId, VertexId>> edge_list() const;

 private:
  VertexId n_ = 0;
  std::vector<std::size_t> offsets_;   // out-CSR offsets, size n+1
  std::vector<VertexId> heads_;        // out-edge targets
  std::vector<double> weights_;        // parallel to heads_ (may be empty)
  std::vector<std::size_t> in_offsets_;
  std::vector<VertexId> in_heads_;
  std::vector<std::size_t> und_offsets_;  // undirected CSR offsets
  std::vector<VertexId> und_heads_;       // distinct merged neighbors
};

/// G(n, p)-style random graph with average out-degree `avg_deg`: endpoint
/// pairs are redrawn (bounded retries) until the graph *keeps* the target
/// number of edges after self-loop/duplicate removal, so the realized
/// density matches the request instead of silently undershooting it.
Graph erdos_renyi(VertexId n, double avg_deg, atlarge::stats::Rng& rng);

/// Power-law graph via preferential attachment (Barabási-Albert flavor):
/// each new vertex attaches `m` out-edges preferentially to high-degree
/// targets. Produces the skewed degree distributions of web/social graphs.
Graph preferential_attachment(VertexId n, std::uint32_t m,
                              atlarge::stats::Rng& rng);

/// 2-D grid (four-neighborhood), the regular-structure extreme: high
/// diameter, uniform degree — the dataset class where BFS-like algorithms
/// behave completely differently from social networks.
Graph grid_2d(VertexId side);

/// Uniform random weights in [lo, hi) attached to an unweighted graph's
/// edges (for SSSP).
Graph with_random_weights(const Graph& g, double lo, double hi,
                          atlarge::stats::Rng& rng);

}  // namespace atlarge::graph
