#pragma once
// Design-space exploration processes (paper Section 3.3, Figures 6-7).
//
// Four processes, exactly the paper's taxonomy:
//  * Free exploration: unconstrained random + local search over the whole
//    space — can find radical designs, but "its likelihood of success is
//    limited by the scale of the design space";
//  * Fix-the-What: a subset of dimensions is frozen to given choices
//    (fixing the technology), shrinking the searched space;
//  * Fix-the-How: every dimension keeps only a subset of its options
//    (re-framing the kinds of relationships considered);
//  * Co-evolving: explore under a budget; when progress stalls, *evolve
//    the problem itself* (Figure 7's Problem 1 -> Problem 2), carrying the
//    best design over as the seed.
//
// All processes share one local-search engine (random restarts +
// first-improvement hill climbing) so differences in outcome are due to
// the process, not the optimizer.
//
// The engine searches a `Landscape` — per-dimension option counts plus an
// arbitrary quality function — so the same processes run both over the
// synthetic NK `DesignProblem`s of the paper's Figures 6-7 and over real
// simulator objectives (the atlarge::exp campaign engine binds a
// Landscape to a domain SimulatorAdapter). The DesignProblem overloads
// below are thin wrappers over the Landscape engine.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "atlarge/design/design_space.hpp"

namespace atlarge::design {

struct ExplorationConfig {
  /// Default evaluation budget. 5'000 evaluations covers ~50% of the
  /// 12-dimension binary spaces of Figure 6 after restart overlap, which
  /// is the regime where the paper's process differences are visible:
  /// enough budget that free exploration sometimes succeeds, little
  /// enough that fixing What/How measurably helps. Campaigns over real
  /// simulators (where one evaluation is a whole simulation) should set
  /// an explicit, much smaller budget.
  static constexpr std::size_t kDefaultEvaluationBudget = 5'000;

  std::size_t evaluation_budget = kDefaultEvaluationBudget;
  std::size_t restart_period = 200;  // evals per restart
  std::uint64_t seed = 1;
  /// Co-evolving only: evolve the problem after this many evaluations
  /// without improvement, and carry over the incumbent design.
  std::size_t stall_limit = 600;
  double evolve_churn = 0.4;
};

/// An exploration domain decoupled from DesignProblem: option counts per
/// dimension, a quality function to maximize, and a satisficing
/// threshold. The default threshold (2.0) is unreachable for the usual
/// [0, 1] quality scale, so exploration runs to budget exhaustion — the
/// right behaviour for campaign objectives with no natural "good enough"
/// level.
struct Landscape {
  std::vector<std::uint32_t> options;
  double satisficing_threshold = 2.0;
  std::function<double(const DesignPoint&)> quality;
};

/// One solved (or failed) attempt in the trace — the dots and X-boxes of
/// Figure 7.
struct Attempt {
  std::size_t evaluation = 0;  // budget position when recorded
  double quality = 0.0;
  bool satisficing = false;
};

struct ExplorationTrace {
  std::string process;
  std::vector<Attempt> attempts;      // improvements over time
  double best_quality = 0.0;
  /// The design point achieving best_quality — maintained incrementally,
  /// so callers get the incumbent without re-scanning `attempts` and
  /// re-evaluating. Empty only when nothing was evaluated.
  DesignPoint best_point;
  std::size_t evaluations_used = 0;
  std::size_t satisficing_designs = 0;  // distinct satisficing finds
  std::size_t failures = 0;             // restarts that never satisficed
  std::size_t problem_evolutions = 0;   // co-evolving only
  /// Budget position of the first satisficing design; 0 when none found.
  std::size_t first_satisficing_at = 0;
  bool success() const noexcept { return satisficing_designs > 0; }
};

/// Free exploration over an arbitrary landscape (the generic engine; the
/// DesignProblem overloads below route through it).
ExplorationTrace explore_free(const Landscape& space,
                              const ExplorationConfig& config);

/// Free exploration over the full space.
ExplorationTrace explore_free(const DesignProblem& problem,
                              const ExplorationConfig& config);

/// Fix-the-What: dimensions listed in `fixed_dims` are pinned to the
/// values in `fixed_values` and never changed.
ExplorationTrace explore_fix_what(const DesignProblem& problem,
                                  const std::vector<std::size_t>& fixed_dims,
                                  const DesignPoint& fixed_values,
                                  const ExplorationConfig& config);

/// Fix-the-How: each dimension explores only its first
/// `allowed_options[d]` options (a re-framing that shrinks every axis).
ExplorationTrace explore_fix_how(const DesignProblem& problem,
                                 const std::vector<std::uint32_t>&
                                     allowed_options,
                                 const ExplorationConfig& config);

/// Co-evolving problem-solution exploration (Figure 7).
ExplorationTrace explore_co_evolving(DesignProblem problem,
                                     const ExplorationConfig& config);

}  // namespace atlarge::design
