#pragma once
// Review-score model for the paper's Figure 3.
//
// Figure 3 analyzes one year of reviews at an anonymized top distributed-
// systems conference: per article, 3+ reviewers score overall merit,
// quality of approach, and topical fit, each an integer in [1, 4]; the
// figure shows score distributions as violins split by article category.
// The paper's findings the synthetic model is calibrated to reproduce:
//  (1) design articles have a slightly better distributional shape than
//      non-design articles (higher median, mean, IQR mass at >= 2);
//  (2) a significant share of design articles still scores well below 3 —
//      many professionals struggle to produce and self-assess designs;
//  (3) topic scores are uniformly high — Calls for Papers focus authors
//      (the evidence for the problem-archetype approach of Section 3.4).

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/stats/violin.hpp"

namespace atlarge::design {

enum class ReviewAspect { kMerit, kQuality, kTopic };

std::string to_string(ReviewAspect a);

struct ArticleReview {
  bool is_design = false;
  bool accepted = false;
  double merit = 0.0;    // mean of the reviewers' integer scores
  double quality = 0.0;
  double topic = 0.0;

  double aspect(ReviewAspect a) const noexcept;
};

struct ReviewModelConfig {
  std::size_t articles = 400;
  double design_fraction = 0.45;
  std::size_t reviewers_min = 3;
  std::size_t reviewers_max = 5;
  double accept_rate = 0.18;       // top-tier acceptance by merit
  /// Latent quality means (on the 1-4 scale) per population; the design
  /// edge reproduces finding (1).
  double design_mean = 2.45;
  double non_design_mean = 2.30;
  double latent_stddev = 0.55;
  double reviewer_noise = 0.45;
  double topic_mean = 3.3;         // finding (3): high topical fit
  std::uint64_t seed = 1;
};

/// Generates the review corpus: latent article quality per population,
/// integer reviewer scores (clamped to [1,4]) averaged per article, and
/// acceptance of the top `accept_rate` by merit.
std::vector<ArticleReview> generate_reviews(const ReviewModelConfig& config);

/// Figure 3's panels: one violin per category (design/non-design x
/// accepted/rejected, plus the two aggregate rows) for the given aspect.
atlarge::stats::ViolinGroup violins_by_category(
    const std::vector<ArticleReview>& reviews, ReviewAspect aspect);

}  // namespace atlarge::design
