#pragma once
// The Distributed Systems Memex and the design-provenance formalism
// (paper challenges C6 and C8).
//
// C6 proposes a Memex archiving "large amounts of operational traces
// collected from the distributed systems that currently underpin our
// society", extended with "the preservation of original designs and of
// their origins ... the decisions that lead to them". C8 asks for "a
// formalism for documenting designs" that can trace their evolution
// without stifling creativity. This module provides both:
//  * DecisionRecord / ProvenanceGraph — a DAG of design decisions, each
//    recording the alternatives considered, the rationale, and the
//    decisions it supersedes, so a design's lineage is queryable;
//  * Memex — a catalog pairing operational-trace datasets (reusing
//    trace::Archive entries by id) with the provenance graphs of the
//    designs that produced or consumed them.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atlarge::design {

using DecisionId = std::uint32_t;

/// One documented design decision.
struct DecisionRecord {
  DecisionId id = 0;
  std::string title;              // e.g. "piece size = 256 KiB"
  std::string rationale;          // why this alternative won
  std::vector<std::string> alternatives;  // options considered and rejected
  std::vector<DecisionId> supersedes;     // earlier decisions this replaces
  int year = 0;                   // provenance timestamp
  std::string author;             // designer or team
};

/// A DAG of decisions: edges point from a decision to the decisions it
/// supersedes. Append-only, id-checked, cycle-free by construction
/// (a decision may only supersede already-recorded decisions).
class ProvenanceGraph {
 public:
  /// Records a decision; its id is assigned and returned. Throws
  /// std::invalid_argument if it supersedes an unknown decision.
  DecisionId record(DecisionRecord record);

  std::size_t size() const noexcept { return records_.size(); }
  const DecisionRecord& get(DecisionId id) const;

  /// Decisions that are current (not superseded by any later decision).
  std::vector<DecisionId> active() const;

  /// The full lineage of a decision: every decision transitively
  /// superseded by it, oldest first.
  std::vector<DecisionId> lineage(DecisionId id) const;

  /// Number of revisions a decision chain went through: lineage length.
  std::size_t revision_depth(DecisionId id) const;

  /// All decisions by a given author.
  std::vector<DecisionId> by_author(const std::string& author) const;

 private:
  std::vector<DecisionRecord> records_;
};

/// A Memex entry ties a designed system to its provenance and to the
/// operational-trace datasets (by archive id) that informed or evaluated
/// it.
struct MemexEntry {
  std::string system;             // e.g. "Tribler", "Graphalytics"
  ProvenanceGraph provenance;
  std::vector<std::string> trace_dataset_ids;  // trace::Archive ids
  int first_year = 0;
  int last_year = 0;
};

class Memex {
 public:
  /// Adds an entry; returns false if the system name is taken.
  bool add(MemexEntry entry);
  std::size_t size() const noexcept { return entries_.size(); }
  const MemexEntry* find(const std::string& system) const;

  /// Systems whose activity overlaps [from, to].
  std::vector<std::string> active_between(int from, int to) const;

  /// Total decisions preserved across all systems — the heritage the
  /// paper warns is being lost.
  std::size_t decisions_preserved() const noexcept;

 private:
  std::vector<MemexEntry> entries_;
};

/// A worked Memex for this repository's own substrates: the P2P,
/// Graphalytics, and portfolio-scheduling lines of work with their key
/// published decisions, as recorded in the paper's Section 6.
Memex paper_memex();

}  // namespace atlarge::design
