#pragma once
// The Basic Design Cycle (BDC) and Overall Process (paper Section 3.5,
// Figure 8).
//
// The BDC is the framework's core loop: eight elements from requirements
// formulation to dissemination, iterated until one of five stopping
// criteria fires. Two properties the paper emphasizes are first-class
// here:
//  * every stage is *skippable* per iteration ("the OP allows each
//    iteration to be tailored to the remaining parts of the problem");
//  * the process is *hierarchical*: a complex stage (implementation,
//    experimentation, dissemination) can expand into a nested BDC — any
//    stage handler may construct and run a child BasicDesignCycle.
//
// The cycle is executable: stages are callbacks over a shared context, so
// tests and benches can wire real work (e.g. design-space exploration)
// into stage 4/5 and observe the stopping behavior.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::design {

/// The eight BDC elements, numbered as in the paper.
enum class Stage : std::uint8_t {
  kFormulateRequirements = 1,
  kUnderstandAlternatives = 2,
  kBootstrapCreative = 3,
  kHighAndLowLevelDesign = 4,
  kImplement = 5,            // analysis code, simulators, prototypes
  kConceptualAnalysis = 6,
  kExperimentalAnalysis = 7,
  kDisseminate = 8,          // articles, FOSS, FAIR/FOAD data
};

std::string to_string(Stage s);
constexpr std::size_t kStageCount = 8;
const std::array<Stage, kStageCount>& all_stages();

/// The five stopping criteria of Section 3.5.
enum class StoppingCriterion : std::uint8_t {
  kSatisficing = 1,        // one good-enough (or optimal) design
  kPortfolio = 2,          // a few designs for a human reviewer
  kSystematicDesign = 3,   // many designs for expert selection
  kSpaceExhaustion = 4,    // all designs enumerated
  kResourcesExhausted = 5, // out of time/budget — no result guaranteed
};

std::string to_string(StoppingCriterion c);

/// Shared state the stage handlers read and write.
struct BdcContext {
  std::size_t iteration = 0;
  double best_quality = 0.0;          // quality of the best design so far
  std::size_t designs_found = 0;      // satisficing designs accumulated
  std::size_t space_explored = 0;     // points evaluated (criterion 4)
  std::size_t space_size = 0;         // 0 = unbounded
  std::vector<std::string> artifacts; // dissemination outputs
  atlarge::stats::Rng rng{1};
};

struct BdcConfig {
  double satisficing_quality = 0.8;
  /// Stop once this many satisficing designs exist: 1 = criterion 1,
  /// small = criterion 2 (portfolio), large = criterion 3 (systematic).
  std::size_t designs_target = 1;
  std::size_t max_iterations = 100;  // the resource budget (criterion 5)
};

struct StageVisit {
  std::size_t iteration = 0;
  Stage stage = Stage::kFormulateRequirements;
  bool skipped = false;
};

struct BdcReport {
  StoppingCriterion stopped_by = StoppingCriterion::kResourcesExhausted;
  std::size_t iterations = 0;
  std::vector<StageVisit> visits;
  double best_quality = 0.0;
  std::size_t designs_found = 0;
  std::vector<std::string> artifacts;
  /// The BDC "can, but does not guarantee success" (Section 3.5).
  bool success() const noexcept {
    return stopped_by != StoppingCriterion::kResourcesExhausted;
  }
};

class BasicDesignCycle {
 public:
  using StageHandler = std::function<void(BdcContext&)>;
  using SkipPredicate = std::function<bool(const BdcContext&)>;

  explicit BasicDesignCycle(BdcConfig config = {});

  /// Installs the work of a stage; stages without a handler are recorded
  /// as skipped.
  void on(Stage stage, StageHandler handler);

  /// Installs a per-iteration skip decision for a stage (the OP's
  /// tailoring feature). A true result skips the stage that iteration.
  void skip_when(Stage stage, SkipPredicate predicate);

  /// Runs iterations until a stopping criterion fires.
  BdcReport run(BdcContext context = {});

 private:
  std::optional<StoppingCriterion> check_stop(const BdcContext& ctx) const;

  BdcConfig config_;
  std::array<StageHandler, kStageCount> handlers_{};
  std::array<SkipPredicate, kStageCount> skips_{};
};

}  // namespace atlarge::design
