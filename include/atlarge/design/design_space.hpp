#pragma once
// Design spaces for MCS design (paper Sections 3.2-3.3).
//
// The framework's problem-solving processes explore a *design space*: a
// set of dimensions (concepts/technologies — the "What?") each with
// discrete options, and relationships between choices (the "How?") that
// jointly determine a design's quality. We model the quality landscape as
// an NK-style rugged fitness function: each dimension's contribution
// depends on its own choice and the choices of K interacting dimensions.
// This is the standard abstraction for studying search over design spaces
// with tunable ruggedness — exactly what challenge C3 of the paper asks
// the community to characterize.

#include <cstdint>
#include <string>
#include <vector>

#include "atlarge/stats/rng.hpp"

namespace atlarge::design {

/// One axis of the design space, e.g. "consistency model" with options
/// {eventual, causal, strong}.
struct Dimension {
  std::string name;
  std::uint32_t options = 2;
};

/// A concrete design: one option index per dimension.
using DesignPoint = std::vector<std::uint32_t>;

/// A design problem: a space plus a quality landscape and a satisficing
/// threshold (Simon: "good enough" designs, paper Section 3.5).
class DesignProblem {
 public:
  /// Builds a random NK landscape over `dims` dimensions with `options`
  /// options each and `k` interaction partners per dimension.
  /// Quality is in [0, 1]. Deterministic in `seed`.
  DesignProblem(std::size_t dims, std::uint32_t options, std::size_t k,
                double satisficing_threshold, std::uint64_t seed);

  std::size_t dimensions() const noexcept { return dims_.size(); }
  std::uint32_t options(std::size_t dim) const { return dims_[dim].options; }
  double satisficing_threshold() const noexcept { return threshold_; }

  /// Quality of a design point in [0, 1]. Throws on arity mismatch.
  double quality(const DesignPoint& point) const;

  bool satisfices(const DesignPoint& point) const {
    return quality(point) >= threshold_;
  }

  /// Total number of points in the space.
  double space_size() const noexcept;

  /// A uniformly random point.
  DesignPoint random_point(atlarge::stats::Rng& rng) const;

  /// Co-evolution (paper Figure 7): derive a successor problem — the
  /// landscape is re-drawn for `churn` fraction of dimensions while the
  /// rest keep their contribution tables, so knowledge from the old
  /// problem partially transfers. The threshold is kept.
  DesignProblem evolve(double churn, std::uint64_t seed) const;

 private:
  DesignProblem() = default;
  double contribution(std::size_t dim, const DesignPoint& point) const;

  std::vector<Dimension> dims_;
  std::size_t k_ = 0;
  double threshold_ = 0.8;
  /// neighbors_[d]: the K dimensions whose choices interact with d.
  std::vector<std::vector<std::size_t>> neighbors_;
  /// table_[d]: contribution lookup indexed by the mixed-radix code of
  /// (choice(d), choices of neighbors).
  std::vector<std::vector<double>> table_;
};

}  // namespace atlarge::design
