#pragma once
// The framework's catalogs, as queryable data:
//  * the 8 core principles of MCS design (paper Section 4, Table 2);
//  * the 10 challenges (Section 5, Table 3), cross-linked to the
//    principles they derive from;
//  * the problem archetypes P1-P5 and problem sources S1-S3 of the
//    problem-finding process (Section 3.4);
//  * Altshuller's five levels of design creativity and four levels of
//    performance-against-alternatives (challenge C2).
//
// Making the catalogs executable data (rather than prose) is itself an
// instance of challenge C5 ("establish a catalog of components for MCS
// design") and enables the problem-finding helpers used by the examples.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atlarge::design {

enum class PrincipleCategory { kHighest, kSystems, kPeopleware, kMethodology };

std::string to_string(PrincipleCategory c);

struct Principle {
  std::uint32_t index = 0;  // P1..P8
  PrincipleCategory category = PrincipleCategory::kHighest;
  std::string key_aspects;
  std::string statement;
};

struct Challenge {
  std::uint32_t index = 0;  // C1..C10
  PrincipleCategory category = PrincipleCategory::kHighest;
  std::string key_aspects;
  std::string statement;
  std::vector<std::uint32_t> principles;  // the "Pr." column of Table 3
};

/// The eight principles of Table 2, in order.
const std::vector<Principle>& principles();

/// The ten challenges of Table 3, in order.
const std::vector<Challenge>& challenges();

/// Challenges linked to a given principle index.
std::vector<Challenge> challenges_for_principle(std::uint32_t principle);

// --------------------------------------------------------- problem-finding

/// Problem archetypes P1-P5 of Section 3.4.
enum class ProblemArchetype : std::uint8_t {
  kEcosystemLifecycle = 1,  // P1: new/emerging processes and ecosystems
  kEmergingNeeds = 2,       // P2: client/operator needs, phenomena, new tech
  kLegacy = 3,              // P3: leveraging and maintaining legacy parts
  kMorphology = 4,          // P4: understanding technology in practice
  kUnexploredNiche = 5,     // P5: curiosity-driven design-space gaps
};

std::string to_string(ProblemArchetype a);

/// Problem sources S1-S3 for archetypes P1-P3.
enum class ProblemSource : std::uint8_t {
  kPeerReviewedStudies = 1,
  kExpertPractice = 2,
  kOwnExperiments = 3,
};

std::string to_string(ProblemSource s);

/// A found problem, classified by archetype and provenance.
struct ProblemStatement {
  std::string title;
  ProblemArchetype archetype = ProblemArchetype::kEcosystemLifecycle;
  std::optional<ProblemSource> source;  // P4/P5 problems may have none
  std::string description;
};

/// A problem-finding log: the framework's "Call for Problems".
class ProblemCatalog {
 public:
  void add(ProblemStatement problem);
  std::size_t size() const noexcept { return problems_.size(); }
  std::vector<ProblemStatement> by_archetype(ProblemArchetype a) const;
  const std::vector<ProblemStatement>& all() const noexcept {
    return problems_;
  }

 private:
  std::vector<ProblemStatement> problems_;
};

/// The experiment domains of the paper's Section 6, pre-classified — a
/// worked example of the catalog.
ProblemCatalog paper_problem_catalog();

// --------------------------------------------------------------- levels --

/// Altshuller's five levels of design creativity (challenge C2).
enum class CreativityLevel : std::uint8_t {
  kTrivial = 1,      // minimal local adaptation of an existing design
  kNormal = 2,       // reasoned selection + adaptation among designs
  kNovel = 3,        // significant adaptation of an existing design
  kFundamental = 4,  // new design or feature (big data, serverless)
  kOutstanding = 5,  // new ecosystem, field-level advance (Internet, cloud)
};

std::string to_string(CreativityLevel level);

/// Altshuller's four performance baselines a design is judged against.
enum class PerformanceBaseline : std::uint8_t {
  kRandom = 1,
  kNaive = 2,
  kCurrentPractice = 3,
  kIdeal = 4,
};

std::string to_string(PerformanceBaseline b);

/// Maps a review-style quality score in [1, 4] and an innovation score in
/// [1, 4] onto a creativity level — the overfit-prone quantization the
/// paper critiques in challenge C2; exposed so the Fig. 3 bench can show
/// the clustering-around-the-middle effect.
CreativityLevel assess_creativity(double quality, double innovation);

}  // namespace atlarge::design
