#pragma once
// Bibliometric corpus model for the paper's Figures 1-2.
//
// Figure 1 shows the presence of selected keywords in top systems venues;
// Figure 2 counts design articles per venue in 5-year blocks since 1980,
// with censored data for venues that started later and an incomplete last
// block. The real corpora are venue-private; the synthetic model keeps
// the *pipeline* honest — corpus -> keyword tagging -> classifier ->
// aggregation — and is calibrated to the paper's reported trend: "a marked
// increase in design articles accepted for publication since 2000".

#include <cstdint>
#include <string>
#include <vector>

namespace atlarge::design {

struct VenueSpec {
  std::string name;
  int first_year = 1980;         // venues starting later yield censored data
  std::size_t articles_per_year = 60;
  double growth_per_year = 0.01;  // relative growth of accepted counts
};

struct KeywordTrend {
  std::string keyword;
  /// Adoption follows a logistic curve: probability an article carries the
  /// keyword in year y is floor + (ceil-floor)/(1+exp(-rate*(y-midpoint))).
  double floor = 0.02;
  double ceil = 0.30;
  double rate = 0.25;
  int midpoint_year = 2005;

  double probability(int year) const;
};

struct CorpusArticle {
  std::uint32_t venue = 0;
  int year = 0;
  std::uint32_t keyword_mask = 0;  // bit i = has keywords[i]
};

struct CorpusConfig {
  std::vector<VenueSpec> venues;
  std::vector<KeywordTrend> keywords;
  int from_year = 1980;
  int to_year = 2018;
  std::uint64_t seed = 1;
};

/// The venue/keyword setup of Figures 1-2: eight systems venues (ICDCS
/// among them, some starting mid-range) and the keywords the paper plots,
/// with "design" on the post-2000 rising trend.
CorpusConfig paper_corpus_config();

struct Corpus {
  CorpusConfig config;
  std::vector<CorpusArticle> articles;
};

Corpus generate_corpus(const CorpusConfig& config);

/// Figure 1: fraction of a venue's articles carrying the keyword within
/// [from_year, to_year].
double keyword_presence(const Corpus& corpus, std::uint32_t venue,
                        std::uint32_t keyword, int from_year, int to_year);

/// Figure 2: design-article counts per venue per 5-year block starting at
/// `from_year`. An article is a design article when it carries the
/// keyword named "design". Blocks before a venue's first year hold 0
/// (censored); the final block may be incomplete, exactly as in the paper.
struct BlockCounts {
  std::vector<int> block_start_years;
  /// counts[venue][block]
  std::vector<std::vector<std::size_t>> counts;
};

BlockCounts design_articles_per_block(const Corpus& corpus);

}  // namespace atlarge::design
