#include "atlarge/workflow/job.hpp"

#include <algorithm>
#include <stdexcept>

namespace atlarge::workflow {

double Job::total_work() const noexcept {
  double work = 0.0;
  for (const auto& t : tasks) work += t.runtime * t.cores;
  return work;
}

bool Job::is_bag_of_tasks() const noexcept {
  return std::all_of(tasks.begin(), tasks.end(),
                     [](const Task& t) { return t.deps.empty(); });
}

std::vector<TaskId> Job::topological_order() const {
  const std::size_t n = tasks.size();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<TaskId>> children(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : tasks[i].deps) {
      if (dep >= n)
        throw std::invalid_argument("Job: dependency index out of range");
      if (dep == i) throw std::invalid_argument("Job: self-dependency");
      children[dep].push_back(static_cast<TaskId>(i));
      ++indegree[i];
    }
  }
  std::vector<TaskId> order;
  order.reserve(n);
  // Kahn's algorithm; a deterministic FIFO over task index keeps the order
  // reproducible across runs.
  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) frontier.push_back(static_cast<TaskId>(i));
  std::size_t head = 0;
  while (head < frontier.size()) {
    const TaskId u = frontier[head++];
    order.push_back(u);
    for (TaskId v : children[u]) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (order.size() != n)
    throw std::invalid_argument("Job: dependency graph has a cycle");
  return order;
}

double Job::critical_path() const {
  if (tasks.empty()) return 0.0;
  const auto order = topological_order();
  std::vector<double> finish(tasks.size(), 0.0);
  double longest = 0.0;
  for (TaskId u : order) {
    double start = 0.0;
    for (TaskId dep : tasks[u].deps) start = std::max(start, finish[dep]);
    finish[u] = start + tasks[u].runtime;
    longest = std::max(longest, finish[u]);
  }
  return longest;
}

void Job::validate() const {
  for (const auto& t : tasks) {
    if (t.runtime <= 0.0)
      throw std::invalid_argument("Job: task runtime must be positive");
    if (t.cores == 0)
      throw std::invalid_argument("Job: task must require >= 1 core");
  }
  (void)topological_order();  // throws on cycles / bad edges
}

double Workload::total_work() const noexcept {
  double work = 0.0;
  for (const auto& j : jobs) work += j.total_work();
  return work;
}

double Workload::makespan_lower_bound(std::uint32_t total_cores) const {
  if (jobs.empty() || total_cores == 0) return 0.0;
  double first_submit = jobs.front().submit_time;
  double max_path = 0.0;
  for (const auto& j : jobs) {
    first_submit = std::min(first_submit, j.submit_time);
    max_path = std::max(max_path, j.submit_time + j.critical_path());
  }
  const double work_bound =
      first_submit + total_work() / static_cast<double>(total_cores);
  return std::max(work_bound, max_path);
}

void Workload::normalize() {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = i;
}

}  // namespace atlarge::workflow
