#include "atlarge/workflow/vicissitude.hpp"

#include <algorithm>
#include <cmath>

namespace atlarge::workflow {

std::vector<StageSample> simulate_pipeline(const PipelineConfig& config) {
  stats::Rng rng(config.seed);
  std::vector<StageSample> samples;
  std::vector<double> queue(config.stages, 0.0);  // carried-over records

  for (double t = 0.0; t < config.horizon; t += config.window) {
    StageSample sample;
    sample.time = t;
    sample.utilization.resize(config.stages);

    const bool burst = rng.bernoulli(config.burst_share);
    double incoming = config.input_rate * config.window *
                      (burst ? config.burst_factor : 1.0);
    for (std::size_t s = 0; s < config.stages; ++s) {
      const double capacity_rate =
          config.stage_capacity *
          std::max(0.05, 1.0 + rng.normal(0.0, config.capacity_noise));
      const double capacity = capacity_rate * config.window;
      const double offered = queue[s] + incoming;
      const double processed = std::min(offered, capacity);
      queue[s] = offered - processed;
      sample.utilization[s] = capacity > 0.0 ? offered / capacity : 0.0;
      incoming = processed;  // output of stage s feeds stage s+1
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

VicissitudeReport analyze_vicissitude(const std::vector<StageSample>& samples,
                                      double saturation,
                                      double rotation_threshold) {
  VicissitudeReport report;
  if (samples.empty()) return report;
  const std::size_t stages = samples.front().utilization.size();
  report.bottleneck_windows.assign(stages, 0);

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t previous = kNone;
  std::size_t transitions = 0;
  std::size_t moved = 0;
  for (const auto& sample : samples) {
    std::size_t bottleneck = kNone;
    double peak = saturation;
    for (std::size_t s = 0; s < sample.utilization.size(); ++s) {
      if (sample.utilization[s] >= peak) {
        peak = sample.utilization[s];
        bottleneck = s;
      }
    }
    if (bottleneck == kNone) continue;  // unsaturated window
    ++report.saturated_windows;
    ++report.bottleneck_windows[bottleneck];
    if (previous != kNone) {
      ++transitions;
      if (bottleneck != previous) ++moved;
    }
    previous = bottleneck;
  }

  for (std::size_t count : report.bottleneck_windows) {
    if (count > 0) ++report.distinct_bottlenecks;
  }
  report.rotation_rate =
      transitions == 0 ? 0.0
                       : static_cast<double>(moved) /
                             static_cast<double>(transitions);
  report.vicissitude = report.distinct_bottlenecks >= 2 &&
                       report.rotation_rate >= rotation_threshold;
  return report;
}

}  // namespace atlarge::workflow
