#include "atlarge/workflow/generators.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "atlarge/stats/distributions.hpp"

namespace atlarge::workflow {

using atlarge::stats::BoundedPareto;
using atlarge::stats::LogNormal;
using atlarge::stats::Rng;

Job make_bag_of_tasks(std::size_t n, double lo, double hi, double alpha,
                      Rng& rng) {
  BoundedPareto demand(lo, hi, alpha);
  Job job;
  job.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.runtime = demand(rng);
    job.tasks.push_back(std::move(t));
  }
  return job;
}

Job make_chain(std::size_t n, double mean_runtime, Rng& rng) {
  Job job;
  job.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.runtime = rng.exponential(1.0 / mean_runtime);
    if (t.runtime <= 0.0) t.runtime = mean_runtime;
    if (i > 0) t.deps.push_back(static_cast<TaskId>(i - 1));
    job.tasks.push_back(std::move(t));
  }
  return job;
}

Job make_fork_join(std::size_t width, double mean_runtime, Rng& rng) {
  Job job;
  job.tasks.reserve(width + 2);
  Task source;
  source.runtime = std::max(mean_runtime * 0.1, 1e-3);
  job.tasks.push_back(std::move(source));
  for (std::size_t i = 0; i < width; ++i) {
    Task t;
    t.runtime = rng.exponential(1.0 / mean_runtime);
    if (t.runtime <= 0.0) t.runtime = mean_runtime;
    t.deps.push_back(0);
    job.tasks.push_back(std::move(t));
  }
  Task sink;
  sink.runtime = std::max(mean_runtime * 0.1, 1e-3);
  for (std::size_t i = 0; i < width; ++i)
    sink.deps.push_back(static_cast<TaskId>(i + 1));
  job.tasks.push_back(std::move(sink));
  return job;
}

Job make_random_dag(std::size_t layers, std::size_t width,
                    std::size_t max_fan_in, double mean_runtime, Rng& rng) {
  Job job;
  job.tasks.reserve(layers * width);
  LogNormal demand(std::log(std::max(mean_runtime, 1e-6)), 0.8);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      Task t;
      t.runtime = std::max(demand(rng), 1e-3);
      if (layer > 0) {
        const std::size_t fan =
            1 + static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(
                                           std::min(max_fan_in, width)) -
                                           1));
        const TaskId prev_base = static_cast<TaskId>((layer - 1) * width);
        for (std::size_t k = 0; k < fan; ++k) {
          const TaskId dep =
              prev_base + static_cast<TaskId>(rng.uniform_int(
                              0, static_cast<std::int64_t>(width) - 1));
          if (std::find(t.deps.begin(), t.deps.end(), dep) == t.deps.end())
            t.deps.push_back(dep);
        }
      }
      job.tasks.push_back(std::move(t));
    }
  }
  return job;
}

double PoissonArrivals::next_gap(double /*now*/, Rng& rng) {
  return rng.exponential(rate_);
}

FlashcrowdArrivals::FlashcrowdArrivals(double base_rate, double surge_factor,
                                       double surge_start, double surge_end)
    : base_rate_(base_rate),
      surge_factor_(surge_factor),
      surge_start_(surge_start),
      surge_end_(surge_end) {}

double FlashcrowdArrivals::next_gap(double now, Rng& rng) {
  const bool surging = now >= surge_start_ && now < surge_end_;
  const double rate = surging ? base_rate_ * surge_factor_ : base_rate_;
  return rng.exponential(rate);
}

DiurnalArrivals::DiurnalArrivals(double mean_rate, double amplitude,
                                 double period)
    : mean_rate_(mean_rate), amplitude_(amplitude), period_(period) {}

double DiurnalArrivals::next_gap(double now, Rng& rng) {
  const double phase = 2.0 * std::numbers::pi * now / period_;
  const double rate = mean_rate_ * (1.0 + amplitude_ * std::sin(phase));
  return rng.exponential(std::max(rate, mean_rate_ * 0.05));
}

std::string to_string(WorkloadClass wc) {
  switch (wc) {
    case WorkloadClass::kSynthetic: return "Syn";
    case WorkloadClass::kScientific: return "Sci";
    case WorkloadClass::kGaming: return "Gam";
    case WorkloadClass::kComputerEng: return "CE";
    case WorkloadClass::kBusinessCritical: return "BC";
    case WorkloadClass::kIndustrial: return "Ind";
    case WorkloadClass::kBigData: return "BD";
  }
  return "?";
}

namespace {

Job make_job_for_class(WorkloadClass cls, Rng& rng) {
  switch (cls) {
    case WorkloadClass::kSynthetic: {
      const auto n = static_cast<std::size_t>(rng.uniform_int(4, 32));
      Job job;
      for (std::size_t i = 0; i < n; ++i) {
        Task t;
        t.runtime = rng.uniform(10.0, 100.0);
        job.tasks.push_back(std::move(t));
      }
      return job;
    }
    case WorkloadClass::kScientific: {
      // Heavy-tailed bags (cluster/grid batch jobs) mixed with chains.
      if (rng.bernoulli(0.7)) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(8, 128));
        return make_bag_of_tasks(n, 5.0, 3'000.0, 1.2, rng);
      }
      return make_chain(static_cast<std::size_t>(rng.uniform_int(3, 12)),
                        120.0, rng);
    }
    case WorkloadClass::kGaming: {
      // Short interactive simulation ticks: small fork-joins.
      return make_fork_join(static_cast<std::size_t>(rng.uniform_int(2, 8)),
                            5.0, rng);
    }
    case WorkloadClass::kComputerEng: {
      // EDA regression runs: wide fork-joins with moderate runtimes.
      return make_fork_join(static_cast<std::size_t>(rng.uniform_int(16, 64)),
                            300.0, rng);
    }
    case WorkloadClass::kBusinessCritical: {
      // Few long-running multi-core tasks per job.
      Job job;
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 4));
      for (std::size_t i = 0; i < n; ++i) {
        Task t;
        t.runtime = rng.uniform(1'000.0, 20'000.0);
        t.cores = static_cast<std::uint32_t>(rng.uniform_int(2, 8));
        job.tasks.push_back(std::move(t));
      }
      return job;
    }
    case WorkloadClass::kIndustrial: {
      // Periodic IoT analytics: small layered DAGs.
      return make_random_dag(3, 4, 2, 60.0, rng);
    }
    case WorkloadClass::kBigData: {
      // Wide layered DAGs with skewed runtimes (stragglers).
      return make_random_dag(
          static_cast<std::size_t>(rng.uniform_int(2, 5)),
          static_cast<std::size_t>(rng.uniform_int(8, 48)), 3, 90.0, rng);
    }
  }
  return Job{};
}

std::unique_ptr<ArrivalProcess> make_arrivals_for_class(WorkloadClass cls,
                                                        double rate) {
  switch (cls) {
    case WorkloadClass::kGaming:
    case WorkloadClass::kBusinessCritical:
      return std::make_unique<DiurnalArrivals>(rate, 0.8, 86'400.0);
    case WorkloadClass::kBigData:
      // Big-data pipelines exhibit bursts (the vicissitude setting).
      return std::make_unique<FlashcrowdArrivals>(rate, 8.0, 0.0, 0.0);
    default:
      return std::make_unique<PoissonArrivals>(rate);
  }
}

}  // namespace

Workload generate(const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  Workload wl;
  wl.name = to_string(spec.cls);
  const double rate =
      static_cast<double>(spec.jobs) / std::max(spec.horizon, 1.0);
  auto arrivals = make_arrivals_for_class(spec.cls, rate);
  // Big-data bursts: place a surge window in the middle third of the horizon.
  if (spec.cls == WorkloadClass::kBigData) {
    arrivals = std::make_unique<FlashcrowdArrivals>(
        rate * 0.6, 6.0, spec.horizon / 3.0, spec.horizon / 2.0);
  }
  double now = 0.0;
  for (std::size_t i = 0; i < spec.jobs; ++i) {
    now += arrivals->next_gap(now, rng);
    Job job = make_job_for_class(spec.cls, rng);
    job.submit_time = now;
    job.user = wl.name;
    job.validate();
    wl.jobs.push_back(std::move(job));
  }
  wl.normalize();
  return wl;
}

}  // namespace atlarge::workflow
