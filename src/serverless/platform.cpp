#include "atlarge/serverless/platform.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>

#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::serverless {
namespace detail {

constexpr std::size_t kNoInstance = static_cast<std::size_t>(-1);
constexpr std::uint32_t kNoMachine = static_cast<std::uint32_t>(-1);

struct Instance {
  std::size_t function = 0;
  bool busy = false;
  bool alive = true;
  double idle_since = 0.0;
  sim::EventHandle expiry;
  /// Backing-substrate lease (kNoMachine with the abstract pool).
  std::uint32_t machine = kNoMachine;
  /// Provisioning delay owed on this instance's first cold execution.
  double provision_extra = 0.0;
  /// Machine crashed while the instance was busy: destroy on release
  /// instead of rejoining the warm pool.
  bool doomed = false;
};

// Per-request bookkeeping. In vector mode one Request exists per input
// invocation for the whole run; in streaming mode slots are recycled
// through a freelist as requests reach a terminal state, so the live set
// is the in-flight set.
struct Request {
  Invocation inv;
  std::uint32_t attempts = 0;
  fault::FaultEvent last_fault;  // time < 0: "no fault blamed yet"
};

class FaasEngine {
 public:
  FaasEngine(const std::vector<FunctionSpec>& registry,
             const std::vector<Invocation>* invocations,
             InvocationSource* source, const PlatformConfig& config,
             sim::Simulation* external = nullptr,
             InstanceBacking* backing = nullptr)
      : registry_(registry),
        invocations_(invocations),
        source_(source),
        config_(config),
        owned_(external != nullptr ? nullptr
                                   : std::make_unique<sim::Simulation>()),
        sim_(external != nullptr ? *external : *owned_),
        external_(external != nullptr),
        backing_(backing),
        obs_(config.obs) {
    if (invocations_ != nullptr) {
      for (const auto& inv : *invocations_) {
        if (inv.function >= registry_.size())
          throw std::invalid_argument("run_platform: unknown function index");
      }
    }
    if (obs_ != nullptr) {
      started_ = &obs_->metrics.counter("faas.invocations");
      cold_starts_ = &obs_->metrics.counter("faas.cold_starts");
      queued_ = &obs_->metrics.counter("faas.queued");
      failed_ = &obs_->metrics.counter("faas.failed");
      requests_ = &obs_->metrics.counter("faas.requests");
      live_gauge_ = &obs_->metrics.gauge("faas.live_instances");
      latency_hist_ = &obs_->metrics.histogram("faas.latency");
      latency_dig_ = &obs_->metrics.digest("faas.latency");
      flight_ = obs_->flight();
      if (flight_ != nullptr) {
        flight_entity_.reserve(registry_.size());
        for (const auto& spec : registry_)
          flight_entity_.push_back(flight_->entity("function/" + spec.name));
      }
    }
  }

  void prepare() {
    if (obs_ != nullptr) {
      // A shared kernel's observer/sampling hooks belong to whoever owns
      // the kernel (the composition layer); attach only to an owned one.
      if (!external_) {
        sim_.set_observer(obs_->kernel_observer());
        if (obs_->sampling_hook() != nullptr)
          sim_.set_sampling_hook(obs_->sampling_hook(),
                                 obs_->sampling_interval());
      }
      obs_->tracer.begin("faas.run", "serverless", sim_.now());
    }
    const std::size_t upfront =
        invocations_ != nullptr ? invocations_->size() : 1024;
    // Pre-size the kernel: each invocation holds at most one pending
    // event at a time (dispatch, retry, or delay reschedule) and every
    // instance at most one keep-alive expiry.
    sim_.reserve(upfront + config_.max_instances + 8);
    if (config_.faults != nullptr && !config_.faults->empty())
      attach_faults();
    // Pre-warm pools (a backing substrate may refuse part of the pool).
    for (std::size_t f = 0; f < registry_.size(); ++f) {
      for (std::uint32_t i = 0; i < config_.prewarmed; ++i) {
        if (live_count_ >= config_.max_instances) break;
        if (make_instance(f, /*busy=*/false) == kNoInstance) break;
      }
    }
    if (invocations_ != nullptr) {
      reqs_.reserve(invocations_->size());
      for (const auto& inv : *invocations_) {
        reqs_.push_back(make_request(inv));
        const std::size_t i = reqs_.size() - 1;
        sim_.schedule_at(inv.arrival, [this, i] { dispatch(i); });
      }
    } else {
      schedule_next_arrival();
    }
  }

  PlatformResult collect() {
    finalize();
    if (obs_ != nullptr)
      obs_->tracer.end("faas.run", "serverless", sim_.now());
    return std::move(result_);
  }

  PlatformResult run() {
    prepare();
    sim_.run();
    return collect();
  }

  /// Crash propagation from the backing substrate (see PlatformDriver).
  void fail_machine(std::uint32_t machine) {
    for (std::size_t idx = 0; idx < instances_.size(); ++idx) {
      auto& inst = instances_[idx];
      if (!inst.alive || inst.machine != machine) continue;
      if (inst.busy) {
        inst.doomed = true;
        continue;
      }
      destroy_instance(idx);
    }
  }

 private:
  static Request make_request(const Invocation& inv) {
    Request req;
    req.inv = inv;
    req.last_fault.time = -1.0;  // sentinel: "no fault blamed yet"
    return req;
  }

  // Streaming mode: pull one invocation and schedule its arrival; the
  // arrival event pulls its successor before dispatching, so exactly one
  // un-arrived invocation is ever scheduled ahead.
  void schedule_next_arrival() {
    Invocation inv;
    if (!source_->next(inv)) return;
    if (inv.function >= registry_.size())
      throw std::invalid_argument("run_platform: unknown function index");
    if (inv.arrival < last_arrival_)
      throw std::invalid_argument(
          "run_platform: streaming arrivals must be nondecreasing");
    last_arrival_ = inv.arrival;
    const std::size_t slot = alloc_slot(inv);
    sim_.schedule_at(inv.arrival, [this, slot] {
      schedule_next_arrival();
      dispatch(slot);
    });
  }

  std::size_t alloc_slot(const Invocation& inv) {
    if (!free_slots_.empty()) {
      const std::size_t slot = free_slots_.back();
      free_slots_.pop_back();
      reqs_[slot] = make_request(inv);
      return slot;
    }
    reqs_.push_back(make_request(inv));
    return reqs_.size() - 1;
  }

  // Called when a request reaches a terminal state (success recorded or
  // final failure). Only streaming mode recycles; vector mode keeps the
  // 1:1 slot/invocation mapping for the whole run.
  void retire_slot(std::size_t i) {
    if (source_ != nullptr) free_slots_.push_back(i);
  }

  std::size_t find_idle(std::size_t function) {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      if (instances_[i].alive && !instances_[i].busy &&
          instances_[i].function == function)
        return i;
    }
    return instances_.size();
  }

  /// Creates an instance, or returns kNoInstance when the backing
  /// substrate is out of capacity (never with the abstract pool).
  std::size_t make_instance(std::size_t function, bool busy) {
    Instance inst;
    inst.function = function;
    inst.busy = busy;
    inst.idle_since = sim_.now();
    if (backing_ != nullptr &&
        !backing_->acquire(function, inst.machine, inst.provision_extra)) {
      ++result_.capacity_denials;
      return kNoInstance;
    }
    instances_.push_back(std::move(inst));
    ++live_count_;
    result_.peak_instances = std::max(result_.peak_instances, live_count_);
    if (obs_ != nullptr)
      live_gauge_->set(static_cast<double>(live_count_));
    const std::size_t idx = instances_.size() - 1;
    if (!busy) arm_expiry(idx);
    return idx;
  }

  void destroy_instance(std::size_t idx) {
    auto& inst = instances_[idx];
    if (!inst.alive) return;
    inst.alive = false;
    inst.expiry.cancel();
    --live_count_;
    if (obs_ != nullptr)
      live_gauge_->set(static_cast<double>(live_count_));
    if (!inst.busy)
      result_.billed_instance_seconds += sim_.now() - inst.idle_since;
    if (backing_ != nullptr && inst.machine != kNoMachine) {
      backing_->release(inst.machine);
      inst.machine = kNoMachine;
    }
  }

  void arm_expiry(std::size_t idx) {
    instances_[idx].expiry = sim_.schedule_after(config_.keep_alive, [this,
                                                                      idx] {
      auto& inst = instances_[idx];
      if (inst.alive && !inst.busy) destroy_instance(idx);
    });
  }

  void attach_faults() {
    faulted_ = true;
    const std::size_t nf = registry_.size();
    loss_until_.assign(nf, 0.0);
    delay_until_.assign(nf, 0.0);
    coldfail_until_.assign(nf, 0.0);
    loss_event_.resize(nf);
    coldfail_event_.resize(nf);
    injector_.emplace(*config_.faults, obs_);
    // Each handler widens the per-function window to the event's end;
    // window checks on the dispatch path are then O(1).
    injector_->on_kind(
        fault::FaultKind::kMessageLoss, [this](const fault::FaultEvent& e) {
          const std::size_t f = e.target % registry_.size();
          const double until = e.time + e.duration;
          if (until > loss_until_[f]) {
            loss_until_[f] = until;
            loss_event_[f] = e;
          }
        });
    injector_->on_kind(
        fault::FaultKind::kMessageDelay, [this](const fault::FaultEvent& e) {
          const std::size_t f = e.target % registry_.size();
          delay_until_[f] = std::max(delay_until_[f], e.time + e.duration);
        });
    injector_->on_kind(fault::FaultKind::kColdStartFailure,
                       [this](const fault::FaultEvent& e) {
                         const std::size_t f = e.target % registry_.size();
                         const double until = e.time + e.duration;
                         if (until > coldfail_until_[f]) {
                           coldfail_until_[f] = until;
                           coldfail_event_[f] = e;
                         }
                       });
    // Attached before arrivals are scheduled, so at equal timestamps the
    // window-opening injection fires before the dispatch it affects.
    sim_.set_fault_hook(&*injector_);
  }

  void dispatch(std::size_t i) {
    const std::size_t f = reqs_[i].inv.function;
    if (faulted_ && sim_.now() < delay_until_[f]) {
      // Deferred, not failed: the request sits in the network until the
      // delay window closes; no attempt is consumed.
      sim_.schedule_at(delay_until_[f], [this, i] { dispatch(i); });
      return;
    }
    ++reqs_[i].attempts;
    // One request per attempt, *including* ones lost to faults — the
    // denominator an error-ratio SLO needs (failures over attempts).
    if (obs_ != nullptr) requests_->add(1);
    if (faulted_ && sim_.now() < loss_until_[f]) {
      // Dropped in flight. The client notices at its timeout (or, with no
      // timeout configured, immediately).
      reqs_[i].last_fault = loss_event_[f];
      if (config_.retry.timeout > 0.0) {
        sim_.schedule_after(config_.retry.timeout,
                            [this, i] { attempt_failed(i); });
      } else {
        attempt_failed(i);
      }
      return;
    }
    const std::size_t idle = find_idle(f);
    if (idle != instances_.size()) {
      start_execution(i, idle, /*cold=*/false);
      return;
    }
    if (faulted_ && sim_.now() < coldfail_until_[f]) {
      // No warm instance and the platform cannot provision new containers
      // for this function during the window.
      reqs_[i].last_fault = coldfail_event_[f];
      attempt_failed(i);
      return;
    }
    if (live_count_ < config_.max_instances) {
      const std::size_t idx = make_instance(f, /*busy=*/true);
      if (idx != kNoInstance) {
        start_execution(i, idx, /*cold=*/true);
        return;
      }
      // Backing substrate out of capacity: the attempt fails like a
      // cold-start failure (retry policy applies).
      attempt_failed(i);
      return;
    }
    if (obs_ != nullptr) {
      queued_->add(1);
      obs_->tracer.instant("faas.queue", "serverless", sim_.now());
    }
    pending_.push_back(i);
  }

  void attempt_failed(std::size_t i) {
    if (reqs_[i].attempts < config_.retry.max_attempts) {
      ++result_.retries;
      sim_.schedule_after(config_.retry.backoff_delay(reqs_[i].attempts),
                          [this, i] { dispatch(i); });
      return;
    }
    // Out of attempts: the invocation fails for good.
    const Invocation& inv = reqs_[i].inv;
    InvocationStats stats;
    stats.function = inv.function;
    stats.arrival = inv.arrival;
    stats.start = sim_.now();
    stats.finish = sim_.now();
    stats.attempts = reqs_[i].attempts;
    stats.failed = true;
    record_outcome(stats);
    ++result_.failed_invocations;
    if (obs_ != nullptr) {
      failed_->add(1);
      obs_->tracer.instant("faas.failed", "serverless", sim_.now());
    }
    if (flight_ != nullptr) {
      const std::size_t ent = flight_entity_[inv.function];
      flight_->record(ent, sim_.now(), "fail",
                      static_cast<double>(reqs_[i].attempts),
                      flight_->last_seq(ent));
    }
    retire_slot(i);
  }

  void start_execution(std::size_t i, std::size_t idx, bool cold) {
    const Invocation inv = reqs_[i].inv;  // by value: the slot may retire
    auto& inst = instances_[idx];
    if (!inst.busy) {
      // Leaving the warm pool: bill the idle stretch, cancel expiry.
      inst.expiry.cancel();
      result_.billed_instance_seconds += sim_.now() - inst.idle_since;
      inst.busy = true;
    }
    const auto& spec = registry_[inv.function];
    // With a backing substrate a cold start also pays the machine's
    // provisioning delay, once (x + 0.0 keeps the abstract pool bitwise
    // identical).
    const double cold_latency =
        cold ? spec.cold_start + inst.provision_extra : 0.0;
    if (cold) inst.provision_extra = 0.0;
    const double total = cold_latency + spec.exec_time;
    if (config_.retry.timeout > 0.0 && total > config_.retry.timeout) {
      // The attempt times out before the function would finish: the
      // instance is occupied (and billed) until the timeout, the work is
      // abandoned (no useful busy seconds).
      result_.billed_instance_seconds += config_.retry.timeout;
      sim_.schedule_after(config_.retry.timeout, [this, i, idx] {
        release(idx);
        attempt_failed(i);
      });
      return;
    }
    const double start = sim_.now() + cold_latency;
    const double finish = start + spec.exec_time;
    InvocationStats stats;
    stats.function = inv.function;
    stats.arrival = inv.arrival;
    stats.start = start;
    stats.finish = finish;
    stats.cold = cold;
    stats.attempts = reqs_[i].attempts == 0 ? 1 : reqs_[i].attempts;
    if (obs_ != nullptr) {
      started_->add(1);
      latency_hist_->observe(stats.latency());
      latency_dig_->add(stats.latency());
      if (cold) {
        cold_starts_->add(1);
        obs_->tracer.instant("faas.cold_start", "serverless", sim_.now());
      }
    }
    if (flight_ != nullptr) {
      const std::size_t ent = flight_entity_[inv.function];
      flight_->record(ent, sim_.now(), cold ? "cold_start" : "invoke",
                      stats.latency(), flight_->last_seq(ent));
    }
    record_outcome(stats);
    if (faulted_ && reqs_[i].attempts > 1 && reqs_[i].last_fault.time >= 0.0)
      injector_->recovered(reqs_[i].last_fault, sim_.now());
    retire_slot(i);
    const double busy = finish - sim_.now();
    result_.busy_instance_seconds += spec.exec_time;
    result_.billed_instance_seconds += busy;
    sim_.schedule_after(busy, [this, idx] { release(idx); });
  }

  // Terminal accounting shared by the success and final-failure paths.
  // With recording on, the full InvocationStats row is kept (the exact
  // percentile path in finalize()); with recording off only O(1) running
  // aggregates survive, which is what bounds streaming-replay memory.
  void record_outcome(const InvocationStats& stats) {
    if (config_.record_invocations) {
      result_.invocations.push_back(stats);
      return;
    }
    ++outcomes_;
    end_time_ = std::max(end_time_, stats.finish);
    if (stats.cold) ++cold_outcomes_;
    if (!stats.failed) result_.latency_digest.add(stats.latency());
  }

  void release(std::size_t idx) {
    auto& inst = instances_[idx];
    inst.busy = false;
    inst.idle_since = sim_.now();
    if (inst.doomed) {
      // The machine crashed mid-execution: the committed work finished,
      // but the instance cannot rejoin the warm pool.
      destroy_instance(idx);
      return;
    }

    // Serve a queued request for the same function warm, if any.
    const auto same =
        std::find_if(pending_.begin(), pending_.end(), [&](std::size_t p) {
          return reqs_[p].inv.function == inst.function;
        });
    if (same != pending_.end()) {
      const std::size_t i = *same;
      pending_.erase(same);
      start_execution(i, idx, /*cold=*/false);
      return;
    }
    // Otherwise recycle this instance for the head-of-queue request
    // (destroy + cold start) so a full platform never deadlocks. Requests
    // whose function is inside a cold-start-failure window lose their
    // attempt instead of recycling the instance.
    while (!pending_.empty()) {
      const std::size_t i = pending_.front();
      pending_.pop_front();
      const std::size_t f = reqs_[i].inv.function;
      if (faulted_ && sim_.now() < coldfail_until_[f]) {
        reqs_[i].last_fault = coldfail_event_[f];
        attempt_failed(i);
        continue;
      }
      destroy_instance(idx);
      const std::size_t fresh = make_instance(f, /*busy=*/true);
      if (fresh == kNoInstance) {
        // The substrate refused the replacement (e.g. its machine just
        // crashed): the request loses its attempt; later releases will
        // serve the remaining queue.
        attempt_failed(i);
        return;
      }
      start_execution(i, fresh, /*cold=*/true);
      return;
    }
    arm_expiry(idx);
  }

  void finalize() {
    double end = 0.0;
    std::size_t total = 0;
    std::size_t cold = 0;
    if (config_.record_invocations) {
      std::vector<double> latencies;
      for (const auto& s : result_.invocations) {
        end = std::max(end, s.finish);
        // Failed invocations have no latency; percentiles cover successes.
        if (!s.failed) latencies.push_back(s.latency());
        if (s.cold) ++cold;
      }
      total = result_.invocations.size();
      result_.p50_latency = stats::quantile(latencies, 0.5);
      result_.p95_latency = stats::quantile(latencies, 0.95);
      result_.p99_latency = stats::quantile(latencies, 0.99);
      result_.p999_latency = stats::quantile(latencies, 0.999);
      for (const double l : latencies) result_.latency_digest.add(l);
    } else {
      end = end_time_;
      total = outcomes_;
      cold = cold_outcomes_;
      result_.p50_latency = result_.latency_digest.p50();
      result_.p95_latency = result_.latency_digest.p95();
      result_.p99_latency = result_.latency_digest.p99();
      result_.p999_latency = result_.latency_digest.p999();
    }
    // Bill the residual idle time of still-warm instances up to the last
    // event (capped by keep-alive, which would have fired afterwards).
    for (auto& inst : instances_) {
      if (inst.alive && !inst.busy) {
        result_.billed_instance_seconds +=
            std::clamp(end - inst.idle_since, 0.0, config_.keep_alive);
        inst.alive = false;
      }
    }
    if (total != 0) {
      result_.cold_fraction =
          static_cast<double>(cold) / static_cast<double>(total);
      result_.success_rate =
          1.0 - static_cast<double>(result_.failed_invocations) /
                    static_cast<double>(total);
    }
    if (injector_.has_value()) {
      result_.faults_injected = injector_->injected();
      result_.faults_recovered = injector_->recovered_count();
    }
  }

  const std::vector<FunctionSpec>& registry_;
  const std::vector<Invocation>* invocations_;  // vector mode (else null)
  InvocationSource* source_;                    // streaming mode (else null)
  PlatformConfig config_;
  // Kernel: owned in standalone runs, borrowed from the composition layer
  // in composed runs. owned_ must precede sim_ (init order).
  std::unique_ptr<sim::Simulation> owned_;
  sim::Simulation& sim_;
  bool external_ = false;
  InstanceBacking* backing_ = nullptr;
  std::vector<Instance> instances_;
  std::vector<Request> reqs_;        // request slots, indexed by `i`
  std::vector<std::size_t> free_slots_;  // streaming-mode slot freelist
  std::deque<std::size_t> pending_;  // indices into reqs_
  std::uint32_t live_count_ = 0;
  double last_arrival_ = 0.0;        // streaming nondecreasing check
  PlatformResult result_;
  // Aggregates kept when record_invocations is off (O(1) memory).
  std::size_t outcomes_ = 0;
  std::size_t cold_outcomes_ = 0;
  double end_time_ = 0.0;

  // Fault plane (engaged only for a non-null, non-empty plan). Windows are
  // per function: requests dispatched before *_until_[f] hit that fault.
  bool faulted_ = false;
  std::optional<fault::Injector> injector_;
  std::vector<double> loss_until_;
  std::vector<double> delay_until_;
  std::vector<double> coldfail_until_;
  std::vector<fault::FaultEvent> loss_event_;      // widest window's event
  std::vector<fault::FaultEvent> coldfail_event_;

  // Instrumentation plane; metric handles are resolved once in the ctor so
  // the hot path never does a name lookup.
  obs::Observability* obs_ = nullptr;
  obs::Counter* started_ = nullptr;
  obs::Counter* cold_starts_ = nullptr;
  obs::Counter* queued_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Digest* latency_dig_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<std::size_t> flight_entity_;  // per-function ring ids
};

}  // namespace detail

PlatformResult run_platform(const std::vector<FunctionSpec>& registry,
                            const std::vector<Invocation>& invocations,
                            const PlatformConfig& config) {
  detail::FaasEngine engine(registry, &invocations, nullptr, config);
  return engine.run();
}

PlatformResult run_platform(const std::vector<FunctionSpec>& registry,
                            InvocationSource& source,
                            const PlatformConfig& config) {
  detail::FaasEngine engine(registry, nullptr, &source, config);
  return engine.run();
}

PlatformDriver::PlatformDriver(const std::vector<FunctionSpec>& registry,
                               const std::vector<Invocation>& invocations,
                               const PlatformConfig& config,
                               sim::Simulation& sim, InstanceBacking* backing)
    : engine_(std::make_unique<detail::FaasEngine>(registry, &invocations,
                                                   nullptr, config, &sim,
                                                   backing)) {}

PlatformDriver::~PlatformDriver() = default;

void PlatformDriver::prepare() { engine_->prepare(); }
PlatformResult PlatformDriver::collect() { return engine_->collect(); }
void PlatformDriver::fail_machine(std::uint32_t machine) {
  engine_->fail_machine(machine);
}

PlatformResult run_microservice_baseline(
    const std::vector<FunctionSpec>& registry,
    const std::vector<Invocation>& invocations, std::uint32_t instances,
    double horizon) {
  PlatformResult result;
  // Per-function FIFO over `instances` always-on servers: track each
  // server's next-free time.
  std::vector<std::vector<double>> free_at(
      registry.size(), std::vector<double>(std::max<std::uint32_t>(instances,
                                                                   1),
                                           0.0));
  std::vector<double> latencies;
  for (const auto& inv : invocations) {
    if (inv.function >= registry.size())
      throw std::invalid_argument("baseline: unknown function index");
    auto& servers = free_at[inv.function];
    auto it = std::min_element(servers.begin(), servers.end());
    const double start = std::max(inv.arrival, *it);
    const double finish = start + registry[inv.function].exec_time;
    *it = finish;
    InvocationStats s;
    s.function = inv.function;
    s.arrival = inv.arrival;
    s.start = start;
    s.finish = finish;
    s.cold = false;
    result.invocations.push_back(s);
    latencies.push_back(s.latency());
    result.busy_instance_seconds += registry[inv.function].exec_time;
  }
  result.p50_latency = stats::quantile(latencies, 0.5);
  result.p95_latency = stats::quantile(latencies, 0.95);
  result.p99_latency = stats::quantile(latencies, 0.99);
  result.p999_latency = stats::quantile(latencies, 0.999);
  for (const double l : latencies) result.latency_digest.add(l);
  result.billed_instance_seconds =
      static_cast<double>(instances) * static_cast<double>(registry.size()) *
      horizon;
  result.peak_instances =
      instances * static_cast<std::uint32_t>(registry.size());
  return result;
}

std::vector<Invocation> bursty_invocations(std::size_t functions,
                                           double base_rate, double horizon,
                                           double burst_every,
                                           std::size_t burst_size,
                                           stats::Rng& rng) {
  std::vector<Invocation> out;
  double now = 0.0;
  while (true) {
    now += rng.exponential(base_rate);
    if (now >= horizon) break;
    out.push_back(Invocation{static_cast<std::size_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(functions) - 1)),
                             now});
  }
  for (double burst = burst_every; burst < horizon; burst += burst_every) {
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(functions) - 1));
    double t = burst;
    for (std::size_t i = 0; i < burst_size; ++i) {
      t += rng.exponential(50.0);  // ~20 ms gaps inside a burst
      if (t >= horizon) break;
      out.push_back(Invocation{f, t});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Invocation& a, const Invocation& b) {
              return a.arrival < b.arrival;
            });
  return out;
}

}  // namespace atlarge::serverless
