#include "atlarge/serverless/platform.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::serverless {
namespace {

struct Instance {
  std::size_t function = 0;
  bool busy = false;
  bool alive = true;
  double idle_since = 0.0;
  sim::EventHandle expiry;
};

class FaasEngine {
 public:
  FaasEngine(const std::vector<FunctionSpec>& registry,
             const std::vector<Invocation>& invocations,
             const PlatformConfig& config)
      : registry_(registry),
        invocations_(invocations),
        config_(config),
        obs_(config.obs) {
    for (const auto& inv : invocations_) {
      if (inv.function >= registry_.size())
        throw std::invalid_argument("run_platform: unknown function index");
    }
    if (obs_ != nullptr) {
      started_ = &obs_->metrics.counter("faas.invocations");
      cold_starts_ = &obs_->metrics.counter("faas.cold_starts");
      queued_ = &obs_->metrics.counter("faas.queued");
      live_gauge_ = &obs_->metrics.gauge("faas.live_instances");
      latency_hist_ = &obs_->metrics.histogram("faas.latency");
    }
  }

  PlatformResult run() {
    if (obs_ != nullptr) {
      sim_.set_observer(obs_->kernel_observer());
      obs_->tracer.begin("faas.run", "serverless", sim_.now());
    }
    // Pre-warm pools.
    for (std::size_t f = 0; f < registry_.size(); ++f) {
      for (std::uint32_t i = 0; i < config_.prewarmed; ++i) {
        if (live_count_ >= config_.max_instances) break;
        make_instance(f, /*busy=*/false);
      }
    }
    for (const auto& inv : invocations_)
      sim_.schedule_at(inv.arrival, [this, &inv] { dispatch(inv); });
    sim_.run();
    finalize();
    if (obs_ != nullptr)
      obs_->tracer.end("faas.run", "serverless", sim_.now());
    return std::move(result_);
  }

 private:
  std::size_t find_idle(std::size_t function) {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      if (instances_[i].alive && !instances_[i].busy &&
          instances_[i].function == function)
        return i;
    }
    return instances_.size();
  }

  std::size_t make_instance(std::size_t function, bool busy) {
    Instance inst;
    inst.function = function;
    inst.busy = busy;
    inst.idle_since = sim_.now();
    instances_.push_back(std::move(inst));
    ++live_count_;
    result_.peak_instances = std::max(result_.peak_instances, live_count_);
    if (obs_ != nullptr)
      live_gauge_->set(static_cast<double>(live_count_));
    const std::size_t idx = instances_.size() - 1;
    if (!busy) arm_expiry(idx);
    return idx;
  }

  void destroy_instance(std::size_t idx) {
    auto& inst = instances_[idx];
    if (!inst.alive) return;
    inst.alive = false;
    inst.expiry.cancel();
    --live_count_;
    if (obs_ != nullptr)
      live_gauge_->set(static_cast<double>(live_count_));
    if (!inst.busy)
      result_.billed_instance_seconds += sim_.now() - inst.idle_since;
  }

  void arm_expiry(std::size_t idx) {
    instances_[idx].expiry = sim_.schedule_after(config_.keep_alive, [this,
                                                                      idx] {
      auto& inst = instances_[idx];
      if (inst.alive && !inst.busy) destroy_instance(idx);
    });
  }

  void dispatch(const Invocation& inv) {
    const std::size_t idle = find_idle(inv.function);
    if (idle != instances_.size()) {
      start_execution(inv, idle, /*cold=*/false);
      return;
    }
    if (live_count_ < config_.max_instances) {
      const std::size_t idx = make_instance(inv.function, /*busy=*/true);
      start_execution(inv, idx, /*cold=*/true);
      return;
    }
    if (obs_ != nullptr) {
      queued_->add(1);
      obs_->tracer.instant("faas.queue", "serverless", sim_.now());
    }
    pending_.push_back(inv);
  }

  void start_execution(const Invocation& inv, std::size_t idx, bool cold) {
    auto& inst = instances_[idx];
    if (!inst.busy) {
      // Leaving the warm pool: bill the idle stretch, cancel expiry.
      inst.expiry.cancel();
      result_.billed_instance_seconds += sim_.now() - inst.idle_since;
      inst.busy = true;
    }
    const auto& spec = registry_[inv.function];
    const double start = sim_.now() + (cold ? spec.cold_start : 0.0);
    const double finish = start + spec.exec_time;
    InvocationStats stats;
    stats.function = inv.function;
    stats.arrival = inv.arrival;
    stats.start = start;
    stats.finish = finish;
    stats.cold = cold;
    if (obs_ != nullptr) {
      started_->add(1);
      latency_hist_->observe(stats.latency());
      if (cold) {
        cold_starts_->add(1);
        obs_->tracer.instant("faas.cold_start", "serverless", sim_.now());
      }
    }
    result_.invocations.push_back(stats);
    const double busy = finish - sim_.now();
    result_.busy_instance_seconds += spec.exec_time;
    result_.billed_instance_seconds += busy;
    sim_.schedule_after(busy, [this, idx] { release(idx); });
  }

  void release(std::size_t idx) {
    auto& inst = instances_[idx];
    inst.busy = false;
    inst.idle_since = sim_.now();

    // Serve a queued request for the same function warm, if any.
    const auto same = std::find_if(
        pending_.begin(), pending_.end(),
        [&](const Invocation& p) { return p.function == inst.function; });
    if (same != pending_.end()) {
      const Invocation inv = *same;
      pending_.erase(same);
      start_execution(inv, idx, /*cold=*/false);
      return;
    }
    // Otherwise recycle this instance for the head-of-queue request
    // (destroy + cold start) so a full platform never deadlocks.
    if (!pending_.empty()) {
      const Invocation inv = pending_.front();
      pending_.pop_front();
      destroy_instance(idx);
      const std::size_t fresh = make_instance(inv.function, /*busy=*/true);
      start_execution(inv, fresh, /*cold=*/true);
      return;
    }
    arm_expiry(idx);
  }

  void finalize() {
    double end = 0.0;
    std::vector<double> latencies;
    std::size_t cold = 0;
    for (const auto& s : result_.invocations) {
      end = std::max(end, s.finish);
      latencies.push_back(s.latency());
      if (s.cold) ++cold;
    }
    // Bill the residual idle time of still-warm instances up to the last
    // event (capped by keep-alive, which would have fired afterwards).
    for (auto& inst : instances_) {
      if (inst.alive && !inst.busy) {
        result_.billed_instance_seconds +=
            std::clamp(end - inst.idle_since, 0.0, config_.keep_alive);
        inst.alive = false;
      }
    }
    result_.p50_latency = stats::quantile(latencies, 0.5);
    result_.p95_latency = stats::quantile(latencies, 0.95);
    result_.p99_latency = stats::quantile(latencies, 0.99);
    if (!result_.invocations.empty()) {
      result_.cold_fraction = static_cast<double>(cold) /
                              static_cast<double>(result_.invocations.size());
    }
  }

  const std::vector<FunctionSpec>& registry_;
  const std::vector<Invocation>& invocations_;
  PlatformConfig config_;
  sim::Simulation sim_;
  std::vector<Instance> instances_;
  std::deque<Invocation> pending_;
  std::uint32_t live_count_ = 0;
  PlatformResult result_;

  // Instrumentation plane; metric handles are resolved once in the ctor so
  // the hot path never does a name lookup.
  obs::Observability* obs_ = nullptr;
  obs::Counter* started_ = nullptr;
  obs::Counter* cold_starts_ = nullptr;
  obs::Counter* queued_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace

PlatformResult run_platform(const std::vector<FunctionSpec>& registry,
                            const std::vector<Invocation>& invocations,
                            const PlatformConfig& config) {
  FaasEngine engine(registry, invocations, config);
  return engine.run();
}

PlatformResult run_microservice_baseline(
    const std::vector<FunctionSpec>& registry,
    const std::vector<Invocation>& invocations, std::uint32_t instances,
    double horizon) {
  PlatformResult result;
  // Per-function FIFO over `instances` always-on servers: track each
  // server's next-free time.
  std::vector<std::vector<double>> free_at(
      registry.size(), std::vector<double>(std::max<std::uint32_t>(instances,
                                                                   1),
                                           0.0));
  std::vector<double> latencies;
  for (const auto& inv : invocations) {
    if (inv.function >= registry.size())
      throw std::invalid_argument("baseline: unknown function index");
    auto& servers = free_at[inv.function];
    auto it = std::min_element(servers.begin(), servers.end());
    const double start = std::max(inv.arrival, *it);
    const double finish = start + registry[inv.function].exec_time;
    *it = finish;
    InvocationStats s;
    s.function = inv.function;
    s.arrival = inv.arrival;
    s.start = start;
    s.finish = finish;
    s.cold = false;
    result.invocations.push_back(s);
    latencies.push_back(s.latency());
    result.busy_instance_seconds += registry[inv.function].exec_time;
  }
  result.p50_latency = stats::quantile(latencies, 0.5);
  result.p95_latency = stats::quantile(latencies, 0.95);
  result.p99_latency = stats::quantile(latencies, 0.99);
  result.billed_instance_seconds =
      static_cast<double>(instances) * static_cast<double>(registry.size()) *
      horizon;
  result.peak_instances =
      instances * static_cast<std::uint32_t>(registry.size());
  return result;
}

std::vector<Invocation> bursty_invocations(std::size_t functions,
                                           double base_rate, double horizon,
                                           double burst_every,
                                           std::size_t burst_size,
                                           stats::Rng& rng) {
  std::vector<Invocation> out;
  double now = 0.0;
  while (true) {
    now += rng.exponential(base_rate);
    if (now >= horizon) break;
    out.push_back(Invocation{static_cast<std::size_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(functions) - 1)),
                             now});
  }
  for (double burst = burst_every; burst < horizon; burst += burst_every) {
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(functions) - 1));
    double t = burst;
    for (std::size_t i = 0; i < burst_size; ++i) {
      t += rng.exponential(50.0);  // ~20 ms gaps inside a burst
      if (t >= horizon) break;
      out.push_back(Invocation{f, t});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Invocation& a, const Invocation& b) {
              return a.arrival < b.arrival;
            });
  return out;
}

}  // namespace atlarge::serverless
