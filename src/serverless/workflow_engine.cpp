#include "atlarge/serverless/workflow_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::serverless {
namespace {

/// A container instance of one function: busy until free_at, evicted at
/// expire_at unless reused.
struct WarmSlot {
  double free_at = 0.0;
  double expire_at = 0.0;
};

class WorkflowRunner {
 public:
  WorkflowRunner(const std::vector<FunctionSpec>& registry,
                 const std::vector<workflow::Job>& jobs,
                 const PlatformConfig& platform,
                 const OrchestratorConfig& orchestrator)
      : registry_(registry),
        jobs_(jobs),
        platform_(platform),
        orch_(orchestrator),
        pools_(registry.size()) {
    for (const auto& job : jobs_) {
      job.validate();
      for (const auto& t : job.tasks) {
        if (t.cores == 0 || t.cores > registry_.size())
          throw std::invalid_argument(
              "run_workflows: task.cores must be a 1-based registry index");
      }
    }
  }

  WorkflowEngineResult run() {
    states_.resize(jobs_.size());
    // Pre-size the kernel: one submit event per job plus at most two
    // in-flight events per task (execute + complete timers).
    std::size_t total_tasks = 0;
    for (const auto& job : jobs_) total_tasks += job.tasks.size();
    sim_.reserve(jobs_.size() + 2 * total_tasks + 8);
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
      states_[ji].remaining_deps.resize(jobs_[ji].tasks.size());
      states_[ji].done.assign(jobs_[ji].tasks.size(), false);
      states_[ji].remaining = jobs_[ji].tasks.size();
      for (std::size_t ti = 0; ti < jobs_[ji].tasks.size(); ++ti)
        states_[ji].remaining_deps[ti] =
            static_cast<std::uint32_t>(jobs_[ji].tasks[ti].deps.size());
      sim_.schedule_at(jobs_[ji].submit_time, [this, ji] {
        for (std::size_t ti = 0; ti < jobs_[ji].tasks.size(); ++ti) {
          if (states_[ji].remaining_deps[ti] == 0) dispatch(ji, ti);
        }
      });
    }
    sim_.run();
    finalize();
    return std::move(result_);
  }

 private:
  struct JobRun {
    std::vector<std::uint32_t> remaining_deps;
    std::vector<bool> done;
    std::size_t remaining = 0;
    std::size_t cold_steps = 0;
    double finish = 0.0;
  };

  /// Time at which the orchestrator actually issues a dispatch decided at
  /// `ready`: external orchestrators align to their polling grid.
  double orchestrate(double ready) {
    double issue = ready + orch_.step_overhead;
    if (orch_.kind == OrchestratorKind::kExternalPolling &&
        orch_.poll_interval > 0.0) {
      const double aligned =
          std::ceil(ready / orch_.poll_interval) * orch_.poll_interval;
      issue = std::max(issue, aligned + orch_.step_overhead);
    }
    result_.orchestration_overhead += issue - ready;
    return issue;
  }

  void dispatch(std::size_t ji, std::size_t ti) {
    const double issue = orchestrate(sim_.now());
    sim_.schedule_at(issue, [this, ji, ti] { execute(ji, ti); });
  }

  void execute(std::size_t ji, std::size_t ti) {
    const auto f = static_cast<std::size_t>(jobs_[ji].tasks[ti].cores) - 1;
    const auto& spec = registry_[f];
    auto& pool = pools_[f];
    const double now = sim_.now();

    // Evict expired containers.
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&](const WarmSlot& s) {
                                return s.expire_at <= now &&
                                       s.free_at <= now;
                              }),
               pool.end());

    // Reuse a warm, idle container if one exists.
    auto slot = std::find_if(pool.begin(), pool.end(), [&](const WarmSlot& s) {
      return s.free_at <= now && s.expire_at > now;
    });
    bool cold = false;
    double start = now;
    if (slot == pool.end()) {
      cold = true;
      start = now + spec.cold_start;
      pool.push_back(WarmSlot{});
      slot = pool.end() - 1;
    }
    const double finish = start + spec.exec_time;
    slot->free_at = finish;
    slot->expire_at = finish + platform_.keep_alive;
    if (cold) ++states_[ji].cold_steps;

    sim_.schedule_at(finish, [this, ji, ti] { complete(ji, ti); });
  }

  void complete(std::size_t ji, std::size_t ti) {
    auto& js = states_[ji];
    js.done[ti] = true;
    const auto& job = jobs_[ji];
    for (std::size_t other = 0; other < job.tasks.size(); ++other) {
      if (js.done[other]) continue;
      const auto& deps = job.tasks[other].deps;
      if (std::find(deps.begin(), deps.end(),
                    static_cast<workflow::TaskId>(ti)) == deps.end())
        continue;
      if (js.remaining_deps[other] > 0 && --js.remaining_deps[other] == 0)
        dispatch(ji, other);
    }
    if (--js.remaining == 0) js.finish = sim_.now();
  }

  void finalize() {
    std::vector<double> makespans;
    std::size_t cold = 0;
    std::size_t steps = 0;
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
      WorkflowRunStats stats;
      stats.submit = jobs_[ji].submit_time;
      stats.finish = states_[ji].finish;
      stats.steps = jobs_[ji].tasks.size();
      stats.cold_steps = states_[ji].cold_steps;
      makespans.push_back(stats.makespan());
      cold += stats.cold_steps;
      steps += stats.steps;
      result_.runs.push_back(stats);
    }
    result_.mean_makespan = stats::mean(makespans);
    result_.p95_makespan = stats::quantile(makespans, 0.95);
    result_.cold_fraction =
        steps == 0 ? 0.0
                   : static_cast<double>(cold) / static_cast<double>(steps);
  }

  const std::vector<FunctionSpec>& registry_;
  const std::vector<workflow::Job>& jobs_;
  PlatformConfig platform_;
  OrchestratorConfig orch_;
  sim::Simulation sim_;
  std::vector<std::vector<WarmSlot>> pools_;
  std::vector<JobRun> states_;
  WorkflowEngineResult result_;
};

}  // namespace

WorkflowEngineResult run_workflows(const std::vector<FunctionSpec>& registry,
                                   const std::vector<workflow::Job>& jobs,
                                   const PlatformConfig& platform,
                                   const OrchestratorConfig& orchestrator) {
  WorkflowRunner runner(registry, jobs, platform, orchestrator);
  return runner.run();
}

std::vector<FunctionSpec> uniform_registry(std::size_t n, double exec_time,
                                           double cold_start) {
  std::vector<FunctionSpec> registry;
  registry.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    registry.push_back(FunctionSpec{"fn" + std::to_string(i), exec_time,
                                    cold_start, 128.0});
  }
  return registry;
}

workflow::Job make_chain_workflow(std::size_t steps, std::size_t functions,
                                  double submit_time) {
  workflow::Job job;
  job.submit_time = submit_time;
  for (std::size_t i = 0; i < steps; ++i) {
    workflow::Task t;
    t.runtime = 1.0;  // ignored; exec_time comes from the registry
    t.cores = static_cast<std::uint32_t>(
        1 + i % std::max<std::size_t>(functions, 1));
    if (i > 0) t.deps.push_back(static_cast<workflow::TaskId>(i - 1));
    job.tasks.push_back(std::move(t));
  }
  return job;
}

workflow::Job make_fanout_workflow(std::size_t width, std::size_t functions,
                                   double submit_time) {
  workflow::Job job;
  job.submit_time = submit_time;
  const auto fn = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        1 + i % std::max<std::size_t>(functions, 1));
  };
  workflow::Task source;
  source.runtime = 1.0;
  source.cores = fn(0);
  job.tasks.push_back(std::move(source));
  for (std::size_t i = 0; i < width; ++i) {
    workflow::Task t;
    t.runtime = 1.0;
    t.cores = fn(i + 1);
    t.deps.push_back(0);
    job.tasks.push_back(std::move(t));
  }
  workflow::Task sink;
  sink.runtime = 1.0;
  sink.cores = fn(width + 1);
  for (std::size_t i = 0; i < width; ++i)
    sink.deps.push_back(static_cast<workflow::TaskId>(i + 1));
  job.tasks.push_back(std::move(sink));
  return job;
}

}  // namespace atlarge::serverless
