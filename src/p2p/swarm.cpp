#include "atlarge/p2p/swarm.hpp"

#include <algorithm>
#include <cmath>

#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::p2p {
namespace {

constexpr double kMbPerMbpsSecond = 1.0 / 8.0;  // Mbps * s -> MB

enum class PeerPhase : std::uint8_t { kLeeching, kSeeding, kGone };

struct PeerState {
  PeerPhase phase = PeerPhase::kLeeching;
  double downloaded_mb = 0.0;
  double seed_until = 0.0;
};

}  // namespace

SwarmResult simulate_swarm(const SwarmConfig& config,
                           const std::vector<double>& arrivals,
                           double horizon) {
  SwarmResult result;
  result.peers.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    result.peers[i].arrival = arrivals[i];
  // One sample per epoch boundary: pre-size so the epoch loop appends
  // without reallocating mid-run.
  result.series.reserve(
      static_cast<std::size_t>(horizon / config.epoch) + 2);

  std::vector<PeerState> state(arrivals.size());
  stats::Rng rng(config.seed);
  std::size_t next_arrival = 0;

  // Instrumentation plane; handles resolved once, outside the epoch loop.
  obs::Observability* const plane = config.obs;
  obs::Counter* finished_ctr = nullptr;
  obs::Counter* aborted_ctr = nullptr;
  obs::Gauge* seeds_gauge = nullptr;
  obs::Gauge* leechers_gauge = nullptr;
  obs::Histogram* dl_hist = nullptr;
  obs::Digest* dl_dig = nullptr;
  double last_now = 0.0;
  if (plane != nullptr) {
    finished_ctr = &plane->metrics.counter("p2p.finished");
    aborted_ctr = &plane->metrics.counter("p2p.aborted");
    seeds_gauge = &plane->metrics.gauge("p2p.seeds");
    leechers_gauge = &plane->metrics.gauge("p2p.leechers");
    dl_hist = &plane->metrics.histogram("p2p.download_time");
    dl_dig = &plane->metrics.digest("p2p.download_time");
    plane->tracer.begin("p2p.swarm", "p2p", 0.0);
  }

  // Fault plan cursor: the fluid model has no DES kernel, so churn events
  // are applied directly at the first epoch boundary at/after their time
  // (the documented exception to the fault-hook route).
  const bool faulted =
      config.faults != nullptr && !config.faults->empty();
  std::size_t next_fault = 0;

  for (double now = 0.0; now < horizon; now += config.epoch) {
    last_now = now;
    // Admit arrivals.
    while (next_arrival < arrivals.size() && arrivals[next_arrival] <= now)
      ++next_arrival;

    // Apply due churn spikes: the newest floor(magnitude x leechers)
    // leechers abandon the swarm at once (a correlated burst).
    if (faulted) {
      const auto& events = config.faults->events();
      while (next_fault < events.size() && events[next_fault].time <= now) {
        const fault::FaultEvent& e = events[next_fault];
        ++next_fault;
        if (e.kind != fault::FaultKind::kChurnSpike) continue;
        std::uint32_t leeching = 0;
        for (std::size_t i = 0; i < next_arrival; ++i)
          if (state[i].phase == PeerPhase::kLeeching) ++leeching;
        auto kick = static_cast<std::uint32_t>(
            std::floor(e.magnitude * static_cast<double>(leeching)));
        if (plane != nullptr) {
          plane->metrics.counter("fault.injected").add(1);
          plane->metrics.counter("fault.injected.churn_spike").add(1);
          plane->tracer.instant(fault::span_name(e.kind), "fault", now);
        }
        for (std::size_t i = next_arrival; i-- > 0 && kick > 0;) {
          if (state[i].phase != PeerPhase::kLeeching) continue;
          state[i].phase = PeerPhase::kGone;
          result.peers[i].departure = now;
          ++result.churned;
          --kick;
        }
      }
    }

    // Census.
    std::uint32_t leechers = 0;
    std::uint32_t peer_seeds = 0;
    for (std::size_t i = 0; i < next_arrival; ++i) {
      switch (state[i].phase) {
        case PeerPhase::kLeeching: ++leechers; break;
        case PeerPhase::kSeeding: ++peer_seeds; break;
        case PeerPhase::kGone: break;
      }
    }
    const std::uint32_t seeds =
        peer_seeds + static_cast<std::uint32_t>(config.initial_seeds);
    const std::uint32_t swarm = leechers + seeds;
    result.peak_swarm_size = std::max(result.peak_swarm_size, swarm);

    double per_leecher_mbps = 0.0;
    if (leechers > 0) {
      // Piece availability: young swarms (few seeds relative to leechers)
      // cannot use all leecher upload because rare pieces bottleneck
      // exchange. availability -> 1 as seeds or progress grow.
      double mean_progress = 0.0;
      for (std::size_t i = 0; i < next_arrival; ++i) {
        if (state[i].phase == PeerPhase::kLeeching)
          mean_progress += state[i].downloaded_mb / config.content_mb;
      }
      mean_progress /= leechers;
      const double availability = std::min(
          1.0, (static_cast<double>(seeds) + mean_progress * leechers) /
                   leechers);

      const double upload_total =
          static_cast<double>(config.initial_seeds) * config.seed_upload_mbps +
          static_cast<double>(peer_seeds) * config.peer_upload_mbps +
          static_cast<double>(leechers) * config.peer_upload_mbps *
              availability;
      const double usable = upload_total * config.efficiency;
      per_leecher_mbps =
          std::min(config.peer_download_mbps, usable / leechers);
    }

    result.series.push_back(
        SwarmSample{now, seeds, leechers, per_leecher_mbps});
    if (plane != nullptr) {
      seeds_gauge->set(static_cast<double>(seeds));
      leechers_gauge->set(static_cast<double>(leechers));
      // No DES kernel here: drive the continuous-telemetry plane by hand
      // so TimeSeries rows and SLO windows advance each epoch.
      plane->sample_now(now);
    }

    // Integrate one epoch.
    for (std::size_t i = 0; i < next_arrival; ++i) {
      auto& ps = state[i];
      auto& out = result.peers[i];
      switch (ps.phase) {
        case PeerPhase::kLeeching: {
          if (config.abort_rate > 0.0 &&
              rng.bernoulli(1.0 - std::exp(-config.abort_rate *
                                           config.epoch))) {
            ps.phase = PeerPhase::kGone;
            out.departure = now;
            ++result.aborted;
            if (aborted_ctr != nullptr) aborted_ctr->add(1);
            break;
          }
          ps.downloaded_mb +=
              per_leecher_mbps * config.epoch * kMbPerMbpsSecond;
          if (ps.downloaded_mb >= config.content_mb) {
            ps.phase = PeerPhase::kSeeding;
            out.finished = true;
            out.completion = now + config.epoch;
            ps.seed_until =
                out.completion + rng.exponential(1.0 / config.seed_time_mean);
            ++result.finished;
            if (plane != nullptr) {
              finished_ctr->add(1);
              dl_hist->observe(out.download_time());
              dl_dig->add(out.download_time());
            }
          }
          break;
        }
        case PeerPhase::kSeeding: {
          if (now >= ps.seed_until) {
            ps.phase = PeerPhase::kGone;
            out.departure = now;
          }
          break;
        }
        case PeerPhase::kGone:
          break;
      }
    }

    // Early drain: all known peers gone and no arrivals left.
    if (next_arrival == arrivals.size()) {
      const bool active = std::any_of(
          state.begin(), state.begin() + static_cast<long>(next_arrival),
          [](const PeerState& p) { return p.phase != PeerPhase::kGone; });
      if (!active) break;
    }
  }

  std::vector<double> times;
  times.reserve(result.peers.size());
  for (const auto& p : result.peers) {
    if (p.finished) times.push_back(p.download_time());
  }
  result.mean_download_time = stats::mean(times);
  result.median_download_time = stats::quantile(times, 0.5);
  for (const double t : times) result.download_digest.add(t);
  if (plane != nullptr)
    plane->tracer.end("p2p.swarm", "p2p", last_now + config.epoch);
  return result;
}

SwarmResult simulate_swarm(const SwarmConfig& config, ArrivalSource& source,
                           double horizon) {
  // Materializing adapter (see the header caveat): the fluid model's state
  // and outputs are O(peers) regardless, so nothing is gained by lazy
  // arrival consumption — only the upstream trace reader's residency
  // matters, and that stays chunk-bounded.
  std::vector<double> arrivals;
  double t = 0.0;
  while (source.next(t)) arrivals.push_back(t);
  return simulate_swarm(config, arrivals, horizon);
}

std::vector<double> poisson_arrivals(double rate, double horizon,
                                     stats::Rng& rng) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(rate * horizon) + 16);
  double now = 0.0;
  while (true) {
    now += rng.exponential(rate);
    if (now >= horizon) break;
    arrivals.push_back(now);
  }
  return arrivals;
}

std::vector<double> flashcrowd_arrivals(double base_rate, double horizon,
                                        std::size_t surge_peers,
                                        double surge_start,
                                        double surge_mean_gap,
                                        stats::Rng& rng) {
  std::vector<double> arrivals = poisson_arrivals(base_rate, horizon, rng);
  double now = surge_start;
  for (std::size_t i = 0; i < surge_peers; ++i) {
    now += rng.exponential(1.0 / surge_mean_gap);
    if (now >= horizon) break;
    arrivals.push_back(now);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

}  // namespace atlarge::p2p
