#include "atlarge/p2p/twofast.hpp"

#include <algorithm>

namespace atlarge::p2p {
namespace {

constexpr double kMbPerMbpsSecond = 1.0 / 8.0;

/// Integrates a rate transform over the fair-share series until
/// `content_mb` is accumulated; returns completion time or -1.
double integrate_download(const SwarmConfig& config,
                          const std::vector<SwarmSample>& series,
                          double join_time, double rate_multiplier) {
  double downloaded = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    const double next =
        i + 1 < series.size() ? series[i + 1].time : s.time + config.epoch;
    if (next <= join_time) continue;
    const double lo = std::max(s.time, join_time);
    const double dt = next - lo;
    if (dt <= 0.0) continue;
    const double rate = std::min(config.peer_download_mbps,
                                 s.per_leecher_mbps * rate_multiplier);
    const double gained = rate * dt * kMbPerMbpsSecond;
    if (downloaded + gained >= config.content_mb) {
      const double need = config.content_mb - downloaded;
      const double frac = rate > 0.0 ? need / (rate * kMbPerMbpsSecond) : dt;
      return lo + frac;
    }
    downloaded += gained;
  }
  return -1.0;
}

}  // namespace

TwoFastOutcome evaluate_two_fast(const SwarmConfig& config,
                                 const std::vector<SwarmSample>& series,
                                 double join_time, std::size_t group_size) {
  TwoFastOutcome out;
  const double solo_end =
      integrate_download(config, series, join_time, 1.0);
  const double collector_end = integrate_download(
      config, series, join_time, static_cast<double>(std::max<std::size_t>(
                                     group_size, 1)));
  out.solo_download_time = solo_end < 0.0 ? -1.0 : solo_end - join_time;
  out.collector_download_time =
      collector_end < 0.0 ? -1.0 : collector_end - join_time;
  if (out.solo_download_time > 0.0 && out.collector_download_time > 0.0)
    out.speedup = out.solo_download_time / out.collector_download_time;
  return out;
}

}  // namespace atlarge::p2p
