#include "atlarge/p2p/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace atlarge::p2p {
namespace {

/// Peers of one swarm visible at time t (from its true series).
double swarm_peers_at(const SwarmInstance& s, double t) {
  const auto& series = s.result.series;
  if (series.empty() || series.front().time > t) return 0.0;
  auto it = std::upper_bound(series.begin(), series.end(), t,
                             [](double value, const SwarmSample& sample) {
                               return value < sample.time;
                             });
  --it;
  return static_cast<double>(it->seeds + it->leechers);
}

}  // namespace

MonitorReport scrape(const EcosystemResult& eco, const EcosystemConfig& cfg,
                     const MonitorConfig& monitor) {
  MonitorReport report;
  stats::Rng rng(monitor.seed);

  // Choose which trackers this monitor scrapes (tracker 0 always included,
  // matching how real studies anchor on the dominant tracker).
  for (std::uint32_t t = 0; t < cfg.trackers; ++t) {
    if (t == 0 || rng.bernoulli(monitor.tracker_coverage))
      report.scraped_trackers.push_back(t);
  }
  const auto scraped = [&](std::uint32_t t) {
    return std::find(report.scraped_trackers.begin(),
                     report.scraped_trackers.end(),
                     t) != report.scraped_trackers.end();
  };

  for (double t = 0.0; t < eco.horizon; t += monitor.period) {
    double observed = 0.0;
    for (const auto& s : eco.swarms) {
      const double peers = swarm_peers_at(s, t);
      if (peers <= 0.0) continue;
      std::size_t scraped_count = 0;
      double fake = 0.0;
      for (std::uint32_t tr : s.trackers) {
        if (!scraped(tr)) continue;
        ++scraped_count;
        if (eco.tracker_is_spam[tr]) fake += peers * cfg.spam_inflation;
      }
      if (scraped_count == 0) continue;
      // Dedup collapses real peers across trackers to one count; fake
      // identities are unique per tracker and survive dedup.
      const double real =
          monitor.deduplicate
              ? peers
              : peers * static_cast<double>(scraped_count);
      observed += real + fake;
    }
    MonitorSample sample;
    sample.time = t;
    sample.observed_peers = observed;
    sample.true_peers = eco.true_peers_at(t);
    report.samples.push_back(sample);
  }

  double bias_sum = 0.0;
  double abs_sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : report.samples) {
    if (s.true_peers <= 0.0) continue;
    bias_sum += s.bias();
    abs_sum += std::abs(s.bias());
    ++n;
  }
  if (n > 0) {
    report.mean_bias = bias_sum / static_cast<double>(n);
    report.mean_abs_bias = abs_sum / static_cast<double>(n);
  }
  return report;
}

}  // namespace atlarge::p2p
