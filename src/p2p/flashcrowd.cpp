#include "atlarge/p2p/flashcrowd.hpp"

#include <algorithm>

#include "atlarge/stats/descriptive.hpp"

namespace atlarge::p2p {

std::vector<FlashcrowdEpisode> detect_flashcrowds(
    const std::vector<SwarmSample>& series, const FlashcrowdConfig& config) {
  std::vector<FlashcrowdEpisode> episodes;
  if (series.size() < config.min_history) return episodes;

  // Long-term baseline: the median of all samples seen so far, maintained
  // incrementally via sorted insertion. A short trailing window would
  // chase the surge's own ramp and truncate detection.
  std::vector<double> baseline(series.size(), 0.0);
  std::vector<double> history;
  history.reserve(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    baseline[i] =
        history.empty() ? 0.0 : stats::quantile_sorted(history, 0.5);
    const double level = series[i].leechers;
    history.insert(std::lower_bound(history.begin(), history.end(), level),
                   level);
  }

  std::vector<bool> flagged(series.size(), false);
  for (std::size_t i = config.min_history; i < series.size(); ++i) {
    const double level = series[i].leechers;
    flagged[i] = level >= config.min_level &&
                 level > config.threshold_factor * std::max(baseline[i], 1.0);
  }

  // Merge consecutive flagged samples into episodes.
  std::size_t i = 0;
  while (i < series.size()) {
    if (!flagged[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < series.size() && flagged[j + 1]) ++j;
    if (j - i + 1 >= config.min_duration) {
      FlashcrowdEpisode ep;
      ep.start = series[i].time;
      ep.end = series[j].time;
      ep.baseline_leechers = std::max(baseline[i], 1.0);
      for (std::size_t k = i; k <= j; ++k)
        ep.peak_leechers =
            std::max(ep.peak_leechers, static_cast<double>(series[k].leechers));
      episodes.push_back(ep);
    }
    i = j + 1;
  }
  return episodes;
}

std::pair<double, double> rate_inside_outside(
    const std::vector<SwarmSample>& series,
    const std::vector<FlashcrowdEpisode>& episodes) {
  const auto inside = [&](double t) {
    return std::any_of(episodes.begin(), episodes.end(),
                       [&](const FlashcrowdEpisode& ep) {
                         return t >= ep.start && t <= ep.end;
                       });
  };
  double in_sum = 0.0;
  std::size_t in_n = 0;
  double out_sum = 0.0;
  std::size_t out_n = 0;
  for (const auto& s : series) {
    if (s.leechers == 0) continue;  // no one downloading, rate undefined
    if (inside(s.time)) {
      in_sum += s.per_leecher_mbps;
      ++in_n;
    } else {
      out_sum += s.per_leecher_mbps;
      ++out_n;
    }
  }
  return {in_n ? in_sum / static_cast<double>(in_n) : 0.0,
          out_n ? out_sum / static_cast<double>(out_n) : 0.0};
}

}  // namespace atlarge::p2p
