#include "atlarge/p2p/ecosystem.hpp"

#include <algorithm>
#include <cmath>

#include "atlarge/stats/distributions.hpp"

namespace atlarge::p2p {

double EcosystemResult::true_peers_at(double t) const {
  double total = 0.0;
  for (const auto& s : swarms) {
    // Series samples are epoch-spaced; find the last sample at or before t.
    const auto& series = s.result.series;
    if (series.empty() || series.front().time > t) continue;
    auto it = std::upper_bound(
        series.begin(), series.end(), t,
        [](double value, const SwarmSample& sample) {
          return value < sample.time;
        });
    --it;
    total += it->seeds + it->leechers;
  }
  return total;
}

std::uint32_t EcosystemResult::giant_swarm_peak() const {
  std::uint32_t peak = 0;
  for (const auto& s : swarms)
    peak = std::max(peak, s.result.peak_swarm_size);
  return peak;
}

std::pair<double, double>
EcosystemResult::aliased_vs_plain_download_time() const {
  double aliased_sum = 0.0;
  std::size_t aliased_n = 0;
  double plain_sum = 0.0;
  std::size_t plain_n = 0;
  for (const auto& s : swarms) {
    if (s.result.finished < 3) continue;  // too few completions to average
    const bool aliased = catalog[s.title].aliases > 1;
    if (aliased) {
      aliased_sum += s.result.mean_download_time;
      ++aliased_n;
    } else {
      plain_sum += s.result.mean_download_time;
      ++plain_n;
    }
  }
  return {aliased_n ? aliased_sum / static_cast<double>(aliased_n) : 0.0,
          plain_n ? plain_sum / static_cast<double>(plain_n) : 0.0};
}

EcosystemResult simulate_ecosystem(const EcosystemConfig& config) {
  EcosystemResult result;
  result.horizon = config.horizon;
  stats::Rng rng(config.seed);

  // Catalog with Zipf popularity.
  stats::Zipf zipf(config.titles, config.zipf_exponent);
  result.catalog.resize(config.titles);
  for (std::size_t i = 0; i < config.titles; ++i) {
    auto& title = result.catalog[i];
    title.id = static_cast<std::uint32_t>(i);
    title.popularity = config.total_peers * zipf.pmf(i + 1);
    title.aliases =
        rng.bernoulli(config.aliased_fraction) ? config.alias_copies : 1;
  }

  // Trackers; the first tracker is always honest so every swarm has a
  // trustworthy announcement point.
  result.tracker_is_spam.assign(config.trackers, false);
  for (std::size_t t = 1; t < config.trackers; ++t)
    result.tracker_is_spam[t] = rng.bernoulli(config.spam_tracker_fraction);

  // One swarm per alias; the title's peer population splits evenly across
  // aliases (the fragmentation cost of aliased media).
  for (const auto& title : result.catalog) {
    const double peers_per_alias =
        title.popularity / static_cast<double>(title.aliases);
    for (std::uint32_t a = 0; a < title.aliases; ++a) {
      SwarmInstance inst;
      inst.title = title.id;
      inst.alias = a;
      // Announce on tracker 0 plus 0-2 random others.
      inst.trackers.push_back(0);
      const auto extra = static_cast<std::size_t>(rng.uniform_int(0, 2));
      for (std::size_t e = 0; e < extra; ++e) {
        const auto t = static_cast<std::uint32_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(config.trackers) - 1));
        if (std::find(inst.trackers.begin(), inst.trackers.end(), t) ==
            inst.trackers.end())
          inst.trackers.push_back(t);
      }

      const double rate = peers_per_alias / config.horizon;
      auto swarm_rng = rng.fork();
      const auto arrivals =
          poisson_arrivals(std::max(rate, 1e-9), config.horizon, swarm_rng);
      SwarmConfig sc = config.swarm;
      // Aliasing fragments the title's seeder community: the origin
      // seeding capacity splits across the alias swarms (the mechanism
      // behind the paper's aliased-media slowdown).
      sc.seed_upload_mbps /= static_cast<double>(title.aliases);
      sc.seed = swarm_rng();
      inst.result = simulate_swarm(sc, arrivals, config.horizon);
      result.swarms.push_back(std::move(inst));
    }
  }
  return result;
}

}  // namespace atlarge::p2p
