#include "atlarge/p2p/swarmnet.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "atlarge/fault/fault.hpp"
#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::p2p {
namespace {

constexpr double kMbPerMbpsSecond = 1.0 / 8.0;  // Mbps * s -> MB
constexpr std::uint64_t kPeerMix = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSpikeMix = 0xc2b2ae3d27d4eb4fULL;

enum class Phase : std::uint8_t { kLeeching, kSeeding };

struct Peer {
  std::uint64_t id = 0;
  double arrival = 0.0;
  double downloaded_mb = 0.0;
  double seed_until = 0.0;
  Phase phase = Phase::kLeeching;
  stats::Rng rng{0};
};

/// Tracker capacity grant, valid for one announce interval strictly
/// after its arrival (the strict-past read rule).
struct Grant {
  double at = -1.0;
  double mbps = 0.0;
};

struct NetSwarm {
  // Active peers only (swap-removed on departure), so an epoch costs
  // O(active), not O(ever-arrived) — that is what lets a million-peer
  // flashcrowd drain in minutes.
  std::vector<Peer> peers;
  Grant grant_cur;
  Grant grant_prev;
  std::uint64_t finished = 0;
  std::uint64_t aborted = 0;
  std::uint64_t churned = 0;
  std::uint64_t spikes_seen = 0;
  std::uint32_t peak = 0;
  obs::Digest downloads;
  std::uint64_t download_us = 0;
};

struct TrackerRow {
  double at = -1.0;  // arrival time of the latest announcement
  std::uint32_t leechers = 0;
  std::uint32_t seeds = 0;
};

struct Engine {
  const SwarmNetConfig* config = nullptr;
  sim::ShardedSimulation* sharded = nullptr;
  std::vector<NetSwarm> swarms;
  std::vector<TrackerRow> rows;  // tracker state, lives on LP 0
  std::uint64_t announcements = 0;
  std::uint64_t grants = 0;
  double interval = 0.0;        // announce interval, multiple of epoch
  std::size_t announce_every = 1;
  double abort_p = 0.0;         // per-epoch abort probability

  std::size_t lp_of(std::size_t swarm) const noexcept {
    return swarm % sharded->shards();
  }

  // Message-key spaces: announcements use the swarm id, grants are offset
  // past them — distinct entities, distinct tie-break keys.
  std::uint64_t grant_key(std::size_t swarm) const noexcept {
    return static_cast<std::uint64_t>(config->swarms) + swarm;
  }

  void join(std::size_t s, std::uint64_t id, double now) {
    Peer p;
    p.id = id;
    p.arrival = now;
    p.rng = stats::Rng(config->seed ^ (id * kPeerMix));
    swarms[s].peers.push_back(std::move(p));
  }

  /// The grant effective at strictly-past time `now` (and not expired).
  double grant_mbps(const NetSwarm& sw, double now) const noexcept {
    const Grant& g = sw.grant_cur.at < now ? sw.grant_cur : sw.grant_prev;
    if (g.at < 0.0 || g.at >= now || now > g.at + interval) return 0.0;
    return g.mbps;
  }

  void epoch(std::size_t s, std::size_t k) {
    NetSwarm& sw = swarms[s];
    const double now = static_cast<double>(k) * config->epoch;
    const double next = now + config->epoch;

    // Census over strictly-past arrivals: a peer joining exactly at `now`
    // is invisible this epoch no matter the tied-event execution order.
    std::uint32_t leechers = 0;
    std::uint32_t peer_seeds = 0;
    double mean_progress = 0.0;
    for (const Peer& p : sw.peers) {
      if (p.arrival >= now) continue;
      if (p.phase == Phase::kLeeching) {
        ++leechers;
        mean_progress += p.downloaded_mb / config->content_mb;
      } else {
        ++peer_seeds;
      }
    }
    const auto seeds = static_cast<std::uint32_t>(
        peer_seeds + static_cast<std::uint32_t>(config->initial_seeds));
    sw.peak = std::max(sw.peak, leechers + seeds);

    if (k % announce_every == 0) {
      // The announce interval IS the lookahead: the report lands one
      // interval ahead, on the tracker's LP.
      sharded->send(lp_of(s), 0, now + interval, s,
                    [this, s, now, leechers, seeds] {
                      rows[s] = TrackerRow{now + interval, leechers, seeds};
                      ++announcements;
                    });
    }

    double per_leecher_mbps = 0.0;
    if (leechers > 0) {
      mean_progress /= leechers;
      const double availability = std::min(
          1.0, (static_cast<double>(seeds) + mean_progress * leechers) /
                   leechers);
      const double upload_total =
          static_cast<double>(config->initial_seeds) *
              config->seed_upload_mbps +
          static_cast<double>(peer_seeds) * config->peer_upload_mbps +
          static_cast<double>(leechers) * config->peer_upload_mbps *
              availability +
          grant_mbps(sw, now);
      const double usable = upload_total * config->efficiency;
      per_leecher_mbps =
          std::min(config->peer_download_mbps, usable / leechers);
    }

    for (std::size_t i = 0; i < sw.peers.size();) {
      Peer& p = sw.peers[i];
      if (p.arrival >= now) {
        ++i;
        continue;
      }
      if (p.phase == Phase::kLeeching) {
        if (abort_p > 0.0 && p.rng.bernoulli(abort_p)) {
          ++sw.aborted;
          sw.peers[i] = std::move(sw.peers.back());
          sw.peers.pop_back();
          continue;
        }
        p.downloaded_mb += per_leecher_mbps * config->epoch * kMbPerMbpsSecond;
        if (p.downloaded_mb >= config->content_mb) {
          p.phase = Phase::kSeeding;
          p.seed_until =
              next + p.rng.exponential(1.0 / config->seed_time_mean);
          const double dl = next - p.arrival;
          ++sw.finished;
          sw.downloads.add(dl);
          sw.download_us += static_cast<std::uint64_t>(dl * 1e6 + 0.5);
        }
      } else if (now >= p.seed_until) {
        sw.peers[i] = std::move(sw.peers.back());
        sw.peers.pop_back();
        continue;
      }
      ++i;
    }

    if (next <= config->horizon) {
      sharded->lp(lp_of(s)).schedule_at(next,
                                        [this, s, k] { epoch(s, k + 1); });
    }
  }

  // Tracker round at G: reads only announcements that arrived strictly
  // before G, pools the upload of swarms with no leechers left, and
  // grants it to under-seeded busy swarms proportionally to their need.
  void tracker_round(double g) {
    double donor_mbps = 0.0;
    double needy_leechers = 0.0;
    for (const TrackerRow& row : rows) {
      if (row.at < 0.0 || row.at >= g) continue;
      if (row.leechers == 0) {
        donor_mbps += static_cast<double>(row.seeds) *
                      config->peer_upload_mbps;
      } else if (row.seeds < row.leechers) {
        needy_leechers += static_cast<double>(row.leechers);
      }
    }
    if (config->cross_seed && donor_mbps > 0.0 && needy_leechers > 0.0) {
      for (std::size_t s = 0; s < rows.size(); ++s) {
        const TrackerRow& row = rows[s];
        if (row.at < 0.0 || row.at >= g) continue;
        if (row.leechers == 0 || row.seeds >= row.leechers) continue;
        const double mbps =
            donor_mbps * static_cast<double>(row.leechers) / needy_leechers;
        ++grants;
        sharded->send(0, lp_of(s), g + interval, grant_key(s),
                      [this, s, g, mbps] {
                        NetSwarm& sw = swarms[s];
                        sw.grant_prev = sw.grant_cur;
                        sw.grant_cur = Grant{g + interval, mbps};
                      });
      }
    }
    const double next = g + interval;
    if (next <= config->horizon)
      sharded->lp(0).schedule_at(next, [this, next] { tracker_round(next); });
  }

  // Churn spike: kick leeching peers present strictly before the spike,
  // each by an independent per-peer hash draw (layout-invariant).
  void churn(std::size_t s, double at, double magnitude) {
    NetSwarm& sw = swarms[s];
    const std::uint64_t spike = sw.spikes_seen++;
    const std::uint64_t base =
        config->seed ^
        ((static_cast<std::uint64_t>(s) << 32 | spike) * kSpikeMix);
    for (std::size_t i = 0; i < sw.peers.size();) {
      Peer& p = sw.peers[i];
      if (p.phase == Phase::kLeeching && p.arrival < at &&
          stats::Rng(base ^ (p.id * kPeerMix)).uniform() < magnitude) {
        ++sw.churned;
        sw.peers[i] = std::move(sw.peers.back());
        sw.peers.pop_back();
        continue;
      }
      ++i;
    }
  }
};

}  // namespace

std::vector<PeerArrival> flashcrowd_net_arrivals(std::size_t peers,
                                                 std::size_t swarms,
                                                 double horizon,
                                                 double surge_start,
                                                 double surge_fraction,
                                                 std::uint64_t seed) {
  std::vector<PeerArrival> arrivals;
  arrivals.reserve(peers);
  const std::size_t surge =
      static_cast<std::size_t>(surge_fraction * static_cast<double>(peers));
  const double decay_mean = std::max(1.0, (horizon - surge_start) / 8.0);
  for (std::size_t i = 0; i < peers; ++i) {
    stats::Rng rng(seed ^ (static_cast<std::uint64_t>(i + 1) * kPeerMix));
    PeerArrival a;
    a.peer = static_cast<std::uint64_t>(i);
    if (i < surge) {
      // The flashcrowd: sharp onset into one swarm, exponential decay.
      a.time = surge_start + rng.exponential(1.0 / decay_mean);
      a.swarm = 0;
    } else {
      a.time = rng.uniform(0.0, horizon);
      a.swarm = static_cast<std::uint32_t>(i % std::max<std::size_t>(
                                                   1, swarms));
    }
    if (a.time < horizon) arrivals.push_back(a);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const PeerArrival& x, const PeerArrival& y) {
              return x.time != y.time ? x.time < y.time : x.peer < y.peer;
            });
  return arrivals;
}

SwarmNetResult simulate_swarm_network(
    const SwarmNetConfig& config, const std::vector<PeerArrival>& arrivals) {
  Engine engine;
  engine.config = &config;
  engine.announce_every = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.announce_interval / config.epoch)));
  engine.interval =
      static_cast<double>(engine.announce_every) * config.epoch;
  engine.abort_p = config.abort_rate > 0.0
                       ? 1.0 - std::exp(-config.abort_rate * config.epoch)
                       : 0.0;

  sim::ShardOptions shard = config.shard;
  shard.shards = std::min(std::max<std::size_t>(1, shard.shards),
                          std::max<std::size_t>(1, config.swarms));
  shard.lookahead = engine.interval;  // derived, not user-set
  sim::ShardedSimulation sharded(shard);
  engine.sharded = &sharded;
  engine.swarms.resize(std::max<std::size_t>(1, config.swarms));
  engine.rows.resize(engine.swarms.size());

  obs::Observability* const plane = config.obs;
  if (plane != nullptr) plane->tracer.begin("p2p.swarmnet", "p2p", 0.0);

  // Per-LP injectors, attached before any peer or epoch event exists, so
  // spikes carry the earliest sequence numbers at tied timestamps on
  // every layout.
  std::vector<std::unique_ptr<fault::Injector>> injectors;
  if (config.faults != nullptr && !config.faults->empty()) {
    injectors.reserve(sharded.shards());
    for (std::size_t l = 0; l < sharded.shards(); ++l) {
      auto injector =
          std::make_unique<fault::Injector>(*config.faults, nullptr);
      injector->on_kind(fault::FaultKind::kChurnSpike,
                        [&engine, l](const fault::FaultEvent& e) {
                          const std::size_t s =
                              e.target % engine.swarms.size();
                          if (engine.lp_of(s) != l) return;
                          engine.churn(s, e.time, e.magnitude);
                        });
      sharded.lp(l).set_fault_hook(injector.get());
      injectors.push_back(std::move(injector));
    }
  }

  // Epoch chains and the tracker round chain, then the entry trace — all
  // through the sorted-mailbox path, so every layout schedules them in
  // the same relative order.
  for (std::size_t s = 0; s < engine.swarms.size(); ++s) {
    sharded.send(engine.lp_of(s), engine.lp_of(s), 0.0, s,
                 [&engine, s] { engine.epoch(s, 0); });
  }
  if (engine.interval <= config.horizon) {
    const double first = engine.interval;
    sharded.send(0, 0, first, engine.grant_key(engine.swarms.size()),
                 [&engine, first] { engine.tracker_round(first); });
  }
  for (const PeerArrival& a : arrivals) {
    const std::size_t s = a.swarm % engine.swarms.size();
    const std::uint64_t id = a.peer;
    const double at = a.time;
    sharded.send(engine.lp_of(s), engine.lp_of(s), at,
                 engine.grant_key(engine.swarms.size()) + 1 + id,
                 [&engine, s, id, at] { engine.join(s, id, at); });
  }

  sharded.run_until(config.horizon);

  SwarmNetResult result;
  result.peak_swarm.reserve(engine.swarms.size());
  for (const NetSwarm& sw : engine.swarms) {
    result.finished += sw.finished;
    result.aborted += sw.aborted;
    result.churned += sw.churned;
    for (const Peer& p : sw.peers) {
      if (p.phase == Phase::kLeeching)
        ++result.residual_leechers;
      else
        ++result.residual_seeds;
    }
    result.peak_swarm.push_back(sw.peak);
    result.download_digest.merge(sw.downloads);
    result.download_seconds_x1e6 += sw.download_us;
  }
  result.announcements = engine.announcements;
  result.grants = engine.grants;
  result.windows = sharded.windows();
  result.messages = sharded.messages();

  if (plane != nullptr) {
    plane->metrics.counter("p2p.net.finished").add(result.finished);
    plane->metrics.counter("p2p.net.aborted").add(result.aborted);
    plane->metrics.counter("p2p.net.churned").add(result.churned);
    plane->metrics.counter("p2p.net.announcements").add(result.announcements);
    plane->metrics.counter("p2p.net.grants").add(result.grants);
    for (std::size_t l = 0; l < sharded.shards(); ++l) {
      plane->tracer.begin("p2p.swarmnet.lp", "p2p", 0.0);
      plane->tracer.end("p2p.swarmnet.lp", "p2p", config.horizon);
    }
    plane->tracer.end("p2p.swarmnet", "p2p", config.horizon);
  }
  return result;
}

}  // namespace atlarge::p2p
