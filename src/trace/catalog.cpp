#include "atlarge/trace/catalog.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/obs/metrics.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/generators.hpp"

namespace atlarge::trace::catalog {
namespace {

// The generators run to completion; a cap abandons generation mid-flight
// via this internal control-flow exception (cheap relative to the events
// a cap skips, and invisible outside this translation unit).
struct StopGeneration {};

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> out;

  {
    // Social feed fan-out on the FaaS platform: a post written by a
    // popular entity fans out to follower timelines; a viral moment is a
    // flashcrowd of request traffic.
    Scenario s;
    s.name = "feed-fanout";
    s.family = "social feed fan-out";
    s.engine = "serverless";
    s.shape = Scenario::Shape::kFlashcrowd;
    s.flashcrowd.duration = 1800.0;
    s.flashcrowd.base_rate = 30.0;
    s.flashcrowd.surge_time = 900.0;
    s.flashcrowd.surge_rate = 120.0;
    s.flashcrowd.surge_width = 60.0;
    s.flashcrowd.mix.entities = 200'000;
    s.flashcrowd.mix.zipf_s = 0.99;
    s.flashcrowd.mix.regions = 4;
    s.flashcrowd.mix.size_log_mean = 1.5;
    s.flashcrowd.mix.size_log_sigma = 0.8;
    s.flashcrowd.session.tail = gen::SessionShape::Tail::kPareto;
    s.flashcrowd.session.pareto_alpha = 1.5;
    s.flashcrowd.session.pareto_scale = 20.0;
    s.flashcrowd.session.max_duration = 900.0;
    s.flashcrowd.session.mean_request_gap = 2.0;
    s.flashcrowd.session.max_requests = 64;
    s.default_seed = 101;
    out.push_back(std::move(s));
  }
  {
    // Video-streaming flashcrowd on the P2P swarm: a premiere pulls a
    // surge of peers who fetch the content and churn away.
    Scenario s;
    s.name = "video-flashcrowd";
    s.family = "video-streaming flashcrowd";
    s.engine = "p2p";
    s.shape = Scenario::Shape::kFlashcrowd;
    s.flashcrowd.duration = 3600.0;
    s.flashcrowd.base_rate = 0.5;
    s.flashcrowd.surge_time = 600.0;
    s.flashcrowd.surge_rate = 30.0;
    s.flashcrowd.surge_width = 120.0;
    s.flashcrowd.mix.entities = 50'000;
    s.flashcrowd.mix.regions = 8;
    s.flashcrowd.session.tail = gen::SessionShape::Tail::kLognormal;
    s.flashcrowd.session.log_mu = 5.0;
    s.flashcrowd.session.log_sigma = 0.8;
    s.flashcrowd.session.max_duration = 3600.0;
    s.flashcrowd.session.mean_request_gap = 30.0;
    s.flashcrowd.session.max_requests = 32;
    s.default_seed = 202;
    out.push_back(std::move(s));
  }
  {
    // E-commerce checkout spike on the cluster scheduler: each session is
    // an order-processing job; a sale event is an arrival spike.
    Scenario s;
    s.name = "ecommerce-spike";
    s.family = "e-commerce sale spike";
    s.engine = "sched";
    s.shape = Scenario::Shape::kFlashcrowd;
    s.flashcrowd.duration = 7200.0;
    s.flashcrowd.base_rate = 0.5;
    s.flashcrowd.surge_time = 3600.0;
    s.flashcrowd.surge_rate = 8.0;
    s.flashcrowd.surge_width = 120.0;
    s.flashcrowd.mix.entities = 100'000;
    s.flashcrowd.mix.regions = 4;
    s.flashcrowd.session.tail = gen::SessionShape::Tail::kPareto;
    s.flashcrowd.session.pareto_alpha = 1.8;
    s.flashcrowd.session.pareto_scale = 60.0;
    s.flashcrowd.session.max_duration = 1800.0;
    s.flashcrowd.session.mean_request_gap = 10.0;
    s.flashcrowd.session.max_requests = 64;
    s.default_seed = 303;
    out.push_back(std::move(s));
  }
  {
    // Gaming / leaderboard diurnal cycle on the elastic pool: player
    // sessions follow the day/night rhythm; the autoscaler chases it.
    Scenario s;
    s.name = "gaming-diurnal";
    s.family = "gaming/leaderboard diurnal cycle";
    s.engine = "autoscale";
    s.shape = Scenario::Shape::kDiurnal;
    s.diurnal.duration = 14'400.0;
    s.diurnal.mean_rate = 0.6;
    s.diurnal.amplitude = 0.8;
    s.diurnal.period = 14'400.0;
    s.diurnal.phase = 0.0;
    s.diurnal.mix.entities = 80'000;
    s.diurnal.mix.regions = 6;
    s.diurnal.session.tail = gen::SessionShape::Tail::kLognormal;
    s.diurnal.session.log_mu = 5.5;
    s.diurnal.session.log_sigma = 1.0;
    s.diurnal.session.max_duration = 3600.0;
    s.diurnal.session.mean_request_gap = 20.0;
    s.diurnal.session.max_requests = 48;
    s.default_seed = 404;
    out.push_back(std::move(s));
  }
  {
    // FaaS on the shared fabric vs reserved capacity, inside the full
    // ecosystem composition: the same request flashcrowd replays once
    // with the serverless tier leasing machines from the cluster fabric
    // it shares with MMOG zones and workflow DAGs, and once on reserved
    // (always-warm, contention-free) instances. The metric pairs quote
    // the price of co-tenancy directly.
    Scenario s;
    s.name = "eco-faas-vs-reserved";
    s.family = "ecosystem co-tenancy";
    s.engine = "eco";
    s.shape = Scenario::Shape::kFlashcrowd;
    s.flashcrowd.duration = 2400.0;
    s.flashcrowd.base_rate = 4.0;
    s.flashcrowd.surge_time = 1200.0;
    s.flashcrowd.surge_rate = 24.0;
    s.flashcrowd.surge_width = 90.0;
    s.flashcrowd.mix.entities = 50'000;
    s.flashcrowd.mix.zipf_s = 0.99;
    s.flashcrowd.mix.regions = 4;
    s.flashcrowd.session.tail = gen::SessionShape::Tail::kPareto;
    s.flashcrowd.session.pareto_alpha = 1.6;
    s.flashcrowd.session.pareto_scale = 30.0;
    s.flashcrowd.session.max_duration = 1200.0;
    s.flashcrowd.session.mean_request_gap = 4.0;
    s.flashcrowd.session.max_requests = 48;
    s.default_seed = 505;
    out.push_back(std::move(s));
  }
  return out;
}

// Counts stream traffic (and enforces the event cap) on the way into an
// engine adapter, so one pull pass yields both the census and the replay.
class CountingStream final : public EventStream {
 public:
  CountingStream(EventStream& inner, ReplaySummary& summary,
                 std::size_t max_events)
      : inner_(&inner), summary_(&summary), max_events_(max_events) {}

  bool next(Event& out) override {
    if (max_events_ != 0 && summary_->events >= max_events_) return false;
    if (!inner_->next(out)) return false;
    ++summary_->events;
    if (out.kind == static_cast<std::int64_t>(EventKind::kSessionStart))
      ++summary_->sessions;
    else if (out.kind == static_cast<std::int64_t>(EventKind::kRequest))
      ++summary_->requests;
    return true;
  }

 private:
  EventStream* inner_;
  ReplaySummary* summary_;
  std::size_t max_events_;
};

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "nan";
  return std::string(buf, ptr);
}

void replay_serverless(CountingStream& stream, ReplaySummary& summary) {
  // Three regional feed functions; requests route by region.
  const std::vector<serverless::FunctionSpec> registry = {
      {"fanout-write", 0.020, 0.8, 256.0},
      {"timeline-read", 0.005, 0.4, 128.0},
      {"notify", 0.010, 0.5, 128.0},
  };
  RequestInvocationSource source(stream, registry.size());
  serverless::PlatformConfig config;
  config.keep_alive = 60.0;
  config.max_instances = 4096;
  config.record_invocations = false;  // O(in-flight) memory: streaming mode
  const auto result = serverless::run_platform(registry, source, config);
  summary.metrics = {
      {"p50_latency", result.p50_latency},
      {"p99_latency", result.p99_latency},
      {"cold_fraction", result.cold_fraction},
      {"billed_instance_seconds", result.billed_instance_seconds},
      {"busy_instance_seconds", result.busy_instance_seconds},
      {"peak_instances", static_cast<double>(result.peak_instances)},
      {"failed_invocations",
       static_cast<double>(result.failed_invocations)},
      {"success_rate", result.success_rate},
  };
}

void replay_p2p(const Scenario& scenario, CountingStream& stream,
                ReplaySummary& summary) {
  SessionArrivalSource source(stream);
  p2p::SwarmConfig config;
  config.content_mb = 350.0;
  // A flashcrowd-sized origin: thousands of leechers arrive before anyone
  // seeds back, and the fluid model bootstraps from seed capacity alone —
  // a 16 Mbps origin would leave the whole surge unfinished at horizon.
  config.seed_upload_mbps = 64.0;
  config.seed_time_mean = 600.0;
  config.initial_seeds = 8;
  config.seed = 42;  // fixed: replay determinism is part of the contract
  const auto result =
      p2p::simulate_swarm(config, source, scenario.horizon() * 2.0);
  summary.metrics = {
      {"finished", static_cast<double>(result.finished)},
      {"aborted", static_cast<double>(result.aborted)},
      {"peak_swarm_size", static_cast<double>(result.peak_swarm_size)},
      {"mean_download_time", result.mean_download_time},
      {"median_download_time", result.median_download_time},
  };
}

void replay_sched(CountingStream& stream, ReplaySummary& summary) {
  const auto workload = to_workload(stream);
  const auto env = cluster::make_homogeneous_cluster("replay", 16, 8);
  sched::FcfsPolicy policy;
  const auto result = sched::simulate(env, workload, policy);
  summary.metrics = {
      {"makespan", result.makespan},
      {"mean_wait", result.mean_wait},
      {"mean_slowdown", result.mean_slowdown},
      {"utilization", result.utilization},
      {"tasks_completed", static_cast<double>(result.tasks_completed)},
  };
}

void replay_autoscale(CountingStream& stream, ReplaySummary& summary) {
  const auto workload = to_workload(stream);
  autoscale::ReactAutoscaler autoscaler;
  autoscale::ElasticConfig config;
  config.max_machines = 64;
  const auto result = autoscale::run_elastic(workload, autoscaler, config);
  double rented_seconds = 0.0;
  for (const double r : result.rentals) rented_seconds += r;
  summary.metrics = {
      {"makespan", result.makespan},
      {"mean_slowdown", result.mean_slowdown},
      {"mean_response", result.mean_response},
      {"deadline_violations",
       static_cast<double>(result.deadline_violations)},
      {"deadline_total", static_cast<double>(result.deadline_total)},
      {"rented_machine_seconds", rented_seconds},
  };
}

// The co-tenant spec shared by both sides of the eco comparison: MMOG
// zones autoscaled off the fabric and workflow DAGs scheduled on it, with
// fixed seeds (replay determinism is part of the contract). Only the
// serverless backing differs between the two runs.
eco::EcosystemSpec eco_replay_spec(std::vector<serverless::Invocation> invs,
                                   double horizon) {
  eco::EcosystemSpec spec;
  spec.horizon = horizon;
  // Sized so the three tenants genuinely contend: MMOG demand alone wants
  // more machines than the fabric has at peak population.
  spec.fabric.machines = 6;
  spec.fabric.cores_per_machine = 8;
  spec.fabric.provisioning_delay = 45.0;

  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 1;
  spec.serverless.registry = {
      {"fanout-write", 0.020, 0.8, 256.0},
      {"timeline-read", 0.005, 0.4, 128.0},
      {"notify", 0.010, 0.5, 128.0},
  };
  spec.serverless.config.keep_alive = 60.0;
  spec.serverless.config.prewarmed = 0;
  spec.serverless.invocations = std::move(invs);

  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 32;
  spec.mmog.report_interval = 30.0;
  spec.mmog.initial_machines = 1;
  spec.mmog.config.zones = 4;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.act_mean = 25.0;
  spec.mmog.config.migrate_prob = 0.1;
  spec.mmog.config.session_mean = 1'500.0;
  spec.mmog.config.seed = 42;
  spec.mmog.arrivals = mmog::synthetic_zone_arrivals(
      256, spec.mmog.config.zones, 0.6 * horizon, 42);

  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  spec.dags.policy = "FCFS";
  workflow::WorkloadSpec jobs;
  jobs.cls = workflow::WorkloadClass::kSynthetic;
  jobs.jobs = 24;
  jobs.horizon = 0.5 * horizon;
  jobs.seed = 42;
  spec.dags.workload = workflow::generate(jobs);
  return spec;
}

void replay_eco(const Scenario& scenario, CountingStream& stream,
                ReplaySummary& summary) {
  // Materialize the request stream once; both sides of the comparison
  // replay the identical invocations.
  RequestInvocationSource source(stream, 3);
  std::vector<serverless::Invocation> invocations;
  serverless::Invocation inv;
  while (source.next(inv)) invocations.push_back(inv);

  // Give the ecosystem headroom past the trace horizon so in-flight work
  // (provisioning, queued logins, tail jobs) drains deterministically.
  const double horizon = scenario.horizon() * 1.5;
  const eco::EcosystemResult shared =
      eco::run_ecosystem(eco_replay_spec(invocations, horizon));

  eco::EcosystemSpec reserved_spec = eco_replay_spec(invocations, horizon);
  reserved_spec.serverless.backing = eco::ServerlessBacking::kAbstract;
  reserved_spec.serverless.config.prewarmed = 4;
  const eco::EcosystemResult reserved = eco::run_ecosystem(reserved_spec);

  summary.metrics = {
      {"shared_p95_latency", shared.faas.p95_latency},
      {"reserved_p95_latency", reserved.faas.p95_latency},
      {"shared_p999_latency", shared.faas.p999_latency},
      {"reserved_p999_latency", reserved.faas.p999_latency},
      {"shared_cold_fraction", shared.faas.cold_fraction},
      {"reserved_cold_fraction", reserved.faas.cold_fraction},
      {"shared_failed", static_cast<double>(shared.faas.failed_invocations)},
      {"shared_faas_denials",
       static_cast<double>(shared.fabric.faas_denials)},
      {"shared_machine_leases",
       static_cast<double>(shared.fabric.machine_leases)},
      {"shared_queued_logins",
       static_cast<double>(shared.zones.queued_logins)},
      {"shared_dag_mean_wait", shared.dags.mean_wait},
      {"reserved_dag_mean_wait", reserved.dags.mean_wait},
  };
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> catalog = build_catalog();
  return catalog;
}

const Scenario* find(std::string_view name) {
  for (const Scenario& s : scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

void generate(const Scenario& scenario, std::uint64_t seed,
              const EventSink& sink) {
  switch (scenario.shape) {
    case Scenario::Shape::kFlashcrowd:
      gen::flashcrowd(scenario.flashcrowd, seed, sink);
      break;
    case Scenario::Shape::kDiurnal:
      gen::diurnal(scenario.diurnal, seed, sink);
      break;
  }
}

std::vector<Event> events(const Scenario& scenario, std::uint64_t seed,
                          std::size_t max_events) {
  std::vector<Event> out;
  try {
    generate(scenario, seed, [&](const Event& e) {
      if (max_events != 0 && out.size() >= max_events)
        throw StopGeneration{};
      out.push_back(e);
    });
  } catch (const StopGeneration&) {
  }
  return out;
}

std::uint64_t write_trace(const Scenario& scenario, const std::string& path,
                          std::uint64_t seed, std::size_t max_events,
                          WriterOptions options) {
  TraceWriter writer(path, event_schema(), options);
  std::uint64_t written = 0;
  try {
    generate(scenario, seed, [&](const Event& e) {
      if (max_events != 0 && written >= max_events) throw StopGeneration{};
      writer.append(e);
      ++written;
    });
  } catch (const StopGeneration&) {
  }
  writer.finish();
  return written;
}

RequestInvocationSource::RequestInvocationSource(EventStream& events,
                                                std::size_t functions)
    : events_(&events), functions_(functions) {
  if (functions_ == 0)
    throw std::invalid_argument(
        "RequestInvocationSource: functions must be > 0");
}

bool RequestInvocationSource::next(serverless::Invocation& out) {
  Event e;
  while (events_->next(e)) {
    if (e.kind != static_cast<std::int64_t>(EventKind::kRequest)) continue;
    out.function = static_cast<std::size_t>(e.region) % functions_;
    out.arrival = e.t_seconds();
    return true;
  }
  return false;
}

bool SessionArrivalSource::next(double& out) {
  Event e;
  while (events_->next(e)) {
    if (e.kind != static_cast<std::int64_t>(EventKind::kSessionStart))
      continue;
    out = e.t_seconds();
    return true;
  }
  return false;
}

workflow::Workload to_workload(EventStream& events, std::size_t max_jobs,
                               double runtime_scale) {
  workflow::Workload workload;
  workload.name = "trace-replay";
  Event e;
  while (events.next(e)) {
    if (e.kind != static_cast<std::int64_t>(EventKind::kSessionStart))
      continue;
    if (max_jobs != 0 && workload.jobs.size() >= max_jobs) break;
    workflow::Job job;
    job.id = workload.jobs.size();
    job.submit_time = e.t_seconds();
    job.user = "region-" + std::to_string(e.region);
    workflow::Task task;
    // The start event's size field carries the session duration in ms;
    // scale it into a schedulable service demand.
    const double session_s = static_cast<double>(e.size) * 1e-3;
    task.runtime = std::min(600.0, std::max(1.0, session_s * runtime_scale));
    task.cores = 1 + static_cast<std::uint32_t>(e.entity % 4);
    job.tasks.push_back(task);
    workload.jobs.push_back(std::move(job));
  }
  workload.normalize();
  return workload;
}

std::string ReplaySummary::text() const {
  std::string out;
  out += "scenario=" + scenario + "\n";
  out += "engine=" + engine + "\n";
  out += "events=" + std::to_string(events) + "\n";
  out += "sessions=" + std::to_string(sessions) + "\n";
  out += "requests=" + std::to_string(requests) + "\n";
  for (const auto& [name, value] : metrics)
    out += name + "=" + format_double(value) + "\n";
  return out;
}

ReplaySummary replay(const Scenario& scenario, EventStream& events,
                     const ReplayOptions& options) {
  ReplaySummary summary;
  summary.scenario = scenario.name;
  summary.engine = scenario.engine;
  CountingStream counted(events, summary, options.max_events);
  if (scenario.engine == "serverless")
    replay_serverless(counted, summary);
  else if (scenario.engine == "p2p")
    replay_p2p(scenario, counted, summary);
  else if (scenario.engine == "sched")
    replay_sched(counted, summary);
  else if (scenario.engine == "autoscale")
    replay_autoscale(counted, summary);
  else if (scenario.engine == "eco")
    replay_eco(scenario, counted, summary);
  else
    throw std::logic_error("replay: unknown engine " + scenario.engine);
  if (options.obs != nullptr) {
    options.obs->counter("trace.replay_events").add(summary.events);
    options.obs->counter("trace.replay_sessions").add(summary.sessions);
    options.obs->counter("trace.replay_requests").add(summary.requests);
  }
  return summary;
}

ReplaySummary replay_file(const Scenario& scenario, const std::string& path,
                          const ReplayOptions& options) {
  ReaderOptions reader_options;
  reader_options.obs = options.obs;
  TraceReader reader(path, reader_options);
  AtlEventStream stream(reader);
  return replay(scenario, stream, options);
}

ReplaySummary replay_generated(const Scenario& scenario, std::uint64_t seed,
                               const ReplayOptions& options) {
  const auto evs = events(scenario, seed, options.max_events);
  VectorEventStream stream(evs);
  return replay(scenario, stream, options);
}

}  // namespace atlarge::trace::catalog
