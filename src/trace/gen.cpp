#include "atlarge/trace/gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace atlarge::trace::gen {
namespace {

// Series fallbacks for the small-argument region where expm1/log1p ratios
// lose precision (the standard rejection-inversion helpers).
double helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

double helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}

// Stable per-entity attribute in [0, 1): a seeded one-shot draw, so an
// entity keeps its region across sessions, generators, and seeds that
// share the same entity salt.
double entity_hash01(std::int64_t entity, std::uint64_t salt) {
  stats::Rng rng(static_cast<std::uint64_t>(entity) * 0x9E3779B97F4A7C15ULL ^
                 salt);
  return rng.uniform();
}

}  // namespace

ZipfSampler::ZipfSampler(std::int64_t n, double s) : n_(n), s_(s) {
  if (n <= 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;
  return std::exp(helper1(t) * x);
}

std::int64_t ZipfSampler::operator()(stats::Rng& rng) const {
  while (true) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    std::int64_t k = static_cast<std::int64_t>(x + 0.5);
    if (k < 1)
      k = 1;
    else if (k > n_)
      k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ || u >= h_integral(kd + 0.5) - h(kd))
      return k - 1;  // 0-based rank
  }
}

namespace {

// One fully sampled session, to be merged into the global event order.
struct PendingEvent {
  std::int64_t t_us = 0;
  std::uint64_t seq = 0;  // global tie-break: insertion order
  Event event;
};

struct PendingLater {
  bool operator()(const PendingEvent& a, const PendingEvent& b) const {
    if (a.t_us != b.t_us) return a.t_us > b.t_us;
    return a.seq > b.seq;
  }
};

using EventHeap =
    std::priority_queue<PendingEvent, std::vector<PendingEvent>, PendingLater>;

class SessionEmitter {
 public:
  SessionEmitter(const Mix& mix, const SessionShape& shape,
                 std::uint64_t seed, const EventSink& sink)
      : mix_(mix),
        shape_(shape),
        zipf_(mix.entities, mix.zipf_s),
        session_salt_(seed ^ 0xA24BAED4963EE407ULL),
        region_salt_(seed ^ 0x5851F42D4C957F2DULL),
        sink_(sink) {}

  /// Samples one whole session starting at `start_s` and stages its
  /// events; then drains every staged event at or before `start_s` (the
  /// arrival sweep guarantees no earlier event can still appear).
  void open_session(double start_s) {
    // Per-session substream derived from (seed, session index): session
    // contents do not depend on how many thinning rejections preceded the
    // arrival, only on arrival order.
    stats::Rng rng(session_salt_ +
                   0x9E3779B97F4A7C15ULL * (++session_index_));
    const std::int64_t entity = zipf_(rng);
    const std::int64_t region = region_of(entity);
    const double duration = sample_duration(rng);

    const std::int64_t t0 = to_micros(start_s);
    std::vector<std::int64_t> request_ts;
    std::vector<std::int64_t> request_sizes;
    double offset = 0.0;
    while (static_cast<std::int64_t>(request_ts.size()) <
           shape_.max_requests) {
      offset += rng.exponential(1.0 / shape_.mean_request_gap);
      if (offset >= duration) break;
      request_ts.push_back(to_micros(start_s + offset));
      const double kb =
          std::exp(rng.normal(mix_.size_log_mean, mix_.size_log_sigma));
      request_sizes.push_back(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(kb)));
    }

    stage({t0, entity, static_cast<std::int64_t>(EventKind::kSessionStart),
           static_cast<std::int64_t>(duration * 1e3 + 0.5), region});
    for (std::size_t i = 0; i < request_ts.size(); ++i)
      stage({request_ts[i], entity,
             static_cast<std::int64_t>(EventKind::kRequest),
             request_sizes[i], region});
    stage({to_micros(start_s + duration), entity,
           static_cast<std::int64_t>(EventKind::kSessionEnd),
           static_cast<std::int64_t>(request_ts.size()), region});

    drain_until(t0);
  }

  void finish() { drain_until(std::numeric_limits<std::int64_t>::max()); }

 private:
  std::int64_t region_of(std::int64_t entity) const {
    // Quadratic skew toward region 0: u^2 concentrates ~70% of entities
    // in the first half of the region list while keeping every region
    // populated. Stable per entity (hash draw, not stream draw).
    const double u = entity_hash01(entity, region_salt_);
    return std::min<std::int64_t>(mix_.regions - 1,
                                  static_cast<std::int64_t>(
                                      u * u * static_cast<double>(mix_.regions)));
  }

  double sample_duration(stats::Rng& rng) const {
    double d = 0.0;
    switch (shape_.tail) {
      case SessionShape::Tail::kPareto:
        // Inverse transform: scale * u^(-1/alpha), u in (0, 1].
        d = shape_.pareto_scale *
            std::pow(1.0 - rng.uniform(), -1.0 / shape_.pareto_alpha);
        break;
      case SessionShape::Tail::kLognormal:
        d = std::exp(rng.normal(shape_.log_mu, shape_.log_sigma));
        break;
    }
    return std::min(d, shape_.max_duration);
  }

  void stage(Event e) { heap_.push({e.t_us, seq_++, e}); }

  void drain_until(std::int64_t t_us) {
    while (!heap_.empty() && heap_.top().t_us <= t_us) {
      sink_(heap_.top().event);
      heap_.pop();
    }
  }

  Mix mix_;
  SessionShape shape_;
  ZipfSampler zipf_;
  std::uint64_t session_salt_;
  std::uint64_t region_salt_;
  const EventSink& sink_;
  EventHeap heap_;
  std::uint64_t seq_ = 0;
  std::uint64_t session_index_ = 0;
};

// Nonhomogeneous Poisson session arrivals by thinning, feeding the
// emitter. `rate(t)` must be <= rate_max on [0, duration].
template <typename RateFn>
void generate(double duration, double rate_max, RateFn rate, const Mix& mix,
              const SessionShape& shape, std::uint64_t seed,
              const EventSink& sink) {
  if (duration <= 0) throw std::invalid_argument("gen: duration must be > 0");
  if (rate_max <= 0) throw std::invalid_argument("gen: rate must be > 0");
  stats::Rng arrivals(seed);
  SessionEmitter emitter(mix, shape, seed, sink);
  double t = 0.0;
  while (true) {
    t += arrivals.exponential(rate_max);
    if (t >= duration) break;
    if (arrivals.uniform() * rate_max <= rate(t)) emitter.open_session(t);
  }
  emitter.finish();
}

}  // namespace

void flashcrowd(const FlashcrowdSpec& spec, std::uint64_t seed,
                const EventSink& sink) {
  const double rate_max = spec.base_rate + spec.surge_rate;
  generate(
      spec.duration, rate_max,
      [&](double t) {
        const double z = (t - spec.surge_time) / spec.surge_width;
        return spec.base_rate + spec.surge_rate * std::exp(-0.5 * z * z);
      },
      spec.mix, spec.session, seed, sink);
}

void diurnal(const DiurnalSpec& spec, std::uint64_t seed,
             const EventSink& sink) {
  if (spec.amplitude < 0 || spec.amplitude >= 1)
    throw std::invalid_argument("diurnal: amplitude must be in [0, 1)");
  const double two_pi = 6.283185307179586;
  const double rate_max = spec.mean_rate * (1.0 + spec.amplitude);
  generate(
      spec.duration, rate_max,
      [&](double t) {
        return spec.mean_rate *
               (1.0 + spec.amplitude *
                          std::sin(two_pi * t / spec.period + spec.phase));
      },
      spec.mix, spec.session, seed, sink);
}

}  // namespace atlarge::trace::gen
