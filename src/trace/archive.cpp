#include "atlarge/trace/archive.hpp"

#include <algorithm>

namespace atlarge::trace {

std::string to_string(Domain d) {
  switch (d) {
    case Domain::kP2P: return "p2p";
    case Domain::kGaming: return "gaming";
    case Domain::kDatacenter: return "datacenter";
    case Domain::kServerless: return "serverless";
    case Domain::kGraph: return "graph";
    case Domain::kWorkflow: return "workflow";
    case Domain::kOther: return "other";
  }
  return "other";
}

double FairAssessment::score() const noexcept {
  const int satisfied = static_cast<int>(findable_identifier) +
                        static_cast<int>(findable_metadata) +
                        static_cast<int>(accessible_protocol) +
                        static_cast<int>(interoperable_format) +
                        static_cast<int>(reusable_license) +
                        static_cast<int>(reusable_provenance);
  return static_cast<double>(satisfied) / 6.0;
}

bool Archive::add(DatasetEntry entry) {
  const bool taken = std::any_of(
      entries_.begin(), entries_.end(),
      [&](const DatasetEntry& e) { return e.id == entry.id; });
  if (taken) return false;
  entries_.push_back(std::move(entry));
  return true;
}

std::optional<DatasetEntry> Archive::find(const std::string& id) const {
  for (const auto& e : entries_)
    if (e.id == id) return e;
  return std::nullopt;
}

std::vector<DatasetEntry> Archive::by_domain(Domain d) const {
  std::vector<DatasetEntry> out;
  for (const auto& e : entries_)
    if (e.domain == d) out.push_back(e);
  return out;
}

std::vector<DatasetEntry> Archive::by_keyword(const std::string& kw) const {
  std::vector<DatasetEntry> out;
  for (const auto& e : entries_) {
    if (std::find(e.keywords.begin(), e.keywords.end(), kw) !=
        e.keywords.end()) {
      out.push_back(e);
    }
  }
  return out;
}

double Archive::mean_fair_score() const noexcept {
  if (entries_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : entries_) total += e.fair.score();
  return total / static_cast<double>(entries_.size());
}

}  // namespace atlarge::trace
