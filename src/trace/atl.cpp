#include "atlarge/trace/atl.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "atlarge/obs/metrics.hpp"

namespace atlarge::trace {
namespace {

// ---------------------------------------------------------------------------
// Little-endian scalar helpers (the format is LE regardless of host order).

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Column encoding ids, keyed by FieldType (see the header comment).
std::uint8_t encoding_for(FieldType t) noexcept {
  switch (t) {
    case FieldType::kInt:
      return 0;
    case FieldType::kReal:
      return 1;
    case FieldType::kText:
      return 2;
  }
  return 0xFF;
}

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

// Bounds-checked varint read out of an in-memory span; advances `pos`.
std::uint64_t get_varint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= size)
      throw std::runtime_error("atl: truncated varint inside chunk");
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if (!(byte & 0x80u)) return v;
  }
  throw std::runtime_error("atl: malformed varint (too long)");
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::vector<Column> event_schema() {
  return {{"t_us", FieldType::kInt},
          {"entity", FieldType::kInt},
          {"kind", FieldType::kInt},
          {"size", FieldType::kInt},
          {"region", FieldType::kInt}};
}

bool is_event_schema(const std::vector<Column>& schema) {
  const auto want = event_schema();
  if (schema.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i)
    if (schema[i].name != want[i].name || schema[i].type != want[i].type)
      return false;
  return true;
}

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(const std::string& path, std::vector<Column> schema,
                         WriterOptions options)
    : schema_(std::move(schema)), options_(options) {
  if (schema_.empty())
    throw std::invalid_argument("TraceWriter: schema must be non-empty");
  if (schema_.size() > 0xFFFF)
    throw std::invalid_argument("TraceWriter: too many columns");
  if (options_.chunk_rows == 0)
    throw std::invalid_argument("TraceWriter: chunk_rows must be > 0");
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("TraceWriter: cannot open " + path);
  is_event_schema_ = trace::is_event_schema(schema_);
  int_cols_.resize(schema_.size());
  real_cols_.resize(schema_.size());
  text_cols_.resize(schema_.size());

  std::vector<std::uint8_t> header;
  header.insert(header.end(), kAtlMagic, kAtlMagic + sizeof(kAtlMagic));
  put_u32(header, kAtlVersion);
  put_u16(header, static_cast<std::uint16_t>(schema_.size()));
  for (const Column& col : schema_) {
    if (col.name.size() > 0xFFFF)
      throw std::invalid_argument("TraceWriter: column name too long: " +
                                  col.name);
    header.push_back(encoding_for(col.type));
    put_u16(header, static_cast<std::uint16_t>(col.name.size()));
    header.insert(header.end(), col.name.begin(), col.name.end());
  }
  write_raw(header.data(), header.size());
}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; call finish() explicitly to observe
      // write errors.
    }
  }
}

void TraceWriter::write_raw(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) throw std::runtime_error("TraceWriter: write failed");
  bytes_written_ += size;
}

void TraceWriter::append_row(const std::vector<Field>& row) {
  if (finished_)
    throw std::logic_error("TraceWriter: append after finish()");
  if (row.size() != schema_.size())
    throw std::invalid_argument("TraceWriter: arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    switch (schema_[i].type) {
      case FieldType::kInt:
        if (!std::holds_alternative<std::int64_t>(row[i]))
          throw std::invalid_argument(
              "TraceWriter: type mismatch in column " + schema_[i].name);
        int_cols_[i].push_back(std::get<std::int64_t>(row[i]));
        break;
      case FieldType::kReal:
        if (!std::holds_alternative<double>(row[i]))
          throw std::invalid_argument(
              "TraceWriter: type mismatch in column " + schema_[i].name);
        real_cols_[i].push_back(std::get<double>(row[i]));
        break;
      case FieldType::kText:
        if (!std::holds_alternative<std::string>(row[i]))
          throw std::invalid_argument(
              "TraceWriter: type mismatch in column " + schema_[i].name);
        text_cols_[i].push_back(std::get<std::string>(row[i]));
        break;
    }
  }
  if (++staged_rows_ >= options_.chunk_rows) flush_chunk();
}

void TraceWriter::append(const Event& event) {
  if (finished_)
    throw std::logic_error("TraceWriter: append after finish()");
  if (!is_event_schema_)
    throw std::logic_error(
        "TraceWriter: append(Event) requires the canonical event schema");
  int_cols_[0].push_back(event.t_us);
  int_cols_[1].push_back(event.entity);
  int_cols_[2].push_back(event.kind);
  int_cols_[3].push_back(event.size);
  int_cols_[4].push_back(event.region);
  if (++staged_rows_ >= options_.chunk_rows) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (staged_rows_ == 0) return;
  scratch_.clear();
  put_u32(scratch_, static_cast<std::uint32_t>(staged_rows_));
  std::vector<std::uint8_t> payload;
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    payload.clear();
    switch (schema_[c].type) {
      case FieldType::kInt: {
        std::int64_t prev = 0;
        for (std::int64_t v : int_cols_[c]) {
          put_varint(payload, zigzag_encode(v - prev));
          prev = v;
        }
        int_cols_[c].clear();
        break;
      }
      case FieldType::kReal: {
        for (double v : real_cols_[c]) {
          std::uint64_t bits = 0;
          std::memcpy(&bits, &v, sizeof(bits));
          put_u64(payload, bits);
        }
        real_cols_[c].clear();
        break;
      }
      case FieldType::kText: {
        for (const std::string& s : text_cols_[c]) {
          put_varint(payload, s.size());
          payload.insert(payload.end(), s.begin(), s.end());
        }
        text_cols_[c].clear();
        break;
      }
    }
    scratch_.push_back(encoding_for(schema_[c].type));
    put_varint(scratch_, payload.size());
    scratch_.insert(scratch_.end(), payload.begin(), payload.end());
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + scratch_.size() + 4);
  put_u32(frame, kAtlChunkMagic);
  frame.insert(frame.end(), scratch_.begin(), scratch_.end());
  put_u32(frame, crc32(scratch_.data(), scratch_.size()));
  write_raw(frame.data(), frame.size());
  rows_written_ += staged_rows_;
  ++chunks_written_;
  staged_rows_ = 0;
}

void TraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  out_.close();
  if (out_.fail()) throw std::runtime_error("TraceWriter: close failed");
  finished_ = true;
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(const std::string& path, ReaderOptions options)
    : options_(options) {
  in_.open(path, std::ios::binary);
  if (!in_) throw std::runtime_error("TraceReader: cannot open " + path);

  char magic[sizeof(kAtlMagic)];
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != sizeof(magic) ||
      std::memcmp(magic, kAtlMagic, sizeof(magic)) != 0)
    throw std::runtime_error("TraceReader: not an .atl file: " + path);

  std::uint8_t fixed[6];
  in_.read(reinterpret_cast<char*>(fixed), sizeof(fixed));
  if (in_.gcount() != sizeof(fixed))
    throw std::runtime_error("TraceReader: truncated header: " + path);
  const std::uint32_t version = load_u32(fixed);
  if (version != kAtlVersion)
    throw std::runtime_error("TraceReader: unsupported .atl version " +
                             std::to_string(version));
  const std::size_t ncols = fixed[4] | (static_cast<std::size_t>(fixed[5]) << 8);
  if (ncols == 0)
    throw std::runtime_error("TraceReader: header declares zero columns");

  schema_.reserve(ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    std::uint8_t desc[3];
    in_.read(reinterpret_cast<char*>(desc), sizeof(desc));
    if (in_.gcount() != sizeof(desc))
      throw std::runtime_error("TraceReader: truncated column descriptor");
    Column col;
    switch (desc[0]) {
      case 0:
        col.type = FieldType::kInt;
        break;
      case 1:
        col.type = FieldType::kReal;
        break;
      case 2:
        col.type = FieldType::kText;
        break;
      default:
        throw std::runtime_error("TraceReader: unknown column type " +
                                 std::to_string(desc[0]));
    }
    const std::size_t name_len =
        desc[1] | (static_cast<std::size_t>(desc[2]) << 8);
    col.name.resize(name_len);
    in_.read(col.name.data(), static_cast<std::streamsize>(name_len));
    if (static_cast<std::size_t>(in_.gcount()) != name_len)
      throw std::runtime_error("TraceReader: truncated column name");
    schema_.push_back(std::move(col));
  }
  int_cols_.resize(ncols);
  real_cols_.resize(ncols);
  text_cols_.resize(ncols);
}

bool TraceReader::next_chunk() {
  chunk_rows_ = 0;
  if (truncated_ || !in_) return false;

  // A chunk is consumed in two phases: (1) pull the framed bytes off the
  // file into buffer_ (rows count + colblocks, exactly the CRC'd span),
  // classifying any short read as a crash tail; (2) verify the CRC and
  // decode — from here on every defect is corruption and throws.
  const auto fail_truncated = [&]() -> bool {
    if (options_.allow_partial_tail) {
      truncated_ = true;
      return false;
    }
    throw std::runtime_error(
        "TraceReader: truncated chunk (use allow_partial_tail to accept a "
        "crash tail)");
  };

  std::uint8_t word[4];
  in_.read(reinterpret_cast<char*>(word), sizeof(word));
  if (in_.gcount() == 0) return false;  // clean end of file
  if (in_.gcount() != sizeof(word)) return fail_truncated();
  if (load_u32(word) != kAtlChunkMagic)
    throw std::runtime_error("TraceReader: bad chunk magic (corrupt file)");

  buffer_.clear();
  const auto pull = [&](std::size_t n) -> bool {
    const std::size_t off = buffer_.size();
    buffer_.resize(off + n);
    in_.read(reinterpret_cast<char*>(buffer_.data() + off),
             static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) return false;
    return true;
  };

  if (!pull(4)) return fail_truncated();
  const std::uint32_t rows = load_u32(buffer_.data());
  if (rows == 0)
    throw std::runtime_error("TraceReader: chunk with zero rows");

  struct Span {
    std::size_t off = 0;
    std::size_t len = 0;
  };
  std::vector<Span> payloads(schema_.size());
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    if (!pull(1)) return fail_truncated();
    const std::uint8_t encoding = buffer_.back();
    if (encoding != encoding_for(schema_[c].type))
      throw std::runtime_error("TraceReader: column encoding mismatch in " +
                               schema_[c].name);
    // Varint payload length, pulled byte by byte so it lands in buffer_
    // (it is part of the CRC'd span).
    std::uint64_t len = 0;
    for (int shift = 0;; shift += 7) {
      if (shift >= 64)
        throw std::runtime_error("TraceReader: malformed payload length");
      if (!pull(1)) return fail_truncated();
      const std::uint8_t byte = buffer_.back();
      len |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if (!(byte & 0x80u)) break;
    }
    if (len > (1ull << 31))
      throw std::runtime_error("TraceReader: implausible payload length");
    payloads[c].off = buffer_.size();
    payloads[c].len = static_cast<std::size_t>(len);
    if (!pull(payloads[c].len)) return fail_truncated();
  }

  std::uint8_t crc_bytes[4];
  in_.read(reinterpret_cast<char*>(crc_bytes), sizeof(crc_bytes));
  if (in_.gcount() != sizeof(crc_bytes)) return fail_truncated();
  const std::uint32_t want_crc = load_u32(crc_bytes);
  const std::uint32_t got_crc = crc32(buffer_.data(), buffer_.size());
  if (want_crc != got_crc)
    throw std::runtime_error(
        "TraceReader: CRC mismatch in chunk " +
        std::to_string(chunks_read_ + 1) + " (corrupt file)");

  // Phase 2: decode each colblock.
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    const std::uint8_t* data = buffer_.data() + payloads[c].off;
    const std::size_t size = payloads[c].len;
    switch (schema_[c].type) {
      case FieldType::kInt: {
        auto& col = int_cols_[c];
        col.clear();
        col.reserve(rows);
        std::size_t pos = 0;
        std::int64_t prev = 0;
        for (std::uint32_t r = 0; r < rows; ++r) {
          prev += zigzag_decode(get_varint(data, size, pos));
          col.push_back(prev);
        }
        if (pos != size)
          throw std::runtime_error("TraceReader: trailing bytes in int column");
        break;
      }
      case FieldType::kReal: {
        if (size != static_cast<std::size_t>(rows) * 8)
          throw std::runtime_error("TraceReader: real column size mismatch");
        auto& col = real_cols_[c];
        col.clear();
        col.reserve(rows);
        for (std::uint32_t r = 0; r < rows; ++r) {
          const std::uint64_t bits = load_u64(data + r * 8);
          double v;
          std::memcpy(&v, &bits, sizeof(v));
          col.push_back(v);
        }
        break;
      }
      case FieldType::kText: {
        auto& col = text_cols_[c];
        col.clear();
        col.reserve(rows);
        std::size_t pos = 0;
        for (std::uint32_t r = 0; r < rows; ++r) {
          const std::uint64_t len = get_varint(data, size, pos);
          if (len > size - pos)
            throw std::runtime_error("TraceReader: text cell out of bounds");
          col.emplace_back(
              static_cast<std::uint32_t>(payloads[c].off + pos),
              static_cast<std::uint32_t>(len));
          pos += static_cast<std::size_t>(len);
        }
        if (pos != size)
          throw std::runtime_error(
              "TraceReader: trailing bytes in text column");
        break;
      }
    }
  }

  chunk_rows_ = rows;
  rows_read_ += rows;
  ++chunks_read_;
  account_residency();
  return true;
}

void TraceReader::account_residency() {
  std::uint64_t resident = buffer_.capacity();
  for (const auto& c : int_cols_) resident += c.capacity() * sizeof(c[0]);
  for (const auto& c : real_cols_) resident += c.capacity() * sizeof(c[0]);
  for (const auto& c : text_cols_)
    resident += c.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
  if (resident > peak_resident_) peak_resident_ = resident;
  if (options_.obs != nullptr) {
    options_.obs->counter("trace.reader_chunks").add(1);
    options_.obs->counter("trace.reader_rows").add(chunk_rows_);
    options_.obs->gauge("trace.reader_resident_bytes")
        .set(static_cast<double>(peak_resident_));
  }
}

std::int64_t TraceReader::int_at(std::size_t col, std::size_t row) const {
  if (col >= schema_.size() || schema_[col].type != FieldType::kInt)
    throw std::invalid_argument("TraceReader::int_at: not an int column");
  return int_cols_[col].at(row);
}

double TraceReader::real_at(std::size_t col, std::size_t row) const {
  if (col >= schema_.size() || schema_[col].type != FieldType::kReal)
    throw std::invalid_argument("TraceReader::real_at: not a real column");
  return real_cols_[col].at(row);
}

std::string_view TraceReader::text_at(std::size_t col, std::size_t row) const {
  if (col >= schema_.size() || schema_[col].type != FieldType::kText)
    throw std::invalid_argument("TraceReader::text_at: not a text column");
  const auto [off, len] = text_cols_[col].at(row);
  return std::string_view(reinterpret_cast<const char*>(buffer_.data()) + off,
                          len);
}

const std::vector<std::int64_t>& TraceReader::int_column(
    std::size_t col) const {
  if (col >= schema_.size() || schema_[col].type != FieldType::kInt)
    throw std::invalid_argument("TraceReader::int_column: not an int column");
  return int_cols_[col];
}

const std::vector<double>& TraceReader::real_column(std::size_t col) const {
  if (col >= schema_.size() || schema_[col].type != FieldType::kReal)
    throw std::invalid_argument(
        "TraceReader::real_column: not a real column");
  return real_cols_[col];
}

// ---------------------------------------------------------------------------
// AtlEventStream

AtlEventStream::AtlEventStream(TraceReader& reader) : reader_(&reader) {
  if (!is_event_schema(reader.schema()))
    throw std::runtime_error(
        "AtlEventStream: trace does not use the canonical event schema");
}

bool AtlEventStream::next(Event& out) {
  while (row_ >= reader_->rows()) {
    if (!reader_->next_chunk()) return false;
    row_ = 0;
  }
  out.t_us = reader_->int_column(0)[row_];
  out.entity = reader_->int_column(1)[row_];
  out.kind = reader_->int_column(2)[row_];
  out.size = reader_->int_column(3)[row_];
  out.region = reader_->int_column(4)[row_];
  ++row_;
  return true;
}

// ---------------------------------------------------------------------------
// Whole-table convenience

void write_atl(const Table& table, const std::string& path,
               WriterOptions options) {
  TraceWriter writer(path, table.schema(), options);
  for (std::size_t r = 0; r < table.rows(); ++r)
    writer.append_row(table.row(r));
  writer.finish();
}

Table read_atl(const std::string& path, ReaderOptions options) {
  TraceReader reader(path, options);
  Table table(reader.schema());
  while (reader.next_chunk()) {
    for (std::size_t r = 0; r < reader.rows(); ++r) {
      std::vector<Field> row;
      row.reserve(reader.schema().size());
      for (std::size_t c = 0; c < reader.schema().size(); ++c) {
        switch (reader.schema()[c].type) {
          case FieldType::kInt:
            row.emplace_back(reader.int_at(c, r));
            break;
          case FieldType::kReal:
            row.emplace_back(reader.real_at(c, r));
            break;
          case FieldType::kText:
            row.emplace_back(std::string(reader.text_at(c, r)));
            break;
        }
      }
      table.append(std::move(row));
    }
  }
  return table;
}

}  // namespace atlarge::trace
