#include "atlarge/trace/record.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace atlarge::trace {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

// Files written on Windows (or transferred in text mode) end lines with
// \r\n; getline leaves the \r attached to the last cell, which would break
// the header match and the strict int/real parses below.
void strip_trailing_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Locale-independent double formatting: shortest round-trippable decimal
// via to_chars, regardless of the global locale's decimal separator.
std::string format_real(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) throw std::runtime_error("format_real: to_chars");
  return std::string(buf, ptr);
}

void write_quoted(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

// Splits one CSV line honoring quotes. Assumes no embedded newlines (the
// writer never produces them inside cells because \n triggers quoting but
// our records never contain newlines; the reader rejects them).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

Table::Table(std::vector<Column> schema) : schema_(std::move(schema)) {
  if (schema_.empty())
    throw std::invalid_argument("Table: schema must be non-empty");
}

void Table::append(std::vector<Field> row) {
  if (row.size() != schema_.size())
    throw std::invalid_argument("Table::append: arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    const bool ok =
        (schema_[i].type == FieldType::kInt &&
         std::holds_alternative<std::int64_t>(row[i])) ||
        (schema_[i].type == FieldType::kReal &&
         std::holds_alternative<double>(row[i])) ||
        (schema_[i].type == FieldType::kText &&
         std::holds_alternative<std::string>(row[i]));
    if (!ok)
      throw std::invalid_argument("Table::append: type mismatch in column " +
                                  schema_[i].name);
  }
  rows_.push_back(std::move(row));
}

std::size_t Table::column_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < schema_.size(); ++i)
    if (schema_[i].name == name) return i;
  return npos;
}

std::vector<double> Table::numeric_column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  if (idx == npos)
    throw std::invalid_argument("numeric_column: unknown column " + name);
  if (schema_[idx].type == FieldType::kText)
    throw std::invalid_argument("numeric_column: column is text: " + name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    if (schema_[idx].type == FieldType::kInt) {
      out.push_back(static_cast<double>(std::get<std::int64_t>(row[idx])));
    } else {
      out.push_back(std::get<double>(row[idx]));
    }
  }
  return out;
}

void Table::write_csv(std::ostream& out) const {
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (i) out << ',';
    out << schema_[i].name;
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      switch (schema_[i].type) {
        case FieldType::kInt:
          out << std::get<std::int64_t>(row[i]);
          break;
        case FieldType::kReal:
          out << format_real(std::get<double>(row[i]));
          break;
        case FieldType::kText: {
          const auto& s = std::get<std::string>(row[i]);
          if (needs_quoting(s)) {
            write_quoted(out, s);
          } else {
            out << s;
          }
          break;
        }
      }
    }
    out << '\n';
  }
}

Table Table::read_csv(std::istream& in, std::vector<Column> schema) {
  Table table(std::move(schema));
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("read_csv: missing header");
  strip_trailing_cr(line);
  const auto header = split_csv_line(line);
  if (header.size() != table.schema_.size())
    throw std::runtime_error("read_csv: header arity mismatch");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] != table.schema_[i].name)
      throw std::runtime_error("read_csv: header name mismatch: got " +
                               header[i] + ", want " + table.schema_[i].name);
  }
  while (std::getline(in, line)) {
    strip_trailing_cr(line);
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != table.schema_.size())
      throw std::runtime_error("read_csv: row arity mismatch");
    std::vector<Field> row;
    row.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      switch (table.schema_[i].type) {
        case FieldType::kInt: {
          std::int64_t v = 0;
          const auto [ptr, ec] = std::from_chars(
              cells[i].data(), cells[i].data() + cells[i].size(), v);
          if (ec != std::errc() || ptr != cells[i].data() + cells[i].size())
            throw std::runtime_error("read_csv: bad int cell: " + cells[i]);
          row.emplace_back(v);
          break;
        }
        case FieldType::kReal: {
          double v = 0;
          const auto [ptr, ec] = std::from_chars(
              cells[i].data(), cells[i].data() + cells[i].size(), v);
          if (ec != std::errc() || ptr != cells[i].data() + cells[i].size())
            throw std::runtime_error("read_csv: bad real cell: " + cells[i]);
          row.emplace_back(v);
          break;
        }
        case FieldType::kText:
          row.emplace_back(cells[i]);
          break;
      }
    }
    table.append(std::move(row));
  }
  return table;
}

}  // namespace atlarge::trace
