#include "atlarge/fault/injector.hpp"

#include <string>

#include "atlarge/obs/observability.hpp"

namespace atlarge::fault {

Injector::Injector(const FaultPlan& plan, obs::Observability* obs)
    : plan_(&plan), obs_(obs) {}

void Injector::on_kind(FaultKind kind, Handler handler) {
  handlers_[static_cast<std::size_t>(kind)] = std::move(handler);
}

void Injector::attach(sim::Simulation& sim) {
  // One kernel event per plan entry. The plan outlives the injector (and
  // the simulation), so capturing the event by reference is safe and
  // avoids copying per injection.
  for (const FaultEvent& event : plan_->events()) {
    sim.schedule_at(event.time,
                    [this, &event, &sim] { fire(event, sim.now()); });
  }
}

void Injector::fire(const FaultEvent& event, double now) {
  const Handler& handler = handlers_[static_cast<std::size_t>(event.kind)];
  if (!handler) {
    ++ignored_;
    return;
  }
  ++injected_;
  if (obs_ != nullptr) {
    obs_->metrics.counter("fault.injected").add(1);
    obs_->metrics
        .counter(std::string("fault.injected.") + to_string(event.kind))
        .add(1);
    obs_->tracer.instant(span_name(event.kind), "fault", now);
  }
  handler(event);
}

void Injector::recovered(const FaultEvent& event, double now) {
  ++recovered_;
  if (obs_ != nullptr) {
    obs_->metrics.counter("fault.recovered").add(1);
    obs_->tracer.instant(span_name(event.kind), "fault", now);
  }
}

}  // namespace atlarge::fault
