#include "atlarge/fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "atlarge/stats/rng.hpp"

namespace atlarge::fault {
namespace {

constexpr char kHeader[] = "faultplan v1";

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// %.17g round-trips every finite double exactly.
std::string format_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("fault plan line " + std::to_string(line) +
                              ": " + what);
}

double parse_double(const std::string& tok, std::size_t line,
                    const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    parse_error(line, std::string("bad ") + what + " '" + tok + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line,
                        const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    parse_error(line, std::string("bad ") + what + " '" + tok + "'");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kMachineCrash: return "machine_crash";
    case FaultKind::kMessageLoss: return "message_loss";
    case FaultKind::kMessageDelay: return "message_delay";
    case FaultKind::kColdStartFailure: return "cold_start_failure";
    case FaultKind::kChurnSpike: return "churn_spike";
    case FaultKind::kSlowdown: return "slowdown";
  }
  return "?";
}

bool fault_kind_from_string(const std::string& token, FaultKind& out) {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (token == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

const char* span_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kMachineCrash: return "fault.machine_crash";
    case FaultKind::kMessageLoss: return "fault.message_loss";
    case FaultKind::kMessageDelay: return "fault.message_delay";
    case FaultKind::kColdStartFailure: return "fault.cold_start_failure";
    case FaultKind::kChurnSpike: return "fault.churn_spike";
    case FaultKind::kSlowdown: return "fault.slowdown";
  }
  return "fault.?";
}

FaultPlan FaultPlan::generate(const FaultSpec& spec) {
  if (!(spec.horizon > 0.0))
    throw std::invalid_argument("FaultPlan::generate: horizon must be > 0");
  if (spec.rate < 0.0)
    throw std::invalid_argument("FaultPlan::generate: rate must be >= 0");
  if (spec.targets == 0)
    throw std::invalid_argument("FaultPlan::generate: targets must be >= 1");
  for (const FaultKind k : spec.kinds) {
    if (static_cast<std::size_t>(k) >= kFaultKindCount)
      throw std::invalid_argument("FaultPlan::generate: bad fault kind");
  }

  FaultPlan plan;
  plan.seed_ = spec.seed;
  const auto n = static_cast<std::size_t>(
      std::llround(spec.rate * spec.horizon / 1'000.0));
  plan.events_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each event is a pure function of (seed, i): plans generated at a
    // lower rate with the same seed are exact subsets of higher-rate
    // plans, which makes fault-rate sweeps monotone-comparable.
    stats::Rng rng(splitmix64(spec.seed ^
                              (0x51bafa57c0ffee11ULL +
                               0x9e3779b97f4a7c15ULL * (i + 1))));
    FaultEvent e;
    e.time = rng.uniform(0.0, spec.horizon);
    if (spec.kinds.empty()) {
      e.kind = static_cast<FaultKind>(rng.uniform_int(
          0, static_cast<std::int64_t>(kFaultKindCount) - 1));
    } else {
      e.kind = spec.kinds[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.kinds.size()) - 1))];
    }
    e.target = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.targets) - 1));
    e.duration = rng.exponential(1.0 / std::max(spec.mean_duration, 1e-9));
    e.magnitude = std::clamp(spec.mean_magnitude * (0.5 + rng.uniform()),
                             0.01, 1.0);
    plan.events_.push_back(e);
  }
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return plan;
}

void FaultPlan::add(const FaultEvent& event) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, event);
}

std::vector<FaultEvent> FaultPlan::events_between(double t0, double t1) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events_) {
    if (e.time >= t1) break;
    if (e.time >= t0) out.push_back(e);
  }
  return out;
}

std::string FaultPlan::serialize() const {
  std::string out = kHeader;
  out += "\nseed ";
  out += std::to_string(seed_);
  out += '\n';
  for (const FaultEvent& e : events_) {
    out += "event ";
    out += format_exact(e.time);
    out += ' ';
    out += to_string(e.kind);
    out += ' ';
    out += std::to_string(e.target);
    out += ' ';
    out += format_exact(e.duration);
    out += ' ';
    out += format_exact(e.magnitude);
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::deserialize(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool saw_header = false;
  double last_time = -std::numeric_limits<double>::infinity();
  while (std::getline(in, raw)) {
    ++lineno;
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    std::string tok;
    while (line >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;
    if (!saw_header) {
      if (raw != kHeader)
        parse_error(lineno, "expected '" + std::string(kHeader) + "'");
      saw_header = true;
      continue;
    }
    if (tokens[0] == "seed") {
      if (tokens.size() != 2) parse_error(lineno, "seed takes one value");
      plan.seed_ = parse_u64(tokens[1], lineno, "seed");
    } else if (tokens[0] == "event") {
      if (tokens.size() != 6)
        parse_error(lineno,
                    "event takes <time> <kind> <target> <duration> "
                    "<magnitude>");
      FaultEvent e;
      e.time = parse_double(tokens[1], lineno, "time");
      if (!fault_kind_from_string(tokens[2], e.kind))
        parse_error(lineno, "unknown fault kind '" + tokens[2] + "'");
      e.target =
          static_cast<std::uint32_t>(parse_u64(tokens[3], lineno, "target"));
      e.duration = parse_double(tokens[4], lineno, "duration");
      e.magnitude = parse_double(tokens[5], lineno, "magnitude");
      if (e.time < last_time)
        parse_error(lineno, "events out of time order");
      last_time = e.time;
      plan.events_.push_back(e);
    } else {
      parse_error(lineno, "unknown keyword '" + tokens[0] + "'");
    }
  }
  if (!saw_header)
    throw std::invalid_argument("fault plan: missing 'faultplan v1' header");
  return plan;
}

double RetryPolicy::backoff_delay(std::uint32_t retry_index) const noexcept {
  if (retry_index == 0) return 0.0;
  double delay = backoff_base;
  for (std::uint32_t i = 1; i < retry_index; ++i) {
    delay *= backoff_factor;
    if (delay >= backoff_cap) break;
  }
  return std::min(delay, backoff_cap);
}

}  // namespace atlarge::fault
