#include "atlarge/cluster/machine.hpp"

namespace atlarge::cluster {

std::uint32_t Cluster::total_cores() const noexcept {
  std::uint32_t total = 0;
  for (const auto& m : machines) total += m.cores;
  return total;
}

std::string to_string(EnvironmentType t) {
  switch (t) {
    case EnvironmentType::kOwnCluster: return "CL";
    case EnvironmentType::kGrid: return "G";
    case EnvironmentType::kPublicCloud: return "CD";
    case EnvironmentType::kMultiCluster: return "MCD";
    case EnvironmentType::kGeoDistributed: return "GDC";
  }
  return "?";
}

std::uint32_t Environment::total_cores() const noexcept {
  std::uint32_t total = 0;
  for (const auto& c : clusters) total += c.total_cores();
  return total;
}

std::size_t Environment::total_machines() const noexcept {
  std::size_t total = 0;
  for (const auto& c : clusters) total += c.machines.size();
  return total;
}

std::vector<Machine> Environment::all_machines() const {
  std::vector<Machine> out;
  out.reserve(total_machines());
  MachineId next_id = 0;
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    for (Machine m : clusters[ci].machines) {
      m.id = next_id++;
      m.cluster = static_cast<std::uint32_t>(ci);
      out.push_back(m);
    }
  }
  return out;
}

namespace {

Cluster homogeneous(std::string name, std::size_t machines,
                    std::uint32_t cores, double speed) {
  Cluster c;
  c.name = std::move(name);
  c.machines.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    Machine m;
    m.id = static_cast<MachineId>(i);
    m.cores = cores;
    m.speed = speed;
    c.machines.push_back(m);
  }
  return c;
}

}  // namespace

Environment make_homogeneous_cluster(std::string name, std::size_t machines,
                                     std::uint32_t cores_per_machine,
                                     double speed) {
  Environment env;
  env.name = std::move(name);
  env.type = EnvironmentType::kOwnCluster;
  env.clusters.push_back(
      homogeneous("c0", machines, cores_per_machine, speed));
  return env;
}

Environment make_grid(std::string name, std::size_t sites,
                      std::size_t machines_per_site,
                      std::uint32_t cores_per_machine) {
  Environment env;
  env.name = std::move(name);
  env.type = EnvironmentType::kGrid;
  for (std::size_t s = 0; s < sites; ++s) {
    // Grids are heterogeneous across sites: speeds alternate between
    // generations (1.0x, 0.75x, 1.25x, ...).
    const double speed = 1.0 + 0.25 * ((s % 3 == 1)   ? -1.0
                                       : (s % 3 == 2) ? 1.0
                                                      : 0.0);
    env.clusters.push_back(homogeneous("site" + std::to_string(s),
                                       machines_per_site, cores_per_machine,
                                       speed));
  }
  env.inter_cluster_latency = 0.05;
  return env;
}

Environment make_cloud(std::string name, std::size_t max_machines,
                       std::uint32_t cores_per_machine,
                       double provisioning_delay) {
  Environment env;
  env.name = std::move(name);
  env.type = EnvironmentType::kPublicCloud;
  env.clusters.push_back(
      homogeneous("region0", max_machines, cores_per_machine, 1.0));
  env.provisioning_delay = provisioning_delay;
  return env;
}

Environment make_multi_cluster(std::string name, std::size_t clusters,
                               std::size_t machines_per_cluster,
                               std::uint32_t cores_per_machine) {
  Environment env;
  env.name = std::move(name);
  env.type = EnvironmentType::kMultiCluster;
  for (std::size_t c = 0; c < clusters; ++c) {
    env.clusters.push_back(homogeneous("c" + std::to_string(c),
                                       machines_per_cluster,
                                       cores_per_machine, 1.0));
  }
  return env;
}

Environment make_geo_distributed(std::string name, std::size_t datacenters,
                                 std::size_t machines_per_dc,
                                 std::uint32_t cores_per_machine,
                                 double inter_dc_latency) {
  Environment env = make_multi_cluster(std::move(name), datacenters,
                                       machines_per_dc, cores_per_machine);
  env.type = EnvironmentType::kGeoDistributed;
  env.inter_cluster_latency = inter_dc_latency;
  return env;
}

}  // namespace atlarge::cluster
