#include "atlarge/cluster/refarch.hpp"

#include <algorithm>

namespace atlarge::cluster {

std::string to_string(Layer layer) {
  switch (layer) {
    case Layer::kInfrastructure: return "infrastructure";
    case Layer::kOperationsService: return "operations-service";
    case Layer::kResources: return "resources";
    case Layer::kBackEnd: return "back-end";
    case Layer::kFrontEnd: return "front-end";
    case Layer::kDevOps: return "devops";
  }
  return "?";
}

bool ReferenceArchitecture::register_component(Component c) {
  if (find(c.name)) return false;
  components_.push_back(std::move(c));
  return true;
}

std::optional<Component> ReferenceArchitecture::find(
    const std::string& name) const {
  for (const auto& c : components_)
    if (c.name == name) return c;
  return std::nullopt;
}

std::vector<Component> ReferenceArchitecture::in_layer(Layer layer) const {
  std::vector<Component> out;
  for (const auto& c : components_)
    if (c.layer == layer) out.push_back(c);
  return out;
}

MappingReport ReferenceArchitecture::validate(
    const EcosystemMapping& mapping) const {
  MappingReport report;
  std::vector<Layer> covered;
  for (const auto& name : mapping.components) {
    const auto c = find(name);
    if (!c) {
      report.unknown.push_back(name);
      continue;
    }
    covered.push_back(c->layer);
  }
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  report.covered = covered;
  report.all_components_known = report.unknown.empty();
  const auto has = [&](Layer l) {
    return std::find(covered.begin(), covered.end(), l) != covered.end();
  };
  report.executable = has(Layer::kInfrastructure) &&
                      (has(Layer::kOperationsService) ||
                       has(Layer::kResources)) &&
                      has(Layer::kBackEnd) && has(Layer::kFrontEnd);
  return report;
}

ReferenceArchitecture paper_reference_architecture() {
  ReferenceArchitecture ra;
  // Layer 5: Front-end (application-level functionality). Sub-layers:
  // high-level language, programming model, portal/SaaS.
  ra.register_component({"Pig", Layer::kFrontEnd, "high-level-language"});
  ra.register_component({"Hive", Layer::kFrontEnd, "high-level-language"});
  ra.register_component({"SQL-on-Hadoop", Layer::kFrontEnd,
                         "high-level-language"});
  ra.register_component({"MapReduce-Model", Layer::kFrontEnd,
                         "programming-model"});
  ra.register_component({"Spark-Model", Layer::kFrontEnd,
                         "programming-model"});
  ra.register_component({"FaaS-Functions", Layer::kFrontEnd,
                         "programming-model"});
  ra.register_component({"Analytics-Portal", Layer::kFrontEnd, "portal"});

  // Layer 4: Back-end (application-side management). Sub-layers:
  // execution engine, runtime engine, storage engine.
  ra.register_component({"Hadoop", Layer::kBackEnd, "execution-engine"});
  ra.register_component({"Spark", Layer::kBackEnd, "execution-engine"});
  ra.register_component({"Fission-Workflows", Layer::kBackEnd,
                         "execution-engine"});
  ra.register_component({"HDFS", Layer::kBackEnd, "storage-engine"});
  ra.register_component({"MemEFS", Layer::kBackEnd, "storage-engine"});
  ra.register_component({"Pocket", Layer::kBackEnd, "storage-engine"});
  ra.register_component({"Crail", Layer::kBackEnd, "storage-engine"});
  ra.register_component({"FlashNet", Layer::kBackEnd, "storage-engine"});

  // Layer 3: Resources (operator-side management).
  ra.register_component({"YARN", Layer::kResources, ""});
  ra.register_component({"Mesos", Layer::kResources, ""});
  ra.register_component({"Kubernetes", Layer::kResources, ""});
  ra.register_component({"Portfolio-Scheduler", Layer::kResources, ""});
  ra.register_component({"Autoscaler", Layer::kResources, ""});

  // Layer 2: Operations Service (distributed-OS basic services).
  ra.register_component({"Zookeeper", Layer::kOperationsService, ""});
  ra.register_component({"etcd", Layer::kOperationsService, ""});
  ra.register_component({"Naming-Service", Layer::kOperationsService, ""});

  // Layer 1: Infrastructure (physical and virtual resources).
  ra.register_component({"VM-Hypervisor", Layer::kInfrastructure, ""});
  ra.register_component({"Bare-Metal", Layer::kInfrastructure, ""});
  ra.register_component({"Datacenter-Network", Layer::kInfrastructure, ""});

  // Layer 6: DevOps (orthogonal).
  ra.register_component({"Graphalytics", Layer::kDevOps, ""});
  ra.register_component({"Granula", Layer::kDevOps, ""});
  ra.register_component({"Grade10", Layer::kDevOps, ""});
  ra.register_component({"Monitoring-Agent", Layer::kDevOps, ""});
  ra.register_component({"Log-Aggregator", Layer::kDevOps, ""});
  return ra;
}

EcosystemMapping mapreduce_ecosystem() {
  return EcosystemMapping{
      "MapReduce big data",
      {"Pig", "Hive", "MapReduce-Model", "Hadoop", "HDFS", "YARN",
       "Zookeeper", "VM-Hypervisor", "Datacenter-Network",
       "Monitoring-Agent"}};
}

EcosystemMapping serverless_ecosystem() {
  return EcosystemMapping{
      "Kubernetes-Fission serverless",
      {"FaaS-Functions", "Fission-Workflows", "Pocket", "Kubernetes", "etcd",
       "VM-Hypervisor", "Datacenter-Network", "Monitoring-Agent"}};
}

std::vector<std::string> legacy_bigdata_layers() {
  return {"High-Level Language", "Programming Model", "Execution Engine",
          "Storage Engine"};
}

}  // namespace atlarge::cluster
