#include "atlarge/cluster/cost.hpp"

#include <cmath>

namespace atlarge::cluster {

double CostModel::on_demand_cost(double seconds) const noexcept {
  if (seconds <= 0.0) return 0.0;
  const double hours = seconds / 3600.0;
  const double billed_hours =
      billing == Billing::kPerHour ? std::ceil(hours) : hours;
  return billed_hours * on_demand_rate;
}

double CostModel::total_cost(
    double horizon_seconds,
    const std::vector<double>& on_demand_allocations) const noexcept {
  double cost =
      reserved_machines * reserved_rate * horizon_seconds / 3600.0;
  for (double seconds : on_demand_allocations)
    cost += on_demand_cost(seconds);
  return cost;
}

std::vector<CostModel> standard_cost_models() {
  std::vector<CostModel> models;
  models.push_back(CostModel{"per-second", Billing::kPerSecond, 1.0, 0.6, 0});
  models.push_back(CostModel{"per-hour", Billing::kPerHour, 1.0, 0.6, 0});
  models.push_back(
      CostModel{"hybrid-reserved", Billing::kPerHour, 1.0, 0.6, 8});
  return models;
}

}  // namespace atlarge::cluster
